// MnasNet-B1 (Tan et al. 2019), depth multiplier 1.0, 224x224 input.
// No squeeze-excite in the B1 variant.
#include "nets/zoo.hpp"

namespace fuse::nets {

NetworkModel mnasnet_b1(const std::vector<core::FuseMode>& modes) {
  NetworkBuilder b("MnasNet-B1", 3, 224, 224, modes);
  const Activation act = Activation::kRelu;

  b.conv("stem", 32, 3, 2, act);

  // First stage: SepConv (depthwise 3x3 + linear pointwise to 16).
  b.depthwise("sep/dw", 3, 1, act);
  b.pointwise("sep/pw", 16, Activation::kNone);

  // MBConv stages: expansion t, kernel k, output channels c, repeats n,
  // first-block stride s.
  const struct {
    std::int64_t t, k, c, n, s;
  } settings[] = {
      {3, 3, 24, 3, 2},  {3, 5, 40, 3, 2},  {6, 5, 80, 3, 2},
      {6, 3, 96, 2, 1},  {6, 5, 192, 4, 2}, {6, 3, 320, 1, 1},
  };
  int index = 0;
  for (const auto& cfg : settings) {
    for (std::int64_t i = 0; i < cfg.n; ++i) {
      const std::int64_t stride = (i == 0) ? cfg.s : 1;
      const std::int64_t expand_c = b.channels() * cfg.t;
      b.inverted_residual("block" + std::to_string(index++), expand_c,
                          cfg.c, cfg.k, stride, /*use_se=*/false, act);
    }
  }

  b.pointwise("head", 1280, act);
  b.global_pool("pool");
  b.fully_connected("classifier", 1000, Activation::kNone);
  return b.finish();
}

}  // namespace fuse::nets
