// MobileNet-V3 Large and Small (Howard et al. 2019), 224x224 input.
// Block tables follow the paper's Tables 1 and 2 (as in torchvision).
#include "nets/zoo.hpp"

namespace fuse::nets {

namespace {

struct V3Block {
  std::int64_t kernel;
  std::int64_t expand_c;
  std::int64_t out_c;
  bool use_se;
  Activation act;
  std::int64_t stride;
};

NetworkModel build_v3(const std::string& name,
                      const std::vector<V3Block>& blocks,
                      std::int64_t last_conv_c, std::int64_t head_c,
                      const std::vector<core::FuseMode>& modes) {
  NetworkBuilder b(name, 3, 224, 224, modes);
  b.conv("stem", 16, 3, 2, Activation::kHardSwish);

  int index = 0;
  for (const V3Block& blk : blocks) {
    b.inverted_residual("block" + std::to_string(index++), blk.expand_c,
                        blk.out_c, blk.kernel, blk.stride, blk.use_se,
                        blk.act);
  }

  b.pointwise("last_conv", last_conv_c, Activation::kHardSwish);
  b.global_pool("pool");
  b.fully_connected("head", head_c, Activation::kHardSwish);
  b.fully_connected("classifier", 1000, Activation::kNone);
  return b.finish();
}

}  // namespace

NetworkModel mobilenet_v3_large(const std::vector<core::FuseMode>& modes) {
  const Activation re = Activation::kRelu;
  const Activation hs = Activation::kHardSwish;
  const std::vector<V3Block> blocks = {
      // k, expand, out, SE,    act, stride
      {3, 16, 16, false, re, 1},   {3, 64, 24, false, re, 2},
      {3, 72, 24, false, re, 1},   {5, 72, 40, true, re, 2},
      {5, 120, 40, true, re, 1},   {5, 120, 40, true, re, 1},
      {3, 240, 80, false, hs, 2},  {3, 200, 80, false, hs, 1},
      {3, 184, 80, false, hs, 1},  {3, 184, 80, false, hs, 1},
      {3, 480, 112, true, hs, 1},  {3, 672, 112, true, hs, 1},
      {5, 672, 160, true, hs, 2},  {5, 960, 160, true, hs, 1},
      {5, 960, 160, true, hs, 1},
  };
  return build_v3("MobileNet-V3-Large", blocks, /*last_conv_c=*/960,
                  /*head_c=*/1280, modes);
}

NetworkModel mobilenet_v3_small(const std::vector<core::FuseMode>& modes) {
  const Activation re = Activation::kRelu;
  const Activation hs = Activation::kHardSwish;
  const std::vector<V3Block> blocks = {
      // k, expand, out, SE,    act, stride
      {3, 16, 16, true, re, 2},    {3, 72, 24, false, re, 2},
      {3, 88, 24, false, re, 1},   {5, 96, 40, true, hs, 2},
      {5, 240, 40, true, hs, 1},   {5, 240, 40, true, hs, 1},
      {5, 120, 48, true, hs, 1},   {5, 144, 48, true, hs, 1},
      {5, 288, 96, true, hs, 2},   {5, 576, 96, true, hs, 1},
      {5, 576, 96, true, hs, 1},
  };
  return build_v3("MobileNet-V3-Small", blocks, /*last_conv_c=*/576,
                  /*head_c=*/1024, modes);
}

}  // namespace fuse::nets
