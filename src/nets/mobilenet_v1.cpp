// MobileNet-V1 (Howard et al. 2017), 224x224 input, optional width
// multiplier alpha (channels scale by alpha, rounded to multiples of 8 per
// the reference implementation).
#include "nets/zoo.hpp"
#include "util/check.hpp"

namespace fuse::nets {

namespace {

std::int64_t scaled(std::int64_t channels, double width_mult) {
  if (width_mult == 1.0) {
    return channels;
  }
  return make_divisible(
      static_cast<std::int64_t>(channels * width_mult + 0.5), 8);
}

}  // namespace

NetworkModel mobilenet_v1(const std::vector<core::FuseMode>& modes,
                          double width_mult, std::int64_t input_size) {
  FUSE_CHECK(width_mult > 0.0 && width_mult <= 2.0)
      << "width multiplier out of range: " << width_mult;
  FUSE_CHECK(input_size >= 32 && input_size % 32 == 0)
      << "input resolution must be a positive multiple of 32, got "
      << input_size;
  NetworkBuilder b("MobileNet-V1", 3, input_size, input_size, modes);
  const Activation act = Activation::kRelu;

  b.conv("stem", scaled(32, width_mult), 3, 2, act);

  // (out_c, stride) for the 13 depthwise separable blocks.
  const struct {
    std::int64_t out_c;
    std::int64_t stride;
  } blocks[] = {
      {64, 1},   {128, 2}, {128, 1}, {256, 2},  {256, 1},
      {512, 2},  {512, 1}, {512, 1}, {512, 1},  {512, 1},
      {512, 1},  {1024, 2}, {1024, 1},
  };
  int index = 0;
  for (const auto& blk : blocks) {
    b.separable_block("block" + std::to_string(index++),
                      scaled(blk.out_c, width_mult), 3, blk.stride, act);
  }

  b.global_pool("pool");
  b.fully_connected("classifier", 1000, Activation::kNone);
  return b.finish();
}

}  // namespace fuse::nets
