// NetworkBuilder: constructs the flat LayerDesc IR for a network while
// tracking the activation shape, and applies the FuSe transform in-line.
//
// Every depthwise layer appended through depthwise() is a numbered "fuse
// slot". The per-slot FuseMode list decides whether the slot stays a KxK
// depthwise convolution or becomes a FuSeConv 1-D stage; because the
// builder tracks channels, a Full replacement (2C output channels)
// automatically widens the following squeeze-excite and pointwise
// projection, exactly as a drop-in nn.Module replacement would in the
// paper's PyTorch setup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/transform.hpp"
#include "nn/layer.hpp"

namespace fuse::nets {

using core::FuseMode;
using nn::Activation;
using nn::LayerDesc;

/// A fully lowered network.
struct NetworkModel {
  std::string name;
  int num_slots = 0;  // replaceable depthwise blocks
  std::vector<LayerDesc> layers;

  std::uint64_t total_macs() const { return nn::total_macs(layers); }
  std::uint64_t total_params() const { return nn::total_params(layers); }
};

/// Rounds `value` up/down to the nearest multiple of `divisor`, never going
/// below 90% of `value` (the MobileNet-V3 make_divisible rule).
std::int64_t make_divisible(std::int64_t value, std::int64_t divisor = 8);

class NetworkBuilder {
 public:
  /// `modes` has one entry per depthwise slot; pass {} for all-baseline.
  NetworkBuilder(std::string name, std::int64_t in_c, std::int64_t in_h,
                 std::int64_t in_w, std::vector<FuseMode> modes);

  // -- primitive appenders (all use 'same'-style padding k/2) --------------

  /// Dense KxK conv + BN + activation.
  void conv(const std::string& name, std::int64_t out_c, std::int64_t kernel,
            std::int64_t stride, Activation act);

  /// KxK depthwise + BN + activation — one fuse slot. Replaced by a FuSe
  /// stage when the slot's mode says so.
  void depthwise(const std::string& name, std::int64_t kernel,
                 std::int64_t stride, Activation act);

  /// 1x1 dense conv + BN + activation.
  void pointwise(const std::string& name, std::int64_t out_c,
                 Activation act);

  /// Squeeze-excite on the current channels: global pool + FC(C -> se_c) +
  /// ReLU + FC(se_c -> C) + hard-sigmoid + channel scale. The two FCs count
  /// toward latency (per §V-A3); the rest are glue ops.
  void squeeze_excite(const std::string& name, std::int64_t se_c);

  /// Global average pool to 1x1.
  void global_pool(const std::string& name);

  /// Max pool.
  void max_pool(const std::string& name, std::int64_t kernel,
                std::int64_t stride);

  /// Fully connected on the flattened current activation.
  void fully_connected(const std::string& name, std::int64_t out_f,
                       Activation act);

  /// Marks a residual add closing a block (zero-MAC glue layer).
  void residual_add(const std::string& name);

  /// Appends a layer that runs on a side branch (e.g. a ResNet projection
  /// shortcut): it contributes MACs/params/latency but does not change the
  /// tracked main-path shape.
  void side_layer(LayerDesc layer);

  // -- composite blocks -----------------------------------------------------

  /// MobileNet-V1 style: depthwise(k, s) + pointwise(out_c), both ReLU-like.
  void separable_block(const std::string& name, std::int64_t out_c,
                       std::int64_t kernel, std::int64_t stride,
                       Activation act);

  /// MobileNet-V2/V3 / MnasNet inverted residual: optional 1x1 expansion to
  /// expand_c, depthwise(k, s), optional SE (reduce channels computed from
  /// the *current* width with make_divisible(c/4)), linear 1x1 projection
  /// to out_c, skip connection when stride 1 and in_c == out_c.
  void inverted_residual(const std::string& name, std::int64_t expand_c,
                         std::int64_t out_c, std::int64_t kernel,
                         std::int64_t stride, bool use_se, Activation act);

  // -- state ----------------------------------------------------------------

  std::int64_t channels() const { return c_; }
  std::int64_t height() const { return h_; }
  std::int64_t width() const { return w_; }

  /// Finalizes; verifies every provided mode was consumed.
  NetworkModel finish();

 private:
  void append(LayerDesc layer);
  FuseMode next_mode();

  std::string net_name_;
  std::int64_t c_, h_, w_;
  std::vector<FuseMode> modes_;
  int slot_ = 0;          // next slot index
  int pending_slot_ = -1; // slot tag to propagate to SE + projection pw
  std::vector<LayerDesc> layers_;
};

}  // namespace fuse::nets
