// Text serialization of lowered network models.
//
// A NetworkModel is fully described by its LayerDesc list, so a simple
// line-oriented text format round-trips exactly. This lets users export a
// lowered (possibly FuSe-transformed) network, inspect or version it, and
// feed it back to the scheduler without rebuilding from the zoo.
//
// Format (one token stream per line; see docs/model_format.md):
//   fusenet v1 name <name> slots <n> layers <m>
//   layer <name> kind <kind> in <c> <h> <w> out <c> <h> <w>
//     k <kh> <kw> s <sh> <sw> p <ph> <pw> g <groups> bias <0|1> bn <0|1>
//     act <act> se <0|1> slot <i>        (all on one physical line)
// Layer names must not contain whitespace (builder names never do).
#pragma once

#include <string>

#include "nets/builder.hpp"

namespace fuse::nets {

/// Serializes the model to the text format above.
std::string to_text(const NetworkModel& model);

/// Parses a model back; throws fuse::util::Error on malformed input.
NetworkModel from_text(const std::string& text);

/// File convenience wrappers.
void save_network(const NetworkModel& model, const std::string& path);
NetworkModel load_network(const std::string& path);

}  // namespace fuse::nets
