#include "nets/zoo.hpp"

#include "util/check.hpp"

namespace fuse::nets {

using core::NetworkVariant;

std::string network_name(NetworkId id) {
  switch (id) {
    case NetworkId::kMobileNetV1:
      return "MobileNet-V1";
    case NetworkId::kMobileNetV2:
      return "MobileNet-V2";
    case NetworkId::kMobileNetV3Small:
      return "MobileNet-V3-Small";
    case NetworkId::kMobileNetV3Large:
      return "MobileNet-V3-Large";
    case NetworkId::kMnasNetB1:
      return "MnasNet-B1";
    case NetworkId::kResNet50:
      return "ResNet-50";
  }
  return "?";
}

const std::vector<NetworkId>& paper_networks() {
  static const std::vector<NetworkId> kNetworks = {
      NetworkId::kMobileNetV1,      NetworkId::kMobileNetV2,
      NetworkId::kMnasNetB1,        NetworkId::kMobileNetV3Small,
      NetworkId::kMobileNetV3Large,
  };
  return kNetworks;
}

NetworkId parse_network_flag(const std::string& name) {
  if (name == "v1" || name == "mobilenet_v1") {
    return NetworkId::kMobileNetV1;
  }
  if (name == "v2" || name == "mobilenet_v2") {
    return NetworkId::kMobileNetV2;
  }
  if (name == "v3s" || name == "mobilenet_v3_small") {
    return NetworkId::kMobileNetV3Small;
  }
  if (name == "v3l" || name == "mobilenet_v3_large") {
    return NetworkId::kMobileNetV3Large;
  }
  if (name == "mnas" || name == "mnasnet" || name == "mnasnet_b1") {
    return NetworkId::kMnasNetB1;
  }
  if (name == "resnet50") {
    return NetworkId::kResNet50;
  }
  FUSE_CHECK(false) << "unknown --net '" << name
                    << "' (v1|v2|v3s|v3l|mnas|resnet50)";
  return NetworkId::kMobileNetV2;
}

NetworkModel build_network(NetworkId id,
                           const std::vector<core::FuseMode>& modes) {
  switch (id) {
    case NetworkId::kMobileNetV1:
      return mobilenet_v1(modes);
    case NetworkId::kMobileNetV2:
      return mobilenet_v2(modes);
    case NetworkId::kMobileNetV3Small:
      return mobilenet_v3_small(modes);
    case NetworkId::kMobileNetV3Large:
      return mobilenet_v3_large(modes);
    case NetworkId::kMnasNetB1:
      return mnasnet_b1(modes);
    case NetworkId::kResNet50:
      FUSE_CHECK(modes.empty())
          << "ResNet-50 has no depthwise layers to fuse";
      return resnet50();
  }
  FUSE_CHECK(false) << "unknown network id";
  return {};
}

int num_fuse_slots(NetworkId id) {
  return build_network(id).num_slots;
}

std::vector<PaperTable1Row> paper_table1(NetworkId id) {
  // Transcribed from Table I of the paper: ImageNet top-1 accuracy (%),
  // MACs (millions), params (millions), speedup on a 64x64 array.
  switch (id) {
    case NetworkId::kMobileNetV1:
      return {
          {NetworkVariant::kBaseline, 70.60, 589, 4.23, 1.0},
          {NetworkVariant::kFuseFull, 72.86, 1122, 7.36, 4.1},
          {NetworkVariant::kFuseHalf, 72.00, 573, 4.20, 6.76},
          {NetworkVariant::kFuseFull50, 72.42, 764, 4.35, 2.2},
          {NetworkVariant::kFuseHalf50, 71.77, 578, 4.22, 2.36},
      };
    case NetworkId::kMobileNetV2:
      return {
          {NetworkVariant::kBaseline, 72.00, 315, 3.50, 1.0},
          {NetworkVariant::kFuseFull, 72.49, 430, 4.46, 5.1},
          {NetworkVariant::kFuseHalf, 70.80, 300, 3.46, 7.23},
          {NetworkVariant::kFuseFull50, 72.11, 361, 3.61, 2.0},
          {NetworkVariant::kFuseHalf50, 71.98, 305, 3.49, 2.1},
      };
    case NetworkId::kMnasNetB1:
      return {
          {NetworkVariant::kBaseline, 73.50, 325, 4.38, 1.0},
          {NetworkVariant::kFuseFull, 73.16, 440, 5.66, 5.06},
          {NetworkVariant::kFuseHalf, 71.48, 305, 4.25, 7.15},
          {NetworkVariant::kFuseFull50, 73.52, 361, 4.47, 1.88},
          {NetworkVariant::kFuseHalf50, 72.61, 312, 4.35, 1.97},
      };
    case NetworkId::kMobileNetV3Small:
      return {
          {NetworkVariant::kBaseline, 67.40, 66, 2.93, 1.0},
          {NetworkVariant::kFuseFull, 67.17, 84, 4.44, 3.02},
          {NetworkVariant::kFuseHalf, 64.55, 61, 2.89, 4.16},
          {NetworkVariant::kFuseFull50, 67.91, 73, 3.18, 1.6},
          {NetworkVariant::kFuseHalf50, 66.90, 63, 2.92, 1.68},
      };
    case NetworkId::kMobileNetV3Large:
      return {
          {NetworkVariant::kBaseline, 75.20, 238, 5.47, 1.0},
          {NetworkVariant::kFuseFull, 74.40, 322, 10.57, 3.61},
          {NetworkVariant::kFuseHalf, 73.02, 225, 5.40, 5.45},
          {NetworkVariant::kFuseFull50, 74.50, 264, 5.57, 1.76},
          {NetworkVariant::kFuseHalf50, 73.80, 230, 5.46, 1.83},
      };
    case NetworkId::kResNet50:
      return {};
  }
  FUSE_CHECK(false) << "unknown network id";
  return {};
}

}  // namespace fuse::nets
