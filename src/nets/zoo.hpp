// The network zoo: the five networks of the paper's evaluation (§V-A1)
// plus ResNet-50 for the introduction's motivating comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/transform.hpp"
#include "nets/builder.hpp"

namespace fuse::nets {

enum class NetworkId {
  kMobileNetV1,
  kMobileNetV2,
  kMobileNetV3Small,
  kMobileNetV3Large,
  kMnasNetB1,
  kResNet50,
};

/// "MobileNet-V1", ... matching Table I labels.
std::string network_name(NetworkId id);

/// The five networks evaluated in Table I, in the paper's order.
const std::vector<NetworkId>& paper_networks();

/// Parses a --net flag value. Accepts the short forms every driver uses
/// (v1|v2|v3s|v3l|mnas|resnet50) plus the long builder names
/// (mobilenet_v1, ..., mnasnet, mnasnet_b1); FUSE_CHECK-fails on unknown
/// names. The single home of this mapping — drivers must not re-implement
/// it.
NetworkId parse_network_flag(const std::string& name);

/// Builds a network with per-slot FuSe modes ({} = all baseline).
/// Input is the ImageNet geometry 3x224x224.
NetworkModel build_network(NetworkId id,
                           const std::vector<core::FuseMode>& modes = {});

/// Number of replaceable depthwise slots.
int num_fuse_slots(NetworkId id);

/// Builds a width- and resolution-scaled MobileNet (V1 or V2 only — the
/// networks the original papers define these multipliers for). Channel
/// counts scale by `width_mult` rounded with make_divisible; `input_size`
/// is the square input resolution (the papers use 128..224). The
/// fuse-slot count is unchanged, so the same `modes` vectors apply.
NetworkModel build_network_scaled(NetworkId id, double width_mult,
                                  const std::vector<core::FuseMode>& modes =
                                      {},
                                  std::int64_t input_size = 224);

// Individual builders (exposed for tests).
NetworkModel mobilenet_v1(const std::vector<core::FuseMode>& modes,
                          double width_mult = 1.0,
                          std::int64_t input_size = 224);
NetworkModel mobilenet_v2(const std::vector<core::FuseMode>& modes,
                          double width_mult = 1.0,
                          std::int64_t input_size = 224);
NetworkModel mobilenet_v3_small(const std::vector<core::FuseMode>& modes);
NetworkModel mobilenet_v3_large(const std::vector<core::FuseMode>& modes);
NetworkModel mnasnet_b1(const std::vector<core::FuseMode>& modes);
NetworkModel resnet50();

/// Paper-reported reference row of Table I (accuracy was measured on
/// ImageNet by the authors; carried here as reference data because this
/// repo substitutes a synthetic-dataset study for ImageNet training — see
/// DESIGN.md).
struct PaperTable1Row {
  core::NetworkVariant variant;
  double imagenet_accuracy = 0.0;  // %
  double macs_millions = 0.0;
  double params_millions = 0.0;
  double speedup = 0.0;  // on a 64x64 array vs the network's baseline
};

/// Table I rows for one network (5 rows, Table-I order). Empty for
/// kResNet50 (not part of Table I).
std::vector<PaperTable1Row> paper_table1(NetworkId id);

}  // namespace fuse::nets
