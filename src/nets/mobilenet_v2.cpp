// MobileNet-V2 (Sandler et al. 2018), 224x224 input, optional width
// multiplier. Per the reference implementation the head conv does not
// shrink below 1280 for multipliers <= 1.
#include "nets/zoo.hpp"
#include "util/check.hpp"

namespace fuse::nets {

namespace {

std::int64_t scaled(std::int64_t channels, double width_mult) {
  if (width_mult == 1.0) {
    return channels;
  }
  return make_divisible(
      static_cast<std::int64_t>(channels * width_mult + 0.5), 8);
}

}  // namespace

NetworkModel mobilenet_v2(const std::vector<core::FuseMode>& modes,
                          double width_mult, std::int64_t input_size) {
  FUSE_CHECK(width_mult > 0.0 && width_mult <= 2.0)
      << "width multiplier out of range: " << width_mult;
  FUSE_CHECK(input_size >= 32 && input_size % 32 == 0)
      << "input resolution must be a positive multiple of 32, got "
      << input_size;
  NetworkBuilder b("MobileNet-V2", 3, input_size, input_size, modes);
  const Activation act = Activation::kRelu6;

  b.conv("stem", scaled(32, width_mult), 3, 2, act);

  // Inverted residual settings: expansion t, output channels c, repeats n,
  // first-block stride s (Table 2 of the MobileNet-V2 paper).
  const struct {
    std::int64_t t, c, n, s;
  } settings[] = {
      {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},  {6, 64, 4, 2},
      {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  int index = 0;
  for (const auto& cfg : settings) {
    const std::int64_t out_c = scaled(cfg.c, width_mult);
    for (std::int64_t i = 0; i < cfg.n; ++i) {
      const std::int64_t stride = (i == 0) ? cfg.s : 1;
      const std::int64_t expand_c = b.channels() * cfg.t;
      b.inverted_residual("block" + std::to_string(index++), expand_c,
                          out_c, /*kernel=*/3, stride, /*use_se=*/false,
                          act);
    }
  }

  const std::int64_t head_c =
      width_mult > 1.0 ? scaled(1280, width_mult) : 1280;
  b.pointwise("head", head_c, act);
  b.global_pool("pool");
  b.fully_connected("classifier", 1000, Activation::kNone);
  return b.finish();
}

NetworkModel build_network_scaled(NetworkId id, double width_mult,
                                  const std::vector<core::FuseMode>& modes,
                                  std::int64_t input_size) {
  switch (id) {
    case NetworkId::kMobileNetV1:
      return mobilenet_v1(modes, width_mult, input_size);
    case NetworkId::kMobileNetV2:
      return mobilenet_v2(modes, width_mult, input_size);
    default:
      FUSE_CHECK(width_mult == 1.0 && input_size == 224)
          << "width/resolution multipliers are defined for "
             "MobileNet-V1/V2 only";
      return build_network(id, modes);
  }
}

}  // namespace fuse::nets
