#include "nets/builder.hpp"

#include "core/fuseconv.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace fuse::nets {

using core::FuseConvSpec;
using core::FuseVariant;
using nn::OpKind;

std::int64_t make_divisible(std::int64_t value, std::int64_t divisor) {
  FUSE_CHECK(value > 0 && divisor > 0) << "make_divisible(" << value << ", "
                                       << divisor << ")";
  std::int64_t rounded = (value + divisor / 2) / divisor * divisor;
  if (rounded < divisor) {
    rounded = divisor;
  }
  if (rounded * 10 < value * 9) {  // never drop below 90%
    rounded += divisor;
  }
  return rounded;
}

NetworkBuilder::NetworkBuilder(std::string name, std::int64_t in_c,
                               std::int64_t in_h, std::int64_t in_w,
                               std::vector<FuseMode> modes)
    : net_name_(std::move(name)),
      c_(in_c),
      h_(in_h),
      w_(in_w),
      modes_(std::move(modes)) {
  FUSE_CHECK(in_c > 0 && in_h > 0 && in_w > 0)
      << "bad input geometry for network " << net_name_;
}

void NetworkBuilder::append(LayerDesc layer) {
  c_ = layer.out_c;
  h_ = layer.out_h;
  w_ = layer.out_w;
  layers_.push_back(std::move(layer));
}

FuseMode NetworkBuilder::next_mode() {
  const int index = slot_++;
  if (modes_.empty()) {
    return FuseMode::kBaseline;
  }
  FUSE_CHECK(index < static_cast<int>(modes_.size()))
      << net_name_ << " has more depthwise slots than modes provided ("
      << modes_.size() << ")";
  return modes_[static_cast<std::size_t>(index)];
}

void NetworkBuilder::conv(const std::string& name, std::int64_t out_c,
                          std::int64_t kernel, std::int64_t stride,
                          Activation act) {
  append(nn::make_conv(net_name_ + "/" + name, c_, h_, w_, out_c, kernel,
                       stride, kernel / 2, act));
}

void NetworkBuilder::depthwise(const std::string& name, std::int64_t kernel,
                               std::int64_t stride, Activation act) {
  const int slot = slot_;  // next_mode() advances it
  const FuseMode mode = next_mode();
  pending_slot_ = slot;
  if (mode == FuseMode::kBaseline) {
    LayerDesc layer = nn::make_depthwise(net_name_ + "/" + name, c_, h_, w_,
                                         kernel, stride, kernel / 2, act);
    layer.fuse_slot = slot;
    append(layer);
    return;
  }
  FuseConvSpec spec;
  spec.channels = c_;
  spec.in_h = h_;
  spec.in_w = w_;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.pad = kernel / 2;
  spec.variant = core::fuse_mode_variant(mode);
  const std::vector<LayerDesc> stage = core::lower_fuse_stage(
      net_name_ + "/" + name + "/fuse", spec, act, slot);
  // Both branches run on the array; the concatenated output is what the
  // rest of the network sees.
  for (const LayerDesc& layer : stage) {
    layers_.push_back(layer);
  }
  c_ = spec.out_channels();
  h_ = spec.out_h();
  w_ = spec.out_w();
}

void NetworkBuilder::pointwise(const std::string& name, std::int64_t out_c,
                               Activation act) {
  LayerDesc layer =
      nn::make_pointwise(net_name_ + "/" + name, c_, h_, w_, out_c, act);
  layer.fuse_slot = pending_slot_;
  pending_slot_ = -1;
  append(layer);
}

void NetworkBuilder::squeeze_excite(const std::string& name,
                                    std::int64_t se_c) {
  FUSE_CHECK(se_c > 0) << "squeeze-excite reduce channels must be positive";
  const std::int64_t full_c = c_;
  const std::int64_t keep_h = h_;
  const std::int64_t keep_w = w_;

  LayerDesc pool;
  pool.name = net_name_ + "/" + name + "/pool";
  pool.kind = OpKind::kGlobalAvgPool;
  pool.in_c = full_c;
  pool.in_h = keep_h;
  pool.in_w = keep_w;
  pool.out_c = full_c;
  pool.out_h = 1;
  pool.out_w = 1;
  pool.in_squeeze_excite = true;
  pool.fuse_slot = pending_slot_;
  layers_.push_back(pool);

  LayerDesc reduce = nn::make_fully_connected(
      net_name_ + "/" + name + "/reduce", full_c, se_c, /*bias=*/true,
      Activation::kRelu);
  reduce.in_squeeze_excite = true;
  reduce.fuse_slot = pending_slot_;
  layers_.push_back(reduce);

  LayerDesc expand = nn::make_fully_connected(
      net_name_ + "/" + name + "/expand", se_c, full_c, /*bias=*/true,
      Activation::kHardSigmoid);
  expand.in_squeeze_excite = true;
  expand.fuse_slot = pending_slot_;
  layers_.push_back(expand);

  LayerDesc scale;
  scale.name = net_name_ + "/" + name + "/scale";
  scale.kind = OpKind::kActivation;  // channel recalibration, zero MACs
  scale.in_c = full_c;
  scale.in_h = keep_h;
  scale.in_w = keep_w;
  scale.out_c = full_c;
  scale.out_h = keep_h;
  scale.out_w = keep_w;
  scale.in_squeeze_excite = true;
  scale.fuse_slot = pending_slot_;
  layers_.push_back(scale);
  // Shape is unchanged by SE; c_/h_/w_ stay as they were.
}

void NetworkBuilder::global_pool(const std::string& name) {
  LayerDesc pool;
  pool.name = net_name_ + "/" + name;
  pool.kind = OpKind::kGlobalAvgPool;
  pool.in_c = c_;
  pool.in_h = h_;
  pool.in_w = w_;
  pool.out_c = c_;
  pool.out_h = 1;
  pool.out_w = 1;
  append(pool);
}

void NetworkBuilder::max_pool(const std::string& name, std::int64_t kernel,
                              std::int64_t stride) {
  LayerDesc pool;
  pool.name = net_name_ + "/" + name;
  pool.kind = OpKind::kMaxPool;
  pool.in_c = c_;
  pool.in_h = h_;
  pool.in_w = w_;
  pool.out_c = c_;
  pool.out_h = tensor::conv_out_dim(h_, kernel, stride, kernel / 2);
  pool.out_w = tensor::conv_out_dim(w_, kernel, stride, kernel / 2);
  pool.kernel_h = kernel;
  pool.kernel_w = kernel;
  pool.stride_h = stride;
  pool.stride_w = stride;
  append(pool);
}

void NetworkBuilder::fully_connected(const std::string& name,
                                     std::int64_t out_f, Activation act) {
  FUSE_CHECK(h_ == 1 && w_ == 1)
      << "fully_connected expects a pooled 1x1 activation, have " << h_ << "x"
      << w_;
  append(nn::make_fully_connected(net_name_ + "/" + name, c_, out_f,
                                  /*bias=*/true, act));
}

void NetworkBuilder::residual_add(const std::string& name) {
  LayerDesc add;
  add.name = net_name_ + "/" + name;
  add.kind = OpKind::kElementwiseAdd;
  add.in_c = c_;
  add.in_h = h_;
  add.in_w = w_;
  add.out_c = c_;
  add.out_h = h_;
  add.out_w = w_;
  layers_.push_back(add);
}

void NetworkBuilder::side_layer(LayerDesc layer) {
  layers_.push_back(std::move(layer));
}

void NetworkBuilder::separable_block(const std::string& name,
                                     std::int64_t out_c, std::int64_t kernel,
                                     std::int64_t stride, Activation act) {
  depthwise(name + "/dw", kernel, stride, act);
  pointwise(name + "/pw", out_c, act);
}

void NetworkBuilder::inverted_residual(const std::string& name,
                                       std::int64_t expand_c,
                                       std::int64_t out_c,
                                       std::int64_t kernel,
                                       std::int64_t stride, bool use_se,
                                       Activation act) {
  const std::int64_t in_c = c_;
  const bool has_skip = (stride == 1 && in_c == out_c);
  if (expand_c != in_c) {
    pointwise(name + "/expand", expand_c, act);
  }
  depthwise(name + "/dw", kernel, stride, act);
  if (use_se) {
    // Reduce channels derive from the current (possibly FuSe-widened)
    // width, mirroring a drop-in module replacement.
    squeeze_excite(name + "/se", make_divisible(c_ / 4));
  }
  pointwise(name + "/project", out_c, Activation::kNone);
  if (has_skip) {
    residual_add(name + "/add");
  }
}

NetworkModel NetworkBuilder::finish() {
  FUSE_CHECK(modes_.empty() || static_cast<int>(modes_.size()) == slot_)
      << net_name_ << ": " << modes_.size() << " modes provided but "
      << slot_ << " depthwise slots exist";
  NetworkModel model;
  model.name = net_name_;
  model.num_slots = slot_;
  model.layers = std::move(layers_);
  return model;
}

}  // namespace fuse::nets
