// ResNet-50 (He et al. 2016), 224x224 input. Used only for the paper's
// introduction claim: MobileNet-V2 has ~12x fewer MACs than ResNet-50 yet
// runs only ~1.3x faster on a 32x32 systolic array.
#include "nets/zoo.hpp"

namespace fuse::nets {

NetworkModel resnet50() {
  NetworkBuilder b("ResNet-50", 3, 224, 224, /*modes=*/{});
  const Activation act = Activation::kRelu;

  b.conv("stem", 64, 7, 2, act);
  b.max_pool("maxpool", 3, 2);

  // Bottleneck stages: base (squeezed) width, block count, first stride.
  const struct {
    std::int64_t base_c;
    std::int64_t blocks;
    std::int64_t stride;
  } stages[] = {
      {64, 3, 1},
      {128, 4, 2},
      {256, 6, 2},
      {512, 3, 2},
  };
  int stage_index = 0;
  for (const auto& stage : stages) {
    for (std::int64_t i = 0; i < stage.blocks; ++i) {
      const std::string name = "stage" + std::to_string(stage_index) +
                               "/block" + std::to_string(i);
      const std::int64_t stride = (i == 0) ? stage.stride : 1;
      const std::int64_t out_c = stage.base_c * 4;
      const std::int64_t in_c = b.channels();
      const std::int64_t in_h = b.height();
      const std::int64_t in_w = b.width();

      b.pointwise(name + "/reduce", stage.base_c, act);
      b.conv(name + "/conv3x3", stage.base_c, 3, stride, act);
      b.pointwise(name + "/expand", out_c, Activation::kNone);

      // Projection shortcut (1x1, stride s) whenever the shape changes; it
      // runs on the skip path, so it adds compute without altering the main
      // path's tracked shape.
      if (stride != 1 || in_c != out_c) {
        b.side_layer(nn::make_conv("ResNet-50/" + name + "/proj", in_c,
                                   in_h, in_w, out_c, /*kernel=*/1, stride,
                                   /*pad=*/0, Activation::kNone));
      }
      b.residual_add(name + "/add");
    }
    ++stage_index;
  }

  b.global_pool("pool");
  b.fully_connected("classifier", 1000, Activation::kNone);
  return b.finish();
}

}  // namespace fuse::nets
