#include "nets/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace fuse::nets {

using nn::LayerDesc;

std::string to_text(const NetworkModel& model) {
  std::ostringstream out;
  FUSE_CHECK(model.name.find_first_of(" \t\n") == std::string::npos)
      << "network name must not contain whitespace: '" << model.name << "'";
  out << "fusenet v1 name " << model.name << " slots " << model.num_slots
      << " layers " << model.layers.size() << "\n";
  for (const LayerDesc& layer : model.layers) {
    FUSE_CHECK(layer.name.find_first_of(" \t\n") == std::string::npos)
        << "layer name must not contain whitespace: '" << layer.name << "'";
    out << "layer " << layer.name << " kind " << nn::op_kind_name(layer.kind)
        << " in " << layer.in_c << ' ' << layer.in_h << ' ' << layer.in_w
        << " out " << layer.out_c << ' ' << layer.out_h << ' '
        << layer.out_w << " k " << layer.kernel_h << ' ' << layer.kernel_w
        << " s " << layer.stride_h << ' ' << layer.stride_w << " p "
        << layer.pad_h << ' ' << layer.pad_w << " g " << layer.groups
        << " bias " << (layer.has_bias ? 1 : 0) << " bn "
        << (layer.has_batchnorm ? 1 : 0) << " act "
        << nn::activation_name(layer.activation) << " se "
        << (layer.in_squeeze_excite ? 1 : 0) << " slot " << layer.fuse_slot
        << "\n";
  }
  return out.str();
}

namespace {

/// Reads a fixed keyword token and throws with context when it mismatches.
void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  FUSE_CHECK(token == expected)
      << "malformed network text: expected '" << expected << "', got '"
      << token << "'";
}

}  // namespace

NetworkModel from_text(const std::string& text) {
  std::istringstream in(text);
  expect_token(in, "fusenet");
  expect_token(in, "v1");
  expect_token(in, "name");
  NetworkModel model;
  in >> model.name;
  expect_token(in, "slots");
  in >> model.num_slots;
  expect_token(in, "layers");
  std::size_t layer_count = 0;
  in >> layer_count;
  FUSE_CHECK(in.good()) << "malformed network header";

  model.layers.reserve(layer_count);
  for (std::size_t i = 0; i < layer_count; ++i) {
    LayerDesc layer;
    std::string kind_name;
    std::string act_name;
    int bias = 0, bn = 0, se = 0;
    expect_token(in, "layer");
    in >> layer.name;
    expect_token(in, "kind");
    in >> kind_name;
    expect_token(in, "in");
    in >> layer.in_c >> layer.in_h >> layer.in_w;
    expect_token(in, "out");
    in >> layer.out_c >> layer.out_h >> layer.out_w;
    expect_token(in, "k");
    in >> layer.kernel_h >> layer.kernel_w;
    expect_token(in, "s");
    in >> layer.stride_h >> layer.stride_w;
    expect_token(in, "p");
    in >> layer.pad_h >> layer.pad_w;
    expect_token(in, "g");
    in >> layer.groups;
    expect_token(in, "bias");
    in >> bias;
    expect_token(in, "bn");
    in >> bn;
    expect_token(in, "act");
    in >> act_name;
    expect_token(in, "se");
    in >> se;
    expect_token(in, "slot");
    in >> layer.fuse_slot;
    FUSE_CHECK(!in.fail()) << "malformed layer record " << i;
    layer.kind = nn::op_kind_from_name(kind_name);
    layer.activation = nn::activation_from_name(act_name);
    layer.has_bias = bias != 0;
    layer.has_batchnorm = bn != 0;
    layer.in_squeeze_excite = se != 0;
    model.layers.push_back(std::move(layer));
  }
  return model;
}

void save_network(const NetworkModel& model, const std::string& path) {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  out << to_text(model);
  FUSE_CHECK(out.good()) << "write to '" << path << "' failed";
}

NetworkModel load_network(const std::string& path) {
  std::ifstream in(path);
  FUSE_CHECK(in.good()) << "cannot open '" << path << "' for reading";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

}  // namespace fuse::nets
