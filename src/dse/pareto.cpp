#include "dse/pareto.hpp"

namespace fuse::dse {

bool dominates(const Objectives& a, const Objectives& b) {
  const std::array<double, 3> av = a.axes();
  const std::array<double, 3> bv = b.axes();
  bool strictly_better = false;
  for (std::size_t i = 0; i < av.size(); ++i) {
    if (av[i] > bv[i]) {
      return false;
    }
    if (av[i] < bv[i]) {
      strictly_better = true;
    }
  }
  return strictly_better;
}

bool ParetoFront::offer(std::size_t id, const Objectives& obj) {
  for (const ParetoEntry& entry : entries_) {
    if (dominates(entry.obj, obj)) {
      ++pruned_;
      return false;
    }
  }
  // Evict in place, preserving the offer order of survivors.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (dominates(obj, entries_[i].obj)) {
      ++pruned_;
    } else {
      entries_[kept++] = entries_[i];
    }
  }
  entries_.resize(kept);
  entries_.push_back(ParetoEntry{id, obj});
  return true;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<Objectives>& objectives) {
  ParetoFront front;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    front.offer(i, objectives[i]);
  }
  std::vector<std::size_t> ids;
  ids.reserve(front.entries().size());
  for (const ParetoEntry& entry : front.entries()) {
    ids.push_back(entry.id);
  }
  // Offer order == index order here, so this is already ascending; keep
  // the contract explicit anyway.
  return ids;
}

}  // namespace fuse::dse
