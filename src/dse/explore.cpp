#include "dse/explore.hpp"

#include <cstdio>

#include "core/transform.hpp"
#include "hw/area_power.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace fuse::dse {

std::string DesignPoint::label() const {
  std::string s = std::to_string(cfg.rows) + "x" + std::to_string(cfg.cols);
  s += cfg.broadcast_links ? " bcast" : " plain";
  s += " " + systolic::datapath_name(cfg.datapath);
  s += " " + systolic::pipelining_name(cfg.pipelining);
  s += " sram" + std::to_string(mem.sram_bytes / (1024 * 1024)) + "MiB";
  return s;
}

std::vector<DesignPoint> enumerate_design_points(const DseAxes& axes) {
  std::vector<DesignPoint> points;
  for (const auto& [rows, cols] : axes.shapes) {
    for (bool bcast : axes.broadcast) {
      for (systolic::Pipelining pipe : axes.pipelinings) {
        for (systolic::Datapath dp : axes.datapaths) {
          for (std::int64_t sram : axes.sram_bytes) {
            DesignPoint point;
            point.cfg.rows = rows;
            point.cfg.cols = cols;
            point.cfg.broadcast_links = bcast;
            point.cfg.pipelining = pipe;
            point.cfg.datapath = dp;
            point.mem.dtype_bytes = point.cfg.datapath_bytes();
            point.mem.sram_bytes = sram;
            point.mem.dram_bytes_per_cycle = axes.dram_bytes_per_cycle;
            point.cfg.validate();
            point.mem.validate();
            points.push_back(point);
          }
        }
      }
    }
  }
  return points;
}

std::vector<nets::NetworkModel> default_dse_workload() {
  std::vector<nets::NetworkModel> models;
  for (nets::NetworkId id : nets::paper_networks()) {
    const int slots = nets::num_fuse_slots(id);
    models.push_back(nets::build_network(id));
    models.push_back(nets::build_network(
        id, core::uniform_modes(slots, core::FuseMode::kFull)));
    models.push_back(nets::build_network(
        id, core::uniform_modes(slots, core::FuseMode::kHalf)));
  }
  return models;
}

Objectives evaluate_design_point(
    const DesignPoint& point, const std::vector<nets::NetworkModel>& workload,
    sched::SchedMode mode, sched::EvalCache* cache,
    std::uint64_t* bound_cycles_out) {
  std::uint64_t bound_cycles = 0;
  for (const nets::NetworkModel& model : workload) {
    const sched::NetworkEval ev =
        sched::eval_network_fast(model, point.cfg, point.mem, mode, cache);
    bound_cycles += ev.roofline.bound_cycles;
  }
  if (bound_cycles_out != nullptr) {
    *bound_cycles_out = bound_cycles;
  }
  const hw::ArrayHwReport hw_report =
      hw::array_hw(point.cfg, hw::nangate45_model());
  Objectives obj;
  obj.latency_ms = static_cast<double>(bound_cycles) /
                   (point.cfg.effective_freq_mhz() * 1e3);
  obj.area_mm2 = hw_report.area_mm2;
  obj.power_w = hw_report.power_mw * 1e-3;
  return obj;
}

ExploreResult explore(const DseAxes& axes,
                      const std::vector<nets::NetworkModel>& workload,
                      const ExploreOptions& options) {
  static util::Counter& evaluated =
      util::metrics().counter("dse.configs_evaluated");
  static util::Counter& pruned = util::metrics().counter("dse.points_pruned");

  ExploreResult result;
  result.points = enumerate_design_points(axes);
  const std::int64_t n = static_cast<std::int64_t>(result.points.size());
  result.objectives.resize(result.points.size());
  result.bound_cycles.resize(result.points.size());

  sched::EvalCache cache;
  sched::EvalCache* cache_ptr = options.use_cache ? &cache : nullptr;
  const int threads = options.threads < 0
                          ? util::ThreadPool::hardware_threads()
                          : options.threads;
  // N total threads = N - 1 workers + the caller inside parallel_for.
  util::ThreadPool pool(threads > 0 ? threads - 1 : 0);
  pool.parallel_for(n, [&](std::int64_t i) {
    // Index-slot write: determinism does not depend on scheduling.
    result.objectives[i] =
        evaluate_design_point(result.points[i], workload, options.mode,
                              cache_ptr, &result.bound_cycles[i]);
  });

  // Serial index-order pruning — the frontier (and its entry order) is a
  // pure function of the objective vectors.
  for (std::size_t i = 0; i < result.objectives.size(); ++i) {
    result.front.offer(i, result.objectives[i]);
  }

  evaluated.add(result.points.size());
  pruned.add(result.front.pruned());
  result.memo_hit_pct = cache.hit_rate_pct();
  cache.publish_hit_rate();
  return result;
}

void write_explore_csv(const ExploreResult& result, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FUSE_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f,
               "index,rows,cols,broadcast,pipelining,datapath,sram_mib,"
               "bound_cycles,latency_ms,area_mm2,power_w,frontier\n");
  std::vector<bool> on_front(result.points.size(), false);
  for (const ParetoEntry& entry : result.front.entries()) {
    on_front[entry.id] = true;
  }
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const DesignPoint& p = result.points[i];
    const Objectives& o = result.objectives[i];
    std::fprintf(
        f, "%zu,%lld,%lld,%d,%s,%s,%lld,%llu,%.6f,%.6f,%.6f,%d\n", i,
        static_cast<long long>(p.cfg.rows),
        static_cast<long long>(p.cfg.cols), p.cfg.broadcast_links ? 1 : 0,
        systolic::pipelining_name(p.cfg.pipelining).c_str(),
        systolic::datapath_name(p.cfg.datapath).c_str(),
        static_cast<long long>(p.mem.sram_bytes / (1024 * 1024)),
        static_cast<unsigned long long>(result.bound_cycles[i]),
        o.latency_ms, o.area_mm2, o.power_w, on_front[i] ? 1 : 0);
  }
  std::fclose(f);
}

}  // namespace fuse::dse
