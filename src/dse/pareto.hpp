// Pareto dominance over accelerator design points.
//
// The frontier logic used to live twice — examples/operator_search kept a
// per-operator argmin table and bench/bench_pareto picked per-column
// winners — and neither actually computed a dominance frontier. This
// module is now the single home: dominates() defines the partial order,
// ParetoFront maintains a frontier incrementally (the explorer offers
// every evaluated point and dominated ones are pruned as they arrive),
// and pareto_frontier() is the batch form for callers that already hold
// every objective vector.
//
// Determinism: ParetoFront keeps survivors in offer order and prunes by
// scanning existing entries in order, so offering points in index order
// yields a byte-identical frontier regardless of how the evaluations that
// produced the objectives were scheduled. The explorer relies on this:
// evaluation is parallel (index-slot writes), offering is serial.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fuse::dse {

/// One candidate's objective vector. Every axis is minimized.
struct Objectives {
  double latency_ms = 0.0;
  double area_mm2 = 0.0;
  double power_w = 0.0;

  std::array<double, 3> axes() const {
    return {latency_ms, area_mm2, power_w};
  }
};

/// Strict Pareto dominance: a is no worse on every axis AND strictly
/// better on at least one. Exactly-equal points do NOT dominate each
/// other (both survive — they are distinct designs with identical cost).
bool dominates(const Objectives& a, const Objectives& b);

/// A frontier member: `id` is the caller's index for the point (the
/// explorer uses the design-point index), kept so the frontier can be
/// traced back to configurations.
struct ParetoEntry {
  std::size_t id = 0;
  Objectives obj;
};

/// Incremental Pareto frontier. offer() either rejects a dominated
/// candidate or admits it and evicts the members it dominates; pruned()
/// counts both kinds of casualties.
class ParetoFront {
 public:
  /// Returns true when the point joined the frontier.
  bool offer(std::size_t id, const Objectives& obj);

  const std::vector<ParetoEntry>& entries() const { return entries_; }
  std::uint64_t pruned() const { return pruned_; }

 private:
  std::vector<ParetoEntry> entries_;
  std::uint64_t pruned_ = 0;
};

/// Batch form: indices (ascending) of the non-dominated points.
std::vector<std::size_t> pareto_frontier(
    const std::vector<Objectives>& objectives);

}  // namespace fuse::dse
