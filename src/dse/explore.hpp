// Configurable-array design-space explorer.
//
// Sweeps the full ArrayConfig axis set — array shape at a fixed PE
// budget, weight-broadcast links, inter-PE pipelining (transparency),
// datapath width, SRAM capacity — over a fixed network workload, scoring
// each candidate with the plan-free closed-form evaluator
// (sched/eval_fast.hpp) and pruning dominated points incrementally into a
// Pareto frontier over {latency, area, power}.
//
// The evaluator is what makes the sweep cheap: hundreds of configurations
// x a 15-model workload never materialize a MappingPlan (bench_dse gates
// the >= 10x configs-per-second win over the plan-folded path). Area and
// power come from hw/area_power.cpp; latency converts roofline bound
// cycles at the configuration's post-derate clock
// (ArrayConfig::effective_freq_mhz).
//
// Determinism: evaluation is parallel with index-slot writes; frontier
// offers happen serially in index order afterwards (the SweepEngine
// discipline), so the frontier — and the CSV the driver writes — is
// byte-identical at any thread count. tests/test_dse.cpp pins this.
//
// docs/design_space.md documents the axes and the output formats.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dse/pareto.hpp"
#include "nets/zoo.hpp"
#include "sched/eval_fast.hpp"

namespace fuse::dse {

/// One swept candidate: the array plus the memory system paired to it
/// (dtype matches the datapath; SRAM capacity is itself an axis).
struct DesignPoint {
  systolic::ArrayConfig cfg;
  systolic::MemoryConfig mem;

  /// "32x128 bcast fp16 pipelined sram8MiB" — stable across runs; the CSV
  /// key column.
  std::string label() const;
};

/// The swept axes. Defaults give the standard 180-point grid:
/// 5 shapes x 2 broadcast x 3 pipelining x 3 datapath x 2 SRAM.
struct DseAxes {
  /// Array shapes (rows, cols), all at the paper's 64x64 = 4096-PE budget
  /// by default so area differences come from aspect-dependent edge and
  /// broadcast hardware, not PE count.
  std::vector<std::pair<std::int64_t, std::int64_t>> shapes = {
      {16, 256}, {32, 128}, {64, 64}, {128, 32}, {256, 16}};
  std::vector<bool> broadcast = {false, true};
  std::vector<systolic::Pipelining> pipelinings = {
      systolic::Pipelining::kPipelined, systolic::Pipelining::kTransparent2,
      systolic::Pipelining::kTransparent4};
  std::vector<systolic::Datapath> datapaths = {systolic::Datapath::kInt8,
                                               systolic::Datapath::kFp16,
                                               systolic::Datapath::kFp32};
  std::vector<std::int64_t> sram_bytes = {4 * 1024 * 1024, 8 * 1024 * 1024};
  double dram_bytes_per_cycle = 16.0;
};

/// The axis cross product, in a fixed nested order (shape-major), so point
/// indices are stable.
std::vector<DesignPoint> enumerate_design_points(const DseAxes& axes);

/// The standard workload: the five paper networks x {baseline, FuSe-Full,
/// FuSe-Half} (uniform modes — deliberately NOT the 50% variants, whose
/// slot selection depends on the ArrayConfig being evaluated; the model
/// set must be constant across the sweep).
std::vector<nets::NetworkModel> default_dse_workload();

/// Scores one candidate over a workload: latency is the sum of the
/// workload's roofline bound cycles divided by the effective clock;
/// area/power from the component hw model. `bound_cycles_out` (optional)
/// receives the summed bound cycles.
Objectives evaluate_design_point(const DesignPoint& point,
                                 const std::vector<nets::NetworkModel>& workload,
                                 sched::SchedMode mode,
                                 sched::EvalCache* cache,
                                 std::uint64_t* bound_cycles_out = nullptr);

struct ExploreOptions {
  sched::SchedMode mode = sched::SchedMode::kFused;
  /// Worker threads: -1 = hardware concurrency, 0/1 = serial.
  int threads = -1;
  /// Memoize per-layer costs across configurations.
  bool use_cache = true;
};

struct ExploreResult {
  std::vector<DesignPoint> points;
  std::vector<Objectives> objectives;      // parallel to points
  std::vector<std::uint64_t> bound_cycles;  // parallel to points
  ParetoFront front;
  /// EvalCache memo hit rate over the sweep, percent (0 with cache off).
  double memo_hit_pct = 0.0;
};

/// The sweep: parallel evaluation (index-slot writes), then serial
/// index-order frontier pruning. Records dse.configs_evaluated /
/// dse.points_pruned counters and the eval.memo_hit_pct gauge.
ExploreResult explore(const DseAxes& axes,
                      const std::vector<nets::NetworkModel>& workload,
                      const ExploreOptions& options = {});

/// Writes the full point table as CSV: one row per point (stable index
/// order) with objectives and a `frontier` 0/1 column.
void write_explore_csv(const ExploreResult& result, const std::string& path);

}  // namespace fuse::dse
