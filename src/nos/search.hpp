// Neural Operator Search (NOS) — the paper's concluding proposal made
// concrete: "framing FuSeConv as the result of a manual operator search,
// our work motivates automated Network Operator Search in complement to
// NAS."
//
// The search space here is exactly the paper's: each depthwise slot
// independently chooses {baseline depthwise, FuSe-Full, FuSe-Half}. The
// objective is end-to-end latency on a given array; the constraint is a
// parameter budget relative to the baseline network (parameters serve as
// the capacity/accuracy proxy, following Table I where the Full variant's
// extra parameters buy back the Half variant's accuracy loss).
//
// Because each slot's layers (dw/fuse + SE + projection) are disjoint,
// both latency and parameters decompose per slot, and the constrained
// problem is a small knapsack solved exactly by dynamic programming over
// quantized parameter counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/transform.hpp"
#include "sched/latency.hpp"

namespace fuse::nos {

using core::FuseMode;
using nets::NetworkId;
using systolic::ArrayConfig;

struct NosConfig {
  /// Total parameters may not exceed `max_params_ratio` x baseline.
  double max_params_ratio = 1.10;

  /// Knapsack quantization of per-slot parameter counts (smaller = more
  /// exact, more DP states).
  std::int64_t param_granularity = 1024;
};

/// Per-slot option costs, exposed for inspection and tests.
struct SlotOption {
  FuseMode mode = FuseMode::kBaseline;
  std::uint64_t cycles = 0;  // this slot's layers on the array
  std::uint64_t params = 0;  // this slot's layers' parameters
};

struct NosResult {
  std::vector<FuseMode> modes;   // chosen operator per slot
  std::uint64_t cycles = 0;      // whole network
  std::uint64_t params = 0;      // whole network
  double speedup = 1.0;          // vs all-baseline on the same array
  double params_ratio = 1.0;     // vs all-baseline
  std::vector<std::vector<SlotOption>> options;  // [slot][mode]

  /// e.g. "FHHB F..." one letter per slot (B/F/H).
  std::string modes_string() const;
};

/// Exact DP search minimizing latency under the parameter budget.
/// Note: on arrays where FuSe-Half dominates both axes (fewer params AND
/// fewer cycles per slot, as on the paper's 64x64), this degenerates to
/// all-Half — which is itself a finding. The interesting trade-off runs
/// the other way; see search_capacity.
NosResult search_operators(NetworkId id, const ArrayConfig& cfg,
                           const NosConfig& config);

/// The dual search: MAXIMIZE parameters (the capacity/accuracy proxy that
/// Table I shows buying accuracy for the Full variant) subject to a
/// latency budget of `max_cycles_ratio` x the baseline network's latency.
/// This answers the deployment question "I have a latency target — give me
/// the most capable operator mix", and is where Full/Half/baseline
/// genuinely compete per slot.
struct NosLatencyBudgetConfig {
  double max_cycles_ratio = 0.25;       // vs all-baseline latency
  std::int64_t cycle_granularity = 256; // DP quantization
};
NosResult search_capacity(NetworkId id, const ArrayConfig& cfg,
                          const NosLatencyBudgetConfig& config);

/// The per-slot option table (building block of the search; also useful
/// for plotting the per-slot design space).
std::vector<std::vector<SlotOption>> slot_options(NetworkId id,
                                                  const ArrayConfig& cfg);

}  // namespace fuse::nos
