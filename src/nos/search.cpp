#include "nos/search.hpp"

#include <limits>
#include <map>

#include "util/check.hpp"

namespace fuse::nos {

using nets::NetworkModel;
using nn::LayerDesc;

namespace {

/// Cycles and params of the slot-tagged layers, per slot, for one built
/// network.
struct SlotTotals {
  std::map<int, std::uint64_t> cycles;
  std::map<int, std::uint64_t> params;
};

SlotTotals slot_totals(const NetworkModel& model, const ArrayConfig& cfg) {
  SlotTotals totals;
  for (const LayerDesc& layer : model.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    totals.cycles[layer.fuse_slot] +=
        sched::layer_latency(layer, cfg).cycles;
    totals.params[layer.fuse_slot] += layer.params();
  }
  return totals;
}

}  // namespace

std::string NosResult::modes_string() const {
  std::string out;
  out.reserve(modes.size());
  for (FuseMode mode : modes) {
    switch (mode) {
      case FuseMode::kBaseline:
        out.push_back('B');
        break;
      case FuseMode::kFull:
        out.push_back('F');
        break;
      case FuseMode::kHalf:
        out.push_back('H');
        break;
    }
  }
  return out;
}

std::vector<std::vector<SlotOption>> slot_options(NetworkId id,
                                                  const ArrayConfig& cfg) {
  const int slots = nets::num_fuse_slots(id);
  const FuseMode kModes[] = {FuseMode::kBaseline, FuseMode::kFull,
                             FuseMode::kHalf};
  std::vector<std::vector<SlotOption>> options(
      static_cast<std::size_t>(slots));
  for (FuseMode mode : kModes) {
    const NetworkModel model =
        nets::build_network(id, core::uniform_modes(slots, mode));
    const SlotTotals totals = slot_totals(model, cfg);
    for (int slot = 0; slot < slots; ++slot) {
      SlotOption option;
      option.mode = mode;
      option.cycles = totals.cycles.at(slot);
      option.params = totals.params.at(slot);
      options[static_cast<std::size_t>(slot)].push_back(option);
    }
  }
  return options;
}

NosResult search_operators(NetworkId id, const ArrayConfig& cfg,
                           const NosConfig& config) {
  FUSE_CHECK(config.max_params_ratio > 0.0 && config.param_granularity > 0)
      << "bad NOS config";

  const NetworkModel baseline = nets::build_network(id);
  const std::uint64_t baseline_cycles =
      sched::network_latency(baseline, cfg).total_cycles;
  const std::uint64_t baseline_params = baseline.total_params();

  NosResult result;
  result.options = slot_options(id, cfg);
  const int slots = static_cast<int>(result.options.size());

  // Parameters and cycles outside the slots are mode-independent.
  const SlotTotals base_totals = slot_totals(baseline, cfg);
  std::uint64_t shared_params = baseline_params;
  std::uint64_t shared_cycles = baseline_cycles;
  for (const auto& [slot, params] : base_totals.params) {
    shared_params -= params;
    shared_cycles -= base_totals.cycles.at(slot);
  }

  // Knapsack DP over quantized slot-parameter totals. Quantize by rounding
  // each option's parameter count UP, so the budget is never exceeded.
  const std::uint64_t budget = static_cast<std::uint64_t>(
      config.max_params_ratio * static_cast<double>(baseline_params));
  FUSE_CHECK(budget >= shared_params)
      << "parameter budget below the network's mode-independent parameters";
  const std::uint64_t slot_budget = budget - shared_params;
  const std::int64_t units = static_cast<std::int64_t>(
      slot_budget / static_cast<std::uint64_t>(config.param_granularity));

  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  // dp[u] = min cycles using at most u param units so far.
  std::vector<std::uint64_t> dp(static_cast<std::size_t>(units) + 1, kInf);
  std::vector<std::vector<int>> choice(
      static_cast<std::size_t>(slots),
      std::vector<int>(static_cast<std::size_t>(units) + 1, -1));
  dp[0] = 0;

  for (int slot = 0; slot < slots; ++slot) {
    std::vector<std::uint64_t> next(dp.size(), kInf);
    for (std::int64_t u = 0; u <= units; ++u) {
      if (dp[static_cast<std::size_t>(u)] == kInf) {
        continue;
      }
      const auto& opts = result.options[static_cast<std::size_t>(slot)];
      for (int o = 0; o < static_cast<int>(opts.size()); ++o) {
        const std::int64_t cost = static_cast<std::int64_t>(
            (opts[static_cast<std::size_t>(o)].params +
             static_cast<std::uint64_t>(config.param_granularity) - 1) /
            static_cast<std::uint64_t>(config.param_granularity));
        const std::int64_t nu = u + cost;
        if (nu > units) {
          continue;
        }
        const std::uint64_t cycles =
            dp[static_cast<std::size_t>(u)] +
            opts[static_cast<std::size_t>(o)].cycles;
        if (cycles < next[static_cast<std::size_t>(nu)]) {
          next[static_cast<std::size_t>(nu)] = cycles;
          choice[static_cast<std::size_t>(slot)]
                [static_cast<std::size_t>(nu)] = o;
        }
      }
    }
    // Allow unused budget: propagate the best-so-far downward... actually
    // upward: dp[u] should be min over <= u. Done after the loop below.
    dp.swap(next);
  }
  // min-prefix so "at most u units" semantics hold for backtracking start.
  std::int64_t best_u = 0;
  for (std::int64_t u = 1; u <= units; ++u) {
    if (dp[static_cast<std::size_t>(u)] <
        dp[static_cast<std::size_t>(best_u)]) {
      best_u = u;
    }
  }
  FUSE_CHECK(dp[static_cast<std::size_t>(best_u)] != kInf)
      << "no feasible operator assignment under the parameter budget";

  // Backtrack: at each slot, recover which option produced dp at best_u.
  // We re-run the DP forward storing choices (done above); walk backwards.
  result.modes.assign(static_cast<std::size_t>(slots),
                      FuseMode::kBaseline);
  {
    std::int64_t u = best_u;
    for (int slot = slots - 1; slot >= 0; --slot) {
      const int o =
          choice[static_cast<std::size_t>(slot)][static_cast<std::size_t>(u)];
      FUSE_CHECK(o >= 0) << "DP backtrack failed at slot " << slot;
      const SlotOption& opt =
          result.options[static_cast<std::size_t>(slot)]
                        [static_cast<std::size_t>(o)];
      result.modes[static_cast<std::size_t>(slot)] = opt.mode;
      const std::int64_t cost = static_cast<std::int64_t>(
          (opt.params +
           static_cast<std::uint64_t>(config.param_granularity) - 1) /
          static_cast<std::uint64_t>(config.param_granularity));
      u -= cost;
      FUSE_CHECK(u >= 0) << "DP backtrack underflow at slot " << slot;
    }
  }

  const NetworkModel chosen = nets::build_network(id, result.modes);
  result.cycles = sched::network_latency(chosen, cfg).total_cycles;
  result.params = chosen.total_params();
  result.speedup = static_cast<double>(baseline_cycles) /
                   static_cast<double>(result.cycles);
  result.params_ratio = static_cast<double>(result.params) /
                        static_cast<double>(baseline_params);
  FUSE_CHECK(result.params <= budget + static_cast<std::uint64_t>(
                                           config.param_granularity))
      << "search exceeded the parameter budget";
  (void)shared_cycles;
  return result;
}

NosResult search_capacity(NetworkId id, const ArrayConfig& cfg,
                          const NosLatencyBudgetConfig& config) {
  FUSE_CHECK(config.max_cycles_ratio > 0.0 && config.cycle_granularity > 0)
      << "bad NOS latency-budget config";

  const NetworkModel baseline = nets::build_network(id);
  const std::uint64_t baseline_cycles =
      sched::network_latency(baseline, cfg).total_cycles;
  const std::uint64_t baseline_params = baseline.total_params();

  NosResult result;
  result.options = slot_options(id, cfg);
  const int slots = static_cast<int>(result.options.size());

  // Cycles outside the slots are mode-independent and consume budget.
  const SlotTotals base_totals = slot_totals(baseline, cfg);
  std::uint64_t shared_cycles = baseline_cycles;
  for (const auto& [slot, cycles] : base_totals.cycles) {
    shared_cycles -= cycles;
  }

  const std::uint64_t budget = static_cast<std::uint64_t>(
      config.max_cycles_ratio * static_cast<double>(baseline_cycles));
  FUSE_CHECK(budget > shared_cycles)
      << "latency budget " << budget
      << " below the network's mode-independent cycles " << shared_cycles;
  const std::uint64_t slot_budget = budget - shared_cycles;
  const std::int64_t units = static_cast<std::int64_t>(
      slot_budget / static_cast<std::uint64_t>(config.cycle_granularity));

  // dp[u] = max params reachable with exactly-quantized cycle cost u.
  constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dp(static_cast<std::size_t>(units) + 1, kNone);
  std::vector<std::vector<int>> choice(
      static_cast<std::size_t>(slots),
      std::vector<int>(static_cast<std::size_t>(units) + 1, -1));
  dp[0] = 0;

  const auto cycle_cost = [&](const SlotOption& o) {
    return static_cast<std::int64_t>(
        (o.cycles + static_cast<std::uint64_t>(config.cycle_granularity) -
         1) /
        static_cast<std::uint64_t>(config.cycle_granularity));
  };

  for (int slot = 0; slot < slots; ++slot) {
    std::vector<std::uint64_t> next(dp.size(), kNone);
    for (std::int64_t u = 0; u <= units; ++u) {
      if (dp[static_cast<std::size_t>(u)] == kNone) {
        continue;
      }
      const auto& opts = result.options[static_cast<std::size_t>(slot)];
      for (int o = 0; o < static_cast<int>(opts.size()); ++o) {
        const std::int64_t nu =
            u + cycle_cost(opts[static_cast<std::size_t>(o)]);
        if (nu > units) {
          continue;
        }
        const std::uint64_t params =
            dp[static_cast<std::size_t>(u)] +
            opts[static_cast<std::size_t>(o)].params;
        if (next[static_cast<std::size_t>(nu)] == kNone ||
            params > next[static_cast<std::size_t>(nu)]) {
          next[static_cast<std::size_t>(nu)] = params;
          choice[static_cast<std::size_t>(slot)]
                [static_cast<std::size_t>(nu)] = o;
        }
      }
    }
    dp.swap(next);
  }

  std::int64_t best_u = -1;
  for (std::int64_t u = 0; u <= units; ++u) {
    if (dp[static_cast<std::size_t>(u)] == kNone) {
      continue;
    }
    if (best_u < 0 || dp[static_cast<std::size_t>(u)] >
                          dp[static_cast<std::size_t>(best_u)]) {
      best_u = u;
    }
  }
  FUSE_CHECK(best_u >= 0)
      << "no feasible operator assignment under the latency budget "
      << config.max_cycles_ratio << "x baseline";

  result.modes.assign(static_cast<std::size_t>(slots),
                      FuseMode::kBaseline);
  std::int64_t u = best_u;
  for (int slot = slots - 1; slot >= 0; --slot) {
    const int o =
        choice[static_cast<std::size_t>(slot)][static_cast<std::size_t>(u)];
    FUSE_CHECK(o >= 0) << "DP backtrack failed at slot " << slot;
    const SlotOption& opt = result.options[static_cast<std::size_t>(slot)]
                                          [static_cast<std::size_t>(o)];
    result.modes[static_cast<std::size_t>(slot)] = opt.mode;
    u -= cycle_cost(opt);
    FUSE_CHECK(u >= 0) << "DP backtrack underflow at slot " << slot;
  }

  const NetworkModel chosen = nets::build_network(id, result.modes);
  result.cycles = sched::network_latency(chosen, cfg).total_cycles;
  result.params = chosen.total_params();
  result.speedup = static_cast<double>(baseline_cycles) /
                   static_cast<double>(result.cycles);
  result.params_ratio = static_cast<double>(result.params) /
                        static_cast<double>(baseline_params);
  FUSE_CHECK(result.cycles <=
             budget + static_cast<std::uint64_t>(
                          config.cycle_granularity) *
                          static_cast<std::uint64_t>(slots))
      << "search exceeded the latency budget";
  return result;
}

}  // namespace fuse::nos
