// Analytic area/power model of the systolic array, 45 nm class.
//
// The paper synthesized a 32x32 array (Bluespec -> NanGate 45 nm, Synopsys
// DC) with and without the per-row weight-broadcast links and measured
// 4.35% area and 2.25% power overhead. This repo has no synthesis flow, so
// we substitute a component-level model: each PE is a FP16 MAC + operand
// registers + control; the broadcast modification adds a 2:1 operand mux
// per PE, a wire segment per PE column, and a driver per row. Component
// costs are calibrated so the 32x32 array reproduces the paper's relative
// overheads; the model then exposes how the overhead scales with array
// size, which the synthesis numbers alone cannot.
#pragma once

#include <cstdint>

#include "systolic/config.hpp"

namespace fuse::hw {

/// Per-component costs (area in um^2, power in mW at nominal frequency and
/// activity). Values approximate a 45 nm standard-cell library.
struct PeComponentModel {
  // Baseline PE.
  double mac_area_um2 = 1450.0;    // FP16 multiplier + adder
  double reg_area_um2 = 520.0;     // operand + partial-sum registers
  double ctrl_area_um2 = 130.0;    // per-PE control
  double edge_cell_area_um2 = 1150.0;  // per edge feeder / drain cell

  double mac_power_mw = 0.92;
  double reg_power_mw = 0.31;
  double ctrl_power_mw = 0.06;
  double edge_cell_power_mw = 0.74;

  // Broadcast-link modification.
  double mux_area_um2 = 72.0;        // 2:1 operand-select mux per PE
  double wire_seg_area_um2 = 9.5;    // broadcast wire segment per PE
  double row_driver_area_um2 = 410.0;  // buffer chain per row

  double mux_power_mw = 0.0183;
  double wire_seg_power_mw = 0.0052;
  double row_driver_power_mw = 0.21;

  // Transparent-pipelining modification (ArrayFlex-style): a bypass mux on
  // the forwarding path of every PE; register power is clock-gated down by
  // the transparency factor (only every p-th stage latches).
  double bypass_mux_area_um2 = 58.0;
  double bypass_mux_power_mw = 0.0151;
};

/// Datapath width scaling relative to the FP16 baseline the component
/// costs are calibrated for. int8 MACs are far smaller/cheaper; fp32
/// roughly doubles both. Applied to the width-dependent components (MAC,
/// registers, edge cells) — control and the broadcast fabric are
/// width-independent.
double datapath_area_scale(systolic::Datapath dp);
double datapath_power_scale(systolic::Datapath dp);

/// Default calibration (see file comment).
PeComponentModel nangate45_model();

/// Absolute area/power of an array under the model.
struct ArrayHwReport {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
};
ArrayHwReport array_hw(const systolic::ArrayConfig& cfg,
                       const PeComponentModel& model);

/// Relative overhead of adding broadcast links to a size x size array.
struct OverheadReport {
  std::int64_t array_size = 0;
  double area_pct = 0.0;   // 100 * (with - without) / without
  double power_pct = 0.0;
};
OverheadReport broadcast_overhead(std::int64_t size,
                                  const PeComponentModel& model);

}  // namespace fuse::hw
