// Energy model (45 nm class), extending the area/power study of §V-B5.
//
// Energy per inference decomposes into: useful MAC energy (proportional to
// the operator's arithmetic), idle/clocking energy burned by every PE for
// every cycle the array is busy (this is where low utilization hurts — an
// under-utilized array pays the full grid's clock tree and leakage while
// one column works), and DRAM access energy for the traffic the mapping
// generates. FuSeConv's win is mostly the second term: far fewer busy
// cycles at much higher utilization.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace fuse::hw {

/// Per-event energy costs. Defaults approximate 45 nm figures commonly
/// used in accelerator papers (Horowitz ISSCC'14 scaled to FP16).
struct EnergyModel {
  double mac_pj = 1.1;             // one FP16 multiply-accumulate
  double pe_idle_pj_per_cycle = 0.10;  // clock + leakage per PE per cycle
  double sram_pj_per_byte = 2.5;   // on-chip buffer access
  double dram_pj_per_byte = 80.0;  // off-chip access

  void validate() const {
    FUSE_CHECK(mac_pj > 0 && pe_idle_pj_per_cycle >= 0 &&
               sram_pj_per_byte >= 0 && dram_pj_per_byte >= 0)
        << "bad energy model";
  }
};

/// Energy of one operator / network, in nanojoules.
struct EnergyReport {
  double mac_nj = 0.0;
  double idle_nj = 0.0;
  double sram_nj = 0.0;
  double dram_nj = 0.0;

  double total_nj() const { return mac_nj + idle_nj + sram_nj + dram_nj; }

  EnergyReport& operator+=(const EnergyReport& other) {
    mac_nj += other.mac_nj;
    idle_nj += other.idle_nj;
    sram_nj += other.sram_nj;
    dram_nj += other.dram_nj;
    return *this;
  }
};

/// Combines the activity counters of one operator into energy. `bytes` is
/// the DRAM traffic; every DRAM byte is assumed to also pass through SRAM
/// once (double-buffered staging).
inline EnergyReport operator_energy(std::uint64_t mac_ops,
                                    std::uint64_t busy_cycles,
                                    std::int64_t pe_count,
                                    std::uint64_t bytes,
                                    const EnergyModel& model) {
  model.validate();
  EnergyReport report;
  report.mac_nj = static_cast<double>(mac_ops) * model.mac_pj * 1e-3;
  report.idle_nj = static_cast<double>(busy_cycles) *
                   static_cast<double>(pe_count) *
                   model.pe_idle_pj_per_cycle * 1e-3;
  report.sram_nj =
      static_cast<double>(bytes) * model.sram_pj_per_byte * 1e-3;
  report.dram_nj =
      static_cast<double>(bytes) * model.dram_pj_per_byte * 1e-3;
  return report;
}

}  // namespace fuse::hw
