#include "hw/area_power.hpp"

#include "util/check.hpp"

namespace fuse::hw {

PeComponentModel nangate45_model() { return PeComponentModel{}; }

double datapath_area_scale(systolic::Datapath dp) {
  switch (dp) {
    case systolic::Datapath::kInt8:
      return 0.35;
    case systolic::Datapath::kFp16:
      return 1.0;
    case systolic::Datapath::kFp32:
      return 2.1;
  }
  FUSE_CHECK(false) << "unknown datapath";
  return 1.0;
}

double datapath_power_scale(systolic::Datapath dp) {
  switch (dp) {
    case systolic::Datapath::kInt8:
      return 0.30;
    case systolic::Datapath::kFp16:
      return 1.0;
    case systolic::Datapath::kFp32:
      return 2.2;
  }
  FUSE_CHECK(false) << "unknown datapath";
  return 1.0;
}

ArrayHwReport array_hw(const systolic::ArrayConfig& cfg,
                       const PeComponentModel& model) {
  cfg.validate();
  const double rows = static_cast<double>(cfg.rows);
  const double cols = static_cast<double>(cfg.cols);
  const double pes = rows * cols;
  const double edges = rows + cols;  // feeders on left + top (drain shares)
  // MAC/register/edge datapaths scale with operand width; per-PE control
  // and the broadcast fabric do not.
  const double dp_area = datapath_area_scale(cfg.datapath);
  const double dp_power = datapath_power_scale(cfg.datapath);
  // Clock-gated register power under transparent pipelining: only every
  // p-th stage latches.
  const double reg_duty = 1.0 / static_cast<double>(cfg.transparency());

  double area_um2 =
      pes * (dp_area * (model.mac_area_um2 + model.reg_area_um2) +
             model.ctrl_area_um2) +
      edges * dp_area * model.edge_cell_area_um2;
  double power_mw =
      pes * (dp_power * (model.mac_power_mw + reg_duty * model.reg_power_mw) +
             model.ctrl_power_mw) +
      edges * dp_power * model.edge_cell_power_mw;

  if (cfg.broadcast_links) {
    area_um2 += pes * (model.mux_area_um2 + model.wire_seg_area_um2) +
                rows * model.row_driver_area_um2;
    power_mw += pes * (model.mux_power_mw + model.wire_seg_power_mw) +
                rows * model.row_driver_power_mw;
  }
  if (cfg.pipelining != systolic::Pipelining::kPipelined) {
    area_um2 += pes * model.bypass_mux_area_um2;
    power_mw += pes * model.bypass_mux_power_mw;
  }

  ArrayHwReport report;
  report.area_mm2 = area_um2 * 1e-6;
  report.power_mw = power_mw;
  return report;
}

OverheadReport broadcast_overhead(std::int64_t size,
                                  const PeComponentModel& model) {
  FUSE_CHECK(size > 0) << "array size must be positive";
  systolic::ArrayConfig with = systolic::square_array(size, true);
  systolic::ArrayConfig without = systolic::square_array(size, false);
  const ArrayHwReport a = array_hw(with, model);
  const ArrayHwReport b = array_hw(without, model);

  OverheadReport report;
  report.array_size = size;
  report.area_pct = 100.0 * (a.area_mm2 - b.area_mm2) / b.area_mm2;
  report.power_pct = 100.0 * (a.power_mw - b.power_mw) / b.power_mw;
  return report;
}

}  // namespace fuse::hw
