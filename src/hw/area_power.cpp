#include "hw/area_power.hpp"

#include "util/check.hpp"

namespace fuse::hw {

PeComponentModel nangate45_model() { return PeComponentModel{}; }

ArrayHwReport array_hw(const systolic::ArrayConfig& cfg,
                       const PeComponentModel& model) {
  cfg.validate();
  const double rows = static_cast<double>(cfg.rows);
  const double cols = static_cast<double>(cfg.cols);
  const double pes = rows * cols;
  const double edges = rows + cols;  // feeders on left + top (drain shares)

  double area_um2 =
      pes * (model.mac_area_um2 + model.reg_area_um2 + model.ctrl_area_um2) +
      edges * model.edge_cell_area_um2;
  double power_mw =
      pes * (model.mac_power_mw + model.reg_power_mw + model.ctrl_power_mw) +
      edges * model.edge_cell_power_mw;

  if (cfg.broadcast_links) {
    area_um2 += pes * (model.mux_area_um2 + model.wire_seg_area_um2) +
                rows * model.row_driver_area_um2;
    power_mw += pes * (model.mux_power_mw + model.wire_seg_power_mw) +
                rows * model.row_driver_power_mw;
  }

  ArrayHwReport report;
  report.area_mm2 = area_um2 * 1e-6;
  report.power_mw = power_mw;
  return report;
}

OverheadReport broadcast_overhead(std::int64_t size,
                                  const PeComponentModel& model) {
  FUSE_CHECK(size > 0) << "array size must be positive";
  systolic::ArrayConfig with = systolic::square_array(size, true);
  systolic::ArrayConfig without = systolic::square_array(size, false);
  const ArrayHwReport a = array_hw(with, model);
  const ArrayHwReport b = array_hw(without, model);

  OverheadReport report;
  report.array_size = size;
  report.area_pct = 100.0 * (a.area_mm2 - b.area_mm2) / b.area_mm2;
  report.power_pct = 100.0 * (a.power_mw - b.power_mw) / b.power_mw;
  return report;
}

}  // namespace fuse::hw
