#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace fuse::tensor {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.num_elements()), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  FUSE_CHECK(static_cast<std::int64_t>(data_.size()) ==
             shape_.num_elements())
      << "value count " << data_.size() << " does not match shape "
      << shape_.to_string();
}

float& Tensor::operator[](std::int64_t index) {
  FUSE_DCHECK(index >= 0 && index < num_elements())
      << "flat index " << index << " out of range for " << shape_.to_string();
  return data_[static_cast<std::size_t>(index)];
}

float Tensor::operator[](std::int64_t index) const {
  FUSE_DCHECK(index >= 0 && index < num_elements())
      << "flat index " << index << " out of range for " << shape_.to_string();
  return data_[static_cast<std::size_t>(index)];
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j) const {
  FUSE_DCHECK(shape_.rank() == 2) << "rank-2 access on " << shape_.to_string();
  FUSE_DCHECK(i >= 0 && i < shape_.dim(0) && j >= 0 && j < shape_.dim(1))
      << "index (" << i << ", " << j << ") out of range for "
      << shape_.to_string();
  return i * shape_.dim(1) + j;
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j,
                                std::int64_t k) const {
  FUSE_DCHECK(shape_.rank() == 3) << "rank-3 access on " << shape_.to_string();
  FUSE_DCHECK(i >= 0 && i < shape_.dim(0) && j >= 0 && j < shape_.dim(1) &&
              k >= 0 && k < shape_.dim(2))
      << "index (" << i << ", " << j << ", " << k << ") out of range for "
      << shape_.to_string();
  return (i * shape_.dim(1) + j) * shape_.dim(2) + k;
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j,
                                std::int64_t k, std::int64_t l) const {
  FUSE_DCHECK(shape_.rank() == 4) << "rank-4 access on " << shape_.to_string();
  FUSE_DCHECK(i >= 0 && i < shape_.dim(0) && j >= 0 && j < shape_.dim(1) &&
              k >= 0 && k < shape_.dim(2) && l >= 0 && l < shape_.dim(3))
      << "index (" << i << ", " << j << ", " << k << ", " << l
      << ") out of range for " << shape_.to_string();
  return ((i * shape_.dim(1) + j) * shape_.dim(2) + k) * shape_.dim(3) + l;
}

float& Tensor::at(std::int64_t i) {
  FUSE_DCHECK(shape_.rank() == 1) << "rank-1 access on " << shape_.to_string();
  return (*this)[i];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
                  std::int64_t l) {
  return data_[static_cast<std::size_t>(flat_index(i, j, k, l))];
}

float Tensor::at(std::int64_t i) const {
  FUSE_DCHECK(shape_.rank() == 1) << "rank-1 access on " << shape_.to_string();
  return (*this)[i];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}

float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}

float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l) const {
  return data_[static_cast<std::size_t>(flat_index(i, j, k, l))];
}

void Tensor::fill(float value) {
  for (float& x : data_) {
    x = value;
  }
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (float& x : data_) {
    x = static_cast<float>(rng.uniform(lo, hi));
  }
}

void Tensor::fill_normal(util::Rng& rng, float mean, float stddev) {
  for (float& x : data_) {
    x = static_cast<float>(rng.normal(mean, stddev));
  }
}

void Tensor::fill_iota(float start) {
  float value = start;
  for (float& x : data_) {
    x = value;
    value += 1.0F;
  }
}

double Tensor::sum() const {
  double total = 0.0;
  for (float x : data_) {
    total += x;
  }
  return total;
}

float Tensor::abs_max() const {
  float best = 0.0F;
  for (float x : data_) {
    best = std::max(best, std::fabs(x));
  }
  return best;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  FUSE_CHECK(new_shape.num_elements() == num_elements())
      << "reshape " << shape_.to_string() << " -> " << new_shape.to_string()
      << " changes element count";
  return Tensor(std::move(new_shape), data_);
}

std::string Tensor::summary(int max_values) const {
  std::ostringstream out;
  out << shape_.to_string() << " {";
  const std::int64_t shown =
      std::min<std::int64_t>(max_values, num_elements());
  for (std::int64_t i = 0; i < shown; ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << data_[static_cast<std::size_t>(i)];
  }
  if (shown < num_elements()) {
    out << ", ...";
  }
  out << '}';
  return out.str();
}

bool allclose(const Tensor& actual, const Tensor& reference, float rtol,
              float atol) {
  if (actual.shape() != reference.shape()) {
    return false;
  }
  for (std::int64_t i = 0; i < actual.num_elements(); ++i) {
    const float a = actual[i];
    const float r = reference[i];
    if (std::isnan(a) || std::isnan(r)) {
      return false;
    }
    if (std::fabs(a - r) > atol + rtol * std::fabs(r)) {
      return false;
    }
  }
  return true;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  FUSE_CHECK(a.shape() == b.shape())
      << "max_abs_diff on mismatched shapes " << a.shape().to_string()
      << " vs " << b.shape().to_string();
  float best = 0.0F;
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

}  // namespace fuse::tensor
