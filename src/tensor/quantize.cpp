#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fuse::tensor {

std::int8_t QuantParams::quantize(float x) const {
  const float q = std::round(x / scale) + static_cast<float>(zero_point);
  return static_cast<std::int8_t>(
      std::clamp(q, -128.0F, 127.0F));
}

QuantParams choose_quant_params(const Tensor& t, bool symmetric) {
  FUSE_CHECK(t.num_elements() > 0) << "cannot calibrate an empty tensor";
  float lo = t[0];
  float hi = t[0];
  for (std::int64_t i = 1; i < t.num_elements(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  // The representable range must include 0 so padding quantizes exactly.
  lo = std::min(lo, 0.0F);
  hi = std::max(hi, 0.0F);

  QuantParams params;
  if (symmetric) {
    const float bound = std::max(std::fabs(lo), std::fabs(hi));
    params.scale = bound > 0.0F ? bound / 127.0F : 1.0F;
    params.zero_point = 0;
    return params;
  }
  const float range = hi - lo;
  params.scale = range > 0.0F ? range / 255.0F : 1.0F;
  const float zp = -128.0F - lo / params.scale;
  params.zero_point = static_cast<std::int32_t>(
      std::clamp(std::round(zp), -128.0F, 127.0F));
  return params;
}

QuantizedTensor quantize(const Tensor& t, const QuantParams& params) {
  FUSE_CHECK(params.scale > 0.0F) << "quantization scale must be positive";
  QuantizedTensor q;
  q.shape = t.shape();
  q.params = params;
  q.data.resize(static_cast<std::size_t>(t.num_elements()));
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    q.data[static_cast<std::size_t>(i)] = params.quantize(t[i]);
  }
  return q;
}

QuantizedTensor quantize_calibrated(const Tensor& t, bool symmetric) {
  return quantize(t, choose_quant_params(t, symmetric));
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  for (std::int64_t i = 0; i < q.num_elements(); ++i) {
    t[i] = q.params.dequantize(q.at_flat(i));
  }
  return t;
}

}  // namespace fuse::tensor
