#include "tensor/shape.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fuse::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (std::int64_t d : dims_) {
    FUSE_CHECK(d >= 0) << "negative extent in shape " << to_string();
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (std::int64_t d : dims_) {
    FUSE_CHECK(d >= 0) << "negative extent in shape " << to_string();
  }
}

std::int64_t Shape::dim(int axis) const {
  if (axis < 0) {
    axis += rank();
  }
  FUSE_CHECK(axis >= 0 && axis < rank())
      << "axis " << axis << " out of range for shape " << to_string();
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::num_elements() const {
  std::int64_t count = 1;
  for (std::int64_t d : dims_) {
    count *= d;
  }
  return count;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> result(dims_.size(), 1);
  for (int axis = rank() - 2; axis >= 0; --axis) {
    result[static_cast<std::size_t>(axis)] =
        result[static_cast<std::size_t>(axis) + 1] *
        dims_[static_cast<std::size_t>(axis) + 1];
  }
  return result;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << dims_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace fuse::tensor
