// Tensor shape: an ordered list of extents with row-major strides.
//
// The library works in NCHW for activations and [C_out, C_in/groups, Kh, Kw]
// for convolution weights; Shape itself is rank-agnostic (rank 1..4 used).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fuse::tensor {

/// Immutable-by-convention shape. Extents are signed 64-bit to make
/// arithmetic on derived sizes (padding, strides) safe.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }

  /// Extent of dimension `axis` (0-based; negative axes index from the end).
  std::int64_t dim(int axis) const;

  /// Total number of elements (product of extents; 1 for rank 0).
  std::int64_t num_elements() const;

  /// Row-major strides, in elements.
  std::vector<std::int64_t> strides() const;

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[1, 32, 112, 112]"
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace fuse::tensor
