#include "tensor/half.hpp"

#include <bit>
#include <cstring>

namespace fuse::tensor {

half_bits float_to_half(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000U;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xFFU) - 127 + 15;
  std::uint32_t mantissa = f & 0x7FFFFFU;

  if (((f >> 23) & 0xFFU) == 0xFFU) {
    // Inf / NaN: preserve NaN-ness with a non-zero mantissa.
    return static_cast<half_bits>(sign | 0x7C00U |
                                  (mantissa != 0 ? 0x200U : 0U));
  }
  if (exponent >= 0x1F) {
    // Overflow -> infinity.
    return static_cast<half_bits>(sign | 0x7C00U);
  }
  if (exponent <= 0) {
    if (exponent < -10) {
      // Too small even for a denormal -> signed zero.
      return static_cast<half_bits>(sign);
    }
    // Denormal: shift in the implicit leading 1, then round to nearest even.
    mantissa |= 0x800000U;
    const int shift = 14 - exponent;  // 14..24
    const std::uint32_t rounded = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1);
    std::uint32_t result = rounded;
    if (remainder > halfway || (remainder == halfway && (rounded & 1U))) {
      ++result;  // may carry into the exponent; that is a correct promotion
    }
    return static_cast<half_bits>(sign | result);
  }

  // Normal: round 23-bit mantissa to 10 bits, nearest even.
  std::uint32_t result =
      sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
  const std::uint32_t remainder = mantissa & 0x1FFFU;
  if (remainder > 0x1000U || (remainder == 0x1000U && (result & 1U))) {
    ++result;  // mantissa carry correctly bumps the exponent
  }
  return static_cast<half_bits>(result);
}

float half_to_float(half_bits bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000U)
                             << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1FU;
  std::uint32_t mantissa = bits & 0x3FFU;

  std::uint32_t f = 0;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Denormal: normalize.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400U) == 0);
      mantissa &= 0x3FFU;
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          (mantissa << 13);
    }
  } else if (exponent == 0x1F) {
    f = sign | 0x7F800000U | (mantissa << 13);  // inf / NaN
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

void quantize_half_inplace(Tensor& t) {
  float* data = t.data();
  for (std::int64_t i = 0; i < t.num_elements(); ++i) {
    data[i] = quantize_half(data[i]);
  }
}

Tensor quantize_half(const Tensor& t) {
  Tensor out = t;
  quantize_half_inplace(out);
  return out;
}

}  // namespace fuse::tensor
