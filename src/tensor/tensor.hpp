// Dense float tensor with row-major layout.
//
// This is the numeric workhorse for the functional reference operators, the
// cycle-level simulator, and the training substrate. It deliberately stays
// small: contiguous float32 storage, checked multi-dimensional accessors in
// debug builds, and a handful of fills/reductions. Anything fancier (views,
// broadcasting) is intentionally out of scope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; `values` must match the element count.
  Tensor(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t num_elements() const { return shape_.num_elements(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access (bounds-checked in debug builds).
  float& operator[](std::int64_t index);
  float operator[](std::int64_t index) const;

  /// Unchecked hot-path accessors: inline, no rank/bounds validation
  /// beyond a debug assertion. The cycle-accurate simulator's inner
  /// loops use these — the checked at() overloads below are out-of-line
  /// calls, which dominates a per-PE-per-cycle loop. Everything else
  /// should keep using at().
  float at_unchecked(std::int64_t i, std::int64_t j) const {
    FUSE_DCHECK(shape_.rank() == 2 && i >= 0 && i < shape_.dim(0) &&
                j >= 0 && j < shape_.dim(1))
        << "unchecked index (" << i << ", " << j << ") out of range for "
        << shape_.to_string();
    return data_[static_cast<std::size_t>(i * shape_.dim(1) + j)];
  }
  float& at_unchecked(std::int64_t i, std::int64_t j) {
    FUSE_DCHECK(shape_.rank() == 2 && i >= 0 && i < shape_.dim(0) &&
                j >= 0 && j < shape_.dim(1))
        << "unchecked index (" << i << ", " << j << ") out of range for "
        << shape_.to_string();
    return data_[static_cast<std::size_t>(i * shape_.dim(1) + j)];
  }

  /// Rank-specific accessors; rank is checked in debug builds.
  float& at(std::int64_t i);
  float& at(std::int64_t i, std::int64_t j);
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float at(std::int64_t i) const;
  float at(std::int64_t i, std::int64_t j) const;
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;
  float at(std::int64_t i, std::int64_t j, std::int64_t k,
           std::int64_t l) const;

  /// Fills every element with `value`.
  void fill(float value);

  /// Fills with uniform values in [lo, hi).
  void fill_uniform(util::Rng& rng, float lo, float hi);

  /// Fills with N(mean, stddev) values.
  void fill_normal(util::Rng& rng, float mean, float stddev);

  /// Fills with 0, 1, 2, ... (handy in mapping tests where provenance of
  /// each element matters).
  void fill_iota(float start = 0.0F);

  /// Sum of all elements.
  double sum() const;

  /// Largest |element|.
  float abs_max() const;

  /// Returns a tensor with identical data but the new shape (same element
  /// count required).
  Tensor reshaped(Shape new_shape) const;

  /// Human-readable summary: shape plus a few leading values.
  std::string summary(int max_values = 8) const;

 private:
  std::int64_t flat_index(std::int64_t i, std::int64_t j) const;
  std::int64_t flat_index(std::int64_t i, std::int64_t j,
                          std::int64_t k) const;
  std::int64_t flat_index(std::int64_t i, std::int64_t j, std::int64_t k,
                          std::int64_t l) const;

  Shape shape_;
  std::vector<float> data_;
};

/// True when shapes match and every element pair differs by at most
/// `atol + rtol * |reference|`.
bool allclose(const Tensor& actual, const Tensor& reference,
              float rtol = 1e-5F, float atol = 1e-6F);

/// Largest absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace fuse::tensor
