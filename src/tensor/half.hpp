// IEEE-754 binary16 emulation.
//
// The paper trains and infers in FP16. This module provides float <-> half
// conversion (round-to-nearest-even, with denormal and inf/NaN handling) and
// tensor-level quantization so inference paths can be exercised at FP16
// precision on a CPU without native half support.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace fuse::tensor {

/// Bit-level storage for one binary16 value.
using half_bits = std::uint16_t;

/// Converts float32 -> binary16 bits with round-to-nearest-even.
half_bits float_to_half(float value);

/// Converts binary16 bits -> float32 exactly.
float half_to_float(half_bits bits);

/// Rounds a single float through binary16 precision.
inline float quantize_half(float value) {
  return half_to_float(float_to_half(value));
}

/// Rounds every element of `t` through binary16 (in place).
void quantize_half_inplace(Tensor& t);

/// Copy of `t` with every element rounded through binary16.
Tensor quantize_half(const Tensor& t);

}  // namespace fuse::tensor
