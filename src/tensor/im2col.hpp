// im2col transformation (Chellapilla et al.; used by Caffe).
//
// Lowers convolution to matrix multiplication by materializing each
// receptive field as a row. This is both a building block for the reference
// conv implementation and the object of study in the paper's Section III:
// for depthwise convolution the lowered matmul has a single output column,
// which is why it wastes a 2-D systolic array.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace fuse::tensor {

/// Output extent of a convolution along one axis.
/// out = floor((in + 2*pad - dilation*(k-1) - 1) / stride) + 1
std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad,
                          std::int64_t dilation = 1);

/// Lowers a [C, H, W] input to a patch matrix of shape
/// [out_h*out_w, kernel_h*kernel_w*C]. Out-of-bounds (padding) taps read 0.
/// Row r corresponds to output position (r / out_w, r % out_w); within a
/// row, taps are ordered channel-major then kernel-row then kernel-col,
/// matching a flattened [C, Kh, Kw] filter.
Tensor im2col(const Tensor& input, std::int64_t kernel_h,
              std::int64_t kernel_w, std::int64_t stride_h,
              std::int64_t stride_w, std::int64_t pad_h, std::int64_t pad_w,
              std::int64_t dilation_h = 1, std::int64_t dilation_w = 1);

/// Single-channel variant: lowers a [H, W] plane to
/// [out_h*out_w, kernel_h*kernel_w]. This is the per-channel lowering a
/// depthwise convolution is forced into (paper Fig. 2(c)).
Tensor im2col_plane(const Tensor& plane, std::int64_t kernel_h,
                    std::int64_t kernel_w, std::int64_t stride_h,
                    std::int64_t stride_w, std::int64_t pad_h,
                    std::int64_t pad_w, std::int64_t dilation_h = 1,
                    std::int64_t dilation_w = 1);

}  // namespace fuse::tensor
