// Affine INT8 quantization.
//
// The paper evaluates in FP16, but the systolic arrays it targets (TPUv1
// class) natively compute in INT8 with INT32 accumulation. This module
// provides post-training affine quantization — q = clamp(round(x / scale)
// + zero_point) — with min/max calibration, so the INT8 inference path of
// nn/quantized.hpp can demonstrate that FuSeConv survives 8-bit deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fuse::tensor {

/// Affine quantization parameters for one tensor.
struct QuantParams {
  float scale = 1.0F;
  std::int32_t zero_point = 0;  // in [-128, 127]

  /// Quantizes one value.
  std::int8_t quantize(float x) const;

  /// Dequantizes one value.
  float dequantize(std::int8_t q) const {
    return scale * static_cast<float>(static_cast<std::int32_t>(q) -
                                      zero_point);
  }
};

/// Min/max calibration. `symmetric` forces zero_point = 0 (the usual
/// choice for weights, so the INT8 matmul has no zero-point cross terms).
QuantParams choose_quant_params(const Tensor& t, bool symmetric = false);

/// An INT8 tensor with its quantization parameters.
struct QuantizedTensor {
  Shape shape;
  std::vector<std::int8_t> data;
  QuantParams params;

  std::int64_t num_elements() const {
    return static_cast<std::int64_t>(data.size());
  }
  std::int8_t at_flat(std::int64_t i) const {
    return data[static_cast<std::size_t>(i)];
  }
};

/// Quantizes with the given parameters.
QuantizedTensor quantize(const Tensor& t, const QuantParams& params);

/// Calibrate-and-quantize convenience.
QuantizedTensor quantize_calibrated(const Tensor& t,
                                    bool symmetric = false);

/// Back to float32.
Tensor dequantize(const QuantizedTensor& q);

}  // namespace fuse::tensor
