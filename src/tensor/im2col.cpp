#include "tensor/im2col.hpp"

#include "util/check.hpp"

namespace fuse::tensor {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad,
                          std::int64_t dilation) {
  FUSE_CHECK(in > 0 && kernel > 0 && stride > 0 && pad >= 0 && dilation > 0)
      << "conv_out_dim(in=" << in << ", k=" << kernel << ", s=" << stride
      << ", p=" << pad << ", d=" << dilation << ")";
  const std::int64_t effective = dilation * (kernel - 1) + 1;
  const std::int64_t span = in + 2 * pad - effective;
  FUSE_CHECK(span >= 0) << "kernel larger than padded input: in=" << in
                        << " k=" << kernel << " pad=" << pad
                        << " dilation=" << dilation;
  return span / stride + 1;
}

Tensor im2col(const Tensor& input, std::int64_t kernel_h,
              std::int64_t kernel_w, std::int64_t stride_h,
              std::int64_t stride_w, std::int64_t pad_h, std::int64_t pad_w,
              std::int64_t dilation_h, std::int64_t dilation_w) {
  FUSE_CHECK(input.shape().rank() == 3)
      << "im2col expects [C, H, W], got " << input.shape().to_string();
  const std::int64_t channels = input.shape().dim(0);
  const std::int64_t in_h = input.shape().dim(1);
  const std::int64_t in_w = input.shape().dim(2);
  const std::int64_t out_h =
      conv_out_dim(in_h, kernel_h, stride_h, pad_h, dilation_h);
  const std::int64_t out_w =
      conv_out_dim(in_w, kernel_w, stride_w, pad_w, dilation_w);

  Tensor patches(Shape{out_h * out_w, kernel_h * kernel_w * channels});
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    for (std::int64_t ox = 0; ox < out_w; ++ox) {
      const std::int64_t row = oy * out_w + ox;
      std::int64_t column = 0;
      for (std::int64_t c = 0; c < channels; ++c) {
        for (std::int64_t ky = 0; ky < kernel_h; ++ky) {
          for (std::int64_t kx = 0; kx < kernel_w; ++kx) {
            const std::int64_t iy = oy * stride_h - pad_h + ky * dilation_h;
            const std::int64_t ix = ox * stride_w - pad_w + kx * dilation_w;
            const bool inside =
                iy >= 0 && iy < in_h && ix >= 0 && ix < in_w;
            patches.at(row, column) = inside ? input.at(c, iy, ix) : 0.0F;
            ++column;
          }
        }
      }
    }
  }
  return patches;
}

Tensor im2col_plane(const Tensor& plane, std::int64_t kernel_h,
                    std::int64_t kernel_w, std::int64_t stride_h,
                    std::int64_t stride_w, std::int64_t pad_h,
                    std::int64_t pad_w, std::int64_t dilation_h,
                    std::int64_t dilation_w) {
  FUSE_CHECK(plane.shape().rank() == 2)
      << "im2col_plane expects [H, W], got " << plane.shape().to_string();
  const Tensor as_3d =
      plane.reshaped(Shape{1, plane.shape().dim(0), plane.shape().dim(1)});
  return im2col(as_3d, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w,
                dilation_h, dilation_w);
}

}  // namespace fuse::tensor
