// Runtime CPU capability probe for the SIMD kernel dispatch.
//
// cpu_features() runs CPUID once (thread-safe, cached) and reports which
// vector ISAs the *combination* of CPU and OS supports: a feature is only
// reported when the hardware has it AND the OS saves the corresponding
// register state across context switches (checked via OSXSAVE + XGETBV,
// the same dance every runtime dispatcher does — reporting raw CPUID bits
// would crash on kernels that don't save YMM state).
//
// On non-x86 targets every flag is false and the kernel dispatch falls
// back to the portable scalar path; nothing here is a hard dependency.
#pragma once

#include <string>

namespace fuse::util {

/// OS-usable vector capabilities of the executing CPU.
struct CpuFeatures {
  bool sse2 = false;     // baseline on x86-64; false on other arches
  bool avx = false;      // 8-wide float, requires OS YMM state support
  bool fma = false;      // fused multiply-add (FMA3)
  bool avx2 = false;     // 8-wide integer + gathers
  bool avx512f = false;  // reported for telemetry; no kernel uses it yet

  /// Space-separated list of the set flags ("sse2 avx fma avx2"), or
  /// "none" — for logs and --help output.
  std::string to_string() const;
};

/// The probe result, computed once per process.
const CpuFeatures& cpu_features();

}  // namespace fuse::util
