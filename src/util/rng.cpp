#include "util/rng.hpp"

#include <cmath>

namespace fuse::util {

double Rng::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box–Muller on two fresh uniforms; u1 is nudged away from 0 so log() is
  // finite.
  double u1 = uniform();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_ = radius * std::sin(angle);
  has_cached_ = true;
  return radius * std::cos(angle);
}

}  // namespace fuse::util
