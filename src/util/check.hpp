// Error-checking primitives used across the library.
//
// Invariant violations and invalid user input raise fuse::util::Error (an
// std::runtime_error subclass) carrying the failing expression and location.
// The macros are used for argument validation in public APIs; internal
// assumptions additionally use FUSE_DCHECK which compiles out in NDEBUG.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fuse::util {

/// Exception thrown on any precondition or invariant failure in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Builds the exception message and throws. Out-of-line to keep macro
/// expansion small at call sites.
[[noreturn]] void raise_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);

namespace detail {

/// Accumulates an optional human-readable message via operator<<.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    raise_check_failure(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace fuse::util

/// Validates `cond`; on failure throws fuse::util::Error. Supports streaming
/// extra context: FUSE_CHECK(n > 0) << "n=" << n;
#define FUSE_CHECK(cond)                                             \
  if (cond) {                                                        \
  } else                                                             \
    ::fuse::util::detail::CheckMessageBuilder(#cond, __FILE__, __LINE__)

#ifdef NDEBUG
#define FUSE_DCHECK(cond) FUSE_CHECK(true)
#else
#define FUSE_DCHECK(cond) FUSE_CHECK(cond)
#endif
