// Small string/format helpers (libstdc++ 12 lacks <format>).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fuse::util {

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1234567" -> "1,234,567" (used by report printers).
std::string with_commas(std::uint64_t value);

/// Fixed-point decimal with the given precision, e.g. fixed(3.14159, 2) ==
/// "3.14".
std::string fixed(double value, int precision);

/// Human-readable byte size with binary units: "512 B", "1.5 KiB",
/// "3.2 MiB". Exact below 1 KiB, one decimal above.
std::string format_bytes(std::uint64_t bytes);

/// Human-readable count: exact below 10000 ("9999"), one-decimal
/// suffixed above ("12.3k", "4.6M", "7.8B").
std::string format_count(std::uint64_t value);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Lowercases ASCII.
std::string to_lower(std::string text);

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

}  // namespace fuse::util
