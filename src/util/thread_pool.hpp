// Work-stealing thread pool for the sweep engine.
//
// Each worker owns a deque: it pushes/pops its own back (LIFO, cache-warm)
// and steals from other workers' fronts (FIFO, oldest first) when empty.
// All queue access is mutex-guarded per worker ("sharded" locks) — plain,
// portable, and clean under ThreadSanitizer; at sweep-task granularity
// (building a network variant, walking its layers) lock cost is noise.
//
// Semantics:
//   * ThreadPool(0) runs everything inline on the calling thread — the
//     serial fallback used by --threads=1 minus the worker, and by tests
//     that want the exact single-threaded execution order.
//   * parallel_for(n, body) blocks until all n iterations ran; the calling
//     thread participates, so nested parallel_for from inside a task makes
//     progress instead of deadlocking (a nested caller drains its own
//     iteration space itself while waiting).
//   * Nested parallel_for on the SAME pool — called from inside a
//     parallel_for chunk or a submit() task running on this pool — runs
//     entirely inline on the nesting thread. Re-submitting helper chunks
//     from a worker could otherwise park every worker behind inner loops
//     whose helpers never get claimed; inline nesting keeps the outer
//     loop's chunk granularity as the unit of parallelism and makes the
//     serving engine's batch payloads (src/serve) free to fan out with
//     parallel_for without reasoning about which thread runs them.
//     on_worker_thread() exposes the guard for callers that want to
//     branch explicitly.
//   * The first exception thrown by a parallel_for body is captured and
//     rethrown on the calling thread after the loop drains; remaining
//     iterations still run (sweep tasks are pure, so there is nothing to
//     cancel). Tasks given to raw submit() must not throw.
//   * The destructor drains every queued task, then joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fuse::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers; 0 means inline execution.
  explicit ThreadPool(int threads = hardware_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task (round-robin across worker deques). Runs inline
  /// when the pool has no workers. The task must not throw.
  void submit(Task task);

  /// Runs body(0) .. body(n-1), distributing `grain`-sized index chunks
  /// across the workers and the calling thread. Returns when all
  /// iterations completed; rethrows the first body exception.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& body,
                    std::int64_t grain = 1);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static int hardware_threads();

  /// True while the calling thread is executing a task or parallel_for
  /// chunk that belongs to THIS pool (worker thread, or the caller while
  /// it participates in one of this pool's loops). parallel_for uses this
  /// to run nested same-pool loops inline.
  bool on_worker_thread() const;

 private:
  /// RAII marker: the calling thread is running work owned by `pool`.
  /// Nesting-depth aware (a worker can re-enter via an inline nested
  /// loop), thread_local, and scoped to the pool identity so distinct
  /// pools (e.g. the sweep pool driving a serve engine's pool) never
  /// shadow each other.
  class WorkerScope {
   public:
    explicit WorkerScope(const ThreadPool* pool);
    ~WorkerScope();
    WorkerScope(const WorkerScope&) = delete;
    WorkerScope& operator=(const WorkerScope&) = delete;

   private:
    const ThreadPool* prev_;
  };

  struct WorkQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t id);
  bool try_pop(std::size_t worker, Task& out);
  bool try_steal(std::size_t thief, Task& out);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake protocol: pending_ counts tasks sitting in a queue (it is
  // decremented at claim time, under the claimed queue's mutex) and is
  // incremented under sleep_mutex_ so a worker evaluating the wait
  // predicate cannot miss a wakeup.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace fuse::util
