#include "util/ulp.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace fuse::util {

namespace {

/// Maps float bits onto a monotone integer line: 0x80000000 (the -0
/// pattern) and 0x00000000 both land on 0, negatives below, positives
/// above, adjacent floats 1 apart everywhere (denormals included).
std::int64_t ordered_key(float f) {
  std::int32_t bits;
  static_assert(sizeof(bits) == sizeof(f));
  std::memcpy(&bits, &f, sizeof(bits));
  if (bits >= 0) {
    return bits;
  }
  // Negative floats have the sign bit set and magnitude bits ascending
  // away from zero; flip them below the origin.
  return static_cast<std::int64_t>(INT32_MIN) - bits;
}

}  // namespace

std::int64_t ulp_distance(float a, float b) {
  std::int32_t a_bits;
  std::int32_t b_bits;
  std::memcpy(&a_bits, &a, sizeof(a_bits));
  std::memcpy(&b_bits, &b, sizeof(b_bits));
  if (a_bits == b_bits) {
    return 0;
  }
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const std::int64_t d = ordered_key(a) - ordered_key(b);
  return d < 0 ? -d : d;
}

bool ulp_within(float a, float b, const UlpTolerance& tol) {
  if (ulp_distance(a, b) <= tol.max_ulps) {
    return true;
  }
  if (std::isnan(a) || std::isnan(b)) {
    return false;
  }
  return std::fabs(static_cast<double>(a) - static_cast<double>(b)) <=
         tol.abs_tol;
}

UlpTolerance kernel_float_tolerance(std::int64_t k, double magnitude) {
  // Derivation in the header; k <= 0 degenerates to bit-exact.
  if (k <= 0) {
    return UlpTolerance{};
  }
  return UlpTolerance{8 * k + 16,
                      4.0 * static_cast<double>(k) * 0x1p-24 * magnitude};
}

}  // namespace fuse::util
