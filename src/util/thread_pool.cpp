#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::util {

namespace {

// Pool metrics (docs/observability.md): total tasks through submit(),
// tasks a worker claimed from another worker's queue, and the level /
// high-water mark of queued-but-unclaimed tasks.
Counter& tasks_submitted() {
  static Counter& counter = metrics().counter("pool.tasks_submitted");
  return counter;
}
Counter& tasks_stolen() {
  static Counter& counter = metrics().counter("pool.tasks_stolen");
  return counter;
}
Gauge& queue_depth() {
  static Gauge& gauge = metrics().gauge("pool.queue_depth");
  return gauge;
}

// The pool whose work the calling thread is currently executing (nullptr
// on threads not running pool work). One pointer, not a stack: WorkerScope
// saves and restores the previous value, so nesting across distinct pools
// unwinds correctly.
thread_local const ThreadPool* tls_active_pool = nullptr;

}  // namespace

ThreadPool::WorkerScope::WorkerScope(const ThreadPool* pool)
    : prev_(tls_active_pool) {
  tls_active_pool = pool;
}

ThreadPool::WorkerScope::~WorkerScope() { tls_active_pool = prev_; }

bool ThreadPool::on_worker_thread() const {
  return tls_active_pool == this;
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  FUSE_CHECK(threads >= 0) << "thread count must be >= 0, got " << threads;
  queues_.reserve(static_cast<std::size_t>(threads));
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(Task task) {
  FUSE_CHECK(task != nullptr) << "cannot submit an empty task";
  tasks_submitted().add();
  if (workers_.empty()) {
    task();
    return;
  }
  queue_depth().add(1);
  const std::size_t q = next_queue_.fetch_add(1) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker, Task& out) {
  WorkQueue& queue = *queues_[worker];
  std::lock_guard<std::mutex> lock(queue.mutex);
  if (queue.tasks.empty()) {
    return false;
  }
  out = std::move(queue.tasks.back());
  queue.tasks.pop_back();
  pending_.fetch_sub(1);
  queue_depth().add(-1);
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& out) {
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    WorkQueue& queue = *queues_[(thief + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (!queue.tasks.empty()) {
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
      pending_.fetch_sub(1);
      queue_depth().add(-1);
      tasks_stolen().add();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  Task task;
  while (true) {
    if (try_pop(id, task) || try_steal(id, task)) {
      WorkerScope scope(this);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load() || pending_.load() > 0;
    });
    if (stop_.load() && pending_.load() <= 0) {
      return;  // drained: every queued task ran before shutdown
    }
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& body,
                              std::int64_t grain) {
  FUSE_CHECK(n >= 0) << "parallel_for needs n >= 0, got " << n;
  FUSE_CHECK(grain >= 1) << "parallel_for needs grain >= 1, got " << grain;
  if (n == 0) {
    return;
  }
  static Counter& loops = metrics().counter("pool.parallel_fors");
  loops.add();
  ScopedSpan span("pool.parallel_for", "pool");
  if (span.active()) {
    span.annotate("n", static_cast<std::uint64_t>(n));
    span.annotate("grain", static_cast<std::uint64_t>(grain));
  }
  if (workers_.empty() || n <= grain || on_worker_thread()) {
    // Same semantics as the pooled path: the first exception is captured,
    // the remaining iterations still run, then it is rethrown. Nested
    // same-pool loops (on_worker_thread()) take this path too: the outer
    // loop's chunks are the parallelism unit, and re-submitting inner
    // chunks from a worker would leave them unclaimed while every worker
    // sits inside an outer chunk of its own.
    std::exception_ptr error;
    for (std::int64_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
    }
    if (error) {
      std::rethrow_exception(error);
    }
    return;
  }

  struct LoopState {
    std::atomic<std::int64_t> next{0};  // first unclaimed index
    std::atomic<std::int64_t> done{0};  // completed iterations
    std::int64_t n = 0;
    std::int64_t grain = 1;
    const std::function<void(std::int64_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // first body exception, guarded by mutex
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->body = &body;  // outlives the loop: the caller blocks below

  auto run_chunks = [this, state] {
    // Mark the thread as running this pool's work for the chunk bodies:
    // workers are already marked by worker_loop (re-marking is harmless),
    // and this extends the guard to the participating caller so its
    // nested same-pool loops also run inline.
    WorkerScope scope(this);
    while (true) {
      const std::int64_t begin = state->next.fetch_add(state->grain);
      if (begin >= state->n) {
        return;
      }
      const std::int64_t end = std::min(begin + state->grain, state->n);
      try {
        for (std::int64_t i = begin; i < end; ++i) {
          (*state->body)(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) {
          state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(end - begin) + (end - begin) == state->n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };

  const std::int64_t chunks = (n + grain - 1) / grain;
  const std::int64_t helpers =
      std::min<std::int64_t>(static_cast<std::int64_t>(size()), chunks - 1);
  for (std::int64_t i = 0; i < helpers; ++i) {
    submit(run_chunks);
  }
  run_chunks();  // the caller participates (also makes nesting safe)

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&state] { return state->done.load() == state->n; });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace fuse::util
