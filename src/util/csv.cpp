#include "util/csv.hpp"

#include "util/check.hpp"

namespace fuse::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  FUSE_CHECK(out_.good()) << "cannot open CSV output file: " << path;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted.push_back(c);
    }
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace fuse::util
