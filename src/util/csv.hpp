// Minimal CSV writer used by benchmark harnesses to dump the series behind
// each reproduced table/figure.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fuse::util {

/// Writes rows of string fields with RFC-4180-ish quoting. The file is
/// created on construction and flushed on destruction.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Writes one row; fields containing commas/quotes/newlines are quoted.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: header row.
  void write_header(const std::vector<std::string>& names) {
    write_row(names);
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
};

/// Escapes a single CSV field (exposed for tests).
std::string csv_escape(const std::string& field);

}  // namespace fuse::util
