#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace fuse::util {

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{Kind::kString, default_value, help};
}

void CliFlags::add_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  flags_[name] = Flag{Kind::kInt, std::to_string(default_value), help};
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, std::to_string(default_value), help};
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kBool, default_value ? "true" : "false", help};
}

std::vector<std::string> CliFlags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      // Built-in: print the flag listing and exit successfully, so every
      // binary self-documents (and scripts can probe supported flags).
      std::fputs(usage(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    FUSE_CHECK(it != flags_.end()) << "unknown flag --" << name;
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        FUSE_CHECK(i + 1 < argc) << "flag --" << name << " needs a value";
        value = argv[++i];
      }
    }
    if (flag.kind == Kind::kInt) {
      char* end = nullptr;
      std::strtoll(value.c_str(), &end, 10);
      FUSE_CHECK(end != nullptr && *end == '\0')
          << "flag --" << name << " expects an integer, got '" << value
          << "'";
    } else if (flag.kind == Kind::kDouble) {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      FUSE_CHECK(end != nullptr && *end == '\0')
          << "flag --" << name << " expects a number, got '" << value << "'";
    } else if (flag.kind == Kind::kBool) {
      const std::string lower = to_lower(value);
      FUSE_CHECK(lower == "true" || lower == "false" || lower == "1" ||
                 lower == "0")
          << "flag --" << name << " expects a boolean, got '" << value << "'";
      value = (lower == "true" || lower == "1") ? "true" : "false";
    }
    flag.value = value;
  }
  return positional;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Kind kind) const {
  auto it = flags_.find(name);
  FUSE_CHECK(it != flags_.end()) << "flag --" << name << " not registered";
  FUSE_CHECK(it->second.kind == kind)
      << "flag --" << name << " accessed with the wrong type";
  return it->second;
}

std::string CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.value << ")  "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace fuse::util
