#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace fuse::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  FUSE_CHECK(needed >= 0) << "vsnprintf failed for format: " << fmt;
  std::string result(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string fixed(double value, int precision) {
  return format("%.*f", precision, value);
}

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  if (bytes < 1024) {
    return std::to_string(bytes) + " B";
  }
  double scaled = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (scaled >= 1024.0 && unit + 1 < std::size(kUnits)) {
    scaled /= 1024.0;
    ++unit;
  }
  return format("%.1f %s", scaled, kUnits[unit]);
}

std::string format_count(std::uint64_t value) {
  static const char* const kSuffixes[] = {"k", "M", "B", "T"};
  if (value < 10000) {
    return std::to_string(value);
  }
  double scaled = static_cast<double>(value) / 1000.0;
  std::size_t suffix = 0;
  while (scaled >= 1000.0 && suffix + 1 < std::size(kSuffixes)) {
    scaled /= 1000.0;
    ++suffix;
  }
  return format("%.1f%s", scaled, kSuffixes[suffix]);
}

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(text);
  while (std::getline(in, field, delimiter)) {
    fields.push_back(field);
  }
  if (!text.empty() && text.back() == delimiter) {
    fields.emplace_back();
  }
  return fields;
}

std::string to_lower(std::string text) {
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return text;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace fuse::util
