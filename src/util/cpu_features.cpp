#include "util/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#define FUSE_CPU_X86 1
#else
#define FUSE_CPU_X86 0
#endif

namespace fuse::util {

namespace {

#if FUSE_CPU_X86

/// XCR0 via XGETBV. Only call when CPUID reports OSXSAVE, otherwise the
/// instruction faults.
std::uint64_t xcr0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures probe() {
  CpuFeatures f;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return f;
  }
  f.sse2 = (edx & (1U << 26)) != 0;
  const bool osxsave = (ecx & (1U << 27)) != 0;
  const bool cpu_avx = (ecx & (1U << 28)) != 0;
  const bool cpu_fma = (ecx & (1U << 12)) != 0;
  // YMM state (XCR0 bits 1|2) must be OS-enabled before any AVX flag is
  // usable; ZMM additionally needs opmask + upper-half state (bits 5-7).
  const std::uint64_t x = osxsave ? xcr0() : 0;
  const bool os_ymm = (x & 0x6) == 0x6;
  const bool os_zmm = os_ymm && (x & 0xE0) == 0xE0;
  f.avx = cpu_avx && os_ymm;
  f.fma = cpu_fma && os_ymm;
  unsigned eax7 = 0;
  unsigned ebx7 = 0;
  unsigned ecx7 = 0;
  unsigned edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
    f.avx2 = f.avx && (ebx7 & (1U << 5)) != 0;
    f.avx512f = os_zmm && (ebx7 & (1U << 16)) != 0;
  }
  return f;
}

#else  // !FUSE_CPU_X86

CpuFeatures probe() { return CpuFeatures{}; }

#endif

}  // namespace

std::string CpuFeatures::to_string() const {
  std::string out;
  const auto append = [&out](bool set, const char* name) {
    if (!set) {
      return;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += name;
  };
  append(sse2, "sse2");
  append(avx, "avx");
  append(fma, "fma");
  append(avx2, "avx2");
  append(avx512f, "avx512f");
  return out.empty() ? "none" : out;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace fuse::util
