// Console table printer: fixed-width columns sized to content, the style
// used by every bench binary to mirror the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fuse::util {

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator at this position.
  void add_separator();

  /// Renders to the stream.
  void print(std::ostream& out) const;

  /// Renders to a string (used by tests).
  std::string to_string() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace fuse::util
