// Process-wide, thread-safe metrics registry + scoped-span API.
//
// Three metric shapes, all cycle- or count-valued (no wall-clock values in
// any golden path — the only clock in this module is the steady_clock
// behind ScopedSpan, which fires only when a TraceSink is attached):
//   * Counter   — monotonic uint64, relaxed atomic add.
//   * Gauge     — int64 level with a high-water mark (queue depths).
//   * Histogram — fixed log2 buckets (bucket i counts values whose
//     bit_width is i, i.e. [2^(i-1), 2^i)), atomic per-bucket counts.
//
// Metrics are owned by the registry and looked up by name; call sites
// cache the returned reference in a function-local static so the hot path
// is a single relaxed atomic increment:
//
//   static util::Counter& steals = util::metrics().counter("pool.steals");
//   steals.add();
//
// ScopedSpan emits a Chrome trace_event complete span into the globally
// attached TraceSink (trace_sink.hpp); with no sink attached constructing
// one is a single atomic load and nothing else.
//
// Compile-time gate: FUSE_TELEMETRY (default 1; the CMake option
// FUSE_TELEMETRY=OFF defines it to 0). With it off, every class here
// becomes an inline no-op stub — instrumented call sites compile to
// nothing and the registry reports no metrics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef FUSE_TELEMETRY
#define FUSE_TELEMETRY 1
#endif

#if FUSE_TELEMETRY

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/trace_sink.hpp"

namespace fuse::util {

/// True in builds that compile the real instrumentation.
constexpr bool telemetry_enabled() { return true; }

/// Small per-thread integer id (0, 1, 2, ... in first-use order) used as
/// the "tid" of runtime trace events.
int telemetry_thread_id();

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter. Test isolation only — production metrics are
  /// monotonic.
  void reset();

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  /// Adds a (possibly negative) delta and updates the high-water mark.
  void add(std::int64_t delta);
  void set(std::int64_t value);
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

 private:
  void raise_max(std::int64_t candidate);

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

class Histogram {
 public:
  /// Bucket 0 counts zeros; bucket i >= 1 counts values in [2^(i-1), 2^i);
  /// the last bucket is open-ended.
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t value);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int bucket) const;
  void reset();

  static int bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lower_bound(int bucket);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name -> metric table. Lookups take a mutex (cache the reference);
/// returned references stay valid for the registry's lifetime. Names are
/// dot-separated lowercase paths, "module.metric" (docs/observability.md
/// has the catalog).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — valid
  /// JSON, metrics sorted by name, histogram buckets as nonzero
  /// [lower_bound, count] pairs.
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

  /// Zeroes every registered metric (test isolation). Registered
  /// references stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumentation site reports into.
MetricsRegistry& metrics();

/// Wall-clock duration statistics over named spans. ScopedSpan feeds the
/// globally attached collector (like the TraceSink, attachment is opt-in
/// — benches wire it to --profile-json); each span contributes one sample
/// of its total wall time plus its SELF time (total minus the time spent
/// inside nested spans on the same thread, tracked via a thread-local
/// span stack). Samples are stored exactly, so the percentile summaries
/// are exact order statistics with linear interpolation — not the log2
/// approximation of Histogram.
class ProfileCollector {
 public:
  struct TimerStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;  // sum of span wall times (children incl.)
    std::uint64_t self_us = 0;   // sum excluding nested-span time
    std::uint64_t min_us = 0;
    std::uint64_t max_us = 0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
  };

  /// One finished span. Thread-safe; called by ~ScopedSpan.
  void record(const char* name, std::uint64_t total_us,
              std::uint64_t self_us);

  /// Per-name summaries, sorted by name.
  std::vector<TimerStats> snapshot() const;

  /// {"schema": 1, "timers": {name: {count, total_us, self_us, min_us,
  /// max_us, p50_us, p90_us, p99_us, buckets: [[lb, n], ...]}, ...}} —
  /// buckets use Histogram's log2 boundaries for plotting.
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

  void reset();

  /// Exact percentile of an ascending-sorted sample vector: rank
  /// q * (n - 1), linearly interpolated between the surrounding samples.
  /// 0 samples -> 0; 1 sample -> that sample. q in [0, 1].
  static double percentile(const std::vector<std::uint64_t>& sorted,
                           double q);

 private:
  struct Series {
    std::vector<std::uint64_t> samples;  // total wall us, arrival order
    std::uint64_t self_us = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
};

/// The attached collector, or nullptr. Same contract as the trace sink:
/// attach before spawning instrumented work, detach before destroying.
ProfileCollector* global_profile_collector();
void set_global_profile_collector(ProfileCollector* collector);

/// RAII runtime span: records [construction, destruction) as a trace_event
/// complete span ("ph":"X") in wall microseconds on the calling thread's
/// track — IF a global TraceSink is attached — and as one duration sample
/// in the globally attached ProfileCollector, if any. With neither
/// attached, constructing one is two atomic loads and nothing else.
/// `name`/`category` must outlive the span (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "sweep");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const {
    return sink_ != nullptr || collector_ != nullptr;
  }

  /// Attaches a string / numeric arg shown in the viewer's detail pane.
  /// No-ops (arguments not evaluated further) when no sink is attached.
  void annotate(const char* key, std::string value);
  void annotate(const char* key, std::uint64_t value);

 private:
  TraceSink* sink_;
  ProfileCollector* collector_;
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;       // sink clock (sink attached)
  std::uint64_t prof_start_ns_ = 0;  // steady_clock (collector attached)
  std::vector<TraceArg> args_;
};

}  // namespace fuse::util

#else  // !FUSE_TELEMETRY — inline no-op stubs, same API surface.

namespace fuse::util {

constexpr bool telemetry_enabled() { return false; }

inline int telemetry_thread_id() { return 0; }

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void add(std::int64_t) {}
  void set(std::int64_t) {}
  std::int64_t value() const { return 0; }
  std::int64_t max() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;
  void observe(std::uint64_t) {}
  std::uint64_t count() const { return 0; }
  std::uint64_t sum() const { return 0; }
  std::uint64_t bucket_count(int) const { return 0; }
  static int bucket_index(std::uint64_t) { return 0; }
  static std::uint64_t bucket_lower_bound(int) { return 0; }
  void reset() {}
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&) { return histogram_; }
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

MetricsRegistry& metrics();

class ProfileCollector {
 public:
  struct TimerStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t self_us = 0;
    std::uint64_t min_us = 0;
    std::uint64_t max_us = 0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
  };

  void record(const char*, std::uint64_t, std::uint64_t) {}
  std::vector<TimerStats> snapshot() const { return {}; }
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;
  void reset() {}
  static double percentile(const std::vector<std::uint64_t>&, double) {
    return 0.0;
  }
};

inline ProfileCollector* global_profile_collector() { return nullptr; }
inline void set_global_profile_collector(ProfileCollector*) {}

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, const char* = "sweep") {}
  bool active() const { return false; }
  void annotate(const char*, std::string) {}
  void annotate(const char*, std::uint64_t) {}
};

}  // namespace fuse::util

#endif  // FUSE_TELEMETRY
