#include "util/check.hpp"

#include <sstream>

namespace fuse::util {

void raise_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream out;
  out << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw Error(out.str());
}

}  // namespace fuse::util
