// Bounded-ULP float comparison for the SIMD kernel differential tests.
//
// The scalar kernel ISA reproduces the reference oracles bit-for-bit, but
// the AVX2/FMA micro-kernels accumulate in float with fused products, so
// their outputs differ from the double-accumulated references by a small,
// boundable amount. This header is the one place that bound lives; the
// derivation (mirrored in docs/kernels.md) is:
//
//   A length-k float dot product evaluated in ANY fixed order — scalar,
//   8-lane vector partial sums, with or without FMA — has forward error
//     |fl(s) - s| <= gamma_k * S,   gamma_k = k*u / (1 - k*u),  u = 2^-24,
//   where S = sum_i |a_i * b_i| (Higham, Accuracy and Stability of
//   Numerical Algorithms, ch. 3-4; FMA only *removes* rounding steps).
//   The reference computes s in double and rounds once, so
//     |fast - ref| <= gamma_k * S + ulp(ref)      (double-acc reference)
//     |fast - ref| <= 2 * gamma_k * S             (float-acc reference)
//   Dividing by ulp(ref) ~ |ref| * u gives, with cond = S / |s|:
//     ulp_distance <= 2 * k * cond + 1.
//
//   Outputs with small condition number (cond <= 4) therefore land within
//   8k+1 ULPs — the relative branch. Outputs with heavy cancellation have
//   unbounded cond but still obey the ABSOLUTE bound 2*gamma_k*S, so the
//   comparison also passes when |a - b| <= 4*k*u*M for a caller-supplied
//   magnitude M >= S. Every element obeying the theory bound passes one
//   of the two branches; a kernel indexing bug (error ~ one whole
//   product) exceeds both by orders of magnitude.
#pragma once

#include <cstdint>

namespace fuse::util {

/// Distance between two floats in units in the last place, measured in
/// the monotone integer bit-space (so it is exact across exponent
/// boundaries and through zero: distance(-x, x) = 2 * distance(0, x)).
/// +0 and -0 are 0 apart; if either value is NaN the distance is
/// INT64_MAX unless the two are bit-identical.
std::int64_t ulp_distance(float a, float b);

/// The two-branch tolerance: values compare equal when their ULP distance
/// is within max_ulps (relative branch) OR their absolute difference is
/// within abs_tol (cancellation branch). {0, 0.0} means bit-exact.
struct UlpTolerance {
  std::int64_t max_ulps = 0;
  double abs_tol = 0.0;
};

/// True when a and b are within `tol` (see above). NaNs compare equal
/// only when bit-identical.
bool ulp_within(float a, float b, const UlpTolerance& tol);

/// The documented kernel tolerance for a reduction of length k whose
/// absolute-product sum S is bounded by `magnitude`:
///   max_ulps = 8*k + 16          (cond <= 4, 2x slack on 2*k*cond + 1)
///   abs_tol  = 4*k*2^-24 * magnitude   (2x slack on 2*gamma_k*S)
/// Callers bound magnitude as k * max|a| * max|b| (+ |bias|).
UlpTolerance kernel_float_tolerance(std::int64_t k, double magnitude);

}  // namespace fuse::util
