// Tiny command-line flag parser for the example/bench executables.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags are
// an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fuse::util {

/// Declarative flag set. Register flags with defaults, then parse().
class CliFlags {
 public:
  /// Registers a flag with a default and help text.
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Throws fuse::util::Error on unknown flags or bad values.
  /// Returns leftover positional arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Usage text listing all registered flags.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    std::string value;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace fuse::util
