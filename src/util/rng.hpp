// Deterministic random number generation.
//
// All stochastic parts of the library (weight init, synthetic datasets,
// property-test sweeps) draw from SplitMix64 seeded explicitly, so every
// run, test, and benchmark is reproducible bit-for-bit across platforms —
// unlike std::mt19937 + std::*_distribution whose outputs are
// implementation-defined.
#pragma once

#include <cstdint>
#include <limits>

namespace fuse::util {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // modulo bias is negligible for the n used in this library (< 2^32).
    return next_u64() % n;
  }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

 private:
  std::uint64_t state_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace fuse::util
