#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace fuse::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_separator = [&] {
    out << '+';
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
          << " |";
    }
    out << '\n';
  };

  print_separator();
  print_cells(header_);
  print_separator();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_separator();
    } else {
      print_cells(row.cells);
    }
  }
  print_separator();
}

std::string TablePrinter::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace fuse::util
