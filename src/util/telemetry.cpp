#include "util/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <fstream>
#include <ostream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace fuse::util {

#if FUSE_TELEMETRY

int telemetry_thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1);
  return id;
}

void Gauge::add(std::int64_t delta) {
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_max(now);
}

void Gauge::set(std::int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  raise_max(value);
}

void Gauge::raise_max(std::int64_t candidate) {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_index(std::uint64_t value) {
  // The top bucket is open-ended so 64-bit-wide values stay in range.
  return value == 0 ? 0
                    : std::min(kBuckets - 1,
                               static_cast<int>(std::bit_width(value)));
}

std::uint64_t Histogram::bucket_lower_bound(int bucket) {
  FUSE_CHECK(bucket >= 0 && bucket < kBuckets) << "bucket " << bucket;
  return bucket == 0 ? 0 : 1ULL << (bucket - 1);
}

void Histogram::observe(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(int bucket) const {
  FUSE_CHECK(bucket >= 0 && bucket < kBuckets) << "bucket " << bucket;
  return buckets_[bucket].load(std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"value\": " << gauge->value()
        << ", \"max\": " << gauge->max() << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << histogram->count()
        << ", \"sum\": " << histogram->sum() << ", \"buckets\": [";
    bool first_bucket = true;
    for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
      const std::uint64_t n = histogram->bucket_count(bucket);
      if (n == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << '['
          << Histogram::bucket_lower_bound(bucket) << ", " << n << ']';
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void Counter::reset() { value_.store(0, std::memory_order_relaxed); }

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

namespace {

std::atomic<ProfileCollector*> g_profile_collector{nullptr};

// Per-thread stack of child-time accumulators: the top entry sums the
// wall time of spans nested inside the current span on this thread, which
// is exactly what the parent subtracts to get its self time. Spans are
// strict-LIFO RAII objects, so the stack discipline holds by construction.
thread_local std::vector<std::uint64_t> t_span_child_ns;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProfileCollector* global_profile_collector() {
  return g_profile_collector.load(std::memory_order_acquire);
}

void set_global_profile_collector(ProfileCollector* collector) {
  g_profile_collector.store(collector, std::memory_order_release);
}

void ProfileCollector::record(const char* name, std::uint64_t total_us,
                              std::uint64_t self_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_[name];
  series.samples.push_back(total_us);
  series.self_us += self_us;
}

double ProfileCollector::percentile(
    const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  FUSE_CHECK(q >= 0.0 && q <= 1.0) << "percentile q=" << q;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const double low = static_cast<double>(sorted[lo]);
  if (frac == 0.0 || lo + 1 == sorted.size()) {
    return low;
  }
  return low + frac * (static_cast<double>(sorted[lo + 1]) - low);
}

std::vector<ProfileCollector::TimerStats> ProfileCollector::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimerStats> result;
  result.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    TimerStats stats;
    stats.name = name;
    stats.count = series.samples.size();
    stats.self_us = series.self_us;
    std::vector<std::uint64_t> sorted = series.samples;
    std::sort(sorted.begin(), sorted.end());
    for (const std::uint64_t sample : sorted) {
      stats.total_us += sample;
    }
    if (!sorted.empty()) {
      stats.min_us = sorted.front();
      stats.max_us = sorted.back();
    }
    stats.p50_us = percentile(sorted, 0.50);
    stats.p90_us = percentile(sorted, 0.90);
    stats.p99_us = percentile(sorted, 0.99);
    result.push_back(std::move(stats));
  }
  return result;
}

void ProfileCollector::write_json(std::ostream& out) const {
  const std::vector<TimerStats> timers = snapshot();
  out << "{\n  \"schema\": 1,\n  \"timers\": {";
  bool first = true;
  for (const TimerStats& stats : timers) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(stats.name)
        << "\": {\"count\": " << stats.count
        << ", \"total_us\": " << stats.total_us
        << ", \"self_us\": " << stats.self_us
        << ", \"min_us\": " << stats.min_us
        << ", \"max_us\": " << stats.max_us
        << ", \"p50_us\": " << fixed(stats.p50_us, 1)
        << ", \"p90_us\": " << fixed(stats.p90_us, 1)
        << ", \"p99_us\": " << fixed(stats.p99_us, 1) << ", \"buckets\": [";
    // log2 bucketization of the exact samples, Histogram's boundaries.
    std::uint64_t buckets[Histogram::kBuckets] = {};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const std::uint64_t sample : series_.at(stats.name).samples) {
        ++buckets[Histogram::bucket_index(sample)];
      }
    }
    bool first_bucket = true;
    for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
      if (buckets[bucket] == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << '['
          << Histogram::bucket_lower_bound(bucket) << ", "
          << buckets[bucket] << ']';
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void ProfileCollector::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open profile output file " << path;
  write_json(out);
}

void ProfileCollector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : sink_(global_trace_sink()),
      collector_(global_profile_collector()),
      name_(name),
      category_(category) {
  if (sink_ != nullptr) {
    start_us_ = sink_->now_us();
  }
  if (collector_ != nullptr) {
    prof_start_ns_ = steady_now_ns();
    t_span_child_ns.push_back(0);
  }
}

ScopedSpan::~ScopedSpan() {
  if (sink_ != nullptr) {
    sink_->complete_event(name_, category_, start_us_,
                          sink_->now_us() - start_us_,
                          telemetry_thread_id(), std::move(args_));
  }
  if (collector_ != nullptr) {
    const std::uint64_t duration_ns = steady_now_ns() - prof_start_ns_;
    const std::uint64_t child_ns = t_span_child_ns.back();
    t_span_child_ns.pop_back();
    if (!t_span_child_ns.empty()) {
      t_span_child_ns.back() += duration_ns;
    }
    const std::uint64_t self_ns =
        duration_ns > child_ns ? duration_ns - child_ns : 0;
    collector_->record(name_, duration_ns / 1000, self_ns / 1000);
  }
}

void ScopedSpan::annotate(const char* key, std::string value) {
  if (sink_ != nullptr) {
    args_.push_back(trace_str(key, std::move(value)));
  }
}

void ScopedSpan::annotate(const char* key, std::uint64_t value) {
  if (sink_ != nullptr) {
    args_.push_back(trace_num(key, value));
  }
}

#else  // !FUSE_TELEMETRY

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": "
         "{}\n}\n";
}

void ProfileCollector::write_json(std::ostream& out) const {
  out << "{\n  \"schema\": 1,\n  \"timers\": {}\n}\n";
}

void ProfileCollector::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open profile output file " << path;
  write_json(out);
}

#endif  // FUSE_TELEMETRY

MetricsRegistry& metrics() {
  // Intentionally leaked: the process-wide SweepEngine's thread pool (also
  // a function-local static) bumps pool metrics while draining during its
  // destructor, so the registry must outlive every other static.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open stats output file " << path;
  write_json(out);
}

}  // namespace fuse::util
