#include "util/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <ostream>

#include "util/check.hpp"

namespace fuse::util {

#if FUSE_TELEMETRY

int telemetry_thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1);
  return id;
}

void Gauge::add(std::int64_t delta) {
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_max(now);
}

void Gauge::set(std::int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  raise_max(value);
}

void Gauge::raise_max(std::int64_t candidate) {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_index(std::uint64_t value) {
  // The top bucket is open-ended so 64-bit-wide values stay in range.
  return value == 0 ? 0
                    : std::min(kBuckets - 1,
                               static_cast<int>(std::bit_width(value)));
}

std::uint64_t Histogram::bucket_lower_bound(int bucket) {
  FUSE_CHECK(bucket >= 0 && bucket < kBuckets) << "bucket " << bucket;
  return bucket == 0 ? 0 : 1ULL << (bucket - 1);
}

void Histogram::observe(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(int bucket) const {
  FUSE_CHECK(bucket >= 0 && bucket < kBuckets) << "bucket " << bucket;
  return buckets_[bucket].load(std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"value\": " << gauge->value()
        << ", \"max\": " << gauge->max() << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << histogram->count()
        << ", \"sum\": " << histogram->sum() << ", \"buckets\": [";
    bool first_bucket = true;
    for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
      const std::uint64_t n = histogram->bucket_count(bucket);
      if (n == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << '['
          << Histogram::bucket_lower_bound(bucket) << ", " << n << ']';
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void Counter::reset() { value_.store(0, std::memory_order_relaxed); }

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : sink_(global_trace_sink()), name_(name), category_(category) {
  if (sink_ != nullptr) {
    start_us_ = sink_->now_us();
  }
}

ScopedSpan::~ScopedSpan() {
  if (sink_ != nullptr) {
    sink_->complete_event(name_, category_, start_us_,
                          sink_->now_us() - start_us_,
                          telemetry_thread_id(), std::move(args_));
  }
}

void ScopedSpan::annotate(const char* key, std::string value) {
  if (sink_ != nullptr) {
    args_.push_back(trace_str(key, std::move(value)));
  }
}

void ScopedSpan::annotate(const char* key, std::uint64_t value) {
  if (sink_ != nullptr) {
    args_.push_back(trace_num(key, value));
  }
}

#else  // !FUSE_TELEMETRY

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": "
         "{}\n}\n";
}

#endif  // FUSE_TELEMETRY

MetricsRegistry& metrics() {
  // Intentionally leaked: the process-wide SweepEngine's thread pool (also
  // a function-local static) bumps pool metrics while draining during its
  // destructor, so the registry must outlive every other static.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open stats output file " << path;
  write_json(out);
}

}  // namespace fuse::util
