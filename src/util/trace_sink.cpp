#include "util/trace_sink.hpp"

#include <atomic>
#include <fstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace fuse::util {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

}  // namespace

TraceSink* global_trace_sink() {
  return g_sink.load(std::memory_order_acquire);
}

void set_global_trace_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceArg trace_num(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), /*is_number=*/true};
}

TraceArg trace_num(std::string key, double value) {
  return TraceArg{std::move(key), format("%.6f", value), /*is_number=*/true};
}

TraceArg trace_str(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), /*is_number=*/false};
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceSink::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceSink::append(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceSink::complete_event(std::string name, std::string category,
                               std::uint64_t ts, std::uint64_t dur, int tid,
                               std::vector<TraceArg> args) {
  Event event;
  event.phase = 'X';
  event.name = std::move(name);
  event.category = std::move(category);
  event.ts = ts;
  event.dur = dur;
  event.tid = tid;
  event.args = std::move(args);
  append(std::move(event));
}

void TraceSink::counter_event(
    std::string name, std::uint64_t ts, int tid,
    std::vector<std::pair<std::string, std::uint64_t>> series) {
  Event event;
  event.phase = 'C';
  event.name = std::move(name);
  event.ts = ts;
  event.tid = tid;
  event.args.reserve(series.size());
  for (auto& [key, value] : series) {
    event.args.push_back(trace_num(std::move(key), value));
  }
  append(std::move(event));
}

void TraceSink::process_name(std::string name) {
  Event event;
  event.phase = 'M';
  event.name = "process_name";
  event.args.push_back(trace_str("name", std::move(name)));
  append(std::move(event));
}

void TraceSink::thread_name(int tid, std::string name) {
  Event event;
  event.phase = 'M';
  event.name = "thread_name";
  event.tid = tid;
  event.args.push_back(trace_str("name", std::move(name)));
  append(std::move(event));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceSink::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"ph\":\"" << event.phase << "\",\"name\":\""
        << json_escape(event.name) << '"';
    if (!event.category.empty()) {
      out << ",\"cat\":\"" << json_escape(event.category) << '"';
    }
    // Metadata events carry no timestamp; everything else gets ts (and X
    // events their duration).
    if (event.phase != 'M') {
      out << ",\"ts\":" << event.ts;
    }
    if (event.phase == 'X') {
      out << ",\"dur\":" << event.dur;
    }
    out << ",\"pid\":1,\"tid\":" << event.tid;
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        const TraceArg& arg = event.args[i];
        if (i != 0) {
          out << ',';
        }
        out << '"' << json_escape(arg.key) << "\":";
        if (arg.is_number) {
          out << arg.value;
        } else {
          out << '"' << json_escape(arg.value) << '"';
        }
      }
      out << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceSink::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open trace output file " << path;
  write_json(out);
}

}  // namespace fuse::util
