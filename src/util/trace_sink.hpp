// Chrome trace-event / Perfetto-compatible JSON sink.
//
// A TraceSink collects trace events — complete spans ("ph":"X"), counter
// series ("ph":"C"), and process/thread metadata ("ph":"M") — and writes
// them as the JSON object format ({"traceEvents": [...]}) that
// ui.perfetto.dev and chrome://tracing open directly.
//
// Timestamps are dimensionless integers interpreted by the viewer as
// microseconds. Two timelines use this sink:
//   * runtime spans (util/telemetry.hpp ScopedSpan): wall microseconds
//     since the sink's construction (steady_clock), and
//   * simulated layer timelines (systolic/trace.hpp
//     write_fold_trace_json): array CYCLES used as the "ts" unit, so one
//     viewer microsecond reads as one array cycle.
// The two are never mixed in one file: benches write runtime traces,
// profile_network writes simulated ones.
//
// Thread safety: every recording call appends under one mutex. Event order
// in the file follows recording order, which may vary across runs with
// worker threads — trace files are diagnostics, never golden output.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fuse::util {

/// One "args" entry of a trace event. `is_number` values are emitted raw
/// (caller renders them with std::to_string); others are JSON-escaped
/// strings.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

/// Numeric arg shorthand.
TraceArg trace_num(std::string key, std::uint64_t value);
/// Floating-point arg shorthand (fixed 6-digit precision).
TraceArg trace_num(std::string key, double value);
/// String arg shorthand.
TraceArg trace_str(std::string key, std::string value);

class TraceSink {
 public:
  TraceSink();

  /// Complete event ("ph":"X"): a span [ts, ts + dur) on track `tid`.
  void complete_event(std::string name, std::string category,
                      std::uint64_t ts, std::uint64_t dur, int tid,
                      std::vector<TraceArg> args = {});

  /// Counter event ("ph":"C"): one sample of the named counter series at
  /// `ts`. Multiple (series, value) pairs stack in the viewer.
  void counter_event(std::string name, std::uint64_t ts, int tid,
                     std::vector<std::pair<std::string, std::uint64_t>>
                         series);

  /// Metadata: labels the process / a thread track in the viewer.
  void process_name(std::string name);
  void thread_name(int tid, std::string name);

  /// Microseconds elapsed since this sink was constructed (steady clock) —
  /// the timestamp base for runtime spans.
  std::uint64_t now_us() const;

  std::size_t event_count() const;

  /// Serializes {"traceEvents": [...]} (valid JSON, stable field order).
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

 private:
  struct Event {
    char phase = 'X';
    std::string name;
    std::string category;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    int tid = 0;
    std::vector<TraceArg> args;
  };

  void append(Event event);

  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Process-wide sink attachment point. ScopedSpan (telemetry.hpp) and the
/// pool/sweep instrumentation emit into the attached sink; with none
/// attached (the default) every emit site is a single relaxed atomic load.
TraceSink* global_trace_sink();
void set_global_trace_sink(TraceSink* sink);

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& text);

}  // namespace fuse::util
