#include "nn/quantized.hpp"

#include "nn/kernels.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::nn {

using tensor::QuantizedTensor;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// Common operand validation for the INT8 kernels.
void check_quantized_operands(const QuantizedTensor& input,
                              const QuantizedTensor& weight) {
  FUSE_CHECK(weight.params.zero_point == 0)
      << "INT8 kernels require symmetric weight quantization "
         "(zero_point == 0), got "
      << weight.params.zero_point;
  FUSE_CHECK(input.params.scale > 0.0F && weight.params.scale > 0.0F)
      << "quantization scales must be positive";
}

/// Same dispatch-counter bookkeeping as the float operators in ops.cpp.
bool use_fast_backend() {
  if (kernel_backend() == KernelBackend::kFast) {
    static util::Counter& fast =
        util::metrics().counter("kernels.dispatch.fast");
    fast.add();
    return true;
  }
  static util::Counter& reference =
      util::metrics().counter("kernels.dispatch.reference");
  reference.add();
  return false;
}

}  // namespace

Tensor conv2d_int8(const QuantizedTensor& input,
                   const QuantizedTensor& weight,
                   const Conv2dParams& params) {
  check_quantized_operands(input, weight);
  FUSE_CHECK(input.shape.rank() == 4 && weight.shape.rank() == 4)
      << "conv2d_int8 expects NCHW input and OIHW weight";
  FUSE_CHECK(input.shape.dim(1) % params.groups == 0 &&
             weight.shape.dim(0) % params.groups == 0 &&
             weight.shape.dim(1) == input.shape.dim(1) / params.groups)
      << "conv2d_int8 group geometry mismatch";
  if (use_fast_backend()) {
    return kernels::conv2d_int8_fast(input, weight, params);
  }
  return conv2d_int8_reference(input, weight, params);
}

Tensor conv2d_int8_reference(const QuantizedTensor& input,
                             const QuantizedTensor& weight,
                             const Conv2dParams& params) {
  static util::Counter& counter =
      util::metrics().counter("kernels.reference.conv2d_int8");
  counter.add();
  check_quantized_operands(input, weight);
  const std::int64_t batch = input.shape.dim(0);
  const std::int64_t in_c = input.shape.dim(1);
  const std::int64_t in_h = input.shape.dim(2);
  const std::int64_t in_w = input.shape.dim(3);
  const std::int64_t out_c = weight.shape.dim(0);
  const std::int64_t kernel_h = weight.shape.dim(2);
  const std::int64_t kernel_w = weight.shape.dim(3);
  FUSE_CHECK(in_c % params.groups == 0 && out_c % params.groups == 0 &&
             weight.shape.dim(1) == in_c / params.groups)
      << "conv2d_int8 group geometry mismatch";
  const std::int64_t group_in = in_c / params.groups;
  const std::int64_t group_out = out_c / params.groups;
  const std::int64_t out_h = tensor::conv_out_dim(
      in_h, kernel_h, params.stride_h, params.pad_h, params.dilation_h);
  const std::int64_t out_w = tensor::conv_out_dim(
      in_w, kernel_w, params.stride_w, params.pad_w, params.dilation_w);

  const std::int32_t zp_in = input.params.zero_point;
  const float requant_scale = input.params.scale * weight.params.scale;

  const auto in_at = [&](std::int64_t n, std::int64_t c, std::int64_t y,
                         std::int64_t x) -> std::int32_t {
    return static_cast<std::int32_t>(input.at_flat(
        ((n * in_c + c) * in_h + y) * in_w + x));
  };
  const auto w_at = [&](std::int64_t oc, std::int64_t ic, std::int64_t ky,
                        std::int64_t kx) -> std::int32_t {
    return static_cast<std::int32_t>(weight.at_flat(
        ((oc * group_in + ic) * kernel_h + ky) * kernel_w + kx));
  };

  Tensor output(Shape{batch, out_c, out_h, out_w});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const std::int64_t group = oc / group_out;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          std::int32_t acc = 0;  // INT32 accumulator, as in the hardware
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            const std::int64_t c = group * group_in + ic;
            for (std::int64_t ky = 0; ky < kernel_h; ++ky) {
              const std::int64_t iy = oy * params.stride_h - params.pad_h +
                                      ky * params.dilation_h;
              if (iy < 0 || iy >= in_h) {
                continue;  // zero padding: (zp - zp) * w == 0
              }
              for (std::int64_t kx = 0; kx < kernel_w; ++kx) {
                const std::int64_t ix = ox * params.stride_w -
                                        params.pad_w +
                                        kx * params.dilation_w;
                if (ix < 0 || ix >= in_w) {
                  continue;
                }
                acc += (in_at(n, c, iy, ix) - zp_in) * w_at(oc, ic, ky, kx);
              }
            }
          }
          output.at(n, oc, oy, ox) =
              requant_scale * static_cast<float>(acc);
        }
      }
    }
  }
  return output;
}

Tensor linear_int8(const QuantizedTensor& input,
                   const QuantizedTensor& weight) {
  check_quantized_operands(input, weight);
  FUSE_CHECK(input.shape.rank() == 2 && weight.shape.rank() == 2 &&
             input.shape.dim(1) == weight.shape.dim(1))
      << "linear_int8 shape mismatch";
  if (use_fast_backend()) {
    return kernels::linear_int8_fast(input, weight);
  }
  return linear_int8_reference(input, weight);
}

Tensor linear_int8_reference(const QuantizedTensor& input,
                             const QuantizedTensor& weight) {
  static util::Counter& counter =
      util::metrics().counter("kernels.reference.linear_int8");
  counter.add();
  check_quantized_operands(input, weight);
  const std::int64_t batch = input.shape.dim(0);
  const std::int64_t in_f = input.shape.dim(1);
  const std::int64_t out_f = weight.shape.dim(0);
  const std::int32_t zp_in = input.params.zero_point;
  const float requant_scale = input.params.scale * weight.params.scale;

  Tensor output(Shape{batch, out_f});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_f; ++o) {
      std::int32_t acc = 0;
      for (std::int64_t i = 0; i < in_f; ++i) {
        acc += (static_cast<std::int32_t>(input.at_flat(n * in_f + i)) -
                zp_in) *
               static_cast<std::int32_t>(weight.at_flat(o * in_f + i));
      }
      output.at(n, o) = requant_scale * static_cast<float>(acc);
    }
  }
  return output;
}

}  // namespace fuse::nn
