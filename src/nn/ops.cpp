#include "nn/ops.hpp"

#include "nn/activations.hpp"
#include "nn/kernels.hpp"

#include <algorithm>
#include <limits>

#include "tensor/im2col.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::nn {

using tensor::conv_out_dim;

namespace {

/// True when the fast backend should run; bumps the per-backend dispatch
/// counters either way.
bool use_fast_backend() {
  if (kernel_backend() == KernelBackend::kFast) {
    static util::Counter& fast =
        util::metrics().counter("kernels.dispatch.fast");
    fast.add();
    return true;
  }
  static util::Counter& reference =
      util::metrics().counter("kernels.dispatch.reference");
  reference.add();
  return false;
}

/// Validates conv argument shapes and returns [out_h, out_w].
std::pair<std::int64_t, std::int64_t> check_conv_args(
    const Tensor& input, const Tensor& weight, const Tensor* bias,
    const Conv2dParams& p) {
  FUSE_CHECK(input.shape().rank() == 4)
      << "conv2d input must be [N, C, H, W], got "
      << input.shape().to_string();
  FUSE_CHECK(weight.shape().rank() == 4)
      << "conv2d weight must be [C_out, C_in/groups, Kh, Kw], got "
      << weight.shape().to_string();
  const std::int64_t in_c = input.shape().dim(1);
  const std::int64_t out_c = weight.shape().dim(0);
  FUSE_CHECK(p.groups >= 1) << "groups must be positive";
  FUSE_CHECK(in_c % p.groups == 0)
      << "in_channels " << in_c << " not divisible by groups " << p.groups;
  FUSE_CHECK(out_c % p.groups == 0)
      << "out_channels " << out_c << " not divisible by groups " << p.groups;
  FUSE_CHECK(weight.shape().dim(1) == in_c / p.groups)
      << "weight C_in/groups " << weight.shape().dim(1) << " != "
      << in_c / p.groups;
  if (bias != nullptr) {
    FUSE_CHECK(bias->shape().rank() == 1 && bias->shape().dim(0) == out_c)
        << "bias must be [C_out]";
  }
  const std::int64_t out_h =
      conv_out_dim(input.shape().dim(2), weight.shape().dim(2), p.stride_h,
                   p.pad_h, p.dilation_h);
  const std::int64_t out_w =
      conv_out_dim(input.shape().dim(3), weight.shape().dim(3), p.stride_w,
                   p.pad_w, p.dilation_w);
  return {out_h, out_w};
}

}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const Conv2dParams& params) {
  check_conv_args(input, weight, bias, params);
  if (use_fast_backend()) {
    return kernels::conv2d_fast(input, weight, bias, params);
  }
  return conv2d_reference(input, weight, bias, params);
}

Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const Conv2dParams& params) {
  static util::Counter& counter =
      util::metrics().counter("kernels.reference.conv2d");
  counter.add();
  const auto [out_h, out_w] = check_conv_args(input, weight, bias, params);
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_c = input.shape().dim(1);
  const std::int64_t in_h = input.shape().dim(2);
  const std::int64_t in_w = input.shape().dim(3);
  const std::int64_t out_c = weight.shape().dim(0);
  const std::int64_t kernel_h = weight.shape().dim(2);
  const std::int64_t kernel_w = weight.shape().dim(3);
  const std::int64_t group_in = in_c / params.groups;
  const std::int64_t group_out = out_c / params.groups;

  Tensor output(Shape{batch, out_c, out_h, out_w});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const std::int64_t group = oc / group_out;
      const float bias_value = bias != nullptr ? bias->at(oc) : 0.0F;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          double acc = bias_value;
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            const std::int64_t c = group * group_in + ic;
            for (std::int64_t ky = 0; ky < kernel_h; ++ky) {
              const std::int64_t iy =
                  oy * params.stride_h - params.pad_h + ky * params.dilation_h;
              if (iy < 0 || iy >= in_h) {
                continue;
              }
              for (std::int64_t kx = 0; kx < kernel_w; ++kx) {
                const std::int64_t ix = ox * params.stride_w - params.pad_w +
                                        kx * params.dilation_w;
                if (ix < 0 || ix >= in_w) {
                  continue;
                }
                acc += static_cast<double>(input.at(n, c, iy, ix)) *
                       static_cast<double>(weight.at(oc, ic, ky, kx));
              }
            }
          }
          output.at(n, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return output;
}

Tensor conv2d_im2col(const Tensor& input, const Tensor& weight,
                     const Tensor* bias, const Conv2dParams& params) {
  FUSE_CHECK(params.groups == 1)
      << "conv2d_im2col models the dense lowering; use conv2d for groups";
  const auto [out_h, out_w] = check_conv_args(input, weight, bias, params);
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t out_c = weight.shape().dim(0);
  // Flatten the filter bank to [taps, C_out] so patches x filters is a
  // single matmul per image; hoisted out of the batch loop.
  const Tensor filters = kernels::flatten_filters(weight);

  Tensor output(Shape{batch, out_c, out_h, out_w});
  Tensor image(Shape{input.shape().dim(1), input.shape().dim(2),
                     input.shape().dim(3)});
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* src = input.data() + n * image.num_elements();
    std::copy(src, src + image.num_elements(), image.data());
    const Tensor patches = tensor::im2col(
        image, weight.shape().dim(2), weight.shape().dim(3), params.stride_h,
        params.stride_w, params.pad_h, params.pad_w, params.dilation_h,
        params.dilation_w);
    const Tensor product = matmul(patches, filters);  // [positions, C_out]
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const float bias_value = bias != nullptr ? bias->at(oc) : 0.0F;
      for (std::int64_t pos = 0; pos < out_h * out_w; ++pos) {
        output.at(n, oc, pos / out_w, pos % out_w) =
            product.at(pos, oc) + bias_value;
      }
    }
  }
  return output;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FUSE_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2)
      << "matmul expects rank-2 operands, got " << a.shape().to_string()
      << " x " << b.shape().to_string();
  FUSE_CHECK(a.shape().dim(1) == b.shape().dim(0))
      << "matmul inner dims differ: " << a.shape().to_string() << " x "
      << b.shape().to_string();
  if (use_fast_backend()) {
    return kernels::matmul_fast(a, b);
  }
  return matmul_reference(a, b);
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  static util::Counter& counter =
      util::metrics().counter("kernels.reference.matmul");
  counter.add();
  const std::int64_t rows = a.shape().dim(0);
  const std::int64_t inner = a.shape().dim(1);
  const std::int64_t cols = b.shape().dim(1);
  Tensor out(Shape{rows, cols});
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t k = 0; k < inner; ++k) {
      const float a_ik = a.at(i, k);
      if (a_ik == 0.0F) {
        continue;
      }
      for (std::int64_t j = 0; j < cols; ++j) {
        out.at(i, j) += a_ik * b.at(k, j);
      }
    }
  }
  return out;
}

Tensor linear(const Tensor& input, const Tensor& weight,
              const Tensor* bias) {
  FUSE_CHECK(input.shape().rank() == 2)
      << "linear input must be [N, F_in], got " << input.shape().to_string();
  FUSE_CHECK(weight.shape().rank() == 2)
      << "linear weight must be [F_out, F_in], got "
      << weight.shape().to_string();
  FUSE_CHECK(input.shape().dim(1) == weight.shape().dim(1))
      << "linear feature mismatch: input " << input.shape().to_string()
      << " weight " << weight.shape().to_string();
  if (bias != nullptr) {
    FUSE_CHECK(bias->shape().rank() == 1 &&
               bias->shape().dim(0) == weight.shape().dim(0))
        << "linear bias must be [F_out]";
  }
  if (use_fast_backend()) {
    return kernels::linear_fast(input, weight, bias);
  }
  return linear_reference(input, weight, bias);
}

Tensor linear_reference(const Tensor& input, const Tensor& weight,
                        const Tensor* bias) {
  static util::Counter& counter =
      util::metrics().counter("kernels.reference.linear");
  counter.add();
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_f = input.shape().dim(1);
  const std::int64_t out_f = weight.shape().dim(0);
  Tensor out(Shape{batch, out_f});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_f; ++o) {
      double acc = bias != nullptr ? bias->at(o) : 0.0;
      for (std::int64_t i = 0; i < in_f; ++i) {
        acc += static_cast<double>(input.at(n, i)) *
               static_cast<double>(weight.at(o, i));
      }
      out.at(n, o) = static_cast<float>(acc);
    }
  }
  return out;
}

namespace {

template <typename Reducer>
Tensor pool2d(const Tensor& input, std::int64_t kernel, std::int64_t stride,
              std::int64_t pad, Reducer reduce, bool average) {
  FUSE_CHECK(input.shape().rank() == 4)
      << "pool input must be [N, C, H, W], got " << input.shape().to_string();
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  const std::int64_t in_h = input.shape().dim(2);
  const std::int64_t in_w = input.shape().dim(3);
  const std::int64_t out_h = conv_out_dim(in_h, kernel, stride, pad);
  const std::int64_t out_w = conv_out_dim(in_w, kernel, stride, pad);
  Tensor out(Shape{batch, channels, out_h, out_w});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          double acc = average ? 0.0 : -std::numeric_limits<double>::infinity();
          std::int64_t valid = 0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= in_h) {
              continue;
            }
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= in_w) {
                continue;
              }
              acc = reduce(acc, static_cast<double>(input.at(n, c, iy, ix)));
              ++valid;
            }
          }
          FUSE_CHECK(valid > 0) << "pooling window entirely in padding";
          out.at(n, c, oy, ox) =
              static_cast<float>(average ? acc / static_cast<double>(valid)
                                         : acc);
        }
      }
    }
  }
  return out;
}

}  // namespace

Tensor avg_pool2d(const Tensor& input, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad) {
  return pool2d(
      input, kernel, stride, pad,
      [](double acc, double v) { return acc + v; }, /*average=*/true);
}

Tensor max_pool2d(const Tensor& input, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad) {
  return pool2d(
      input, kernel, stride, pad,
      [](double acc, double v) { return std::max(acc, v); },
      /*average=*/false);
}

Tensor global_avg_pool(const Tensor& input) {
  FUSE_CHECK(input.shape().rank() == 4)
      << "global_avg_pool input must be [N, C, H, W]";
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  const std::int64_t spatial = input.shape().dim(2) * input.shape().dim(3);
  Tensor out(Shape{batch, channels, 1, 1});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      double acc = 0.0;
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        acc += input[(n * channels + c) * spatial + hw];
      }
      out.at(n, c, 0, 0) = static_cast<float>(acc / spatial);
    }
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  FUSE_CHECK(a.shape() == b.shape())
      << "add on mismatched shapes " << a.shape().to_string() << " vs "
      << b.shape().to_string();
  Tensor out = a;
  for (std::int64_t i = 0; i < out.num_elements(); ++i) {
    out[i] += b[i];
  }
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  FUSE_CHECK(a.shape().rank() == 4 && b.shape().rank() == 4)
      << "concat_channels expects NCHW tensors";
  FUSE_CHECK(a.shape().dim(0) == b.shape().dim(0) &&
             a.shape().dim(2) == b.shape().dim(2) &&
             a.shape().dim(3) == b.shape().dim(3))
      << "concat_channels N/H/W mismatch: " << a.shape().to_string() << " vs "
      << b.shape().to_string();
  const std::int64_t batch = a.shape().dim(0);
  const std::int64_t c_a = a.shape().dim(1);
  const std::int64_t c_b = b.shape().dim(1);
  const std::int64_t spatial = a.shape().dim(2) * a.shape().dim(3);
  Tensor out(Shape{batch, c_a + c_b, a.shape().dim(2), a.shape().dim(3)});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t i = 0; i < c_a * spatial; ++i) {
      out[(n * (c_a + c_b)) * spatial + i] = a[n * c_a * spatial + i];
    }
    for (std::int64_t i = 0; i < c_b * spatial; ++i) {
      out[(n * (c_a + c_b) + c_a) * spatial + i] = b[n * c_b * spatial + i];
    }
  }
  return out;
}

Tensor scale_channels(const Tensor& input, const Tensor& scale) {
  FUSE_CHECK(input.shape().rank() == 4)
      << "scale_channels input must be NCHW";
  FUSE_CHECK(scale.shape().rank() == 4 && scale.shape().dim(2) == 1 &&
             scale.shape().dim(3) == 1 &&
             scale.shape().dim(0) == input.shape().dim(0) &&
             scale.shape().dim(1) == input.shape().dim(1))
      << "scale must be [N, C, 1, 1] matching input, got "
      << scale.shape().to_string();
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  const std::int64_t spatial = input.shape().dim(2) * input.shape().dim(3);
  Tensor out = input;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float s = scale.at(n, c, 0, 0);
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        out[(n * channels + c) * spatial + hw] *= s;
      }
    }
  }
  return out;
}

Tensor batchnorm_folded(const Tensor& input, const Tensor& scale,
                        const Tensor& shift) {
  FUSE_CHECK(input.shape().rank() == 4)
      << "batchnorm_folded input must be NCHW";
  const std::int64_t channels = input.shape().dim(1);
  FUSE_CHECK(scale.shape().rank() == 1 && scale.shape().dim(0) == channels &&
             shift.shape().rank() == 1 && shift.shape().dim(0) == channels)
      << "batchnorm scale/shift must be [C]";
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t spatial = input.shape().dim(2) * input.shape().dim(3);
  Tensor out = input;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float a = scale.at(c);
      const float b = shift.at(c);
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        float& x = out[(n * channels + c) * spatial + hw];
        x = x * a + b;
      }
    }
  }
  return out;
}

Tensor squeeze_excite(const Tensor& input, const Tensor& reduce_w,
                      const Tensor& reduce_b, const Tensor& expand_w,
                      const Tensor& expand_b) {
  FUSE_CHECK(input.shape().rank() == 4) << "squeeze_excite input must be NCHW";
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  FUSE_CHECK(reduce_w.shape().rank() == 2 &&
             reduce_w.shape().dim(1) == channels &&
             expand_w.shape().rank() == 2 &&
             expand_w.shape().dim(0) == channels &&
             expand_w.shape().dim(1) == reduce_w.shape().dim(0))
      << "squeeze_excite weight shapes inconsistent with C=" << channels;

  // Squeeze: [N, C, 1, 1] -> [N, C] descriptor.
  const Tensor pooled =
      global_avg_pool(input).reshaped(Shape{batch, channels});
  // Excite: two FCs with ReLU then hard-sigmoid.
  const Tensor hidden = apply_activation(
      linear(pooled, reduce_w, &reduce_b), Activation::kRelu);
  const Tensor gates = apply_activation(
      linear(hidden, expand_w, &expand_b), Activation::kHardSigmoid);
  // Recalibrate.
  return scale_channels(input, gates.reshaped(Shape{batch, channels, 1, 1}));
}

}  // namespace fuse::nn
