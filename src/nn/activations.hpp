// Activation functions used by the MobileNet/MnasNet family.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace fuse::nn {

enum class Activation {
  kNone,
  kRelu,
  kRelu6,
  kHardSwish,    // x * relu6(x + 3) / 6 (MobileNet-V3)
  kHardSigmoid,  // relu6(x + 3) / 6 (squeeze-excite gate in V3)
  kSigmoid,
};

/// Scalar activation.
float apply_activation(float x, Activation act);

/// Elementwise activation over a whole tensor.
tensor::Tensor apply_activation(const tensor::Tensor& input, Activation act);

/// Derivative with respect to the pre-activation input (used by training).
float activation_grad(float x, Activation act);

/// "relu6", "hswish", ... for reports.
std::string activation_name(Activation act);

/// Inverse of activation_name; throws on unknown names.
Activation activation_from_name(const std::string& name);

}  // namespace fuse::nn
