// AVX2/FMA micro-kernels behind the fast backend's ISA dispatch
// (kernels_isa.hpp documents the interface and numerics contract).
//
// Register blocking: the GEMM tile is 8x8 — eight YMM accumulators, one
// broadcast per A element, one panel load per k step — giving eight
// independent FMA chains, enough to cover the 4-5 cycle FMA latency at
// two issues per cycle. The channelwise kernels vectorize the
// interior-column range eight outputs at a time (contiguous loads need
// stride_w == 1 && dilation_w == 1; the dispatcher falls back to the
// scalar kernels otherwise) and handle edge columns with the same
// float-accumulation scalar code, so one channel = one deterministic
// accumulation order regardless of thread count.
//
// Everything except the interface functions has internal linkage, and no
// repo headers are included: nothing compiled under the avx2 target
// attribute can be COMDAT-merged into translation units that must stay
// runnable on plain SSE2 machines.
#include "nn/kernels_isa.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define FUSE_KERNELS_AVX2 1
#include <immintrin.h>
#else
#define FUSE_KERNELS_AVX2 0
#endif

namespace fuse::nn::kernels::avx2 {

#if FUSE_KERNELS_AVX2

#define FUSE_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

inline std::int64_t min64(std::int64_t a, std::int64_t b) {
  return a < b ? a : b;
}

constexpr std::int64_t kNr = 8;  // packed-panel width, fixed by kernels.cpp

// ---------------------------------------------------------------------------
// GEMM 8x8 micro-tile
// ---------------------------------------------------------------------------

/// MR x 8 tile: acc[r] = seed; acc[r] += a(r, k) * panel(k, :) for all k,
/// one FMA per (r, k). Stores through arbitrary out strides; the
/// contiguous full-width case stores YMM directly.
template <int MR>
FUSE_TARGET_AVX2 void micro_tile(const float* a, std::int64_t lda,
                                 const float* bp, std::int64_t kk,
                                 __m256 seed, float* out,
                                 std::int64_t row_stride,
                                 std::int64_t col_stride,
                                 std::int64_t ncols) {
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = seed;
  }
  for (std::int64_t k = 0; k < kk; ++k) {
    const __m256 b = _mm256_loadu_ps(bp + k * kNr);
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + k), b,
                               acc[r]);
    }
  }
  if (col_stride == 1 && ncols == kNr) {
    for (int r = 0; r < MR; ++r) {
      _mm256_storeu_ps(out + r * row_stride, acc[r]);
    }
    return;
  }
  alignas(32) float tmp[kNr];
  for (int r = 0; r < MR; ++r) {
    _mm256_store_ps(tmp, acc[r]);
    for (std::int64_t j = 0; j < ncols; ++j) {
      out[r * row_stride + j * col_stride] = tmp[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar float-accumulation edge helpers (shared by the channelwise
// kernels; same per-element tap order as the vector interior).
// ---------------------------------------------------------------------------

inline float depthwise_edge(const float* plane, std::int64_t in_h,
                            std::int64_t in_w, const float* w,
                            std::int64_t kh, std::int64_t kw,
                            const ConvGeom& g, float bias_value,
                            std::int64_t iy0, std::int64_t ox) {
  float acc = bias_value;
  const std::int64_t ix0 = ox * g.stride_w - g.pad_w;
  for (std::int64_t ky = 0; ky < kh; ++ky) {
    const std::int64_t iy = iy0 + ky * g.dilation_h;
    if (iy < 0 || iy >= in_h) {
      continue;
    }
    const float* row = plane + iy * in_w;
    for (std::int64_t kx = 0; kx < kw; ++kx) {
      const std::int64_t ix = ix0 + kx * g.dilation_w;
      if (ix < 0 || ix >= in_w) {
        continue;
      }
      acc += row[ix] * w[ky * kw + kx];
    }
  }
  return acc;
}

}  // namespace

bool compiled() { return true; }

FUSE_TARGET_AVX2 void block_gemm(const float* a, std::int64_t lda, std::int64_t rows,
                const float* b_panels, std::int64_t kk, std::int64_t n,
                const float* bias, float* out, std::int64_t row_stride,
                std::int64_t col_stride) {
  const std::int64_t panels = (n + kNr - 1) / kNr;
  for (std::int64_t p = 0; p < panels; ++p) {
    const float* bp = b_panels + p * kk * kNr;
    const std::int64_t j0 = p * kNr;
    const std::int64_t ncols = min64(kNr, n - j0);
    alignas(32) float seed_lanes[kNr] = {};
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < ncols; ++j) {
        seed_lanes[j] = bias[j0 + j];
      }
    }
    const __m256 seed = _mm256_load_ps(seed_lanes);
    float* out_panel = out + j0 * col_stride;
    std::int64_t r = 0;
    for (; r + 8 <= rows; r += 8) {
      micro_tile<8>(a + r * lda, lda, bp, kk, seed, out_panel + r * row_stride,
                    row_stride, col_stride, ncols);
    }
    for (; r + 4 <= rows; r += 4) {
      micro_tile<4>(a + r * lda, lda, bp, kk, seed, out_panel + r * row_stride,
                    row_stride, col_stride, ncols);
    }
    for (; r < rows; ++r) {
      micro_tile<1>(a + r * lda, lda, bp, kk, seed, out_panel + r * row_stride,
                    row_stride, col_stride, ncols);
    }
  }
}

FUSE_TARGET_AVX2 void depthwise_channel(
    const float* plane, std::int64_t in_h,
                       std::int64_t in_w, const float* w, std::int64_t kh,
                       std::int64_t kw, const ConvGeom& g, float bias_value,
                       float* out, std::int64_t out_h, std::int64_t out_w,
                       std::int64_t x_lo, std::int64_t x_hi) {
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    const std::int64_t iy0 = oy * g.stride_h - g.pad_h;
    float* out_row = out + oy * out_w;
    for (std::int64_t ox = 0; ox < x_lo; ++ox) {
      out_row[ox] =
          depthwise_edge(plane, in_h, in_w, w, kh, kw, g, bias_value, iy0, ox);
    }
    const __m256 seed = _mm256_set1_ps(bias_value);
    std::int64_t ox = x_lo;
    for (; ox + kNr <= x_hi; ox += kNr) {
      __m256 acc = seed;
      const std::int64_t ix0 = ox - g.pad_w;  // stride_w == 1
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * g.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        const float* row = plane + iy * in_w + ix0;
        const float* wk = w + ky * kw;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(row + kx),
                                _mm256_broadcast_ss(wk + kx), acc);
        }
      }
      _mm256_storeu_ps(out_row + ox, acc);
    }
    for (; ox < x_hi; ++ox) {
      // Interior remainder: taps all in bounds, scalar float accumulation.
      float acc = bias_value;
      const std::int64_t ix0 = ox - g.pad_w;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * g.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        const float* row = plane + iy * in_w + ix0;
        const float* wk = w + ky * kw;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          acc += row[kx] * wk[kx];
        }
      }
      out_row[ox] = acc;
    }
    for (ox = x_hi; ox < out_w; ++ox) {
      out_row[ox] =
          depthwise_edge(plane, in_h, in_w, w, kh, kw, g, bias_value, iy0, ox);
    }
  }
}

FUSE_TARGET_AVX2 void fuse_row_channel(
    const float* plane, std::int64_t in_h,
                      std::int64_t in_w, const float* w, std::int64_t kw,
                      const ConvGeom& g, float bias_value, float* out,
                      std::int64_t out_h, std::int64_t out_w,
                      std::int64_t x_lo, std::int64_t x_hi) {
  depthwise_channel(plane, in_h, in_w, w, /*kh=*/1, kw, g, bias_value, out,
                    out_h, out_w, x_lo, x_hi);
}

FUSE_TARGET_AVX2 void fuse_col_channel(
    const float* plane, std::int64_t in_h,
                      std::int64_t in_w, const float* w, std::int64_t kh,
                      const ConvGeom& g, float bias_value, float* out,
                      std::int64_t out_h, std::int64_t out_w,
                      std::int64_t x_lo, std::int64_t x_hi) {
  const __m256 seed = _mm256_set1_ps(bias_value);
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    const std::int64_t iy0 = oy * g.stride_h - g.pad_h;
    float* out_row = out + oy * out_w;
    // Edge columns have their single tap column out of bounds for every
    // ky, so only the bias survives (mirrors the scalar kernel).
    for (std::int64_t ox = 0; ox < x_lo; ++ox) {
      out_row[ox] = bias_value;
    }
    for (std::int64_t ox = x_hi; ox < out_w; ++ox) {
      out_row[ox] = bias_value;
    }
    std::int64_t ox = x_lo;
    for (; ox + kNr <= x_hi; ox += kNr) {
      __m256 acc = seed;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * g.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        acc = _mm256_fmadd_ps(
            _mm256_loadu_ps(plane + iy * in_w + ox - g.pad_w),
            _mm256_broadcast_ss(w + ky), acc);
      }
      _mm256_storeu_ps(out_row + ox, acc);
    }
    for (; ox < x_hi; ++ox) {
      float acc = bias_value;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * g.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        acc += plane[iy * in_w + ox - g.pad_w] * w[ky];
      }
      out_row[ox] = acc;
    }
  }
}

FUSE_TARGET_AVX2 void conv2d_int8_plane(
    const std::int8_t* image, std::int64_t group_in,
                       std::int64_t in_h, std::int64_t in_w,
                       const std::int8_t* w_oc, std::int64_t kh,
                       std::int64_t kw, const ConvGeom& g,
                       std::int32_t zp_in, float requant_scale,
                       float* out_plane, std::int64_t out_h,
                       std::int64_t out_w, std::int64_t x_lo,
                       std::int64_t x_hi) {
  const __m256i zp = _mm256_set1_epi32(zp_in);
  // int32 accumulation is associative: edges and vector interior are
  // bit-exact with the scalar kernel by construction.
  const auto scalar_out = [&](std::int64_t oy, std::int64_t ox) {
    const std::int64_t iy0 = oy * g.stride_h - g.pad_h;
    const std::int64_t ix0 = ox - g.pad_w;  // stride_w == 1
    std::int32_t acc = 0;
    for (std::int64_t ic = 0; ic < group_in; ++ic) {
      const std::int8_t* plane = image + ic * in_h * in_w;
      const std::int8_t* w_ic = w_oc + ic * kh * kw;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * g.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        const std::int8_t* row = plane + iy * in_w;
        const std::int8_t* w_ky = w_ic + ky * kw;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          const std::int64_t ix = ix0 + kx;
          if (ix < 0 || ix >= in_w) {
            continue;
          }
          acc += (static_cast<std::int32_t>(row[ix]) - zp_in) *
                 static_cast<std::int32_t>(w_ky[kx]);
        }
      }
    }
    return acc;
  };
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    const std::int64_t iy0 = oy * g.stride_h - g.pad_h;
    float* out_row = out_plane + oy * out_w;
    for (std::int64_t ox = 0; ox < x_lo; ++ox) {
      out_row[ox] = requant_scale * static_cast<float>(scalar_out(oy, ox));
    }
    std::int64_t ox = x_lo;
    for (; ox + kNr <= x_hi; ox += kNr) {
      __m256i acc = _mm256_setzero_si256();
      const std::int64_t ix0 = ox - g.pad_w;
      for (std::int64_t ic = 0; ic < group_in; ++ic) {
        const std::int8_t* plane = image + ic * in_h * in_w;
        const std::int8_t* w_ic = w_oc + ic * kh * kw;
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = iy0 + ky * g.dilation_h;
          if (iy < 0 || iy >= in_h) {
            continue;
          }
          const std::int8_t* row = plane + iy * in_w + ix0;
          const std::int8_t* w_ky = w_ic + ky * kw;
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const __m128i bytes = _mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(row + kx));
            const __m256i vals =
                _mm256_sub_epi32(_mm256_cvtepi8_epi32(bytes), zp);
            acc = _mm256_add_epi32(
                acc, _mm256_mullo_epi32(
                         vals, _mm256_set1_epi32(
                                   static_cast<std::int32_t>(w_ky[kx]))));
          }
        }
      }
      alignas(32) std::int32_t lanes[kNr];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
      for (std::int64_t j = 0; j < kNr; ++j) {
        out_row[ox + j] = requant_scale * static_cast<float>(lanes[j]);
      }
    }
    for (; ox < x_hi; ++ox) {
      out_row[ox] = requant_scale * static_cast<float>(scalar_out(oy, ox));
    }
    for (ox = x_hi; ox < out_w; ++ox) {
      out_row[ox] = requant_scale * static_cast<float>(scalar_out(oy, ox));
    }
  }
}

FUSE_TARGET_AVX2 std::int32_t linear_int8_dot(
    const std::int8_t* row,
                             const std::int8_t* w_row, std::int64_t in_f,
                             std::int32_t zp_in) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zp16 = _mm256_set1_epi16(static_cast<short>(zp_in));
  std::int64_t i = 0;
  for (; i + 16 <= in_f; i += 16) {
    // (row - zp) fits int16 (range [-254, 382]); madd pairs fit int32.
    const __m256i r16 = _mm256_sub_epi16(
        _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i))),
        zp16);
    const __m256i w16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w_row + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(r16, w16));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                       lanes[5] + lanes[6] + lanes[7];
  for (; i < in_f; ++i) {
    total += (static_cast<std::int32_t>(row[i]) - zp_in) *
             static_cast<std::int32_t>(w_row[i]);
  }
  return total;
}

#undef FUSE_TARGET_AVX2

#else  // !FUSE_KERNELS_AVX2 — non-x86 stubs; the dispatcher never calls
       // these because kernel_isa_available(kAvx2) is false.

bool compiled() { return false; }

void block_gemm(const float*, std::int64_t, std::int64_t, const float*,
                std::int64_t, std::int64_t, const float*, float*,
                std::int64_t, std::int64_t) {}
void depthwise_channel(const float*, std::int64_t, std::int64_t,
                       const float*, std::int64_t, std::int64_t,
                       const ConvGeom&, float, float*, std::int64_t,
                       std::int64_t, std::int64_t, std::int64_t) {}
void fuse_row_channel(const float*, std::int64_t, std::int64_t, const float*,
                      std::int64_t, const ConvGeom&, float, float*,
                      std::int64_t, std::int64_t, std::int64_t,
                      std::int64_t) {}
void fuse_col_channel(const float*, std::int64_t, std::int64_t, const float*,
                      std::int64_t, const ConvGeom&, float, float*,
                      std::int64_t, std::int64_t, std::int64_t,
                      std::int64_t) {}
void conv2d_int8_plane(const std::int8_t*, std::int64_t, std::int64_t,
                       std::int64_t, const std::int8_t*, std::int64_t,
                       std::int64_t, const ConvGeom&, std::int32_t, float,
                       float*, std::int64_t, std::int64_t, std::int64_t,
                       std::int64_t) {}
std::int32_t linear_int8_dot(const std::int8_t*, const std::int8_t*,
                             std::int64_t, std::int32_t) {
  return 0;
}

#endif  // FUSE_KERNELS_AVX2

}  // namespace fuse::nn::kernels::avx2
