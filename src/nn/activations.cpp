#include "nn/activations.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fuse::nn {

float apply_activation(float x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return x > 0.0F ? x : 0.0F;
    case Activation::kRelu6:
      return std::clamp(x, 0.0F, 6.0F);
    case Activation::kHardSwish:
      return x * std::clamp(x + 3.0F, 0.0F, 6.0F) / 6.0F;
    case Activation::kHardSigmoid:
      return std::clamp(x + 3.0F, 0.0F, 6.0F) / 6.0F;
    case Activation::kSigmoid:
      return 1.0F / (1.0F + std::exp(-x));
  }
  FUSE_CHECK(false) << "unknown activation";
  return 0.0F;
}

tensor::Tensor apply_activation(const tensor::Tensor& input, Activation act) {
  tensor::Tensor out = input;
  if (act == Activation::kNone) {
    return out;
  }
  for (std::int64_t i = 0; i < out.num_elements(); ++i) {
    out[i] = apply_activation(out[i], act);
  }
  return out;
}

float activation_grad(float x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return 1.0F;
    case Activation::kRelu:
      return x > 0.0F ? 1.0F : 0.0F;
    case Activation::kRelu6:
      return (x > 0.0F && x < 6.0F) ? 1.0F : 0.0F;
    case Activation::kHardSwish: {
      if (x <= -3.0F) {
        return 0.0F;
      }
      if (x >= 3.0F) {
        return 1.0F;
      }
      return (2.0F * x + 3.0F) / 6.0F;
    }
    case Activation::kHardSigmoid:
      return (x > -3.0F && x < 3.0F) ? 1.0F / 6.0F : 0.0F;
    case Activation::kSigmoid: {
      const float s = apply_activation(x, Activation::kSigmoid);
      return s * (1.0F - s);
    }
  }
  FUSE_CHECK(false) << "unknown activation";
  return 0.0F;
}

Activation activation_from_name(const std::string& name) {
  for (Activation act :
       {Activation::kNone, Activation::kRelu, Activation::kRelu6,
        Activation::kHardSwish, Activation::kHardSigmoid,
        Activation::kSigmoid}) {
    if (activation_name(act) == name) {
      return act;
    }
  }
  FUSE_CHECK(false) << "unknown activation name '" << name << "'";
  return Activation::kNone;
}

std::string activation_name(Activation act) {
  switch (act) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kRelu6:
      return "relu6";
    case Activation::kHardSwish:
      return "hswish";
    case Activation::kHardSigmoid:
      return "hsigmoid";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "?";
}

}  // namespace fuse::nn
