// Internal interface between the kernel dispatcher (kernels.cpp) and the
// AVX2/FMA micro-kernel translation unit (kernels_avx2.cpp).
//
// kernels_avx2.cpp is compiled WITHOUT -mavx2 on the command line; every
// function carries a target("avx2,fma") attribute instead, so the binary
// stays runnable on any x86-64 and the vector paths only execute after
// util::cpu_features() has proven them safe. To keep AVX2-compiled code
// from leaking into scalar paths via COMDAT-folded template
// instantiations, this header includes nothing from the repo — the
// interface is raw pointers and a plain-int geometry struct.
//
// Numerics contract (docs/kernels.md): the float kernels here accumulate
// in SINGLE precision with FMA, so outputs are ULP-bounded against the
// reference oracles (util/ulp.hpp derives the bound) rather than
// bit-exact; the int8 kernels accumulate in int32, which is exact in any
// order, so they stay bit-identical to the scalar path. Per-element
// accumulation order is a function of shape only — never of thread count
// — so results remain bit-exact across thread counts at a fixed ISA.
#pragma once

#include <cstdint>

namespace fuse::nn::kernels {

/// The Conv2dParams subset the channelwise kernels need, as plain ints.
struct ConvGeom {
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t dilation_h = 1;
  std::int64_t dilation_w = 1;
};

namespace avx2 {

/// True when this binary contains the AVX2 micro-kernels (x86 targets).
/// Runtime availability is a separate question — see
/// nn::kernel_isa_available.
bool compiled();

/// GEMM block over the packed kNr=8 k-major B panels built by
/// pack_b_panels / pack_bt_panels: for r < rows, j < n,
///   out[r*row_stride + j*col_stride] = bias[j] + sum_k a(r, k) * b(k, j)
/// (bias may be null = zero seed). 8x8 register micro-tiles, float
/// accumulators, FMA.
void block_gemm(const float* a, std::int64_t lda, std::int64_t rows,
                const float* b_panels, std::int64_t kk, std::int64_t n,
                const float* bias, float* out, std::int64_t row_stride,
                std::int64_t col_stride);

/// One depthwise channel, interior columns [x_lo, x_hi) vectorized eight
/// outputs at a time. Caller guarantees stride_w == 1 && dilation_w == 1
/// (other geometries take the scalar kernel).
void depthwise_channel(const float* plane, std::int64_t in_h,
                       std::int64_t in_w, const float* w, std::int64_t kh,
                       std::int64_t kw, const ConvGeom& g, float bias_value,
                       float* out, std::int64_t out_h, std::int64_t out_w,
                       std::int64_t x_lo, std::int64_t x_hi);

/// One FuSe row channel (1 x K). Same stride/dilation precondition.
void fuse_row_channel(const float* plane, std::int64_t in_h,
                      std::int64_t in_w, const float* w, std::int64_t kw,
                      const ConvGeom& g, float bias_value, float* out,
                      std::int64_t out_h, std::int64_t out_w,
                      std::int64_t x_lo, std::int64_t x_hi);

/// One FuSe column channel (K x 1). Same stride/dilation precondition.
void fuse_col_channel(const float* plane, std::int64_t in_h,
                      std::int64_t in_w, const float* w, std::int64_t kh,
                      const ConvGeom& g, float bias_value, float* out,
                      std::int64_t out_h, std::int64_t out_w,
                      std::int64_t x_lo, std::int64_t x_hi);

/// One (image, out-channel) int8 conv plane; `image` already points at
/// the group's first input plane. Interior vectorized via epi32 lanes —
/// int32 accumulation, bit-exact with the scalar path. Caller guarantees
/// stride_w == 1 && dilation_w == 1.
void conv2d_int8_plane(const std::int8_t* image, std::int64_t group_in,
                       std::int64_t in_h, std::int64_t in_w,
                       const std::int8_t* w_oc, std::int64_t kh,
                       std::int64_t kw, const ConvGeom& g,
                       std::int32_t zp_in, float requant_scale,
                       float* out_plane, std::int64_t out_h,
                       std::int64_t out_w, std::int64_t x_lo,
                       std::int64_t x_hi);

/// sum_i (row[i] - zp_in) * w_row[i] over in_f entries via madd_epi16;
/// bit-exact with the scalar int32 loop.
std::int32_t linear_int8_dot(const std::int8_t* row,
                             const std::int8_t* w_row, std::int64_t in_f,
                             std::int32_t zp_in);

}  // namespace avx2

}  // namespace fuse::nn::kernels
