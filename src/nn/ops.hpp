// Functional operators (float32, NCHW).
//
// The *_reference loops are the numeric ground truth for everything else
// in the repo: the systolic-array simulator's outputs, the FuSeConv
// operator, and the training substrate are all validated against them.
// The public conv2d/matmul/linear entry points dispatch between those
// loops and the blocked/parallel fast backend in nn/kernels.hpp; the two
// backends are bit-identical, so callers never need to care which ran.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace fuse::nn {

using tensor::Shape;
using tensor::Tensor;

/// Geometry knobs for conv2d. Defaults give a dense 1x1-stride convolution.
struct Conv2dParams {
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t dilation_h = 1;
  std::int64_t dilation_w = 1;
  std::int64_t groups = 1;
};

/// General grouped 2-D convolution.
/// input:  [N, C_in, H, W]
/// weight: [C_out, C_in/groups, Kh, Kw]
/// bias:   [C_out] or nullptr
/// result: [N, C_out, H_out, W_out]
/// Covers standard (groups=1), depthwise (groups=C_in, C_out=C_in),
/// pointwise (Kh=Kw=1), and FuSeConv's 1-D branches (Kh=1 or Kw=1 with
/// groups=C_in).
/// Dispatches on nn::kernel_backend() (see nn/kernels.hpp); both backends
/// produce bit-identical results.
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const Conv2dParams& params);

/// The clarity-first loops conv2d dispatches to under the reference
/// backend; kept public as the numeric oracle for differential tests.
Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const Conv2dParams& params);

/// conv2d lowered through im2col + matmul (groups=1 only). Numerically
/// identical to conv2d; exists to validate the lowering the systolic
/// mapping study relies on.
Tensor conv2d_im2col(const Tensor& input, const Tensor& weight,
                     const Tensor* bias, const Conv2dParams& params);

/// Dense matrix product: [M, K] x [K, N] -> [M, N]. Dispatches on
/// nn::kernel_backend().
Tensor matmul(const Tensor& a, const Tensor& b);

/// Reference oracle behind matmul.
Tensor matmul_reference(const Tensor& a, const Tensor& b);

/// Fully connected: input [N, F_in], weight [F_out, F_in], bias [F_out] or
/// nullptr -> [N, F_out]. Dispatches on nn::kernel_backend().
Tensor linear(const Tensor& input, const Tensor& weight, const Tensor* bias);

/// Reference oracle behind linear.
Tensor linear_reference(const Tensor& input, const Tensor& weight,
                        const Tensor* bias);

/// Average pooling with window `kernel`, stride `stride`, zero padding
/// `pad` (count_include_pad=false semantics: divisor is the number of valid
/// taps).
Tensor avg_pool2d(const Tensor& input, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad = 0);

/// Max pooling.
Tensor max_pool2d(const Tensor& input, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad = 0);

/// Global average pool: [N, C, H, W] -> [N, C, 1, 1].
Tensor global_avg_pool(const Tensor& input);

/// Elementwise sum; shapes must match.
Tensor add(const Tensor& a, const Tensor& b);

/// Channel concatenation of NCHW tensors with equal N/H/W.
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// Multiplies each channel of `input` by the per-(batch,channel) scale in
/// `scale` ([N, C, 1, 1]); the squeeze-excite recalibration step.
Tensor scale_channels(const Tensor& input, const Tensor& scale);

/// Inference-time batchnorm folded to per-channel scale/shift:
/// y = x * scale[c] + shift[c].
Tensor batchnorm_folded(const Tensor& input, const Tensor& scale,
                        const Tensor& shift);

/// Squeeze-and-excite (MobileNet-V3 style): global-average-pool the input,
/// FC C -> se_c with ReLU, FC se_c -> C with hard-sigmoid, and rescale the
/// input channels by the resulting gates.
/// reduce_w [se_c, C], reduce_b [se_c], expand_w [C, se_c], expand_b [C].
Tensor squeeze_excite(const Tensor& input, const Tensor& reduce_w,
                      const Tensor& reduce_b, const Tensor& expand_w,
                      const Tensor& expand_b);

}  // namespace fuse::nn
