// Fast host kernel backend: cache-blocked GEMM micro-kernels, an
// im2col-on-the-fly convolution that never materializes the full patch
// matrix, and shape-specialized depthwise / FuSe 1-D kernels, all
// parallelized over independent output tiles on a process-wide
// util::ThreadPool.
//
// The backend practices on the host what the paper practices on the
// array: factor every operator onto a small set of efficient inner
// kernels (GEMM panels for dense/pointwise/grouped convolutions and
// linear layers, line kernels for the FuSe 1xK / Kx1 branches) instead
// of running the naive 6-deep loops of the reference operators.
//
// Determinism contract (docs/kernels.md):
//   * Every output element is owned by exactly one parallel task and its
//     k-accumulation runs in a fixed order, so results are BIT-EXACT
//     across thread counts (and across runs).
//   * Each fast kernel reproduces the reference operator's accumulation
//     type and order exactly — double accumulators seeded with the bias
//     for conv2d/linear, in-order float accumulation for matmul, int32
//     for the INT8 kernels — so fast outputs are bit-exact with the
//     reference backend too (0 ULP; the only theoretical exception is
//     the sign of an exact-zero output, which IEEE-754 +/-0 addition
//     identities make unobservable in practice). tools/check.sh leans on
//     this: golden results must be byte-identical under both backends.
//
// Backend selection: nn::conv2d / matmul / linear / the INT8 kernels and
// the train::Module backward passes all dispatch on kernel_backend().
// Default is kFast; set FUSE_KERNEL_BACKEND=reference (or the benches'
// --kernel-backend flag) to pin the reference oracle. FUSE_KERNEL_THREADS
// / --kernel-threads size the kernel pool (N threads = N-1 workers plus
// the calling thread, mirroring the sweep engine's convention).
#pragma once

#include <cstdint>
#include <string>

#include "nn/ops.hpp"
#include "tensor/quantize.hpp"

namespace fuse::util {
class ThreadPool;
}

namespace fuse::nn {

/// Which implementation the functional operators dispatch to.
enum class KernelBackend {
  kReference,  // the clarity-first loops (numeric ground truth)
  kFast,       // this module's blocked/parallel kernels
};

/// Current backend. Initialized from FUSE_KERNEL_BACKEND (default fast).
KernelBackend kernel_backend();

/// Overrides the backend for the whole process. Not safe to call while
/// kernels are executing on the pool.
void set_kernel_backend(KernelBackend backend);

/// Parses "fast" / "reference" (also "ref"). Returns false on anything
/// else.
bool parse_kernel_backend(const std::string& name, KernelBackend* out);

const char* kernel_backend_name(KernelBackend backend);

/// Total threads participating in kernel parallel_fors (workers + the
/// calling thread, so 1 means fully serial). Initialized from
/// FUSE_KERNEL_THREADS (default: hardware concurrency).
int kernel_threads();

/// Resizes the kernel pool to `threads` total threads (>= 1). Not safe to
/// call while kernels are executing on the pool. Outputs are bit-exact
/// for every value.
void set_kernel_threads(int threads);

/// The process-wide pool the fast kernels partition tiles over.
util::ThreadPool& kernel_pool();

namespace kernels {

/// C[m, n] = A[m, k] * B[k, n], row-major, all operands dense. C is
/// overwritten. Float accumulation in ascending-k order per output (the
/// reference matmul's order), blocked into packed B column panels and
/// register tiles, parallel over row blocks.
void gemm_f32(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n);

/// Fast implementations of the public functional operators. Shapes and
/// semantics are identical to the reference versions in nn/ops.hpp /
/// nn/quantized.hpp; arguments are assumed pre-validated by the
/// dispatching wrapper.
Tensor matmul_fast(const Tensor& a, const Tensor& b);
Tensor conv2d_fast(const Tensor& input, const Tensor& weight,
                   const Tensor* bias, const Conv2dParams& params);
Tensor linear_fast(const Tensor& input, const Tensor& weight,
                   const Tensor* bias);
Tensor conv2d_int8_fast(const tensor::QuantizedTensor& input,
                        const tensor::QuantizedTensor& weight,
                        const Conv2dParams& params);
Tensor linear_int8_fast(const tensor::QuantizedTensor& input,
                        const tensor::QuantizedTensor& weight);

/// Fast training backward passes (train::Module dispatches here).
/// Both ACCUMULATE into *weight_grad / *bias_grad (matching the
/// reference `+=` semantics) and return grad_input. Bit-exact with the
/// reference loops: grad_input is partitioned over batch images and the
/// weight/bias gradients over output features, each with the reference
/// visiting order inside the partition.
Tensor conv2d_backward_fast(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output,
                            const Conv2dParams& params, Tensor* weight_grad,
                            Tensor* bias_grad);
Tensor linear_backward_fast(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, Tensor* weight_grad,
                            Tensor* bias_grad);

/// Flattens an [C_out, C_in/g, Kh, Kw] filter bank to the [taps, C_out]
/// matrix the im2col lowering multiplies against (taps ordered
/// channel-major, then kernel row, then kernel column). Shared by the
/// functional im2col path and the systolic executor's marshalling.
Tensor flatten_filters(const Tensor& weight);

/// [R, C] -> [C, R]. The executor uses this to lay fully-connected
/// weights out as [F_in, F_out] for the array.
Tensor transpose_2d(const Tensor& w);

}  // namespace kernels

}  // namespace fuse::nn
