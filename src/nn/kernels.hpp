// Fast host kernel backend: cache-blocked GEMM micro-kernels, an
// im2col-on-the-fly convolution that never materializes the full patch
// matrix, and shape-specialized depthwise / FuSe 1-D kernels, all
// parallelized over independent output tiles on a process-wide
// util::ThreadPool.
//
// The backend practices on the host what the paper practices on the
// array: factor every operator onto a small set of efficient inner
// kernels (GEMM panels for dense/pointwise/grouped convolutions and
// linear layers, line kernels for the FuSe 1xK / Kx1 branches) instead
// of running the naive 6-deep loops of the reference operators.
//
// Determinism contract (docs/kernels.md):
//   * Every output element is owned by exactly one parallel task and its
//     k-accumulation runs in a fixed order, so results are BIT-EXACT
//     across thread counts (and across runs) at a fixed ISA.
//   * Under the SCALAR ISA each fast kernel reproduces the reference
//     operator's accumulation type and order exactly — double
//     accumulators seeded with the bias for conv2d/linear, in-order
//     float accumulation for matmul, int32 for the INT8 kernels — so
//     scalar fast outputs are bit-exact with the reference backend
//     (0 ULP; the only theoretical exception is the sign of an
//     exact-zero output, which IEEE-754 +/-0 addition identities make
//     unobservable in practice). tools/check.sh leans on this: golden
//     results must be byte-identical across backends with
//     FUSE_KERNEL_ISA=scalar pinned.
//   * Under the AVX2 ISA the float kernels accumulate in single
//     precision with FMA, so outputs are ULP-BOUNDED against the
//     reference (util/ulp.hpp derives the bound; docs/kernels.md
//     documents it). The INT8 kernels accumulate in int32 — exact in
//     any order — and stay bit-identical under every ISA.
//
// Backend selection: nn::conv2d / matmul / linear / the INT8 kernels and
// the train::Module backward passes all dispatch on kernel_backend().
// Default is kFast; set FUSE_KERNEL_BACKEND=reference (or the benches'
// --kernel-backend flag) to pin the reference oracle. FUSE_KERNEL_THREADS
// / --kernel-threads size the kernel pool (N threads = N-1 workers plus
// the calling thread, mirroring the sweep engine's convention).
//
// ISA selection: inside the fast backend, kernel_isa() picks between the
// portable scalar kernels and the AVX2/FMA micro-kernels
// (kernels_avx2.cpp). Default is the best ISA the CPU supports (CPUID
// probe in util/cpu_features.hpp); FUSE_KERNEL_ISA=scalar|avx2|auto (or
// the benches' --kernel-isa flag) overrides it for differential testing.
// Requesting an unavailable ISA via the environment falls back to scalar
// with a note on stderr (so a forced-ISA CI matrix passes on any
// machine); requesting it via set_kernel_isa / an explicit CLI flag is an
// error. The backward passes and a few geometries (stride_w != 1 or
// dilation_w != 1 channelwise / int8 conv interiors) always run the
// scalar kernels — see the dispatch table in docs/kernels.md.
#pragma once

#include <cstdint>
#include <string>

#include "nn/ops.hpp"
#include "tensor/quantize.hpp"

namespace fuse::util {
class ThreadPool;
}

namespace fuse::nn {

/// Which implementation the functional operators dispatch to.
enum class KernelBackend {
  kReference,  // the clarity-first loops (numeric ground truth)
  kFast,       // this module's blocked/parallel kernels
};

/// Current backend. Initialized from FUSE_KERNEL_BACKEND (default fast).
KernelBackend kernel_backend();

/// Overrides the backend for the whole process. Not safe to call while
/// kernels are executing on the pool.
void set_kernel_backend(KernelBackend backend);

/// Parses "fast" / "reference" (also "ref"). Returns false on anything
/// else.
bool parse_kernel_backend(const std::string& name, KernelBackend* out);

const char* kernel_backend_name(KernelBackend backend);

/// Total threads participating in kernel parallel_fors (workers + the
/// calling thread, so 1 means fully serial). Initialized from
/// FUSE_KERNEL_THREADS (default: hardware concurrency).
int kernel_threads();

/// Resizes the kernel pool to `threads` total threads (>= 1). Not safe to
/// call while kernels are executing on the pool. Outputs are bit-exact
/// for every value.
void set_kernel_threads(int threads);

/// The process-wide pool the fast kernels partition tiles over.
util::ThreadPool& kernel_pool();

/// Which instruction set the fast backend's inner kernels use.
enum class KernelIsa {
  kScalar,  // portable C++ (bit-exact with the reference oracles)
  kAvx2,    // AVX2/FMA micro-kernels (ULP-bounded floats, exact int8)
};

/// Current ISA. Initialized from FUSE_KERNEL_ISA (default: best
/// available per the CPUID probe; an unavailable env request falls back
/// to scalar with a note on stderr).
KernelIsa kernel_isa();

/// Overrides the ISA for the whole process. FUSE_CHECK-fails if `isa` is
/// not available on this machine (see kernel_isa_available). Not safe to
/// call while kernels are executing on the pool.
void set_kernel_isa(KernelIsa isa);

/// True when `isa` can execute here: kScalar always; kAvx2 when the
/// binary contains the AVX2 kernels (x86 build) AND the CPU + OS report
/// AVX2, FMA, and OS-enabled YMM state.
bool kernel_isa_available(KernelIsa isa);

/// Parses "scalar" / "avx2" / "auto" ("auto" resolves to the best
/// available ISA at parse time). Returns false on anything else.
bool parse_kernel_isa(const std::string& name, KernelIsa* out);

const char* kernel_isa_name(KernelIsa isa);

namespace kernels {

/// C[m, n] = A[m, k] * B[k, n], row-major, all operands dense. C is
/// overwritten. Float accumulation in ascending-k order per output (the
/// reference matmul's order), blocked into packed B column panels and
/// register tiles, parallel over row blocks.
void gemm_f32(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n);

/// Fast implementations of the public functional operators. Shapes and
/// semantics are identical to the reference versions in nn/ops.hpp /
/// nn/quantized.hpp; arguments are assumed pre-validated by the
/// dispatching wrapper.
Tensor matmul_fast(const Tensor& a, const Tensor& b);
Tensor conv2d_fast(const Tensor& input, const Tensor& weight,
                   const Tensor* bias, const Conv2dParams& params);
Tensor linear_fast(const Tensor& input, const Tensor& weight,
                   const Tensor* bias);
Tensor conv2d_int8_fast(const tensor::QuantizedTensor& input,
                        const tensor::QuantizedTensor& weight,
                        const Conv2dParams& params);
Tensor linear_int8_fast(const tensor::QuantizedTensor& input,
                        const tensor::QuantizedTensor& weight);

/// Fast training backward passes (train::Module dispatches here).
/// Both ACCUMULATE into *weight_grad / *bias_grad (matching the
/// reference `+=` semantics) and return grad_input. Bit-exact with the
/// reference loops: grad_input is partitioned over batch images and the
/// weight/bias gradients over output features, each with the reference
/// visiting order inside the partition.
Tensor conv2d_backward_fast(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output,
                            const Conv2dParams& params, Tensor* weight_grad,
                            Tensor* bias_grad);
Tensor linear_backward_fast(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, Tensor* weight_grad,
                            Tensor* bias_grad);

/// Flattens an [C_out, C_in/g, Kh, Kw] filter bank to the [taps, C_out]
/// matrix the im2col lowering multiplies against (taps ordered
/// channel-major, then kernel row, then kernel column). Shared by the
/// functional im2col path and the systolic executor's marshalling.
Tensor flatten_filters(const Tensor& weight);

/// [R, C] -> [C, R]. The executor uses this to lay fully-connected
/// weights out as [F_in, F_out] for the array.
Tensor transpose_2d(const Tensor& w);

}  // namespace kernels

}  // namespace fuse::nn
