#include "nn/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/kernels_isa.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"
#include "util/cpu_features.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace fuse::nn {

using tensor::QuantizedTensor;
using tensor::Shape;
using tensor::conv_out_dim;

namespace {

// ---------------------------------------------------------------------------
// Backend + pool state
// ---------------------------------------------------------------------------

KernelBackend backend_from_env() {
  const char* env = std::getenv("FUSE_KERNEL_BACKEND");
  if (env == nullptr || env[0] == '\0') {
    return KernelBackend::kFast;
  }
  KernelBackend backend;
  FUSE_CHECK(parse_kernel_backend(env, &backend))
      << "FUSE_KERNEL_BACKEND must be 'fast' or 'reference', got '" << env
      << "'";
  return backend;
}

std::atomic<KernelBackend>& backend_state() {
  static std::atomic<KernelBackend> state{backend_from_env()};
  return state;
}

int threads_from_env() {
  const char* env = std::getenv("FUSE_KERNEL_THREADS");
  if (env == nullptr || env[0] == '\0') {
    return util::ThreadPool::hardware_threads();
  }
  const int threads = std::atoi(env);
  FUSE_CHECK(threads >= 1)
      << "FUSE_KERNEL_THREADS must be >= 1, got '" << env << "'";
  return threads;
}

struct PoolState {
  // Guards lazy pool construction: kernels may be entered from several
  // threads at once (e.g. serving-engine batch payloads), and the first
  // callers must not race building the shared pool. Reconfiguration via
  // set_kernel_threads is still a quiescent-point operation — it rebuilds
  // the pool out from under any kernel currently running on it.
  std::mutex mutex;
  int threads = threads_from_env();
  std::unique_ptr<util::ThreadPool> pool;
};

PoolState& pool_state() {
  static PoolState state;
  return state;
}

// ---------------------------------------------------------------------------
// ISA state
// ---------------------------------------------------------------------------

KernelIsa isa_from_env() {
  const char* env = std::getenv("FUSE_KERNEL_ISA");
  if (env == nullptr || env[0] == '\0') {
    KernelIsa isa;
    parse_kernel_isa("auto", &isa);
    return isa;
  }
  KernelIsa isa;
  FUSE_CHECK(parse_kernel_isa(env, &isa))
      << "FUSE_KERNEL_ISA must be 'scalar', 'avx2', or 'auto', got '" << env
      << "'";
  if (!kernel_isa_available(isa)) {
    // Environment requests degrade gracefully so a forced-ISA test matrix
    // (FUSE_KERNEL_ISA=avx2 ctest ...) can run unchanged on machines
    // without the vector unit; explicit set_kernel_isa / CLI requests
    // stay hard errors.
    std::fprintf(stderr,
                 "note: FUSE_KERNEL_ISA=%s is not available on this machine "
                 "(cpu: %s); using scalar kernels\n",
                 env, util::cpu_features().to_string().c_str());
    return KernelIsa::kScalar;
  }
  return isa;
}

std::atomic<KernelIsa>& isa_state() {
  static std::atomic<KernelIsa> state{isa_from_env()};
  return state;
}

// ---------------------------------------------------------------------------
// Telemetry (docs/observability.md catalog, "kernels.*")
// ---------------------------------------------------------------------------

util::Counter& pack_bytes_counter() {
  static util::Counter& counter = util::metrics().counter("kernels.pack_bytes");
  return counter;
}

#define FUSE_KERNEL_COUNTER(name)                                        \
  do {                                                                   \
    static util::Counter& counter = util::metrics().counter(name);       \
    counter.add();                                                       \
  } while (false)

/// Resolves the ISA an operator will actually run with (`vectorizable`
/// is false for geometries the AVX2 kernels don't cover) and bumps the
/// matching kernels.dispatch.{avx2,scalar} counter. The backward passes
/// are scalar-only by design and don't go through here — see the
/// dispatch table in docs/kernels.md.
KernelIsa note_isa(bool vectorizable = true) {
  KernelIsa isa = kernel_isa();
  if (!vectorizable) {
    isa = KernelIsa::kScalar;
  }
  if (isa == KernelIsa::kAvx2) {
    FUSE_KERNEL_COUNTER("kernels.dispatch.avx2");
  } else {
    FUSE_KERNEL_COUNTER("kernels.dispatch.scalar");
  }
  return isa;
}

/// The Conv2dParams subset the ISA kernels take (plain ints, no repo
/// types — see kernels_isa.hpp).
kernels::ConvGeom to_geom(const Conv2dParams& p) {
  return {p.stride_h, p.stride_w, p.pad_h,
          p.pad_w,    p.dilation_h, p.dilation_w};
}

/// Runs `tiles` independent tasks on the kernel pool and records the
/// per-task work grain (in elementary work units, e.g. output rows or
/// channels) in the kernels.grain histogram.
void run_tiles(std::int64_t tiles, std::int64_t units_per_tile,
               const std::function<void(std::int64_t)>& body) {
  static util::Histogram& grain = util::metrics().histogram("kernels.grain");
  grain.observe(static_cast<std::uint64_t>(units_per_tile));
  kernel_pool().parallel_for(tiles, body, /*grain=*/1);
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

constexpr std::int64_t kNr = 8;   // register-tile columns (one packed panel)
constexpr std::int64_t kMcGemm = 64;   // rows of C per parallel task
constexpr std::int64_t kMcConv = 64;   // output positions per im2col panel

/// Packs columns of a row-major B[k, n] (row stride ldb) into
/// ceil(n / kNr) column panels of width kNr, each laid out k-major
/// ([k][kNr], zero-padded in the last panel). Panel p starts at
/// out[p * k * kNr].
void pack_b_panels(const float* b, std::int64_t kk, std::int64_t n,
                   std::int64_t ldb, std::vector<float>& out) {
  const std::int64_t panels = (n + kNr - 1) / kNr;
  out.assign(static_cast<std::size_t>(panels * kk * kNr), 0.0F);
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dst = out.data() + p * kk * kNr;
    const std::int64_t cols = std::min(kNr, n - p * kNr);
    for (std::int64_t k = 0; k < kk; ++k) {
      const float* src = b + k * ldb + p * kNr;
      for (std::int64_t j = 0; j < cols; ++j) {
        dst[k * kNr + j] = src[j];
      }
    }
  }
  pack_bytes_counter().add(out.size() * sizeof(float));
}

/// Packs ROWS of a row-major W[n, k] (row stride ldw) as the columns of
/// the panel layout above — i.e. packs B = W^T without materializing the
/// transpose. Used by linear (weight is [F_out, F_in], the GEMM wants
/// [F_in, F_out]).
void pack_bt_panels(const float* w, std::int64_t n, std::int64_t kk,
                    std::int64_t ldw, std::vector<float>& out) {
  const std::int64_t panels = (n + kNr - 1) / kNr;
  out.assign(static_cast<std::size_t>(panels * kk * kNr), 0.0F);
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dst = out.data() + p * kk * kNr;
    const std::int64_t cols = std::min(kNr, n - p * kNr);
    for (std::int64_t j = 0; j < cols; ++j) {
      const float* src = w + (p * kNr + j) * ldw;
      for (std::int64_t k = 0; k < kk; ++k) {
        dst[k * kNr + j] = src[k];
      }
    }
  }
  pack_bytes_counter().add(out.size() * sizeof(float));
}

// ---------------------------------------------------------------------------
// Micro-kernels
//
// Each computes an MR x kNr tile of C with the accumulator carried across
// the FULL k extent in ascending order (no Kc partial sums), so every
// output element sees exactly the reference accumulation sequence. The
// float variant reproduces nn::matmul (float accumulator from 0); the
// f64 variant reproduces nn::conv2d / nn::linear (double accumulator
// seeded with the bias, products formed exactly in double).
// ---------------------------------------------------------------------------

template <int MR>
void micro_f32(const float* a, std::int64_t lda, const float* bp,
               std::int64_t kk, float* c, std::int64_t ldc,
               std::int64_t ncols) {
  float acc[MR][kNr] = {};
  for (std::int64_t k = 0; k < kk; ++k) {
    const float* brow = bp + k * kNr;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + k];
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (std::int64_t j = 0; j < ncols; ++j) {
      c[r * ldc + j] = acc[r][j];
    }
  }
}

/// Double-accumulator tile: out(r, j) = bias[j] + sum_k a(r, k) * b(k, j),
/// written through arbitrary row/column strides (conv scatters to NCHW).
template <int MR>
void micro_f64(const float* a, std::int64_t lda, const float* bp,
               std::int64_t kk, const double* bias8, float* out,
               std::int64_t row_stride, std::int64_t col_stride,
               std::int64_t ncols) {
  double acc[MR][kNr];
  for (int r = 0; r < MR; ++r) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      acc[r][j] = bias8[j];
    }
  }
  for (std::int64_t k = 0; k < kk; ++k) {
    const float* brow = bp + k * kNr;
    double bd[kNr];
    for (std::int64_t j = 0; j < kNr; ++j) {
      bd[j] = static_cast<double>(brow[j]);
    }
    for (int r = 0; r < MR; ++r) {
      const double av = static_cast<double>(a[r * lda + k]);
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[r][j] += av * bd[j];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (std::int64_t j = 0; j < ncols; ++j) {
      out[r * row_stride + j * col_stride] = static_cast<float>(acc[r][j]);
    }
  }
}

/// All kNr-wide panels of one A block against packed B, f64 accumulation.
/// a: [rows x kk] row-major (lda = kk for packed panels), bias: per output
/// column (may be null), out indexed as out + r*row_stride + j*col_stride.
void block_gemm_f64(const float* a, std::int64_t lda, std::int64_t rows,
                    const float* b_panels, std::int64_t kk, std::int64_t n,
                    const float* bias, float* out, std::int64_t row_stride,
                    std::int64_t col_stride) {
  const std::int64_t panels = (n + kNr - 1) / kNr;
  for (std::int64_t p = 0; p < panels; ++p) {
    const float* bp = b_panels + p * kk * kNr;
    const std::int64_t j0 = p * kNr;
    const std::int64_t ncols = std::min(kNr, n - j0);
    double bias8[kNr] = {};
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < ncols; ++j) {
        bias8[j] = static_cast<double>(bias[j0 + j]);
      }
    }
    std::int64_t r = 0;
    for (; r + 2 <= rows; r += 2) {
      micro_f64<2>(a + r * lda, lda, bp, kk, bias8,
                   out + r * row_stride + j0 * col_stride, row_stride,
                   col_stride, ncols);
    }
    for (; r < rows; ++r) {
      micro_f64<1>(a + r * lda, lda, bp, kk, bias8,
                   out + r * row_stride + j0 * col_stride, row_stride,
                   col_stride, ncols);
    }
  }
}

// ---------------------------------------------------------------------------
// im2col-on-the-fly panel builder
// ---------------------------------------------------------------------------

/// Writes the im2col rows for output positions [p0, p0 + rows) of one
/// image, channels [c0, c0 + channels), into `panel` ([rows x taps],
/// taps ordered channel-major then kernel-row then kernel-column — the
/// reference conv2d's accumulation order). Padding taps are 0.
void build_im2col_panel(const float* image, std::int64_t in_c,
                        std::int64_t in_h, std::int64_t in_w,
                        std::int64_t c0, std::int64_t channels,
                        const Conv2dParams& p, std::int64_t out_w,
                        std::int64_t p0, std::int64_t rows, std::int64_t kh,
                        std::int64_t kw, float* panel) {
  (void)in_c;
  const std::int64_t taps_per_c = kh * kw;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t oy = (p0 + r) / out_w;
    const std::int64_t ox = (p0 + r) % out_w;
    const std::int64_t iy0 = oy * p.stride_h - p.pad_h;
    const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
    float* dst = panel + r * channels * taps_per_c;
    for (std::int64_t ic = 0; ic < channels; ++ic) {
      const float* plane = image + (c0 + ic) * in_h * in_w;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * p.dilation_h;
        if (iy < 0 || iy >= in_h) {
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            *dst++ = 0.0F;
          }
          continue;
        }
        const float* row = plane + iy * in_w;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          const std::int64_t ix = ix0 + kx * p.dilation_w;
          *dst++ = (ix < 0 || ix >= in_w) ? 0.0F : row[ix];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Channelwise kernels (depthwise K x K, FuSe 1 x K and K x 1)
// ---------------------------------------------------------------------------

/// The [x_lo, x_hi) output-x range whose taps kx in [0, kw) all land in
/// bounds (so the inner loop can skip the per-tap checks).
std::pair<std::int64_t, std::int64_t> interior_x(std::int64_t out_w,
                                                 std::int64_t in_w,
                                                 std::int64_t kw,
                                                 std::int64_t stride,
                                                 std::int64_t pad,
                                                 std::int64_t dilation) {
  std::int64_t lo = (pad + stride - 1) / stride;  // first ox with ix >= 0
  std::int64_t hi = (in_w - 1 - (kw - 1) * dilation + pad) / stride + 1;
  lo = std::clamp<std::int64_t>(lo, 0, out_w);
  hi = std::clamp<std::int64_t>(hi, lo, out_w);
  return {lo, hi};
}

/// One depthwise channel: out(oy, ox) = bias + sum_{ky,kx} taps, double
/// accumulation in (ky, kx) order with out-of-bounds taps skipped —
/// exactly the reference conv2d order for groups == C.
void depthwise_channel(const float* plane, std::int64_t in_h,
                       std::int64_t in_w, const float* w, std::int64_t kh,
                       std::int64_t kw, const Conv2dParams& p,
                       double bias_value, float* out, std::int64_t out_h,
                       std::int64_t out_w) {
  const auto [x_lo, x_hi] =
      interior_x(out_w, in_w, kw, p.stride_w, p.pad_w, p.dilation_w);
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    const std::int64_t iy0 = oy * p.stride_h - p.pad_h;
    float* out_row = out + oy * out_w;
    // Edge columns: every tap bounds-checked (same skip set as reference).
    const auto edge = [&](std::int64_t ox) {
      double acc = bias_value;
      const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * p.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        const float* row = plane + iy * in_w;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          const std::int64_t ix = ix0 + kx * p.dilation_w;
          if (ix < 0 || ix >= in_w) {
            continue;
          }
          acc += static_cast<double>(row[ix]) *
                 static_cast<double>(w[ky * kw + kx]);
        }
      }
      out_row[ox] = static_cast<float>(acc);
    };
    for (std::int64_t ox = 0; ox < x_lo; ++ox) {
      edge(ox);
    }
    // Interior: all kx in bounds; only ky still needs its row check.
    for (std::int64_t ox = x_lo; ox < x_hi; ++ox) {
      double acc = bias_value;
      const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = iy0 + ky * p.dilation_h;
        if (iy < 0 || iy >= in_h) {
          continue;
        }
        const float* row = plane + iy * in_w + ix0;
        const float* wk = w + ky * kw;
        if (kw == 3 && p.dilation_w == 1) {
          acc += static_cast<double>(row[0]) * static_cast<double>(wk[0]);
          acc += static_cast<double>(row[1]) * static_cast<double>(wk[1]);
          acc += static_cast<double>(row[2]) * static_cast<double>(wk[2]);
        } else {
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            acc += static_cast<double>(row[kx * p.dilation_w]) *
                   static_cast<double>(wk[kx]);
          }
        }
      }
      out_row[ox] = static_cast<float>(acc);
    }
    for (std::int64_t ox = x_hi; ox < out_w; ++ox) {
      edge(ox);
    }
  }
}

/// One FuSe row channel (1 x K kernel): each output row reads one input
/// row; accumulation over kx in order.
void fuse_row_channel(const float* plane, std::int64_t in_h,
                      std::int64_t in_w, const float* w, std::int64_t kw,
                      const Conv2dParams& p, double bias_value, float* out,
                      std::int64_t out_h, std::int64_t out_w) {
  const auto [x_lo, x_hi] =
      interior_x(out_w, in_w, kw, p.stride_w, p.pad_w, p.dilation_w);
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    const std::int64_t iy = oy * p.stride_h - p.pad_h;
    float* out_row = out + oy * out_w;
    if (iy < 0 || iy >= in_h) {
      // The single kernel row is out of bounds: only the bias survives.
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        out_row[ox] = static_cast<float>(bias_value);
      }
      continue;
    }
    const float* row = plane + iy * in_w;
    const auto edge = [&](std::int64_t ox) {
      double acc = bias_value;
      const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
      for (std::int64_t kx = 0; kx < kw; ++kx) {
        const std::int64_t ix = ix0 + kx * p.dilation_w;
        if (ix < 0 || ix >= in_w) {
          continue;
        }
        acc += static_cast<double>(row[ix]) * static_cast<double>(w[kx]);
      }
      out_row[ox] = static_cast<float>(acc);
    };
    for (std::int64_t ox = 0; ox < x_lo; ++ox) {
      edge(ox);
    }
    for (std::int64_t ox = x_lo; ox < x_hi; ++ox) {
      double acc = bias_value;
      const float* base = row + ox * p.stride_w - p.pad_w;
      if (kw == 3 && p.dilation_w == 1) {
        acc += static_cast<double>(base[0]) * static_cast<double>(w[0]);
        acc += static_cast<double>(base[1]) * static_cast<double>(w[1]);
        acc += static_cast<double>(base[2]) * static_cast<double>(w[2]);
      } else {
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          acc += static_cast<double>(base[kx * p.dilation_w]) *
                 static_cast<double>(w[kx]);
        }
      }
      out_row[ox] = static_cast<float>(acc);
    }
    for (std::int64_t ox = x_hi; ox < out_w; ++ox) {
      edge(ox);
    }
  }
}

/// One FuSe column channel (K x 1 kernel): processed a whole output row
/// at a time with a double accumulator per column, taps in ky order —
/// turning the strided column walk into contiguous row sweeps.
void fuse_col_channel(const float* plane, std::int64_t in_h,
                      std::int64_t in_w, const float* w, std::int64_t kh,
                      const Conv2dParams& p, double bias_value, float* out,
                      std::int64_t out_h, std::int64_t out_w,
                      std::vector<double>& acc) {
  // The single tap column: ix = ox * stride - pad for every ky.
  const auto [x_lo, x_hi] =
      interior_x(out_w, in_w, /*kw=*/1, p.stride_w, p.pad_w, p.dilation_w);
  acc.resize(static_cast<std::size_t>(out_w));
  for (std::int64_t oy = 0; oy < out_h; ++oy) {
    std::fill(acc.begin(), acc.end(), bias_value);
    const std::int64_t iy0 = oy * p.stride_h - p.pad_h;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      const std::int64_t iy = iy0 + ky * p.dilation_h;
      if (iy < 0 || iy >= in_h) {
        continue;
      }
      const float* row = plane + iy * in_w;
      const double wk = static_cast<double>(w[ky]);
      for (std::int64_t ox = x_lo; ox < x_hi; ++ox) {
        acc[static_cast<std::size_t>(ox)] +=
            static_cast<double>(row[ox * p.stride_w - p.pad_w]) * wk;
      }
    }
    float* out_row = out + oy * out_w;
    for (std::int64_t ox = 0; ox < out_w; ++ox) {
      out_row[ox] = static_cast<float>(acc[static_cast<std::size_t>(ox)]);
    }
  }
}

/// Dispatches one channel of the channelwise family.
enum class ChannelwiseKind { kDepthwise, kFuseRow, kFuseCol };

ChannelwiseKind classify_channelwise(std::int64_t kh, std::int64_t kw) {
  if (kh == 1 && kw > 1) {
    return ChannelwiseKind::kFuseRow;
  }
  if (kw == 1 && kh > 1) {
    return ChannelwiseKind::kFuseCol;
  }
  return ChannelwiseKind::kDepthwise;
}

Tensor conv2d_channelwise_fast(const Tensor& input, const Tensor& weight,
                               const Tensor* bias, const Conv2dParams& p) {
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  const std::int64_t in_h = input.shape().dim(2);
  const std::int64_t in_w = input.shape().dim(3);
  const std::int64_t kh = weight.shape().dim(2);
  const std::int64_t kw = weight.shape().dim(3);
  const std::int64_t out_h =
      conv_out_dim(in_h, kh, p.stride_h, p.pad_h, p.dilation_h);
  const std::int64_t out_w =
      conv_out_dim(in_w, kw, p.stride_w, p.pad_w, p.dilation_w);
  const ChannelwiseKind kind = classify_channelwise(kh, kw);
  switch (kind) {
    case ChannelwiseKind::kDepthwise:
      FUSE_KERNEL_COUNTER("kernels.fast.depthwise");
      break;
    case ChannelwiseKind::kFuseRow:
      FUSE_KERNEL_COUNTER("kernels.fast.fuse_row");
      break;
    case ChannelwiseKind::kFuseCol:
      FUSE_KERNEL_COUNTER("kernels.fast.fuse_col");
      break;
  }

  // The AVX2 channelwise kernels load interior taps contiguously, which
  // needs unit stride/dilation along x; other geometries run the scalar
  // kernels under every ISA.
  const KernelIsa isa = note_isa(p.stride_w == 1 && p.dilation_w == 1);
  const std::int64_t eff_kw = kind == ChannelwiseKind::kFuseCol ? 1 : kw;
  const auto [x_lo, x_hi] =
      interior_x(out_w, in_w, eff_kw, p.stride_w, p.pad_w, p.dilation_w);
  const kernels::ConvGeom geom = to_geom(p);

  Tensor output(Shape{batch, channels, out_h, out_w});
  const float* in_ptr = input.data();
  const float* w_ptr = weight.data();
  const float* bias_ptr = bias != nullptr ? bias->data() : nullptr;
  float* out_ptr = output.data();
  const std::int64_t in_plane = in_h * in_w;
  const std::int64_t out_plane = out_h * out_w;

  // One task per (image, channel): outputs are disjoint planes.
  run_tiles(batch * channels, out_plane, [&](std::int64_t task) {
    const std::int64_t c = task % channels;
    const float* plane = in_ptr + task * in_plane;
    const float* w = w_ptr + c * kh * kw;
    const double bias_value =
        bias_ptr != nullptr ? static_cast<double>(bias_ptr[c]) : 0.0;
    float* out = out_ptr + task * out_plane;
    if (isa == KernelIsa::kAvx2) {
      const float bias_f = bias_ptr != nullptr ? bias_ptr[c] : 0.0F;
      switch (kind) {
        case ChannelwiseKind::kDepthwise:
          kernels::avx2::depthwise_channel(plane, in_h, in_w, w, kh, kw,
                                           geom, bias_f, out, out_h, out_w,
                                           x_lo, x_hi);
          break;
        case ChannelwiseKind::kFuseRow:
          kernels::avx2::fuse_row_channel(plane, in_h, in_w, w, kw, geom,
                                          bias_f, out, out_h, out_w, x_lo,
                                          x_hi);
          break;
        case ChannelwiseKind::kFuseCol:
          kernels::avx2::fuse_col_channel(plane, in_h, in_w, w, kh, geom,
                                          bias_f, out, out_h, out_w, x_lo,
                                          x_hi);
          break;
      }
      return;
    }
    switch (kind) {
      case ChannelwiseKind::kDepthwise:
        depthwise_channel(plane, in_h, in_w, w, kh, kw, p, bias_value, out,
                          out_h, out_w);
        break;
      case ChannelwiseKind::kFuseRow:
        fuse_row_channel(plane, in_h, in_w, w, kw, p, bias_value, out, out_h,
                         out_w);
        break;
      case ChannelwiseKind::kFuseCol: {
        thread_local std::vector<double> acc;
        fuse_col_channel(plane, in_h, in_w, w, kh, p, bias_value, out, out_h,
                         out_w, acc);
        break;
      }
    }
  });
  return output;
}

// ---------------------------------------------------------------------------
// Dense / grouped conv through im2col-on-the-fly GEMM
// ---------------------------------------------------------------------------

Tensor conv2d_gemm_fast(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const Conv2dParams& p) {
  FUSE_KERNEL_COUNTER("kernels.fast.conv2d");
  // im2col linearizes every geometry, so the GEMM path vectorizes
  // unconditionally.
  const KernelIsa isa = note_isa();
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_c = input.shape().dim(1);
  const std::int64_t in_h = input.shape().dim(2);
  const std::int64_t in_w = input.shape().dim(3);
  const std::int64_t out_c = weight.shape().dim(0);
  const std::int64_t kh = weight.shape().dim(2);
  const std::int64_t kw = weight.shape().dim(3);
  const std::int64_t group_in = in_c / p.groups;
  const std::int64_t group_out = out_c / p.groups;
  const std::int64_t out_h =
      conv_out_dim(in_h, kh, p.stride_h, p.pad_h, p.dilation_h);
  const std::int64_t out_w =
      conv_out_dim(in_w, kw, p.stride_w, p.pad_w, p.dilation_w);
  const std::int64_t positions = out_h * out_w;
  const std::int64_t taps = group_in * kh * kw;

  Tensor output(Shape{batch, out_c, out_h, out_w});
  const float* in_ptr = input.data();
  const float* bias_ptr = bias != nullptr ? bias->data() : nullptr;
  float* out_ptr = output.data();
  const std::int64_t blocks = (positions + kMcConv - 1) / kMcConv;

  std::vector<float> b_panels;
  for (std::int64_t g = 0; g < p.groups; ++g) {
    // Weight rows for this group's out channels are contiguous [taps]
    // slices in (ic, ky, kx) order — exactly the panel's k order.
    pack_bt_panels(weight.data() + g * group_out * taps, group_out, taps,
                   taps, b_panels);
    const float* panels = b_panels.data();
    const float* group_bias =
        bias_ptr != nullptr ? bias_ptr + g * group_out : nullptr;
    run_tiles(batch * blocks, kMcConv, [&, g](std::int64_t task) {
      const std::int64_t n = task / blocks;
      const std::int64_t p0 = (task % blocks) * kMcConv;
      const std::int64_t rows = std::min(kMcConv, positions - p0);
      thread_local std::vector<float> panel;
      panel.resize(static_cast<std::size_t>(kMcConv * taps));
      build_im2col_panel(in_ptr + n * in_c * in_h * in_w, in_c, in_h, in_w,
                         g * group_in, group_in, p, out_w, p0, rows, kh, kw,
                         panel.data());
      pack_bytes_counter().add(
          static_cast<std::uint64_t>(rows * taps) * sizeof(float));
      // Output element (row r, col j) lives at NCHW offset
      // (n, g*group_out + j, p0 + r): column stride = positions.
      float* out_base =
          out_ptr + (n * out_c + g * group_out) * positions + p0;
      if (isa == KernelIsa::kAvx2) {
        kernels::avx2::block_gemm(panel.data(), taps, rows, panels, taps,
                                  group_out, group_bias, out_base,
                                  /*row_stride=*/1,
                                  /*col_stride=*/positions);
      } else {
        block_gemm_f64(panel.data(), taps, rows, panels, taps, group_out,
                       group_bias, out_base, /*row_stride=*/1,
                       /*col_stride=*/positions);
      }
    });
  }
  return output;
}

}  // namespace

// ---------------------------------------------------------------------------
// Backend + pool accessors
// ---------------------------------------------------------------------------

KernelBackend kernel_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_kernel_backend(KernelBackend backend) {
  backend_state().store(backend, std::memory_order_relaxed);
}

bool parse_kernel_backend(const std::string& name, KernelBackend* out) {
  if (name == "fast") {
    *out = KernelBackend::kFast;
    return true;
  }
  if (name == "reference" || name == "ref") {
    *out = KernelBackend::kReference;
    return true;
  }
  return false;
}

const char* kernel_backend_name(KernelBackend backend) {
  return backend == KernelBackend::kFast ? "fast" : "reference";
}

int kernel_threads() {
  PoolState& state = pool_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.threads;
}

void set_kernel_threads(int threads) {
  FUSE_CHECK(threads >= 1)
      << "kernel threads must be >= 1, got " << threads;
  PoolState& state = pool_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.threads = threads;
  // N total threads = N-1 workers + the calling thread (the sweep
  // engine's convention); the pool is rebuilt eagerly so stale workers
  // never outlive the request.
  state.pool = std::make_unique<util::ThreadPool>(threads - 1);
}

util::ThreadPool& kernel_pool() {
  PoolState& state = pool_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.pool == nullptr) {
    state.pool = std::make_unique<util::ThreadPool>(state.threads - 1);
  }
  return *state.pool;
}

KernelIsa kernel_isa() { return isa_state().load(std::memory_order_relaxed); }

void set_kernel_isa(KernelIsa isa) {
  FUSE_CHECK(kernel_isa_available(isa))
      << "kernel ISA '" << kernel_isa_name(isa)
      << "' is not available on this machine (cpu: "
      << util::cpu_features().to_string() << ")";
  isa_state().store(isa, std::memory_order_relaxed);
}

bool kernel_isa_available(KernelIsa isa) {
  if (isa == KernelIsa::kScalar) {
    return true;
  }
  const util::CpuFeatures& cpu = util::cpu_features();
  return kernels::avx2::compiled() && cpu.avx2 && cpu.fma;
}

bool parse_kernel_isa(const std::string& name, KernelIsa* out) {
  if (name == "scalar") {
    *out = KernelIsa::kScalar;
    return true;
  }
  if (name == "avx2") {
    *out = KernelIsa::kAvx2;
    return true;
  }
  if (name == "auto") {
    *out = kernel_isa_available(KernelIsa::kAvx2) ? KernelIsa::kAvx2
                                                  : KernelIsa::kScalar;
    return true;
  }
  return false;
}

const char* kernel_isa_name(KernelIsa isa) {
  return isa == KernelIsa::kAvx2 ? "avx2" : "scalar";
}

namespace kernels {

// ---------------------------------------------------------------------------
// GEMM (float accumulation — nn::matmul's numerics)
// ---------------------------------------------------------------------------

void gemm_f32(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  FUSE_KERNEL_COUNTER("kernels.fast.gemm");
  const KernelIsa isa = note_isa();
  std::vector<float> b_panels;
  pack_b_panels(b, k, n, n, b_panels);
  const float* panels = b_panels.data();
  const std::int64_t panel_count = (n + kNr - 1) / kNr;
  const std::int64_t blocks = (m + kMcGemm - 1) / kMcGemm;
  run_tiles(blocks, kMcGemm, [&](std::int64_t block) {
    const std::int64_t r0 = block * kMcGemm;
    const std::int64_t rows = std::min(kMcGemm, m - r0);
    if (isa == KernelIsa::kAvx2) {
      kernels::avx2::block_gemm(a + r0 * k, k, rows, panels, k, n,
                                /*bias=*/nullptr, c + r0 * n,
                                /*row_stride=*/n, /*col_stride=*/1);
      return;
    }
    for (std::int64_t pn = 0; pn < panel_count; ++pn) {
      const float* bp = panels + pn * k * kNr;
      const std::int64_t j0 = pn * kNr;
      const std::int64_t ncols = std::min(kNr, n - j0);
      std::int64_t r = 0;
      for (; r + 4 <= rows; r += 4) {
        micro_f32<4>(a + (r0 + r) * k, k, bp, k, c + (r0 + r) * n + j0, n,
                     ncols);
      }
      for (; r < rows; ++r) {
        micro_f32<1>(a + (r0 + r) * k, k, bp, k, c + (r0 + r) * n + j0, n,
                     ncols);
      }
    }
  });
}

Tensor matmul_fast(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t k = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);
  Tensor out(Shape{m, n});
  gemm_f32(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

// ---------------------------------------------------------------------------
// conv2d / linear (double accumulation — the reference numerics)
// ---------------------------------------------------------------------------

Tensor conv2d_fast(const Tensor& input, const Tensor& weight,
                   const Tensor* bias, const Conv2dParams& params) {
  const std::int64_t in_c = input.shape().dim(1);
  const std::int64_t out_c = weight.shape().dim(0);
  if (params.groups == in_c && weight.shape().dim(1) == 1 &&
      out_c == in_c) {
    return conv2d_channelwise_fast(input, weight, bias, params);
  }
  return conv2d_gemm_fast(input, weight, bias, params);
}

Tensor linear_fast(const Tensor& input, const Tensor& weight,
                   const Tensor* bias) {
  FUSE_KERNEL_COUNTER("kernels.fast.linear");
  const KernelIsa isa = note_isa();
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_f = input.shape().dim(1);
  const std::int64_t out_f = weight.shape().dim(0);
  Tensor out(Shape{batch, out_f});
  std::vector<float> b_panels;
  pack_bt_panels(weight.data(), out_f, in_f, in_f, b_panels);
  const float* panels = b_panels.data();
  const float* in_ptr = input.data();
  const float* bias_ptr = bias != nullptr ? bias->data() : nullptr;
  float* out_ptr = out.data();
  // Tasks own disjoint column panels of the output (batch is usually
  // small, out_f large: partition the feature axis).
  const std::int64_t panel_count = (out_f + kNr - 1) / kNr;
  run_tiles(panel_count, kNr * batch, [&](std::int64_t pn) {
    const float* bp = panels + pn * in_f * kNr;
    const std::int64_t j0 = pn * kNr;
    const std::int64_t ncols = std::min(kNr, out_f - j0);
    if (isa == KernelIsa::kAvx2) {
      // One panel's worth of the GEMM: bias indexed from the panel base.
      kernels::avx2::block_gemm(
          in_ptr, in_f, batch, bp, in_f, ncols,
          bias_ptr != nullptr ? bias_ptr + j0 : nullptr, out_ptr + j0,
          /*row_stride=*/out_f, /*col_stride=*/1);
      return;
    }
    double bias8[kNr] = {};
    if (bias_ptr != nullptr) {
      for (std::int64_t j = 0; j < ncols; ++j) {
        bias8[j] = static_cast<double>(bias_ptr[j0 + j]);
      }
    }
    std::int64_t r = 0;
    for (; r + 2 <= batch; r += 2) {
      micro_f64<2>(in_ptr + r * in_f, in_f, bp, in_f, bias8,
                   out_ptr + r * out_f + j0, out_f, 1, ncols);
    }
    for (; r < batch; ++r) {
      micro_f64<1>(in_ptr + r * in_f, in_f, bp, in_f, bias8,
                   out_ptr + r * out_f + j0, out_f, 1, ncols);
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// INT8 kernels (int32 accumulation — order-insensitive)
// ---------------------------------------------------------------------------

Tensor conv2d_int8_fast(const QuantizedTensor& input,
                        const QuantizedTensor& weight,
                        const Conv2dParams& p) {
  FUSE_KERNEL_COUNTER("kernels.fast.conv2d_int8");
  const std::int64_t batch = input.shape.dim(0);
  const std::int64_t in_c = input.shape.dim(1);
  const std::int64_t in_h = input.shape.dim(2);
  const std::int64_t in_w = input.shape.dim(3);
  const std::int64_t out_c = weight.shape.dim(0);
  const std::int64_t kh = weight.shape.dim(2);
  const std::int64_t kw = weight.shape.dim(3);
  const std::int64_t group_in = in_c / p.groups;
  const std::int64_t group_out = out_c / p.groups;
  const std::int64_t out_h =
      conv_out_dim(in_h, kh, p.stride_h, p.pad_h, p.dilation_h);
  const std::int64_t out_w =
      conv_out_dim(in_w, kw, p.stride_w, p.pad_w, p.dilation_w);
  const std::int32_t zp_in = input.params.zero_point;
  const float requant_scale = input.params.scale * weight.params.scale;

  Tensor output(Shape{batch, out_c, out_h, out_w});
  const std::int8_t* in_ptr = input.data.data();
  const std::int8_t* w_ptr = weight.data.data();
  float* out_ptr = output.data();
  const auto [x_lo, x_hi] =
      interior_x(out_w, in_w, kw, p.stride_w, p.pad_w, p.dilation_w);
  // The AVX2 plane kernel loads interior taps contiguously (needs unit
  // x stride/dilation); int32 accumulation keeps it bit-exact anyway.
  const KernelIsa isa = note_isa(p.stride_w == 1 && p.dilation_w == 1);
  const kernels::ConvGeom geom = to_geom(p);

  // One task per (image, output channel); int32 sums are order-exact.
  run_tiles(batch * out_c, out_h * out_w, [&](std::int64_t task) {
    const std::int64_t n = task / out_c;
    const std::int64_t oc = task % out_c;
    const std::int64_t group = oc / group_out;
    const std::int8_t* w_oc = w_ptr + oc * group_in * kh * kw;
    float* out_plane = out_ptr + task * out_h * out_w;
    const std::int8_t* image = in_ptr + n * in_c * in_h * in_w;
    if (isa == KernelIsa::kAvx2) {
      kernels::avx2::conv2d_int8_plane(
          image + group * group_in * in_h * in_w, group_in, in_h, in_w,
          w_oc, kh, kw, geom, zp_in, requant_scale, out_plane, out_h,
          out_w, x_lo, x_hi);
      return;
    }
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      const std::int64_t iy0 = oy * p.stride_h - p.pad_h;
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
        const bool interior = ox >= x_lo && ox < x_hi;
        std::int32_t acc = 0;
        for (std::int64_t ic = 0; ic < group_in; ++ic) {
          const std::int8_t* plane =
              image + (group * group_in + ic) * in_h * in_w;
          const std::int8_t* w_ic = w_oc + ic * kh * kw;
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = iy0 + ky * p.dilation_h;
            if (iy < 0 || iy >= in_h) {
              continue;
            }
            const std::int8_t* row = plane + iy * in_w;
            const std::int8_t* w_ky = w_ic + ky * kw;
            if (interior) {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                acc += (static_cast<std::int32_t>(
                            row[ix0 + kx * p.dilation_w]) -
                        zp_in) *
                       static_cast<std::int32_t>(w_ky[kx]);
              }
            } else {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ix0 + kx * p.dilation_w;
                if (ix < 0 || ix >= in_w) {
                  continue;
                }
                acc += (static_cast<std::int32_t>(row[ix]) - zp_in) *
                       static_cast<std::int32_t>(w_ky[kx]);
              }
            }
          }
        }
        out_plane[oy * out_w + ox] =
            requant_scale * static_cast<float>(acc);
      }
    }
  });
  return output;
}

Tensor linear_int8_fast(const QuantizedTensor& input,
                        const QuantizedTensor& weight) {
  FUSE_KERNEL_COUNTER("kernels.fast.linear_int8");
  const KernelIsa isa = note_isa();
  const std::int64_t batch = input.shape.dim(0);
  const std::int64_t in_f = input.shape.dim(1);
  const std::int64_t out_f = weight.shape.dim(0);
  const std::int32_t zp_in = input.params.zero_point;
  const float requant_scale = input.params.scale * weight.params.scale;
  Tensor output(Shape{batch, out_f});
  const std::int8_t* in_ptr = input.data.data();
  const std::int8_t* w_ptr = weight.data.data();
  float* out_ptr = output.data();
  constexpr std::int64_t kBlock = 32;
  const std::int64_t blocks = (out_f + kBlock - 1) / kBlock;
  run_tiles(blocks, kBlock * batch, [&](std::int64_t block) {
    const std::int64_t o0 = block * kBlock;
    const std::int64_t o1 = std::min(o0 + kBlock, out_f);
    for (std::int64_t n = 0; n < batch; ++n) {
      const std::int8_t* row = in_ptr + n * in_f;
      for (std::int64_t o = o0; o < o1; ++o) {
        const std::int8_t* w_row = w_ptr + o * in_f;
        std::int32_t acc = 0;
        if (isa == KernelIsa::kAvx2) {
          acc = kernels::avx2::linear_int8_dot(row, w_row, in_f, zp_in);
        } else {
          for (std::int64_t i = 0; i < in_f; ++i) {
            acc += (static_cast<std::int32_t>(row[i]) - zp_in) *
                   static_cast<std::int32_t>(w_row[i]);
          }
        }
        out_ptr[n * out_f + o] = requant_scale * static_cast<float>(acc);
      }
    }
  });
  return output;
}

// ---------------------------------------------------------------------------
// Training backward passes
// ---------------------------------------------------------------------------

Tensor conv2d_backward_fast(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output,
                            const Conv2dParams& p, Tensor* weight_grad,
                            Tensor* bias_grad) {
  FUSE_KERNEL_COUNTER("kernels.fast.conv2d_backward");
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_c = input.shape().dim(1);
  const std::int64_t in_h = input.shape().dim(2);
  const std::int64_t in_w = input.shape().dim(3);
  const std::int64_t out_c = grad_output.shape().dim(1);
  const std::int64_t out_h = grad_output.shape().dim(2);
  const std::int64_t out_w = grad_output.shape().dim(3);
  const std::int64_t kh = weight.shape().dim(2);
  const std::int64_t kw = weight.shape().dim(3);
  const std::int64_t group_in = in_c / p.groups;
  const std::int64_t group_out = out_c / p.groups;

  const float* in_ptr = input.data();
  const float* w_ptr = weight.data();
  const float* go_ptr = grad_output.data();
  float* wg_ptr = weight_grad->data();
  float* bg_ptr = bias_grad->data();

  Tensor grad_input(input.shape());
  float* gi_ptr = grad_input.data();

  // Pass 1 — grad_input, one task per image (disjoint input slices).
  // Loop order inside an image matches the reference exactly:
  // oc, oy, ox, ic, ky, kx with go == 0 skipped.
  run_tiles(batch, out_c * out_h * out_w, [&](std::int64_t n) {
    float* gi_image = gi_ptr + n * in_c * in_h * in_w;
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const std::int64_t group = oc / group_out;
      const float* go_plane =
          go_ptr + (n * out_c + oc) * out_h * out_w;
      const float* w_oc = w_ptr + oc * group_in * kh * kw;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        const std::int64_t iy0 = oy * p.stride_h - p.pad_h;
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const float go = go_plane[oy * out_w + ox];
          if (go == 0.0F) {
            continue;
          }
          const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            float* gi_plane =
                gi_image + (group * group_in + ic) * in_h * in_w;
            const float* w_ic = w_oc + ic * kh * kw;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = iy0 + ky * p.dilation_h;
              if (iy < 0 || iy >= in_h) {
                continue;
              }
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ix0 + kx * p.dilation_w;
                if (ix < 0 || ix >= in_w) {
                  continue;
                }
                gi_plane[iy * in_w + ix] += go * w_ic[ky * kw + kx];
              }
            }
          }
        }
      }
    }
  });

  // Pass 2 — weight and bias gradients, one task per output channel
  // (disjoint weight_grad rows / bias_grad entries). For a fixed oc the
  // reference visits (n, oy, ox) ascending — preserved here.
  run_tiles(out_c, batch * out_h * out_w, [&](std::int64_t oc) {
    const std::int64_t group = oc / group_out;
    float* wg_oc = wg_ptr + oc * group_in * kh * kw;
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* go_plane = go_ptr + (n * out_c + oc) * out_h * out_w;
      const float* in_image = in_ptr + n * in_c * in_h * in_w;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        const std::int64_t iy0 = oy * p.stride_h - p.pad_h;
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const float go = go_plane[oy * out_w + ox];
          if (go == 0.0F) {
            continue;
          }
          bg_ptr[oc] += go;
          const std::int64_t ix0 = ox * p.stride_w - p.pad_w;
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            const float* in_plane =
                in_image + (group * group_in + ic) * in_h * in_w;
            float* wg_ic = wg_oc + ic * kh * kw;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = iy0 + ky * p.dilation_h;
              if (iy < 0 || iy >= in_h) {
                continue;
              }
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ix0 + kx * p.dilation_w;
                if (ix < 0 || ix >= in_w) {
                  continue;
                }
                wg_ic[ky * kw + kx] += go * in_plane[iy * in_w + ix];
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

Tensor linear_backward_fast(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, Tensor* weight_grad,
                            Tensor* bias_grad) {
  FUSE_KERNEL_COUNTER("kernels.fast.linear_backward");
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_f = input.shape().dim(1);
  const std::int64_t out_f = grad_output.shape().dim(1);
  const float* in_ptr = input.data();
  const float* w_ptr = weight.data();
  const float* go_ptr = grad_output.data();
  float* wg_ptr = weight_grad->data();
  float* bg_ptr = bias_grad->data();

  Tensor grad_input(input.shape());
  float* gi_ptr = grad_input.data();

  // Pass 1 — grad_input rows (one task per example, o ascending inside).
  run_tiles(batch, out_f, [&](std::int64_t n) {
    float* gi_row = gi_ptr + n * in_f;
    const float* go_row = go_ptr + n * out_f;
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float go = go_row[o];
      if (go == 0.0F) {
        continue;
      }
      const float* w_row = w_ptr + o * in_f;
      for (std::int64_t i = 0; i < in_f; ++i) {
        gi_row[i] += go * w_row[i];
      }
    }
  });

  // Pass 2 — weight/bias gradients (one task block per output feature
  // range, n ascending inside — the reference order for a fixed o).
  constexpr std::int64_t kBlock = 16;
  const std::int64_t blocks = (out_f + kBlock - 1) / kBlock;
  run_tiles(blocks, kBlock * batch, [&](std::int64_t block) {
    const std::int64_t o0 = block * kBlock;
    const std::int64_t o1 = std::min(o0 + kBlock, out_f);
    for (std::int64_t o = o0; o < o1; ++o) {
      float* wg_row = wg_ptr + o * in_f;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float go = go_ptr[n * out_f + o];
        if (go == 0.0F) {
          continue;
        }
        bg_ptr[o] += go;
        const float* in_row = in_ptr + n * in_f;
        for (std::int64_t i = 0; i < in_f; ++i) {
          wg_row[i] += go * in_row[i];
        }
      }
    }
  });
  return grad_input;
}

// ---------------------------------------------------------------------------
// Marshalling helpers shared with the systolic executor
// ---------------------------------------------------------------------------

Tensor flatten_filters(const Tensor& weight) {
  FUSE_CHECK(weight.shape().rank() == 4)
      << "flatten_filters expects [C_out, C_in/g, Kh, Kw], got "
      << weight.shape().to_string();
  const std::int64_t out_c = weight.shape().dim(0);
  const std::int64_t taps = weight.shape().dim(1) * weight.shape().dim(2) *
                            weight.shape().dim(3);
  Tensor filters(Shape{taps, out_c});
  const float* w = weight.data();
  float* f = filters.data();
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    const float* row = w + oc * taps;
    for (std::int64_t t = 0; t < taps; ++t) {
      f[t * out_c + oc] = row[t];
    }
  }
  return filters;
}

Tensor transpose_2d(const Tensor& w) {
  FUSE_CHECK(w.shape().rank() == 2)
      << "transpose_2d expects a rank-2 tensor, got "
      << w.shape().to_string();
  const std::int64_t rows = w.shape().dim(0);
  const std::int64_t cols = w.shape().dim(1);
  Tensor out(Shape{cols, rows});
  const float* src = w.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      dst[c * rows + r] = src[r * cols + c];
    }
  }
  return out;
}

}  // namespace kernels

}  // namespace fuse::nn
