#include "nn/layer.hpp"

#include <sstream>

#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace fuse::nn {

std::string op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kStandardConv:
      return "conv";
    case OpKind::kGroupedConv:
      return "gconv";
    case OpKind::kDepthwiseConv:
      return "dw";
    case OpKind::kPointwiseConv:
      return "pw";
    case OpKind::kFuseRowConv:
      return "fuse-row";
    case OpKind::kFuseColConv:
      return "fuse-col";
    case OpKind::kFullyConnected:
      return "fc";
    case OpKind::kAvgPool:
      return "avgpool";
    case OpKind::kMaxPool:
      return "maxpool";
    case OpKind::kGlobalAvgPool:
      return "gap";
    case OpKind::kActivation:
      return "act";
    case OpKind::kElementwiseAdd:
      return "add";
  }
  return "?";
}

OpKind op_kind_from_name(const std::string& name) {
  for (OpKind kind :
       {OpKind::kStandardConv, OpKind::kGroupedConv, OpKind::kDepthwiseConv,
        OpKind::kPointwiseConv, OpKind::kFuseRowConv, OpKind::kFuseColConv,
        OpKind::kFullyConnected, OpKind::kAvgPool, OpKind::kMaxPool,
        OpKind::kGlobalAvgPool, OpKind::kActivation,
        OpKind::kElementwiseAdd}) {
    if (op_kind_name(kind) == name) {
      return kind;
    }
  }
  FUSE_CHECK(false) << "unknown op kind name '" << name << "'";
  return OpKind::kStandardConv;
}

bool op_kind_counts_for_latency(OpKind kind) {
  switch (kind) {
    case OpKind::kStandardConv:
    case OpKind::kGroupedConv:
    case OpKind::kDepthwiseConv:
    case OpKind::kPointwiseConv:
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
    case OpKind::kFullyConnected:
      return true;
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      return false;
  }
  return false;
}

std::uint64_t LayerDesc::macs() const {
  const std::uint64_t out_positions =
      static_cast<std::uint64_t>(out_h) * static_cast<std::uint64_t>(out_w);
  switch (kind) {
    case OpKind::kStandardConv:
    case OpKind::kGroupedConv:
    case OpKind::kDepthwiseConv:
    case OpKind::kPointwiseConv:
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv: {
      const std::uint64_t taps_per_output =
          static_cast<std::uint64_t>(kernel_h) *
          static_cast<std::uint64_t>(kernel_w) *
          static_cast<std::uint64_t>(in_c / groups);
      return out_positions * static_cast<std::uint64_t>(out_c) *
             taps_per_output;
    }
    case OpKind::kFullyConnected:
      return static_cast<std::uint64_t>(in_c) *
             static_cast<std::uint64_t>(out_c);
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      return 0;
  }
  return 0;
}

std::uint64_t LayerDesc::params() const {
  std::uint64_t weights = 0;
  switch (kind) {
    case OpKind::kStandardConv:
    case OpKind::kGroupedConv:
    case OpKind::kDepthwiseConv:
    case OpKind::kPointwiseConv:
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
      weights = static_cast<std::uint64_t>(out_c) *
                static_cast<std::uint64_t>(in_c / groups) *
                static_cast<std::uint64_t>(kernel_h) *
                static_cast<std::uint64_t>(kernel_w);
      break;
    case OpKind::kFullyConnected:
      weights = static_cast<std::uint64_t>(in_c) *
                static_cast<std::uint64_t>(out_c);
      break;
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      return 0;
  }
  if (has_bias) {
    weights += static_cast<std::uint64_t>(out_c);
  }
  if (has_batchnorm) {
    weights += 2ULL * static_cast<std::uint64_t>(out_c);
  }
  return weights;
}

std::string LayerDesc::to_string() const {
  std::ostringstream out;
  out << name << " [" << op_kind_name(kind) << "] " << in_c << "x" << in_h
      << "x" << in_w << " -> " << out_c << "x" << out_h << "x" << out_w;
  if (kind != OpKind::kFullyConnected && kernel_h * kernel_w > 0) {
    out << " k=" << kernel_h << "x" << kernel_w << " s=" << stride_h << "x"
        << stride_w << " p=" << pad_h << "x" << pad_w << " g=" << groups;
  }
  return out.str();
}

namespace {

/// Shared geometry derivation for the conv-family factories.
LayerDesc conv_like(const std::string& name, OpKind kind, std::int64_t in_c,
                    std::int64_t in_h, std::int64_t in_w, std::int64_t out_c,
                    std::int64_t kernel_h, std::int64_t kernel_w,
                    std::int64_t stride_h, std::int64_t stride_w,
                    std::int64_t pad_h, std::int64_t pad_w,
                    std::int64_t groups, Activation act) {
  FUSE_CHECK(in_c > 0 && in_h > 0 && in_w > 0 && out_c > 0)
      << "bad conv geometry for layer " << name;
  FUSE_CHECK(in_c % groups == 0 && out_c % groups == 0)
      << "channels not divisible by groups for layer " << name;
  LayerDesc layer;
  layer.name = name;
  layer.kind = kind;
  layer.in_c = in_c;
  layer.in_h = in_h;
  layer.in_w = in_w;
  layer.out_c = out_c;
  layer.out_h = tensor::conv_out_dim(in_h, kernel_h, stride_h, pad_h);
  layer.out_w = tensor::conv_out_dim(in_w, kernel_w, stride_w, pad_w);
  layer.kernel_h = kernel_h;
  layer.kernel_w = kernel_w;
  layer.stride_h = stride_h;
  layer.stride_w = stride_w;
  layer.pad_h = pad_h;
  layer.pad_w = pad_w;
  layer.groups = groups;
  layer.has_batchnorm = true;
  layer.activation = act;
  return layer;
}

}  // namespace

LayerDesc make_conv(const std::string& name, std::int64_t in_c,
                    std::int64_t in_h, std::int64_t in_w, std::int64_t out_c,
                    std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad, Activation act) {
  return conv_like(name, OpKind::kStandardConv, in_c, in_h, in_w, out_c,
                   kernel, kernel, stride, stride, pad, pad, /*groups=*/1,
                   act);
}

LayerDesc make_depthwise(const std::string& name, std::int64_t channels,
                         std::int64_t in_h, std::int64_t in_w,
                         std::int64_t kernel, std::int64_t stride,
                         std::int64_t pad, Activation act) {
  return conv_like(name, OpKind::kDepthwiseConv, channels, in_h, in_w,
                   channels, kernel, kernel, stride, stride, pad, pad,
                   /*groups=*/channels, act);
}

LayerDesc make_pointwise(const std::string& name, std::int64_t in_c,
                         std::int64_t in_h, std::int64_t in_w,
                         std::int64_t out_c, Activation act) {
  return conv_like(name, OpKind::kPointwiseConv, in_c, in_h, in_w, out_c,
                   /*kernel_h=*/1, /*kernel_w=*/1, /*stride=*/1, 1,
                   /*pad=*/0, 0, /*groups=*/1, act);
}

LayerDesc make_fuse_row(const std::string& name, std::int64_t channels,
                        std::int64_t in_h, std::int64_t in_w,
                        std::int64_t kernel, std::int64_t stride,
                        std::int64_t pad, Activation act) {
  // 1xK kernel, but the full 2-D stride and only horizontal padding, so the
  // output spatial size equals that of the KxK depthwise it replaces.
  return conv_like(name, OpKind::kFuseRowConv, channels, in_h, in_w,
                   channels, /*kernel_h=*/1, /*kernel_w=*/kernel, stride,
                   stride, /*pad_h=*/0, /*pad_w=*/pad, /*groups=*/channels,
                   act);
}

LayerDesc make_fuse_col(const std::string& name, std::int64_t channels,
                        std::int64_t in_h, std::int64_t in_w,
                        std::int64_t kernel, std::int64_t stride,
                        std::int64_t pad, Activation act) {
  return conv_like(name, OpKind::kFuseColConv, channels, in_h, in_w,
                   channels, /*kernel_h=*/kernel, /*kernel_w=*/1, stride,
                   stride, /*pad_h=*/pad, /*pad_w=*/0, /*groups=*/channels,
                   act);
}

LayerDesc make_fully_connected(const std::string& name, std::int64_t in_f,
                               std::int64_t out_f, bool bias,
                               Activation act) {
  FUSE_CHECK(in_f > 0 && out_f > 0) << "bad FC geometry for layer " << name;
  LayerDesc layer;
  layer.name = name;
  layer.kind = OpKind::kFullyConnected;
  layer.in_c = in_f;
  layer.in_h = 1;
  layer.in_w = 1;
  layer.out_c = out_f;
  layer.out_h = 1;
  layer.out_w = 1;
  layer.has_bias = bias;
  layer.activation = act;
  return layer;
}

std::uint64_t total_macs(const std::vector<LayerDesc>& layers) {
  std::uint64_t total = 0;
  for (const LayerDesc& layer : layers) {
    total += layer.macs();
  }
  return total;
}

std::uint64_t total_params(const std::vector<LayerDesc>& layers) {
  std::uint64_t total = 0;
  for (const LayerDesc& layer : layers) {
    total += layer.params();
  }
  return total;
}

}  // namespace fuse::nn
