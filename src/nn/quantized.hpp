// INT8 inference kernels: INT8 operands, INT32 accumulation, float
// requantization — the arithmetic a TPUv1-class systolic array performs
// natively. Weights use symmetric quantization (zero_point = 0) so the
// accumulation has no weight-side zero-point cross term; activations are
// affine.
#pragma once

#include "nn/ops.hpp"
#include "tensor/quantize.hpp"

namespace fuse::nn {

using tensor::QuantizedTensor;

/// Grouped 2-D convolution on quantized operands. input [N, C, H, W]
/// (affine), weight [C_out, C_in/g, Kh, Kw] (symmetric, zero_point == 0,
/// checked). Accumulates in int32 and returns the dequantized float
/// output: out = s_in * s_w * sum((q_in - zp_in) * q_w).
/// Dispatches on nn::kernel_backend(); int32 accumulation makes both
/// backends exactly equal.
tensor::Tensor conv2d_int8(const QuantizedTensor& input,
                           const QuantizedTensor& weight,
                           const Conv2dParams& params);

/// Reference oracle behind conv2d_int8.
tensor::Tensor conv2d_int8_reference(const QuantizedTensor& input,
                                     const QuantizedTensor& weight,
                                     const Conv2dParams& params);

/// Fully connected on quantized operands: input [N, F_in] (affine),
/// weight [F_out, F_in] (symmetric). Dispatches on nn::kernel_backend().
tensor::Tensor linear_int8(const QuantizedTensor& input,
                           const QuantizedTensor& weight);

/// Reference oracle behind linear_int8.
tensor::Tensor linear_int8_reference(const QuantizedTensor& input,
                                     const QuantizedTensor& weight);

}  // namespace fuse::nn
