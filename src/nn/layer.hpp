// LayerDesc: the flat execution IR.
//
// Every network in the zoo lowers to a vector<LayerDesc>. Each descriptor
// carries full geometry (input/output activation shape, kernel, stride,
// padding, groups), so MAC/parameter counting and systolic-array latency
// estimation are pure functions of the descriptor. This mirrors the paper's
// methodology: latency is estimated per layer from geometry alone
// (SCALE-Sim style), and Table I's MACs/Params columns are sums over the
// same descriptors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/activations.hpp"

namespace fuse::nn {

/// Operator classes distinguished by the paper's Fig. 8(c) breakdown plus
/// the non-compute glue ops (pool/activation/add) that are excluded from
/// latency per §V-A3.
enum class OpKind {
  kStandardConv,   // dense KxK convolution (groups == 1)
  kGroupedConv,    // grouped KxK convolution, 1 < groups < C_in
  kDepthwiseConv,  // KxK, groups == C_in == C_out, K > 1
  kPointwiseConv,  // dense 1x1 convolution
  kFuseRowConv,    // FuSeConv row branch: 1xK depthwise
  kFuseColConv,    // FuSeConv col branch: Kx1 depthwise
  kFullyConnected,
  kAvgPool,
  kMaxPool,
  kGlobalAvgPool,
  kActivation,
  kElementwiseAdd,
};

/// Short identifier for reports ("dw", "pw", "fuse-row", ...).
std::string op_kind_name(OpKind kind);

/// Inverse of op_kind_name; throws on unknown names.
OpKind op_kind_from_name(const std::string& name);

/// True for the kinds the paper includes in latency estimates: all
/// convolutions (including squeeze-excite's FCs) and fully connected layers.
bool op_kind_counts_for_latency(OpKind kind);

/// One executable layer with fully resolved geometry.
struct LayerDesc {
  std::string name;
  OpKind kind = OpKind::kStandardConv;

  // Activation geometry (batch dimension is implicit: 1).
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t out_c = 0, out_h = 0, out_w = 0;

  // Convolution geometry (unused for FC/pool/activation/add).
  std::int64_t kernel_h = 1, kernel_w = 1;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;
  std::int64_t groups = 1;

  bool has_bias = false;
  bool has_batchnorm = false;
  Activation activation = Activation::kNone;

  /// True when this layer sits inside a squeeze-excite block (reported as
  /// part of the conv/FC latency per the paper, but tagged for breakdowns).
  bool in_squeeze_excite = false;

  /// Index of the replaceable depthwise-separable block this layer belongs
  /// to (-1 when none). The FuSe transform uses these tags to compute
  /// per-block latency savings when selecting layers for the 50% variants.
  int fuse_slot = -1;

  /// Multiply-accumulate count for one inference.
  std::uint64_t macs() const;

  /// Learnable parameter count (weights + bias + 2 per channel when a
  /// batchnorm is attached).
  std::uint64_t params() const;

  /// Included in the latency estimate? (convs + FC only, per §V-A3).
  bool counts_for_latency() const {
    return op_kind_counts_for_latency(kind);
  }

  /// Single-line description for per-layer reports.
  std::string to_string() const;
};

// --- Factory helpers -------------------------------------------------------
// All take the input activation geometry and derive the output geometry.

/// Dense KxK convolution with symmetric stride/padding.
LayerDesc make_conv(const std::string& name, std::int64_t in_c,
                    std::int64_t in_h, std::int64_t in_w, std::int64_t out_c,
                    std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad, Activation act = Activation::kNone);

/// Depthwise KxK convolution (groups == in_c == out_c).
LayerDesc make_depthwise(const std::string& name, std::int64_t channels,
                         std::int64_t in_h, std::int64_t in_w,
                         std::int64_t kernel, std::int64_t stride,
                         std::int64_t pad,
                         Activation act = Activation::kNone);

/// Dense 1x1 convolution.
LayerDesc make_pointwise(const std::string& name, std::int64_t in_c,
                         std::int64_t in_h, std::int64_t in_w,
                         std::int64_t out_c,
                         Activation act = Activation::kNone);

/// FuSeConv row branch: 1xK depthwise over `channels`, full 2-D stride so
/// the output spatial size matches the depthwise layer it replaces.
LayerDesc make_fuse_row(const std::string& name, std::int64_t channels,
                        std::int64_t in_h, std::int64_t in_w,
                        std::int64_t kernel, std::int64_t stride,
                        std::int64_t pad, Activation act = Activation::kNone);

/// FuSeConv column branch: Kx1 depthwise.
LayerDesc make_fuse_col(const std::string& name, std::int64_t channels,
                        std::int64_t in_h, std::int64_t in_w,
                        std::int64_t kernel, std::int64_t stride,
                        std::int64_t pad, Activation act = Activation::kNone);

/// Fully connected layer (in_h == in_w == 1).
LayerDesc make_fully_connected(const std::string& name, std::int64_t in_f,
                               std::int64_t out_f, bool bias = true,
                               Activation act = Activation::kNone);

/// Totals over a lowered network.
std::uint64_t total_macs(const std::vector<LayerDesc>& layers);
std::uint64_t total_params(const std::vector<LayerDesc>& layers);

}  // namespace fuse::nn
