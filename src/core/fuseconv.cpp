#include "core/fuseconv.hpp"

#include <cmath>

#include "nn/quantized.hpp"
#include "tensor/im2col.hpp"
#include "tensor/quantize.hpp"
#include "util/check.hpp"

namespace fuse::core {

using tensor::Shape;

std::int64_t fuse_divisor(FuseVariant variant) {
  return variant == FuseVariant::kFull ? 1 : 2;
}

std::string fuse_variant_name(FuseVariant variant) {
  return variant == FuseVariant::kFull ? "Full" : "Half";
}

void FuseConvSpec::validate() const {
  FUSE_CHECK(channels > 0 && in_h > 0 && in_w > 0)
      << "bad FuSeConv geometry: C=" << channels << " H=" << in_h
      << " W=" << in_w;
  FUSE_CHECK(kernel > 0 && stride > 0 && pad >= 0)
      << "bad FuSeConv kernel geometry: K=" << kernel << " s=" << stride
      << " p=" << pad;
  FUSE_CHECK(channels % fuse_divisor(variant) == 0)
      << "channel count " << channels << " not divisible by D="
      << fuse_divisor(variant);
  // The row branch pads only horizontally and the column branch only
  // vertically; their outputs can only concatenate when the replaced layer
  // used 'same' padding (odd K, pad = (K-1)/2), which is what every network
  // in the paper's evaluation does.
  FUSE_CHECK(2 * pad == kernel - 1)
      << "FuSeConv drop-in replacement requires 'same' padding: K="
      << kernel << " pad=" << pad;
}

std::int64_t FuseConvSpec::out_h() const {
  return tensor::conv_out_dim(in_h, kernel, stride, pad);
}

std::int64_t FuseConvSpec::out_w() const {
  return tensor::conv_out_dim(in_w, kernel, stride, pad);
}

std::uint64_t FuseConvSpec::stage_params() const {
  return 2ULL * static_cast<std::uint64_t>(branch_channels()) *
         static_cast<std::uint64_t>(kernel);
}

std::uint64_t FuseConvSpec::stage_macs() const {
  return 2ULL * static_cast<std::uint64_t>(out_h()) *
         static_cast<std::uint64_t>(out_w()) *
         static_cast<std::uint64_t>(branch_channels()) *
         static_cast<std::uint64_t>(kernel);
}

FuseConvStage::FuseConvStage(FuseConvSpec spec)
    : spec_(spec),
      row_weights_(Shape{spec.branch_channels(), 1, 1, spec.kernel}),
      col_weights_(Shape{spec.branch_channels(), 1, spec.kernel, 1}) {
  spec_.validate();
}

FuseConvStage::FuseConvStage(FuseConvSpec spec, util::Rng& rng)
    : FuseConvStage(spec) {
  // He-uniform over the K taps each output value sums.
  const float bound =
      std::sqrt(6.0F / static_cast<float>(spec_.kernel));
  row_weights_.fill_uniform(rng, -bound, bound);
  col_weights_.fill_uniform(rng, -bound, bound);
}

Tensor slice_channels(const Tensor& input, std::int64_t first_channel,
                      std::int64_t count) {
  FUSE_CHECK(input.shape().rank() == 4) << "slice_channels expects NCHW";
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  const std::int64_t h = input.shape().dim(2);
  const std::int64_t w = input.shape().dim(3);
  FUSE_CHECK(first_channel >= 0 && count > 0 &&
             first_channel + count <= channels)
      << "channel slice [" << first_channel << ", " << first_channel + count
      << ") out of range for C=" << channels;
  Tensor out(Shape{batch, count, h, w});
  const std::int64_t spatial = h * w;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < count; ++c) {
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        out[(n * count + c) * spatial + hw] =
            input[(n * channels + first_channel + c) * spatial + hw];
      }
    }
  }
  return out;
}

Tensor FuseConvStage::forward(const Tensor& input) const {
  FUSE_CHECK(input.shape().rank() == 4)
      << "FuSeConv input must be NCHW, got " << input.shape().to_string();
  FUSE_CHECK(input.shape().dim(1) == spec_.channels)
      << "FuSeConv expects " << spec_.channels << " channels, got "
      << input.shape().dim(1);
  FUSE_CHECK(input.shape().dim(2) == spec_.in_h &&
             input.shape().dim(3) == spec_.in_w)
      << "FuSeConv expects " << spec_.in_h << "x" << spec_.in_w
      << " input, got " << input.shape().to_string();

  const std::int64_t branch_c = spec_.branch_channels();

  // Full: both branches read all channels. Half: the row branch reads the
  // first C/2 channels and the column branch the remaining C/2.
  const Tensor row_input =
      spec_.variant == FuseVariant::kFull
          ? input
          : slice_channels(input, 0, branch_c);
  const Tensor col_input =
      spec_.variant == FuseVariant::kFull
          ? input
          : slice_channels(input, branch_c, branch_c);

  // Row branch: 1xK kernel; full 2-D stride but only horizontal padding, so
  // the output spatial size matches the replaced KxK depthwise layer.
  nn::Conv2dParams row_params;
  row_params.stride_h = spec_.stride;
  row_params.stride_w = spec_.stride;
  row_params.pad_h = 0;
  row_params.pad_w = spec_.pad;
  row_params.groups = branch_c;
  const Tensor row_out =
      nn::conv2d(row_input, row_weights_, nullptr, row_params);

  nn::Conv2dParams col_params;
  col_params.stride_h = spec_.stride;
  col_params.stride_w = spec_.stride;
  col_params.pad_h = spec_.pad;
  col_params.pad_w = 0;
  col_params.groups = branch_c;
  const Tensor col_out =
      nn::conv2d(col_input, col_weights_, nullptr, col_params);

  return nn::concat_channels(row_out, col_out);
}

Tensor fuseconv_forward_int8(const FuseConvStage& stage,
                             const Tensor& input) {
  const FuseConvSpec& spec = stage.spec();
  FUSE_CHECK(input.shape().rank() == 4 &&
             input.shape().dim(1) == spec.channels)
      << "fuseconv_forward_int8 expects NCHW with C=" << spec.channels;
  const std::int64_t branch_c = spec.branch_channels();

  const Tensor row_input = spec.variant == FuseVariant::kFull
                               ? input
                               : slice_channels(input, 0, branch_c);
  const Tensor col_input =
      spec.variant == FuseVariant::kFull
          ? input
          : slice_channels(input, branch_c, branch_c);

  nn::Conv2dParams row_params;
  row_params.stride_h = spec.stride;
  row_params.stride_w = spec.stride;
  row_params.pad_w = spec.pad;
  row_params.groups = branch_c;
  nn::Conv2dParams col_params;
  col_params.stride_h = spec.stride;
  col_params.stride_w = spec.stride;
  col_params.pad_h = spec.pad;
  col_params.groups = branch_c;

  const Tensor row_out = nn::conv2d_int8(
      tensor::quantize_calibrated(row_input),
      tensor::quantize_calibrated(stage.row_weights(), /*symmetric=*/true),
      row_params);
  const Tensor col_out = nn::conv2d_int8(
      tensor::quantize_calibrated(col_input),
      tensor::quantize_calibrated(stage.col_weights(), /*symmetric=*/true),
      col_params);
  return nn::concat_channels(row_out, col_out);
}

std::vector<LayerDesc> lower_fuse_stage(const std::string& name,
                                        const FuseConvSpec& spec,
                                        Activation act, int fuse_slot) {
  spec.validate();
  const std::int64_t branch_c = spec.branch_channels();
  LayerDesc row = nn::make_fuse_row(name + "/row", branch_c, spec.in_h,
                                    spec.in_w, spec.kernel, spec.stride,
                                    spec.pad, act);
  LayerDesc col = nn::make_fuse_col(name + "/col", branch_c, spec.in_h,
                                    spec.in_w, spec.kernel, spec.stride,
                                    spec.pad, act);
  row.fuse_slot = fuse_slot;
  col.fuse_slot = fuse_slot;
  return {row, col};
}

}  // namespace fuse::core
