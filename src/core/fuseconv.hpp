// FuSeConv: the paper's primary contribution (Section IV).
//
// A depthwise separable convolution filters each channel with a KxK kernel
// and then mixes channels with a 1x1 pointwise convolution. FuSeConv
// factorizes the KxK depthwise stage *fully* into 1-D depthwise
// convolutions: 1xK row filters on C/D channels and Kx1 column filters on
// C/D channels, whose outputs are concatenated (2C/D channels) and fed to
// the usual pointwise stage. D is the design knob:
//   D = 1 (Full): row AND column filters applied to all C channels -> 2C
//   D = 2 (Half): row filters on the first C/2 channels, column filters on
//                 the other C/2 -> C
// 1-D convolutions are systolic algorithms, so the factorized stage maps
// onto a 2-D systolic array with the row-broadcast dataflow at high
// utilization — that, not the MAC count, is where the speedup comes from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fuse::core {

using nn::Activation;
using nn::LayerDesc;
using tensor::Tensor;

/// The D knob of the paper, as an enum so call sites read as the paper does.
enum class FuseVariant {
  kFull,  // D = 1
  kHalf,  // D = 2
};

/// D as an integer divisor.
std::int64_t fuse_divisor(FuseVariant variant);

/// "Full" / "Half" for reports.
std::string fuse_variant_name(FuseVariant variant);

/// Static description of one FuSeConv 1-D stage (replacing a KxK depthwise
/// layer on `channels` channels at spatial size in_h x in_w).
struct FuseConvSpec {
  std::int64_t channels = 0;  // channels of the replaced depthwise layer
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 0;  // K of the replaced KxK depthwise kernel
  std::int64_t stride = 1;
  std::int64_t pad = 0;  // the replaced layer's (symmetric) padding
  FuseVariant variant = FuseVariant::kHalf;

  void validate() const;

  /// Channels processed by each 1-D branch: C / D.
  std::int64_t branch_channels() const {
    return channels / fuse_divisor(variant);
  }

  /// Output channels after concatenation: 2C / D.
  std::int64_t out_channels() const { return 2 * branch_channels(); }

  /// Output spatial size (identical to the replaced depthwise layer's).
  std::int64_t out_h() const;
  std::int64_t out_w() const;

  /// Parameters of the 1-D stage: (2/D) * C * K — the paper's formula
  /// without the pointwise term.
  std::uint64_t stage_params() const;

  /// MACs of the 1-D stage: (2/D) * N * M * C * K.
  std::uint64_t stage_macs() const;
};

/// Trainable FuSeConv 1-D stage with explicit weights; the reference
/// functional implementation everything else is validated against.
class FuseConvStage {
 public:
  /// Zero-initialized weights.
  explicit FuseConvStage(FuseConvSpec spec);

  /// He-uniform initialized weights.
  FuseConvStage(FuseConvSpec spec, util::Rng& rng);

  const FuseConvSpec& spec() const { return spec_; }

  /// Row-branch weights, grouped-conv layout [C/D, 1, 1, K].
  const Tensor& row_weights() const { return row_weights_; }
  Tensor& row_weights() { return row_weights_; }

  /// Column-branch weights, grouped-conv layout [C/D, 1, K, 1].
  const Tensor& col_weights() const { return col_weights_; }
  Tensor& col_weights() { return col_weights_; }

  /// Forward pass. input [N, C, H, W] -> [N, 2C/D, out_h, out_w].
  /// Full: both branches see all C channels; Half: the row branch sees
  /// channels [0, C/2) and the column branch channels [C/2, C).
  Tensor forward(const Tensor& input) const;

 private:
  FuseConvSpec spec_;
  Tensor row_weights_;
  Tensor col_weights_;
};

/// Lowers a FuSeConv stage to the execution IR: a row 1xK layer and a
/// column Kx1 layer, both depthwise over C/D channels, tagged with
/// `fuse_slot`. (Concatenation is free — the two branches write disjoint
/// channel ranges.)
std::vector<LayerDesc> lower_fuse_stage(const std::string& name,
                                        const FuseConvSpec& spec,
                                        Activation act, int fuse_slot = -1);

/// Convenience: slices `count` channels starting at `first_channel` from an
/// NCHW tensor (used to feed each branch).
Tensor slice_channels(const Tensor& input, std::int64_t first_channel,
                      std::int64_t count);

/// INT8 forward pass of a FuSeConv stage: activations affine-quantized
/// (min/max calibrated on this input), per-branch weights symmetric, INT32
/// accumulation, float requantization — the arithmetic a TPUv1-class array
/// performs natively. Returns the dequantized float output; tests bound
/// its deviation from the FP32 forward.
Tensor fuseconv_forward_int8(const FuseConvStage& stage,
                             const Tensor& input);

}  // namespace fuse::core
