#include "core/transform.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace fuse::core {

const std::vector<NetworkVariant>& all_network_variants() {
  static const std::vector<NetworkVariant> kVariants = {
      NetworkVariant::kBaseline,   NetworkVariant::kFuseFull,
      NetworkVariant::kFuseHalf,   NetworkVariant::kFuseFull50,
      NetworkVariant::kFuseHalf50,
  };
  return kVariants;
}

std::string network_variant_name(NetworkVariant variant) {
  switch (variant) {
    case NetworkVariant::kBaseline:
      return "baseline";
    case NetworkVariant::kFuseFull:
      return "FuSe-Full";
    case NetworkVariant::kFuseHalf:
      return "FuSe-Half";
    case NetworkVariant::kFuseFull50:
      return "FuSe-Full-50%";
    case NetworkVariant::kFuseHalf50:
      return "FuSe-Half-50%";
  }
  return "?";
}

FuseVariant fuse_mode_variant(FuseMode mode) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "baseline mode has no FuseVariant";
  return mode == FuseMode::kFull ? FuseVariant::kFull : FuseVariant::kHalf;
}

std::vector<FuseMode> uniform_modes(int num_slots, FuseMode mode) {
  FUSE_CHECK(num_slots >= 0) << "negative slot count";
  return std::vector<FuseMode>(static_cast<std::size_t>(num_slots), mode);
}

std::vector<FuseMode> top_half_modes(const std::vector<double>& savings,
                                     FuseMode mode) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "top_half_modes needs a replacing mode";
  const int num_slots = static_cast<int>(savings.size());
  std::vector<int> order(savings.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return savings[static_cast<std::size_t>(a)] >
           savings[static_cast<std::size_t>(b)];
  });
  const int quota = (num_slots + 1) / 2;  // 50%, rounding up on odd counts
  std::vector<FuseMode> modes = uniform_modes(num_slots, FuseMode::kBaseline);
  for (int i = 0; i < quota; ++i) {
    modes[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        mode;
  }
  return modes;
}

std::vector<FuseMode> modes_for_variant(NetworkVariant variant,
                                        int num_slots,
                                        const std::vector<double>& savings) {
  switch (variant) {
    case NetworkVariant::kBaseline:
      return uniform_modes(num_slots, FuseMode::kBaseline);
    case NetworkVariant::kFuseFull:
      return uniform_modes(num_slots, FuseMode::kFull);
    case NetworkVariant::kFuseHalf:
      return uniform_modes(num_slots, FuseMode::kHalf);
    case NetworkVariant::kFuseFull50:
      FUSE_CHECK(static_cast<int>(savings.size()) == num_slots)
          << "50% variant needs per-slot savings";
      return top_half_modes(savings, FuseMode::kFull);
    case NetworkVariant::kFuseHalf50:
      FUSE_CHECK(static_cast<int>(savings.size()) == num_slots)
          << "50% variant needs per-slot savings";
      return top_half_modes(savings, FuseMode::kHalf);
  }
  FUSE_CHECK(false) << "unknown network variant";
  return {};
}

}  // namespace fuse::core
