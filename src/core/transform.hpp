// Network-level FuSe transform policy (paper §V-A1).
//
// Each network in the zoo exposes its depthwise separable blocks as
// numbered "fuse slots". A network *variant* assigns every slot a FuseMode:
//   Baseline      — keep the depthwise layer
//   Full / Half   — replace every slot (D = 1 / D = 2)
//   Full-50% / Half-50% — replace only the half of the slots with the
//       largest latency savings ("drop-in replacement for layers in such a
//       way that maximum latency benefits are obtained")
// This header holds the pure policy; the per-slot savings themselves come
// from the scheduler (sched/latency.hpp), which knows the array config.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fuseconv.hpp"

namespace fuse::core {

/// Per-slot replacement decision.
enum class FuseMode {
  kBaseline,
  kFull,  // FuSeConv with D = 1
  kHalf,  // FuSeConv with D = 2
};

/// The five Table-I rows per network.
enum class NetworkVariant {
  kBaseline,
  kFuseFull,
  kFuseHalf,
  kFuseFull50,
  kFuseHalf50,
};

/// All variants in Table-I order.
const std::vector<NetworkVariant>& all_network_variants();

/// "FuSe-Full", "FuSe-Half-50%", ... matching the paper's row labels.
std::string network_variant_name(NetworkVariant variant);

/// The FuseVariant (D knob) a replacing mode uses. Must not be kBaseline.
FuseVariant fuse_mode_variant(FuseMode mode);

/// Same mode for every slot.
std::vector<FuseMode> uniform_modes(int num_slots, FuseMode mode);

/// Replaces the ceil(n/2) slots with the largest savings; everything else
/// stays baseline. `savings[i]` is the cycle reduction from fusing slot i
/// alone (may be negative; such slots are never chosen before positive
/// ones, but the 50% quota is always filled to match the paper's setup).
std::vector<FuseMode> top_half_modes(const std::vector<double>& savings,
                                     FuseMode mode);

/// Expands a NetworkVariant into per-slot modes given per-slot savings for
/// the matching D. For the non-50% variants `savings` may be empty.
std::vector<FuseMode> modes_for_variant(NetworkVariant variant,
                                        int num_slots,
                                        const std::vector<double>& savings);

}  // namespace fuse::core
