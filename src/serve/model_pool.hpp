// Shape-keyed model/plan memoization for the serving engine.
//
// Serving sustains thousands of requests over a handful of distinct
// shapes, so anything that is a pure function of the ShapeKey — building
// the variant, lowering every layer, SRAM planning, the batched roofline
// service times, the seeded weights for tensor/simulate execution — is
// computed once per key here and shared by every request and every
// engine. The table is sharded like sched::LatencyCache: per-shard
// shared_mutex, readers share, builds exclusive; entries are stable once
// inserted (unique_ptr values), so returned references stay valid for the
// pool's lifetime.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "sched/latency.hpp"
#include "sched/latency_cache.hpp"
#include "sched/netplan.hpp"
#include "serve/request.hpp"
#include "systolic/config.hpp"
#include "systolic/memory.hpp"
#include "tensor/tensor.hpp"

namespace fuse::serve {

/// Everything the engine needs about one shape. `model`/`plan`/`bound1`/
/// `chain_executable` are immutable after the build; the lazy parts
/// (per-batch service bounds, seeded weights) are guarded by `mutex`.
struct ModelEntry {
  nets::NetworkModel model;
  sched::NetworkPlan plan;        // batch-1 schedule (simulate mode, stats)
  std::uint64_t bound1 = 0;       // batched roofline bound at batch 1
  bool chain_executable = false;  // tensor/simulate modes require true

  mutable std::mutex mutex;
  mutable std::map<std::int64_t, std::uint64_t> batch_bounds;  // batch->cycles
  mutable std::vector<tensor::Tensor> weights;  // parallel to model.layers
};

/// True when every layer runs on the array and activations thread through
/// as a flat chain (the execute_network_on_array contract): conv-family /
/// FC kinds only, each layer's input geometry equal to its predecessor's
/// output (an FC consumes a [C, 1, 1] activation as C features). Zoo
/// models with pool/add/SE glue — and FuSe variants, whose row/col
/// branches concatenate — are NOT chains and serve in cycle mode only.
bool is_chain_executable(const nets::NetworkModel& model);

class ModelPool {
 public:
  /// All entries are built for this array/memory/schedule mode.
  /// `weight_seed` feeds the deterministic per-layer weight fills.
  explicit ModelPool(const systolic::ArrayConfig& cfg,
                     const systolic::MemoryConfig& mem = {},
                     sched::SchedMode sched_mode = sched::SchedMode::kPerLayer,
                     std::uint64_t weight_seed = 0x5eedULL);

  const systolic::ArrayConfig& array() const { return cfg_; }
  const systolic::MemoryConfig& memory() const { return mem_; }

  /// The memoized entry, built on first use. Thread-safe; the reference
  /// stays valid for the pool's lifetime.
  const ModelEntry& entry(const ShapeKey& key);

  /// Batched roofline service time (sched::network_bound_batched) for the
  /// whole batch, memoized per (key, batch). This is the engine's service
  /// model: weight traffic amortizes across the batch, which is the
  /// mechanism dynamic batching exploits.
  std::uint64_t service_cycles(const ShapeKey& key, std::int64_t batch);

  /// Seeded per-layer weights for tensor/simulate execution, built lazily
  /// (weight layouts follow sched/execute.hpp). Requires chain_executable.
  const std::vector<tensor::Tensor>& weights(const ShapeKey& key);

  /// Registers a caller-built model; the returned index goes into
  /// ShapeKey::custom. Register before serving starts (indices are dense).
  int register_custom(nets::NetworkModel model);

  std::size_t entries() const;

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<ShapeKey, std::unique_ptr<ModelEntry>, ShapeKeyHash>
        map;
  };

  std::unique_ptr<ModelEntry> build_entry(const ShapeKey& key);
  Shard& shard_of(const ShapeKey& key);

  systolic::ArrayConfig cfg_;
  systolic::MemoryConfig mem_;
  sched::SchedMode sched_mode_;
  std::uint64_t weight_seed_;

  std::array<Shard, kShards> shards_;
  sched::LatencyCache latency_cache_;  // shared by variant builds

  mutable std::mutex custom_mutex_;
  std::vector<nets::NetworkModel> customs_;
};

/// The deterministic input tensor for one request: [1, C, H, W] from the
/// entry's first layer, filled from Rng(seed mixed with the request id).
/// Batch assembly copies these rows verbatim, so a request's slice of a
/// batched output is bit-identical to its standalone run — the property
/// the serve tests pin.
tensor::Tensor request_input(const ModelEntry& entry, std::uint64_t seed,
                             std::uint64_t request_id);

/// FNV-1a over the raw float bits.
std::uint64_t tensor_checksum(const tensor::Tensor& tensor);

}  // namespace fuse::serve
