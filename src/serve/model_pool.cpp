#include "serve/model_pool.hpp"

#include <cstring>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace fuse::serve {

using nn::LayerDesc;
using nn::OpKind;
using tensor::Shape;
using tensor::Tensor;

namespace {

util::Counter& pool_builds() {
  static util::Counter& counter =
      util::metrics().counter("serve.model_builds");
  return counter;
}

/// Weight tensor shape for one executable layer, matching the layouts
/// sched/execute.hpp documents (and nn::conv2d's [out, in/groups, kh, kw]).
Shape weight_shape(const LayerDesc& layer) {
  switch (layer.kind) {
    case OpKind::kStandardConv:
      return Shape{layer.out_c, layer.in_c, layer.kernel_h, layer.kernel_w};
    case OpKind::kDepthwiseConv:
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
      return Shape{layer.out_c, 1, layer.kernel_h, layer.kernel_w};
    case OpKind::kPointwiseConv:
      return Shape{layer.out_c, layer.in_c, 1, 1};
    case OpKind::kFullyConnected:
      return Shape{layer.out_c, layer.in_c};
    default:
      FUSE_CHECK(false) << "no weights for layer kind "
                        << nn::op_kind_name(layer.kind);
  }
  return Shape{};
}

bool executable_kind(OpKind kind) {
  switch (kind) {
    case OpKind::kStandardConv:
    case OpKind::kDepthwiseConv:
    case OpKind::kPointwiseConv:
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
    case OpKind::kFullyConnected:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool is_chain_executable(const nets::NetworkModel& model) {
  if (model.layers.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const LayerDesc& layer = model.layers[i];
    if (!executable_kind(layer.kind)) {
      return false;
    }
    if (i == 0) {
      continue;
    }
    const LayerDesc& prev = model.layers[i - 1];
    // An FC consumes a [C, 1, 1] activation as C features (in_h == in_w
    // == 1 by construction); everything else must match exactly.
    if (layer.in_c != prev.out_c || layer.in_h != prev.out_h ||
        layer.in_w != prev.out_w) {
      return false;
    }
  }
  return true;
}

ModelPool::ModelPool(const systolic::ArrayConfig& cfg,
                     const systolic::MemoryConfig& mem,
                     sched::SchedMode sched_mode, std::uint64_t weight_seed)
    : cfg_(cfg), mem_(mem), sched_mode_(sched_mode),
      weight_seed_(weight_seed) {
  cfg_.validate();
}

ModelPool::Shard& ModelPool::shard_of(const ShapeKey& key) {
  return shards_[ShapeKeyHash{}(key) % kShards];
}

const ModelEntry& ModelPool::entry(const ShapeKey& key) {
  Shard& shard = shard_of(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      return *it->second;
    }
  }
  // Build outside any lock (variant builds are heavy), insert under the
  // exclusive lock; a racing double-build inserts the same pure value and
  // the first insert wins (the LatencyCache contract).
  std::unique_ptr<ModelEntry> built = build_entry(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.map.emplace(key, std::move(built));
  if (inserted) {
    pool_builds().add();
  }
  return *it->second;
}

std::unique_ptr<ModelEntry> ModelPool::build_entry(const ShapeKey& key) {
  auto entry = std::make_unique<ModelEntry>();
  if (key.custom >= 0) {
    std::lock_guard<std::mutex> lock(custom_mutex_);
    FUSE_CHECK(static_cast<std::size_t>(key.custom) < customs_.size())
        << "ShapeKey names unregistered custom model #" << key.custom;
    entry->model = customs_[static_cast<std::size_t>(key.custom)];
  } else if (key.resolution == 224) {
    entry->model =
        sched::build_variant(key.net, key.variant, cfg_, &latency_cache_)
            .model;
  } else {
    // Scaled resolutions exist for V1/V2 only (the networks whose papers
    // define the multipliers); the 50% variants pick slots by savings at
    // the canonical 224 geometry — the slot count is resolution-invariant,
    // so the same modes vector applies (nets/zoo.hpp).
    FUSE_CHECK(key.net == nets::NetworkId::kMobileNetV1 ||
               key.net == nets::NetworkId::kMobileNetV2)
        << shape_key_name(key)
        << ": only MobileNet-V1/V2 serve at non-224 resolutions";
    std::vector<double> savings;
    if (key.variant == core::NetworkVariant::kFuseFull50) {
      savings = sched::slot_savings(key.net, core::FuseMode::kFull, cfg_,
                                    &latency_cache_);
    } else if (key.variant == core::NetworkVariant::kFuseHalf50) {
      savings = sched::slot_savings(key.net, core::FuseMode::kHalf, cfg_,
                                    &latency_cache_);
    }
    const std::vector<core::FuseMode> modes = core::modes_for_variant(
        key.variant, nets::num_fuse_slots(key.net), savings);
    entry->model =
        nets::build_network_scaled(key.net, 1.0, modes, key.resolution);
  }
  entry->plan =
      sched::plan_network(entry->model, cfg_, mem_, sched_mode_);
  entry->bound1 = sched::network_bound_batched(entry->model, cfg_, mem_, 1);
  entry->chain_executable = is_chain_executable(entry->model);
  return entry;
}

std::uint64_t ModelPool::service_cycles(const ShapeKey& key,
                                        std::int64_t batch) {
  FUSE_CHECK(batch >= 1) << "service_cycles needs batch >= 1, got " << batch;
  const ModelEntry& item = entry(key);
  if (batch == 1) {
    return item.bound1;
  }
  std::lock_guard<std::mutex> lock(item.mutex);
  const auto it = item.batch_bounds.find(batch);
  if (it != item.batch_bounds.end()) {
    return it->second;
  }
  const std::uint64_t bound =
      sched::network_bound_batched(item.model, cfg_, mem_, batch);
  item.batch_bounds.emplace(batch, bound);
  return bound;
}

const std::vector<Tensor>& ModelPool::weights(const ShapeKey& key) {
  const ModelEntry& item = entry(key);
  FUSE_CHECK(item.chain_executable)
      << shape_key_name(key)
      << " is not chain-executable: weights exist only for tensor/simulate "
         "shapes";
  std::lock_guard<std::mutex> lock(item.mutex);
  if (!item.weights.empty()) {
    return item.weights;
  }
  item.weights.reserve(item.model.layers.size());
  const std::uint64_t key_hash = ShapeKeyHash{}(key);
  for (std::size_t i = 0; i < item.model.layers.size(); ++i) {
    Tensor weight(weight_shape(item.model.layers[i]));
    util::Rng rng(weight_seed_ ^ (key_hash * 0x9e3779b97f4a7c15ULL) ^
                  (i + 1));
    weight.fill_uniform(rng, -0.5F, 0.5F);
    item.weights.push_back(std::move(weight));
  }
  return item.weights;
}

int ModelPool::register_custom(nets::NetworkModel model) {
  std::lock_guard<std::mutex> lock(custom_mutex_);
  customs_.push_back(std::move(model));
  return static_cast<int>(customs_.size()) - 1;
}

std::size_t ModelPool::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

Tensor request_input(const ModelEntry& entry, std::uint64_t seed,
                     std::uint64_t request_id) {
  const LayerDesc& first = entry.model.layers.front();
  Tensor input(Shape{1, first.in_c, first.in_h, first.in_w});
  util::Rng rng(seed ^ ((request_id + 1) * 0x9e3779b97f4a7c15ULL));
  input.fill_uniform(rng, -1.0F, 1.0F);
  return input;
}

std::uint64_t tensor_checksum(const tensor::Tensor& tensor) {
  std::uint64_t hash = 1469598103934665603ULL;
  const float* data = tensor.data();
  for (std::int64_t i = 0; i < tensor.num_elements(); ++i) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &data[i], sizeof(bits));
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffU;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace fuse::serve
