#include "serve/engine.hpp"

#include <algorithm>
#include <cstring>

#include "nn/ops.hpp"
#include "sched/execute.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

// serve.* metrics (docs/observability.md): request flow counters, the
// in-system level, and the cycle-domain batch/latency distributions.
util::Counter& m_submitted() {
  static util::Counter& counter = util::metrics().counter("serve.submitted");
  return counter;
}
util::Counter& m_admitted() {
  static util::Counter& counter = util::metrics().counter("serve.admitted");
  return counter;
}
util::Counter& m_rejected() {
  static util::Counter& counter = util::metrics().counter("serve.rejected");
  return counter;
}
util::Counter& m_completed() {
  static util::Counter& counter = util::metrics().counter("serve.completed");
  return counter;
}
util::Counter& m_batches() {
  static util::Counter& counter = util::metrics().counter("serve.batches");
  return counter;
}
util::Gauge& m_in_system() {
  static util::Gauge& gauge = util::metrics().gauge("serve.in_system");
  return gauge;
}
util::Histogram& m_batch_size() {
  static util::Histogram& histogram =
      util::metrics().histogram("serve.batch_size");
  return histogram;
}
util::Histogram& m_latency() {
  static util::Histogram& histogram =
      util::metrics().histogram("serve.latency_cycles");
  return histogram;
}
util::Histogram& m_batch_wait() {
  static util::Histogram& histogram =
      util::metrics().histogram("serve.batch_wait_cycles");
  return histogram;
}

}  // namespace

void ServeConfig::validate() const {
  FUSE_CHECK(max_batch >= 1) << "max_batch must be >= 1, got " << max_batch;
  FUSE_CHECK(queue_capacity >= 1)
      << "queue_capacity must be >= 1, got " << queue_capacity;
  FUSE_CHECK(num_arrays >= 1)
      << "num_arrays must be >= 1, got " << num_arrays;
  FUSE_CHECK(workers >= 0) << "workers must be >= 0, got " << workers;
}

double percentile_sorted(const std::vector<std::uint64_t>& sorted,
                         double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  FUSE_CHECK(q >= 0.0 && q <= 1.0) << "percentile q out of [0, 1]: " << q;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) +
         frac * (static_cast<double>(sorted[hi]) -
                 static_cast<double>(sorted[lo]));
}

ServeEngine::ServeEngine(const ServeConfig& config, ModelPool* pool)
    : config_(config), pool_(pool), worker_pool_(config.workers) {
  FUSE_CHECK(pool_ != nullptr) << "ServeEngine needs a ModelPool";
  config_.validate();
  array_free_.assign(static_cast<std::size_t>(config_.num_arrays), 0);
}

ServeEngine::~ServeEngine() {
  // Payload tasks capture `this`; never destroy the engine under them.
  wait_for_payloads();
}

int ServeEngine::effective_cap(const OpenBatch& batch) const {
  int cap = config_.max_batch;
  for (const Member& member : batch.members) {
    if (member.hint > 0) {
      cap = std::min(cap, member.hint);
    }
  }
  return cap;
}

std::uint64_t ServeEngine::submit(const ShapeKey& key, int batch_hint,
                                  std::uint64_t arrival_cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  FUSE_CHECK(arrival_cycle >= last_arrival_)
      << "arrivals must be nondecreasing: got " << arrival_cycle
      << " after " << last_arrival_;
  last_arrival_ = arrival_cycle;
  advance_locked(arrival_cycle);

  if (config_.mode != ExecMode::kCycle) {
    FUSE_CHECK(pool_->entry(key).chain_executable)
        << shape_key_name(key) << " cannot serve in "
        << exec_mode_name(config_.mode)
        << " mode: the model is not chain-executable (cycle mode serves "
           "any zoo shape)";
  }

  const std::uint64_t id = responses_.size();
  responses_.push_back(ResponseRecord{});
  ResponseRecord& record = responses_.back();
  record.id = id;
  record.key = key;
  record.batch_hint = batch_hint;
  record.arrival_cycle = arrival_cycle;
  ++submitted_;
  m_submitted().add();

  if (in_system_ >= static_cast<std::uint64_t>(config_.queue_capacity)) {
    const bool made_room =
        config_.shed == ShedPolicy::kRejectOldest && shed_oldest_locked();
    if (!made_room) {
      record.status = RequestStatus::kRejected;
      ++rejected_;
      m_rejected().add();
      return id;
    }
  }

  ++in_system_;
  ++admitted_;
  m_admitted().add();
  m_in_system().add(1);

  OpenBatch& batch = open_batches_[key];
  if (batch.members.empty()) {
    batch.open_cycle = arrival_cycle;
    batch.deadline = arrival_cycle + config_.batch_window;
  }
  batch.members.push_back(Member{id, arrival_cycle, batch_hint});
  if (config_.batch_window == 0 ||
      static_cast<int>(batch.members.size()) >= effective_cap(batch)) {
    dispatch_batch_locked(key, arrival_cycle);
  }
  return id;
}

bool ServeEngine::shed_oldest_locked() {
  // Evict the oldest still-queued request (min arrival, ties to the lowest
  // id). Its batch keeps its original open/deadline anchor — the window is
  // a promise to the members that stay.
  const ShapeKey* victim_key = nullptr;
  std::size_t victim_pos = 0;
  std::uint64_t best_arrival = 0;
  std::uint64_t best_id = 0;
  for (const auto& [key, batch] : open_batches_) {
    for (std::size_t pos = 0; pos < batch.members.size(); ++pos) {
      const Member& member = batch.members[pos];
      if (victim_key == nullptr || member.arrival < best_arrival ||
          (member.arrival == best_arrival && member.id < best_id)) {
        victim_key = &key;
        victim_pos = pos;
        best_arrival = member.arrival;
        best_id = member.id;
      }
    }
  }
  if (victim_key == nullptr) {
    return false;  // everything admitted is already on an array
  }
  const ShapeKey victim = *victim_key;  // copy: erase would dangle the ref
  OpenBatch& batch = open_batches_[victim];
  responses_[best_id].status = RequestStatus::kRejected;
  batch.members.erase(batch.members.begin() +
                      static_cast<std::ptrdiff_t>(victim_pos));
  ++rejected_;
  m_rejected().add();
  --in_system_;
  m_in_system().add(-1);
  if (batch.members.empty()) {
    open_batches_.erase(victim);
  }
  return true;
}

std::uint64_t ServeEngine::next_deadline_locked(
    const ShapeKey** key_out) const {
  // Deterministic min over the open batches: deadline, then the id of the
  // batch's first member (unique) — independent of map iteration order.
  std::uint64_t best = kNoEvent;
  std::uint64_t best_first = 0;
  const ShapeKey* best_key = nullptr;
  for (const auto& [key, batch] : open_batches_) {
    const std::uint64_t first = batch.members.front().id;
    if (batch.deadline < best ||
        (batch.deadline == best && first < best_first)) {
      best = batch.deadline;
      best_first = first;
      best_key = &key;
    }
  }
  if (key_out != nullptr) {
    *key_out = best_key;
  }
  return best;
}

void ServeEngine::advance_locked(std::uint64_t cycle) {
  while (true) {
    const ShapeKey* due_key = nullptr;
    const std::uint64_t deadline = next_deadline_locked(&due_key);
    const std::uint64_t completion =
        in_flight_.empty() ? kNoEvent : in_flight_.top().first;
    const std::uint64_t event = std::min(deadline, completion);
    if (event == kNoEvent || event > cycle) {
      break;
    }
    // Retirements first at ties: a freed slot is visible to the admission
    // check that runs right after this advance.
    if (completion <= deadline) {
      retire_one_locked();
    } else {
      dispatch_batch_locked(*due_key, deadline);
    }
  }
  now_ = std::max(now_, cycle);
}

void ServeEngine::dispatch_batch_locked(ShapeKey key,
                                        std::uint64_t close_cycle) {
  // `key` by value: callers pass a reference into open_batches_ and the
  // erase below would dangle it.
  const auto it = open_batches_.find(key);
  FUSE_CHECK(it != open_batches_.end()) << "dispatch of a vanished batch";
  OpenBatch batch = std::move(it->second);
  open_batches_.erase(it);

  const int size = static_cast<int>(batch.members.size());
  const std::uint64_t service =
      pool_->service_cycles(key, static_cast<std::int64_t>(size));

  // Place on the array that frees first; ties go to the lowest index.
  std::size_t array = 0;
  for (std::size_t i = 1; i < array_free_.size(); ++i) {
    if (array_free_[i] < array_free_[array]) {
      array = i;
    }
  }
  const std::uint64_t start = std::max(close_cycle, array_free_[array]);
  const std::uint64_t completion = start + service;
  array_free_[array] = completion;

  const std::uint64_t batch_id = batch_seq_++;
  for (const Member& member : batch.members) {
    ResponseRecord& record = responses_[member.id];
    record.status = RequestStatus::kDispatched;
    record.dispatch_cycle = close_cycle;
    record.start_cycle = start;
    record.completion_cycle = completion;
    record.batch_id = batch_id;
    record.batch_size = size;
    record.array_index = static_cast<int>(array);
    in_flight_.emplace(completion, member.id);
  }
  batch_members_total_ += static_cast<std::uint64_t>(size);
  m_batches().add();
  m_batch_size().observe(static_cast<std::uint64_t>(size));
  m_batch_wait().observe(close_cycle - batch.open_cycle);
  now_ = std::max(now_, close_cycle);

  if (config_.mode != ExecMode::kCycle) {
    tasks_.push_back(BatchTask{key, {}, {}});
    BatchTask* task = &tasks_.back();
    task->ids.reserve(batch.members.size());
    for (const Member& member : batch.members) {
      task->ids.push_back(member.id);
    }
    task->checksums.assign(task->ids.size(), 0);
    ++launched_;
    worker_pool_.submit([this, task] {
      util::ScopedSpan span("serve.payload", "serve");
      run_payload(task);
      {
        // Notify under the lock: a drain()/destructor waiter may destroy
        // the condition variable as soon as it observes the count, which
        // must happen-after the broadcast completes.
        std::lock_guard<std::mutex> lock(done_mutex_);
        ++finished_;
        done_cv_.notify_all();
      }
    });
  }
}

void ServeEngine::retire_one_locked() {
  const auto [completion, id] = in_flight_.top();
  in_flight_.pop();
  ResponseRecord& record = responses_[id];
  if (record.status == RequestStatus::kDispatched) {
    record.status = RequestStatus::kCompleted;
    ++completed_;
    m_completed().add();
    m_latency().observe(record.latency_cycles());
  }
  --in_system_;
  m_in_system().add(-1);
  now_ = std::max(now_, completion);
}

void ServeEngine::advance_to(std::uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  FUSE_CHECK(cycle >= now_) << "advance_to cannot rewind virtual time ("
                            << cycle << " < " << now_ << ")";
  advance_locked(cycle);
}

std::uint64_t ServeEngine::next_deadline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_deadline_locked(nullptr);
}

std::uint64_t ServeEngine::next_completion() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_.empty() ? kNoEvent : in_flight_.top().first;
}

std::uint64_t ServeEngine::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void ServeEngine::drain() {
  util::ScopedSpan span("serve.drain", "serve");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Run the event loop dry: every remaining deadline is >= now_ (older
    // ones were dispatched by earlier advances), so this closes open
    // batches at their promised windows and retires all completions.
    while (true) {
      const ShapeKey* due_key = nullptr;
      const std::uint64_t deadline = next_deadline_locked(&due_key);
      const std::uint64_t completion =
          in_flight_.empty() ? kNoEvent : in_flight_.top().first;
      if (deadline == kNoEvent && completion == kNoEvent) {
        break;
      }
      if (completion <= deadline) {
        retire_one_locked();
      } else {
        dispatch_batch_locked(*due_key, deadline);
      }
    }
    FUSE_CHECK(in_system_ == 0) << "drain left requests in the system";
  }
  wait_for_payloads();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const BatchTask& task : tasks_) {
    for (std::size_t i = 0; i < task.ids.size(); ++i) {
      responses_[task.ids[i]].checksum = task.checksums[i];
    }
  }
  tasks_.clear();
}

void ServeEngine::wait_for_payloads() {
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [this] { return finished_ == launched_; });
}

void ServeEngine::run_payload(BatchTask* task) {
  const ModelEntry& entry = pool_->entry(task->key);
  const std::vector<Tensor>& weights = pool_->weights(task->key);
  const std::int64_t batch = static_cast<std::int64_t>(task->ids.size());
  const nn::LayerDesc& first = entry.model.layers.front();

  if (config_.mode == ExecMode::kSimulate) {
    // One PE-grid simulation per member. parallel_for here exercises the
    // nested-parallelism path on purpose: this payload already runs on a
    // worker_pool_ thread, so the loop executes inline (thread_pool.hpp).
    worker_pool_.parallel_for(batch, [&](std::int64_t i) {
      const std::size_t member = static_cast<std::size_t>(i);
      const Tensor input =
          request_input(entry, config_.seed, task->ids[member]);
      const sched::NetworkExecution exec = sched::execute_network_on_array(
          entry.model, weights, input, entry.plan, pool_->array());
      task->checksums[member] = tensor_checksum(exec.output);
    });
    return;
  }

  // Tensor mode: one batched pass through the kernel backend. Row r of
  // every intermediate is bit-identical to request r's standalone run
  // (fixed accumulation order, batch-independent), so the per-request
  // checksums match simulate mode and batch-1 serving exactly.
  Tensor activation(Shape{batch, first.in_c, first.in_h, first.in_w});
  const std::int64_t row = first.in_c * first.in_h * first.in_w;
  for (std::int64_t i = 0; i < batch; ++i) {
    const Tensor one = request_input(
        entry, config_.seed, task->ids[static_cast<std::size_t>(i)]);
    std::memcpy(activation.data() + i * row, one.data(),
                static_cast<std::size_t>(row) * sizeof(float));
  }
  for (std::size_t l = 0; l < entry.model.layers.size(); ++l) {
    const nn::LayerDesc& layer = entry.model.layers[l];
    if (layer.kind == nn::OpKind::kFullyConnected) {
      activation = nn::linear(activation.reshaped(Shape{batch, layer.in_c}),
                              weights[l], nullptr);
      continue;
    }
    nn::Conv2dParams params;
    params.stride_h = layer.stride_h;
    params.stride_w = layer.stride_w;
    params.pad_h = layer.pad_h;
    params.pad_w = layer.pad_w;
    params.groups = layer.groups;
    activation = nn::conv2d(activation, weights[l], nullptr, params);
  }
  const std::int64_t per = activation.num_elements() / batch;
  for (std::int64_t i = 0; i < batch; ++i) {
    Tensor slice(Shape{per});
    std::memcpy(slice.data(), activation.data() + i * per,
                static_cast<std::size_t>(per) * sizeof(float));
    task->checksums[static_cast<std::size_t>(i)] = tensor_checksum(slice);
  }
}

ResponseRecord ServeEngine::response(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  FUSE_CHECK(id < responses_.size()) << "unknown request id " << id;
  return responses_[id];
}

std::uint64_t ServeEngine::num_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return responses_.size();
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeStats stats;
  stats.submitted = submitted_;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.batches = batch_seq_;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(responses_.size());
  std::uint64_t last_completion = 0;
  for (const ResponseRecord& record : responses_) {
    if (record.status == RequestStatus::kCompleted) {
      latencies.push_back(record.latency_cycles());
      last_completion = std::max(last_completion, record.completion_cycle);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  stats.makespan_cycles = last_completion;
  stats.mean_batch_size =
      batch_seq_ == 0 ? 0.0
                      : static_cast<double>(batch_members_total_) /
                            static_cast<double>(batch_seq_);
  stats.p50_latency_cycles = percentile_sorted(latencies, 0.50);
  stats.p90_latency_cycles = percentile_sorted(latencies, 0.90);
  stats.p99_latency_cycles = percentile_sorted(latencies, 0.99);
  if (last_completion > 0) {
    stats.throughput_per_mcycle = static_cast<double>(completed_) * 1e6 /
                                  static_cast<double>(last_completion);
  }
  return stats;
}

}  // namespace fuse::serve
