// The serving engine: deadline-bounded dynamic batching + admission
// control over the repo's per-call latency/execution APIs.
//
// Time is VIRTUAL: requests arrive at caller-supplied cycle stamps
// (nondecreasing), and every scheduling decision — admission, batch
// composition, array placement, completion — is computed sequentially in
// the cycle domain under one mutex, as a discrete-event simulation. The
// worker pool only executes batch PAYLOADS (real tensors through the
// kernel backend or the PE-grid simulator), whose results are pure
// functions of (shape, request id, seed) and feed back into nothing the
// scheduler reads. That split is the determinism argument: for a fixed
// submitted trace, every ResponseRecord — batch membership included — is
// byte-identical at any worker thread count, which tests/test_serve.cpp
// pins at 1/2/4 workers under TSan.
//
// Batching policy (docs/serving.md):
//   * One open batch per ShapeKey. The first member opens it and anchors
//     its deadline at arrival + batch_window.
//   * A batch closes (dispatches) when its deadline passes, or when it
//     reaches its cap = min(max_batch, smallest positive member hint).
//     batch_window == 0 degenerates to pure FIFO batch-1 serving.
//   * Service time is the batched roofline bound (ModelPool): weight
//     traffic and fill/drain amortize across the batch, so batching
//     trades queueing delay for throughput exactly as on real arrays.
//   * Dispatch places the batch on the virtual array that frees first
//     (ties to the lowest index); completion = max(close, free) + service.
//
// Admission control: the in-system request count (admitted, not yet
// completed) is bounded by queue_capacity; arrivals beyond it are shed
// per ShedPolicy and counted in serve.rejected.
//
// The public API is designed to be driven by ONE thread (the load
// generator); the engine's own worker pool supplies the concurrency.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/model_pool.hpp"
#include "serve/request.hpp"
#include "util/thread_pool.hpp"

namespace fuse::serve {

struct ServeConfig {
  ExecMode mode = ExecMode::kCycle;
  std::uint64_t batch_window = 0;  // cycles an open batch may wait
  int max_batch = 8;
  int queue_capacity = 64;  // bound on admitted-but-unfinished requests
  int num_arrays = 1;       // independent virtual arrays (service stations)
  int workers = 0;          // payload pool threads (0 = inline execution)
  ShedPolicy shed = ShedPolicy::kRejectNewest;
  std::uint64_t seed = 0x5eedULL;  // request-input seeding (payloads)

  void validate() const;
};

/// Deterministic aggregate snapshot (stats()); latency percentiles are
/// exact order statistics over completed requests, computed here rather
/// than via ProfileCollector so they survive FUSE_TELEMETRY=OFF builds.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t makespan_cycles = 0;  // latest completion cycle seen
  double mean_batch_size = 0.0;
  double p50_latency_cycles = 0.0;
  double p90_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  /// Completed requests per million cycles of makespan.
  double throughput_per_mcycle = 0.0;
};

/// Exact percentile of an ascending-sorted sample vector (rank q*(n-1),
/// linear interpolation — the ProfileCollector convention, reimplemented
/// so cycle-domain stats work in telemetry-off builds). q in [0, 1].
double percentile_sorted(const std::vector<std::uint64_t>& sorted, double q);

class ServeEngine {
 public:
  /// No event pending (next_deadline / next_completion).
  static constexpr std::uint64_t kNoEvent =
      static_cast<std::uint64_t>(-1);

  /// `pool` outlives the engine and may be shared across engines (the
  /// bench's batch-1 and batched legs plan each shape once this way).
  ServeEngine(const ServeConfig& config, ModelPool* pool);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  const ServeConfig& config() const { return config_; }

  /// Submits one request at `arrival_cycle` (nondecreasing across calls —
  /// FUSE_CHECKed). Advances virtual time to the arrival first (closing
  /// due batches, retiring completions), then runs admission. Returns the
  /// request id; check response(id).status for kRejected.
  std::uint64_t submit(const ShapeKey& key, int batch_hint,
                       std::uint64_t arrival_cycle);

  /// Advances virtual time, dispatching every batch whose deadline passes
  /// and retiring every completion at or before `cycle`.
  void advance_to(std::uint64_t cycle);

  /// Earliest open-batch deadline / in-flight completion, or kNoEvent.
  std::uint64_t next_deadline() const;
  std::uint64_t next_completion() const;

  /// Current virtual time (the latest event or arrival processed).
  std::uint64_t now() const;

  /// Closes every open batch at its deadline, retires every in-flight
  /// completion, waits for all payload tasks, and merges their checksums
  /// into the response records. The engine is reusable afterwards.
  void drain();

  /// Scheduling history of one request (snapshot by value: the record
  /// may gain status/checksum updates until drain() returns).
  ResponseRecord response(std::uint64_t id) const;

  std::uint64_t num_requests() const;

  ServeStats stats() const;

 private:
  struct Member {
    std::uint64_t id = 0;
    std::uint64_t arrival = 0;
    int hint = 0;
  };
  struct OpenBatch {
    std::vector<Member> members;
    std::uint64_t open_cycle = 0;
    std::uint64_t deadline = 0;
  };
  struct BatchTask {
    ShapeKey key;
    std::vector<std::uint64_t> ids;
    std::vector<std::uint64_t> checksums;  // parallel to ids
  };
  /// (completion, id) min-heap entries.
  using Completion = std::pair<std::uint64_t, std::uint64_t>;

  void advance_locked(std::uint64_t cycle);
  std::uint64_t next_deadline_locked(const ShapeKey** key_out) const;
  void dispatch_batch_locked(ShapeKey key, std::uint64_t close_cycle);
  void retire_one_locked();
  bool shed_oldest_locked();
  int effective_cap(const OpenBatch& batch) const;
  void run_payload(BatchTask* task);
  void wait_for_payloads();

  const ServeConfig config_;
  ModelPool* const pool_;

  mutable std::mutex mutex_;
  std::uint64_t now_ = 0;
  std::uint64_t last_arrival_ = 0;
  std::deque<ResponseRecord> responses_;  // indexed by request id
  std::unordered_map<ShapeKey, OpenBatch, ShapeKeyHash> open_batches_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      in_flight_;
  std::vector<std::uint64_t> array_free_;  // per-array next free cycle
  std::uint64_t in_system_ = 0;
  std::uint64_t batch_seq_ = 0;
  std::uint64_t batch_members_total_ = 0;

  // Deterministic local tallies mirrored into the serve.* telemetry
  // counters (which are process-global and gated on FUSE_TELEMETRY).
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;

  // Payload plumbing: tasks_ is a deque for reference stability; workers
  // write only their own task's checksums, and the driver merges them
  // under mutex_ after wait_for_payloads().
  std::deque<BatchTask> tasks_;
  std::size_t launched_ = 0;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t finished_ = 0;

  // Declared after done_mutex_/done_cv_ so destruction joins the worker
  // threads before the synchronization they signal is destroyed.
  util::ThreadPool worker_pool_;
};

}  // namespace fuse::serve
