// Deterministic load generation for the serving engine.
//
// Two drive styles, both in the virtual cycle domain:
//   * OPEN loop — a pre-generated trace of arrivals replayed into the
//     engine regardless of its state (models independent users; the rate
//     is the experiment knob, latency the outcome). Inter-arrival gaps
//     are INTEGER uniform draws in [0, 2*mean] from util::Rng — not
//     exponential via log(), which is libm and not bit-portable — so the
//     trace, and every golden artifact derived from it, is byte-identical
//     across platforms.
//   * CLOSED loop — a fixed number of outstanding requests; each
//     completion immediately submits the next (models synchronous
//     clients; measures saturation throughput). The driver steps the
//     engine's own event clock via next_deadline/next_completion.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/engine.hpp"
#include "serve/request.hpp"

namespace fuse::serve {

/// One scripted arrival.
struct TraceEntry {
  std::uint64_t arrival_cycle = 0;
  ShapeKey key;
  int batch_hint = 0;
};

/// A shape participating in a trace, weighted by `weight` (>= 1) relative
/// draws.
struct TraceShape {
  ShapeKey key;
  int batch_hint = 0;
  int weight = 1;
};

/// `count` arrivals with integer inter-arrival gaps uniform in
/// [0, 2*mean_gap] (mean = mean_gap) and shapes drawn by weight, all from
/// Rng(seed). Deterministic and bit-portable.
std::vector<TraceEntry> make_open_loop_trace(
    std::int64_t count, std::uint64_t mean_gap,
    const std::vector<TraceShape>& shapes, std::uint64_t seed,
    std::uint64_t start_cycle = 0);

/// Submits every entry (trace must be sorted by arrival — FUSE_CHECKed)
/// and returns the request ids. Does NOT drain.
std::vector<std::uint64_t> replay_trace(ServeEngine& engine,
                                        const std::vector<TraceEntry>& trace);

/// Closed-loop totals (the engine's stats() has the percentiles).
struct ClosedLoopResult {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t makespan_cycles = 0;  // last reaped completion cycle
};

/// Keeps `concurrency` requests of one shape outstanding until `total`
/// were submitted, then drains. Each completion immediately submits its
/// replacement at the completion cycle — the saturation-throughput
/// experiment bench_serve sweeps.
ClosedLoopResult run_closed_loop(ServeEngine& engine, const ShapeKey& key,
                                 int batch_hint, int concurrency,
                                 std::int64_t total);

}  // namespace fuse::serve
