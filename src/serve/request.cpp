#include "serve/request.hpp"

#include <string>

namespace fuse::serve {

std::string shape_key_name(const ShapeKey& key) {
  if (key.custom >= 0) {
    return "custom#" + std::to_string(key.custom);
  }
  return nets::network_name(key.net) + "/" +
         core::network_variant_name(key.variant) + "@" +
         std::to_string(key.resolution);
}

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kCycle:
      return "cycle";
    case ExecMode::kTensor:
      return "tensor";
    case ExecMode::kSimulate:
      return "simulate";
  }
  return "?";
}

bool parse_exec_mode(const std::string& name, ExecMode* out) {
  if (name == "cycle") {
    *out = ExecMode::kCycle;
  } else if (name == "tensor") {
    *out = ExecMode::kTensor;
  } else if (name == "simulate" || name == "sim") {
    *out = ExecMode::kSimulate;
  } else {
    return false;
  }
  return true;
}

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNewest:
      return "reject-newest";
    case ShedPolicy::kRejectOldest:
      return "reject-oldest";
  }
  return "?";
}

bool parse_shed_policy(const std::string& name, ShedPolicy* out) {
  if (name == "reject-newest" || name == "reject_newest") {
    *out = ShedPolicy::kRejectNewest;
  } else if (name == "reject-oldest" || name == "reject_oldest") {
    *out = ShedPolicy::kRejectOldest;
  } else {
    return false;
  }
  return true;
}

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kDispatched:
      return "dispatched";
    case RequestStatus::kCompleted:
      return "completed";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace fuse::serve
