// Request/response vocabulary of the serving engine (docs/serving.md).
//
// A request names WHAT to run — a network x variant x resolution shape,
// plus an optional batch-size hint — and WHEN it arrives, in virtual
// cycles. The engine answers with a ResponseRecord carrying the full
// scheduling history of the request (admission, batch membership, array
// placement, completion), all in the same cycle domain the analytic
// latency models use. Keeping the serving clock virtual is what makes
// every scheduling decision a pure function of the submitted trace: the
// whole pipeline replays byte-identically at any worker thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/transform.hpp"
#include "nets/zoo.hpp"

namespace fuse::serve {

/// The batching identity of a request: two requests coalesce into one
/// batch iff their ShapeKeys compare equal (same lowering, same plan,
/// same weights — the ModelPool memoizes per key, like the LatencyCache
/// memoizes per layer shape). `custom` >= 0 addresses a model registered
/// through ModelPool::register_custom instead of the zoo (net/variant/
/// resolution are ignored for custom keys).
struct ShapeKey {
  nets::NetworkId net = nets::NetworkId::kMobileNetV1;
  core::NetworkVariant variant = core::NetworkVariant::kBaseline;
  std::int64_t resolution = 224;  // square input; V1/V2 accept 32, 64, ...
  int custom = -1;

  bool operator==(const ShapeKey& other) const = default;
};

/// FNV-1a over the key fields (the LatencyCache idiom).
struct ShapeKeyHash {
  std::size_t operator()(const ShapeKey& key) const {
    std::uint64_t hash = 1469598103934665603ULL;
    const auto mix = [&hash](std::uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        hash ^= (v >> (8 * byte)) & 0xffULL;
        hash *= 1099511628211ULL;
      }
    };
    mix(static_cast<std::uint64_t>(key.net));
    mix(static_cast<std::uint64_t>(key.variant));
    mix(static_cast<std::uint64_t>(key.resolution));
    mix(static_cast<std::uint64_t>(key.custom));
    return static_cast<std::size_t>(hash);
  }
};

/// "MobileNet-V2/FuSe-Full@64" or "custom#0" for reports.
std::string shape_key_name(const ShapeKey& key);

/// What a batch executes once dispatched.
enum class ExecMode {
  kCycle,     // latency accounting only: NetworkPlan roofline, no tensors
  kTensor,    // real tensors through the nn kernel backend (chain models)
  kSimulate,  // real tensors through the PE-grid simulator (chain models)
};

/// "cycle" / "tensor" / "simulate".
const char* exec_mode_name(ExecMode mode);

/// Parses exec_mode_name spellings; returns false on unknown names.
bool parse_exec_mode(const std::string& name, ExecMode* out);

/// What to do with an arrival that finds the system at capacity.
enum class ShedPolicy {
  kRejectNewest,  // drop the arriving request (classic bounded queue)
  kRejectOldest,  // evict the oldest still-queued request, admit the new
                  // one (its batch keeps its original deadline); falls
                  // back to reject-newest when nothing is still queued
};

/// "reject-newest" / "reject-oldest".
const char* shed_policy_name(ShedPolicy policy);

/// Parses shed_policy_name spellings; returns false on unknown names.
bool parse_shed_policy(const std::string& name, ShedPolicy* out);

enum class RequestStatus {
  kQueued,      // admitted, waiting in an open batch
  kDispatched,  // batch closed and placed on an array
  kCompleted,   // completion cycle reached (retired)
  kRejected,    // shed by admission control
};

/// "queued" / "dispatched" / "completed" / "rejected".
const char* request_status_name(RequestStatus status);

/// The full scheduling history of one request. All cycle fields are
/// virtual-time; `checksum` is the only field produced off the scheduling
/// path (by the worker pool, for tensor/simulate modes) and is a pure
/// function of (key, request id, engine seed).
struct ResponseRecord {
  std::uint64_t id = 0;
  ShapeKey key;
  RequestStatus status = RequestStatus::kQueued;
  int batch_hint = 0;  // 0 = no preference

  std::uint64_t arrival_cycle = 0;
  std::uint64_t dispatch_cycle = 0;    // batch close time
  std::uint64_t start_cycle = 0;       // array start (>= dispatch_cycle)
  std::uint64_t completion_cycle = 0;  // start + batched service time

  std::uint64_t batch_id = 0;
  int batch_size = 0;
  int array_index = -1;

  std::uint64_t checksum = 0;  // FNV-1a over the request's output bits

  /// Queueing + service latency. Meaningful once dispatched.
  std::uint64_t latency_cycles() const {
    return completion_cycle - arrival_cycle;
  }
};

}  // namespace fuse::serve
