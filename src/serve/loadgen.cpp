#include "serve/loadgen.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::serve {

std::vector<TraceEntry> make_open_loop_trace(
    std::int64_t count, std::uint64_t mean_gap,
    const std::vector<TraceShape>& shapes, std::uint64_t seed,
    std::uint64_t start_cycle) {
  FUSE_CHECK(count >= 0) << "trace count must be >= 0, got " << count;
  FUSE_CHECK(!shapes.empty()) << "trace needs at least one shape";
  std::uint64_t total_weight = 0;
  for (const TraceShape& shape : shapes) {
    FUSE_CHECK(shape.weight >= 1)
        << "trace shape weight must be >= 1, got " << shape.weight;
    total_weight += static_cast<std::uint64_t>(shape.weight);
  }
  util::Rng rng(seed);
  std::vector<TraceEntry> trace;
  trace.reserve(static_cast<std::size_t>(count));
  std::uint64_t cycle = start_cycle;
  for (std::int64_t i = 0; i < count; ++i) {
    // Integer gap uniform in [0, 2*mean] — mean = mean_gap, bit-portable
    // (no libm), unlike an exponential sampled through log().
    cycle += rng.uniform_index(2 * mean_gap + 1);
    std::uint64_t draw = rng.uniform_index(total_weight);
    std::size_t pick = 0;
    while (draw >= static_cast<std::uint64_t>(shapes[pick].weight)) {
      draw -= static_cast<std::uint64_t>(shapes[pick].weight);
      ++pick;
    }
    trace.push_back(TraceEntry{cycle, shapes[pick].key,
                               shapes[pick].batch_hint});
  }
  return trace;
}

std::vector<std::uint64_t> replay_trace(
    ServeEngine& engine, const std::vector<TraceEntry>& trace) {
  std::vector<std::uint64_t> ids;
  ids.reserve(trace.size());
  std::uint64_t last = 0;
  for (const TraceEntry& entry : trace) {
    FUSE_CHECK(entry.arrival_cycle >= last)
        << "trace must be sorted by arrival cycle";
    last = entry.arrival_cycle;
    ids.push_back(
        engine.submit(entry.key, entry.batch_hint, entry.arrival_cycle));
  }
  return ids;
}

ClosedLoopResult run_closed_loop(ServeEngine& engine, const ShapeKey& key,
                                 int batch_hint, int concurrency,
                                 std::int64_t total) {
  FUSE_CHECK(concurrency >= 1)
      << "closed loop needs concurrency >= 1, got " << concurrency;
  FUSE_CHECK(total >= 1) << "closed loop needs total >= 1, got " << total;

  ClosedLoopResult result;
  std::vector<std::uint64_t> outstanding;
  std::int64_t submitted = 0;
  std::uint64_t watermark = engine.now();  // latest submit cycle

  const auto submit_one = [&](std::uint64_t at) {
    watermark = std::max(watermark, at);
    const std::uint64_t id = engine.submit(key, batch_hint, watermark);
    if (engine.response(id).status == RequestStatus::kRejected) {
      ++result.rejected;
    } else {
      outstanding.push_back(id);
    }
    ++submitted;
  };

  const std::int64_t initial =
      std::min<std::int64_t>(concurrency, total);
  for (std::int64_t i = 0; i < initial; ++i) {
    submit_one(watermark);
  }

  while (submitted < total || !outstanding.empty()) {
    if (outstanding.empty()) {
      submit_one(engine.now());  // every client was shed: restart one
      continue;
    }
    // Step the engine's clock until some outstanding request has a
    // completion stamp, then reap the earliest (ties to the lowest id).
    std::size_t best_pos = 0;
    std::uint64_t best_completion = ServeEngine::kNoEvent;
    std::uint64_t best_id = 0;
    while (true) {
      best_completion = ServeEngine::kNoEvent;
      for (std::size_t pos = 0; pos < outstanding.size(); ++pos) {
        const ResponseRecord record = engine.response(outstanding[pos]);
        if (record.status == RequestStatus::kQueued) {
          continue;
        }
        if (record.completion_cycle < best_completion ||
            (record.completion_cycle == best_completion &&
             record.id < best_id)) {
          best_completion = record.completion_cycle;
          best_id = record.id;
          best_pos = pos;
        }
      }
      if (best_completion != ServeEngine::kNoEvent) {
        break;
      }
      const std::uint64_t deadline = engine.next_deadline();
      FUSE_CHECK(deadline != ServeEngine::kNoEvent)
          << "closed loop stuck: outstanding requests but no pending event";
      engine.advance_to(deadline);
    }
    outstanding.erase(outstanding.begin() +
                      static_cast<std::ptrdiff_t>(best_pos));
    ++result.completed;
    result.makespan_cycles =
        std::max(result.makespan_cycles, best_completion);
    if (submitted < total) {
      submit_one(best_completion);
    }
  }
  engine.drain();
  return result;
}

}  // namespace fuse::serve
