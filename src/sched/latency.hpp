// Network -> systolic-array latency estimation (paper §V-A3).
//
// Every LayerDesc is lowered through systolic::lower() to a MappingPlan of
// primitive array ops (see systolic/mapping.hpp for the per-kind mapping
// rules); latency, traffic, and utilization here are folds over that plan.
// Pool/activation/add layers lower to an empty plan and cost zero cycles:
// the paper considers only compute-bound convolutional (incl.
// squeeze-excite) and FC layers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/transform.hpp"
#include "hw/energy.hpp"
#include "nets/zoo.hpp"
#include "nn/layer.hpp"
#include "systolic/config.hpp"
#include "systolic/cycle_model.hpp"
#include "systolic/mapping.hpp"
#include "systolic/memory.hpp"

namespace fuse::sched {

using core::FuseMode;
using core::NetworkVariant;
using nets::NetworkId;
using nets::NetworkModel;
using nn::LayerDesc;
using systolic::ArrayConfig;
using systolic::LatencyEstimate;

class LatencyCache;  // latency_cache.hpp — shape-keyed memo table

/// Cycles (and fold/MAC/utilization accounting) for one layer (batch 1,
/// the paper's setting). Pure function of the layer geometry and the
/// array config — which is what makes the LatencyCache memoization and
/// the SweepEngine's parallel walks (sweep.hpp) bit-identical to the
/// serial path.
LatencyEstimate layer_latency(const LayerDesc& layer,
                              const ArrayConfig& cfg);

/// The estimate of an already-lowered plan, recording the same per-layer
/// sched.* metrics layer_latency would — layer_latency(l, cfg) is exactly
/// plan_latency(systolic::lower(l, cfg)). The network scheduler
/// (netplan.hpp) lowers each layer once and costs it through this, so the
/// telemetry deltas per evaluated layer are identical on both paths.
LatencyEstimate plan_latency(const systolic::MappingPlan& plan);

/// Batched inference: `batch` images processed together. For the conv
/// family the batch stacks along the output-position (M) dimension; for FC
/// layers it fills otherwise-idle array rows (M = batch), which is why
/// datacenter accelerators batch — and why batch-1 edge inference is where
/// the depthwise pathology (and FuSeConv's fix) matters most.
LatencyEstimate layer_latency_batched(const LayerDesc& layer,
                                      const ArrayConfig& cfg,
                                      std::int64_t batch);

/// Whole-network batched latency (cycles for the whole batch).
std::uint64_t network_latency_batched(const NetworkModel& model,
                                      const ArrayConfig& cfg,
                                      std::int64_t batch);

/// Roofline-bounded batched layer cost: max(compute, memory) cycles for
/// the whole batch. Batching amortizes weight traffic (weights stream in
/// once per batch, not once per image) and fill/drain overhead, which is
/// what makes dynamic batching pay off in the serving engine (src/serve)
/// — especially at small resolutions where weights dominate the traffic.
std::uint64_t layer_bound_batched(const LayerDesc& layer,
                                  const ArrayConfig& cfg,
                                  const systolic::MemoryConfig& mem,
                                  std::int64_t batch);

/// Whole-network batched roofline bound: sum over layers of
/// layer_bound_batched. At batch 1 this matches the per-layer
/// network_roofline bound (same lowering, same traffic model).
std::uint64_t network_bound_batched(const NetworkModel& model,
                                    const ArrayConfig& cfg,
                                    const systolic::MemoryConfig& mem,
                                    std::int64_t batch);

/// Whole-network latency with the per-layer breakdown preserved.
struct NetworkLatency {
  std::uint64_t total_cycles = 0;
  std::vector<LatencyEstimate> per_layer;  // parallel to model.layers

  /// Average utilization over latency-bearing cycles.
  double utilization(const ArrayConfig& cfg) const;
};

/// Serial reference walk. With a non-null `cache`, per-layer results are
/// memoized through it (same values — layer_latency is pure).
NetworkLatency network_latency(const NetworkModel& model,
                               const ArrayConfig& cfg,
                               LatencyCache* cache = nullptr);

/// Operator classes of the paper's Fig. 8(c) latency-distribution plot.
enum class OperatorClass {
  kStandardConv,
  kDepthwise,
  kPointwise,
  kFuse,
  kFcAndSe,
};
std::string operator_class_name(OperatorClass cls);
OperatorClass classify_layer(const LayerDesc& layer);

/// Total cycles per operator class.
struct OperatorBreakdown {
  std::uint64_t cycles[5] = {0, 0, 0, 0, 0};

  std::uint64_t total() const;
  double fraction(OperatorClass cls) const;
  std::uint64_t of(OperatorClass cls) const {
    return cycles[static_cast<int>(cls)];
  }
};
OperatorBreakdown operator_breakdown(const NetworkModel& model,
                                     const ArrayConfig& cfg);

/// Per-slot cycle savings of switching one depthwise slot to FuSeConv with
/// `mode` (kFull or kHalf), everything else baseline. Savings include the
/// ripple onto the slot's squeeze-excite and projection pointwise (tagged
/// via LayerDesc::fuse_slot). Used to pick the 50% variants.
std::vector<double> slot_savings(NetworkId id, FuseMode mode,
                                 const ArrayConfig& cfg,
                                 LatencyCache* cache = nullptr);

/// A fully resolved network variant: the lowered model plus the per-slot
/// modes that produced it.
struct VariantBuild {
  NetworkModel model;
  std::vector<FuseMode> modes;
};

/// Builds any Table-I variant; the 50% variants select slots greedily by
/// latency savings on the given array.
VariantBuild build_variant(NetworkId id, NetworkVariant variant,
                           const ArrayConfig& cfg,
                           LatencyCache* cache = nullptr);

/// Convenience: latency ratio baseline/variant on the given array.
double speedup_vs_baseline(NetworkId id, NetworkVariant variant,
                           const ArrayConfig& cfg,
                           LatencyCache* cache = nullptr);

// --- roofline extension (beyond the paper's compute-bound assumption) --------

/// DRAM traffic generated by one layer's mapping (zero for glue ops).
systolic::TrafficEstimate layer_traffic(const LayerDesc& layer,
                                        const ArrayConfig& cfg,
                                        const systolic::MemoryConfig& mem);

/// Whole-network roofline: per-layer max(compute, memory) summed, plus the
/// totals for reporting.
struct NetworkRoofline {
  std::uint64_t compute_cycles = 0;   // the paper's metric
  std::uint64_t memory_cycles = 0;    // traffic / bandwidth
  std::uint64_t bound_cycles = 0;     // sum of per-layer max()
  std::uint64_t total_bytes = 0;
  int memory_bound_layers = 0;
};
/// Whole-network roofline under the process-wide schedule mode
/// (netplan.hpp): per-layer mode reproduces the historical per-layer walk
/// exactly; fused mode charges legal depthwise/FuSe -> pointwise pairs as
/// single units with their redundant intermediate traffic removed, so the
/// bound is never above the per-layer one.
NetworkRoofline network_roofline(const NetworkModel& model,
                                 const ArrayConfig& cfg,
                                 const systolic::MemoryConfig& mem);

/// Speedup of a variant with the roofline model at the given bandwidth.
double roofline_speedup(NetworkId id, NetworkVariant variant,
                        const ArrayConfig& cfg,
                        const systolic::MemoryConfig& mem);

/// Energy of one inference: per-layer MAC + idle + SRAM + DRAM energy
/// under the hw::EnergyModel (see hw/energy.hpp for the decomposition).
hw::EnergyReport network_energy(const NetworkModel& model,
                                const ArrayConfig& cfg,
                                const systolic::MemoryConfig& mem,
                                const hw::EnergyModel& energy);

}  // namespace fuse::sched
