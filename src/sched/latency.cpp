#include "sched/latency.hpp"

#include <map>

#include "sched/latency_cache.hpp"
#include "util/check.hpp"

namespace fuse::sched {

using nn::OpKind;

namespace {

/// Memoized layer_latency when a cache is supplied, the plain function
/// otherwise. Both paths compute the same pure function of (layer, cfg).
LatencyEstimate cached_layer_latency(const LayerDesc& layer,
                                     const ArrayConfig& cfg,
                                     LatencyCache* cache) {
  return cache ? cache->get_or_compute(layer, cfg)
               : layer_latency(layer, cfg);
}

}  // namespace

LatencyEstimate layer_latency(const LayerDesc& layer,
                              const ArrayConfig& cfg) {
  switch (layer.kind) {
    case OpKind::kStandardConv:
      if (cfg.standard_conv_mapping ==
          systolic::StandardConvMapping::kChannelwise) {
        return systolic::conv_channelwise_latency(
            layer.out_h, layer.out_w, layer.kernel_h, layer.kernel_w,
            layer.in_c, layer.out_c, cfg);
      }
      return systolic::conv_im2col_latency(layer.out_h, layer.out_w,
                                           layer.kernel_h, layer.kernel_w,
                                           layer.in_c, layer.out_c, cfg);
    case OpKind::kGroupedConv: {
      // Each group is an independent im2col matmul over its own channels.
      const std::int64_t group_in = layer.in_c / layer.groups;
      const std::int64_t group_out = layer.out_c / layer.groups;
      const LatencyEstimate per_group = systolic::conv_im2col_latency(
          layer.out_h, layer.out_w, layer.kernel_h, layer.kernel_w,
          group_in, group_out, cfg);
      LatencyEstimate est;
      est.pe_count = cfg.pe_count();
      est.cycles = per_group.cycles * static_cast<std::uint64_t>(layer.groups);
      est.folds = per_group.folds * static_cast<std::uint64_t>(layer.groups);
      est.mac_ops =
          per_group.mac_ops * static_cast<std::uint64_t>(layer.groups);
      return est;
    }
    case OpKind::kDepthwiseConv:
      FUSE_CHECK(layer.kernel_h == layer.kernel_w)
          << "depthwise latency assumes square kernels, layer "
          << layer.name;
      return systolic::depthwise_im2col_latency(
          layer.out_c, layer.out_h, layer.out_w, layer.kernel_h, cfg);
    case OpKind::kPointwiseConv:
      return systolic::matmul_latency(layer.out_h * layer.out_w, layer.in_c,
                                      layer.out_c, cfg);
    case OpKind::kFuseRowConv: {
      // One 1-D convolution per (channel, output row): out_h lines per
      // channel (strided rows are whole lines and ARE skipped), each
      // producing out_w outputs from kernel_w taps. With a horizontal
      // stride the shift-register flow computes the dense output and
      // discards (see ArrayConfig::strided_fuse_dense_compute).
      const std::int64_t lines = layer.out_c * layer.out_h;
      std::int64_t line_out = layer.out_w;
      if (cfg.strided_fuse_dense_compute && layer.stride_w > 1) {
        line_out = layer.in_w + 2 * layer.pad_w - layer.kernel_w + 1;
      }
      if (cfg.broadcast_links) {
        return systolic::fuse1d_latency(lines, line_out, layer.kernel_w,
                                        cfg);
      }
      return systolic::fuse1d_no_broadcast_latency(lines, line_out,
                                                   layer.kernel_w, cfg);
    }
    case OpKind::kFuseColConv: {
      const std::int64_t lines = layer.out_c * layer.out_w;
      std::int64_t line_out = layer.out_h;
      if (cfg.strided_fuse_dense_compute && layer.stride_h > 1) {
        line_out = layer.in_h + 2 * layer.pad_h - layer.kernel_h + 1;
      }
      if (cfg.broadcast_links) {
        return systolic::fuse1d_latency(lines, line_out, layer.kernel_h,
                                        cfg);
      }
      return systolic::fuse1d_no_broadcast_latency(lines, line_out,
                                                   layer.kernel_h, cfg);
    }
    case OpKind::kFullyConnected:
      return systolic::fully_connected_latency(layer.in_c, layer.out_c, cfg);
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd: {
      LatencyEstimate zero;
      zero.pe_count = cfg.pe_count();
      return zero;
    }
  }
  FUSE_CHECK(false) << "unknown op kind for layer " << layer.name;
  return {};
}

LatencyEstimate layer_latency_batched(const LayerDesc& layer,
                                      const ArrayConfig& cfg,
                                      std::int64_t batch) {
  FUSE_CHECK(batch >= 1) << "batch must be >= 1";
  switch (layer.kind) {
    case OpKind::kStandardConv:
      return systolic::matmul_latency(batch * layer.out_h * layer.out_w,
                                      layer.kernel_h * layer.kernel_w *
                                          layer.in_c,
                                      layer.out_c, cfg);
    case OpKind::kGroupedConv: {
      const LatencyEstimate per_group = systolic::matmul_latency(
          batch * layer.out_h * layer.out_w,
          layer.kernel_h * layer.kernel_w * (layer.in_c / layer.groups),
          layer.out_c / layer.groups, cfg);
      LatencyEstimate est;
      est.pe_count = cfg.pe_count();
      est.cycles = per_group.cycles * static_cast<std::uint64_t>(layer.groups);
      est.folds = per_group.folds * static_cast<std::uint64_t>(layer.groups);
      est.mac_ops =
          per_group.mac_ops * static_cast<std::uint64_t>(layer.groups);
      return est;
    }
    case OpKind::kDepthwiseConv: {
      const LatencyEstimate per_channel = systolic::matmul_latency(
          batch * layer.out_h * layer.out_w,
          layer.kernel_h * layer.kernel_w, /*n=*/1, cfg);
      LatencyEstimate est;
      est.pe_count = cfg.pe_count();
      est.cycles = per_channel.cycles * static_cast<std::uint64_t>(layer.out_c);
      est.folds = per_channel.folds * static_cast<std::uint64_t>(layer.out_c);
      est.mac_ops =
          per_channel.mac_ops * static_cast<std::uint64_t>(layer.out_c);
      return est;
    }
    case OpKind::kPointwiseConv:
      return systolic::matmul_latency(batch * layer.out_h * layer.out_w,
                                      layer.in_c, layer.out_c, cfg);
    case OpKind::kFuseRowConv: {
      const std::int64_t lines = batch * layer.out_c * layer.out_h;
      std::int64_t line_out = layer.out_w;
      if (cfg.strided_fuse_dense_compute && layer.stride_w > 1) {
        line_out = layer.in_w + 2 * layer.pad_w - layer.kernel_w + 1;
      }
      if (cfg.broadcast_links) {
        return systolic::fuse1d_latency(lines, line_out, layer.kernel_w,
                                        cfg);
      }
      return systolic::fuse1d_no_broadcast_latency(lines, line_out,
                                                   layer.kernel_w, cfg);
    }
    case OpKind::kFuseColConv: {
      const std::int64_t lines = batch * layer.out_c * layer.out_w;
      std::int64_t line_out = layer.out_h;
      if (cfg.strided_fuse_dense_compute && layer.stride_h > 1) {
        line_out = layer.in_h + 2 * layer.pad_h - layer.kernel_h + 1;
      }
      if (cfg.broadcast_links) {
        return systolic::fuse1d_latency(lines, line_out, layer.kernel_h,
                                        cfg);
      }
      return systolic::fuse1d_no_broadcast_latency(lines, line_out,
                                                   layer.kernel_h, cfg);
    }
    case OpKind::kFullyConnected:
      // The batch fills the otherwise single-row mapping.
      return systolic::matmul_latency(batch, layer.in_c, layer.out_c, cfg);
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd: {
      LatencyEstimate zero;
      zero.pe_count = cfg.pe_count();
      return zero;
    }
  }
  FUSE_CHECK(false) << "unknown op kind for layer " << layer.name;
  return {};
}

std::uint64_t network_latency_batched(const NetworkModel& model,
                                      const ArrayConfig& cfg,
                                      std::int64_t batch) {
  std::uint64_t total = 0;
  for (const LayerDesc& layer : model.layers) {
    total += layer_latency_batched(layer, cfg, batch).cycles;
  }
  return total;
}

double NetworkLatency::utilization(const ArrayConfig& cfg) const {
  std::uint64_t macs = 0;
  for (const LatencyEstimate& est : per_layer) {
    macs += est.mac_ops;
  }
  if (total_cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(macs) /
         (static_cast<double>(total_cycles) *
          static_cast<double>(cfg.pe_count()));
}

NetworkLatency network_latency(const NetworkModel& model,
                               const ArrayConfig& cfg,
                               LatencyCache* cache) {
  NetworkLatency result;
  result.per_layer.reserve(model.layers.size());
  for (const LayerDesc& layer : model.layers) {
    LatencyEstimate est = cached_layer_latency(layer, cfg, cache);
    result.total_cycles += est.cycles;
    result.per_layer.push_back(est);
  }
  return result;
}

std::string operator_class_name(OperatorClass cls) {
  switch (cls) {
    case OperatorClass::kStandardConv:
      return "standard-conv";
    case OperatorClass::kDepthwise:
      return "depthwise";
    case OperatorClass::kPointwise:
      return "pointwise";
    case OperatorClass::kFuse:
      return "fuse";
    case OperatorClass::kFcAndSe:
      return "fc+se";
  }
  return "?";
}

OperatorClass classify_layer(const LayerDesc& layer) {
  switch (layer.kind) {
    case OpKind::kStandardConv:
    case OpKind::kGroupedConv:
      return OperatorClass::kStandardConv;
    case OpKind::kDepthwiseConv:
      return OperatorClass::kDepthwise;
    case OpKind::kPointwiseConv:
      return OperatorClass::kPointwise;
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
      return OperatorClass::kFuse;
    case OpKind::kFullyConnected:
    default:
      return OperatorClass::kFcAndSe;
  }
}

std::uint64_t OperatorBreakdown::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : cycles) {
    sum += c;
  }
  return sum;
}

double OperatorBreakdown::fraction(OperatorClass cls) const {
  const std::uint64_t sum = total();
  if (sum == 0) {
    return 0.0;
  }
  return static_cast<double>(of(cls)) / static_cast<double>(sum);
}

OperatorBreakdown operator_breakdown(const NetworkModel& model,
                                     const ArrayConfig& cfg) {
  OperatorBreakdown breakdown;
  for (const LayerDesc& layer : model.layers) {
    if (!layer.counts_for_latency()) {
      continue;
    }
    breakdown.cycles[static_cast<int>(classify_layer(layer))] +=
        layer_latency(layer, cfg).cycles;
  }
  return breakdown;
}

namespace {

/// Cycles attributed to each fuse slot (dw/fuse layer + its SE + its
/// projection pointwise), via the fuse_slot tags.
std::map<int, std::uint64_t> cycles_by_slot(const NetworkModel& model,
                                            const ArrayConfig& cfg,
                                            LatencyCache* cache) {
  std::map<int, std::uint64_t> by_slot;
  for (const LayerDesc& layer : model.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    by_slot[layer.fuse_slot] += cached_layer_latency(layer, cfg, cache).cycles;
  }
  return by_slot;
}

}  // namespace

std::vector<double> slot_savings(NetworkId id, FuseMode mode,
                                 const ArrayConfig& cfg,
                                 LatencyCache* cache) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "slot_savings needs a replacing mode";
  const NetworkModel baseline = nets::build_network(id);
  const NetworkModel fused = nets::build_network(
      id, core::uniform_modes(baseline.num_slots, mode));

  const auto base_slots = cycles_by_slot(baseline, cfg, cache);
  const auto fused_slots = cycles_by_slot(fused, cfg, cache);

  std::vector<double> savings(static_cast<std::size_t>(baseline.num_slots),
                              0.0);
  for (int slot = 0; slot < baseline.num_slots; ++slot) {
    const auto base_it = base_slots.find(slot);
    const auto fused_it = fused_slots.find(slot);
    FUSE_CHECK(base_it != base_slots.end() &&
               fused_it != fused_slots.end())
        << "slot " << slot << " missing from lowered network";
    savings[static_cast<std::size_t>(slot)] =
        static_cast<double>(base_it->second) -
        static_cast<double>(fused_it->second);
  }
  return savings;
}

VariantBuild build_variant(NetworkId id, NetworkVariant variant,
                           const ArrayConfig& cfg, LatencyCache* cache) {
  const int slots = nets::num_fuse_slots(id);
  std::vector<double> savings;
  if (variant == NetworkVariant::kFuseFull50) {
    savings = slot_savings(id, FuseMode::kFull, cfg, cache);
  } else if (variant == NetworkVariant::kFuseHalf50) {
    savings = slot_savings(id, FuseMode::kHalf, cfg, cache);
  }
  VariantBuild build;
  build.modes = core::modes_for_variant(variant, slots, savings);
  build.model = nets::build_network(id, build.modes);
  return build;
}

double speedup_vs_baseline(NetworkId id, NetworkVariant variant,
                           const ArrayConfig& cfg, LatencyCache* cache) {
  const VariantBuild baseline =
      build_variant(id, NetworkVariant::kBaseline, cfg, cache);
  const VariantBuild target = build_variant(id, variant, cfg, cache);
  const std::uint64_t base_cycles =
      network_latency(baseline.model, cfg, cache).total_cycles;
  const std::uint64_t variant_cycles =
      network_latency(target.model, cfg, cache).total_cycles;
  FUSE_CHECK(variant_cycles > 0) << "variant has zero latency";
  return static_cast<double>(base_cycles) /
         static_cast<double>(variant_cycles);
}

systolic::TrafficEstimate layer_traffic(const LayerDesc& layer,
                                        const ArrayConfig& cfg,
                                        const systolic::MemoryConfig& mem) {
  switch (layer.kind) {
    case OpKind::kStandardConv:
      return systolic::conv_im2col_traffic(layer.out_h, layer.out_w,
                                           layer.kernel_h, layer.kernel_w,
                                           layer.in_c, layer.out_c, cfg,
                                           mem);
    case OpKind::kGroupedConv: {
      const systolic::TrafficEstimate per_group =
          systolic::conv_im2col_traffic(
              layer.out_h, layer.out_w, layer.kernel_h, layer.kernel_w,
              layer.in_c / layer.groups, layer.out_c / layer.groups, cfg,
              mem);
      systolic::TrafficEstimate traffic;
      for (std::int64_t g = 0; g < layer.groups; ++g) {
        traffic += per_group;
      }
      return traffic;
    }
    case OpKind::kDepthwiseConv:
      return systolic::depthwise_im2col_traffic(
          layer.out_c, layer.out_h, layer.out_w, layer.kernel_h, cfg, mem);
    case OpKind::kPointwiseConv:
      return systolic::matmul_traffic(layer.out_h * layer.out_w, layer.in_c,
                                      layer.out_c, cfg, mem);
    case OpKind::kFuseRowConv:
      return systolic::fuse1d_traffic(layer.out_c * layer.out_h,
                                      layer.out_w, layer.kernel_w, cfg,
                                      mem);
    case OpKind::kFuseColConv:
      return systolic::fuse1d_traffic(layer.out_c * layer.out_w,
                                      layer.out_h, layer.kernel_h, cfg,
                                      mem);
    case OpKind::kFullyConnected:
      return systolic::fully_connected_traffic(layer.in_c, layer.out_c, cfg,
                                               mem);
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      return {};
  }
  FUSE_CHECK(false) << "unknown op kind for layer " << layer.name;
  return {};
}

NetworkRoofline network_roofline(const NetworkModel& model,
                                 const ArrayConfig& cfg,
                                 const systolic::MemoryConfig& mem) {
  NetworkRoofline roofline;
  for (const LayerDesc& layer : model.layers) {
    const std::uint64_t compute = layer_latency(layer, cfg).cycles;
    const systolic::TrafficEstimate traffic = layer_traffic(layer, cfg, mem);
    const std::uint64_t memory = traffic.memory_cycles(mem);
    roofline.compute_cycles += compute;
    roofline.memory_cycles += memory;
    roofline.bound_cycles += std::max(compute, memory);
    roofline.total_bytes += traffic.total_bytes();
    if (memory > compute && compute > 0) {
      ++roofline.memory_bound_layers;
    }
  }
  return roofline;
}

double roofline_speedup(NetworkId id, NetworkVariant variant,
                        const ArrayConfig& cfg,
                        const systolic::MemoryConfig& mem) {
  const VariantBuild baseline =
      build_variant(id, NetworkVariant::kBaseline, cfg);
  const VariantBuild target = build_variant(id, variant, cfg);
  const std::uint64_t base =
      network_roofline(baseline.model, cfg, mem).bound_cycles;
  const std::uint64_t var =
      network_roofline(target.model, cfg, mem).bound_cycles;
  FUSE_CHECK(var > 0) << "variant has zero roofline latency";
  return static_cast<double>(base) / static_cast<double>(var);
}

hw::EnergyReport network_energy(const NetworkModel& model,
                                const ArrayConfig& cfg,
                                const systolic::MemoryConfig& mem,
                                const hw::EnergyModel& energy) {
  hw::EnergyReport report;
  for (const LayerDesc& layer : model.layers) {
    const LatencyEstimate est = layer_latency(layer, cfg);
    const systolic::TrafficEstimate traffic = layer_traffic(layer, cfg, mem);
    report += hw::operator_energy(est.mac_ops, est.cycles, cfg.pe_count(),
                                  traffic.total_bytes(), energy);
  }
  return report;
}

}  // namespace fuse::sched
