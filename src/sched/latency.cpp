#include "sched/latency.hpp"

#include <algorithm>
#include <map>

#include "sched/latency_cache.hpp"
#include "sched/netplan.hpp"
#include "systolic/mapping.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::sched {

using nn::OpKind;

namespace {

/// Memoized layer_latency when a cache is supplied, the plain function
/// otherwise. Both paths compute the same pure function of (layer, cfg).
LatencyEstimate cached_layer_latency(const LayerDesc& layer,
                                     const ArrayConfig& cfg,
                                     LatencyCache* cache) {
  return cache ? cache->get_or_compute(layer, cfg)
               : layer_latency(layer, cfg);
}

}  // namespace

namespace {

/// PE-occupancy accounting for one evaluated layer, derived from its
/// MappingPlan fold: busy PE-cycles are exactly the useful MACs (one MAC
/// per PE per cycle), total PE-cycles are cycles x array PEs. These are
/// the registry-side numbers behind --stats-json; the bench footer keeps
/// its own per-engine stats.
void record_layer_metrics(const LatencyEstimate& est) {
  static util::Counter& layers = util::metrics().counter("sched.layers");
  static util::Counter& macs = util::metrics().counter("sched.macs");
  static util::Counter& folds = util::metrics().counter("sched.folds");
  static util::Counter& pe_busy =
      util::metrics().counter("sched.pe_cycles_busy");
  static util::Counter& pe_total =
      util::metrics().counter("sched.pe_cycles_total");
  static util::Histogram& cycles =
      util::metrics().histogram("sched.layer_cycles");
  layers.add();
  macs.add(est.mac_ops);
  folds.add(est.folds);
  pe_busy.add(est.mac_ops);
  pe_total.add(est.cycles * static_cast<std::uint64_t>(est.pe_count));
  cycles.observe(est.cycles);
}

}  // namespace

LatencyEstimate layer_latency(const LayerDesc& layer,
                              const ArrayConfig& cfg) {
  // All per-OpKind mapping decisions live in systolic::lower(); this is
  // just a fold over the resulting primitive ops.
  return plan_latency(systolic::lower(layer, cfg));
}

LatencyEstimate plan_latency(const systolic::MappingPlan& plan) {
  const LatencyEstimate est = plan.total_latency();
  record_layer_metrics(est);
  return est;
}

LatencyEstimate layer_latency_batched(const LayerDesc& layer,
                                      const ArrayConfig& cfg,
                                      std::int64_t batch) {
  return systolic::lower_batched(layer, cfg, batch).total_latency();
}

std::uint64_t network_latency_batched(const NetworkModel& model,
                                      const ArrayConfig& cfg,
                                      std::int64_t batch) {
  std::uint64_t total = 0;
  for (const LayerDesc& layer : model.layers) {
    total += layer_latency_batched(layer, cfg, batch).cycles;
  }
  return total;
}

std::uint64_t layer_bound_batched(const LayerDesc& layer,
                                  const ArrayConfig& cfg,
                                  const systolic::MemoryConfig& mem,
                                  std::int64_t batch) {
  const systolic::MappingPlan plan =
      systolic::lower_batched(layer, cfg, batch);
  const std::uint64_t compute = plan.total_latency().cycles;
  const std::uint64_t memory =
      systolic::plan_traffic(plan, cfg, mem).memory_cycles(mem);
  return std::max(compute, memory);
}

std::uint64_t network_bound_batched(const NetworkModel& model,
                                    const ArrayConfig& cfg,
                                    const systolic::MemoryConfig& mem,
                                    std::int64_t batch) {
  std::uint64_t total = 0;
  for (const LayerDesc& layer : model.layers) {
    total += layer_bound_batched(layer, cfg, mem, batch);
  }
  return total;
}

double NetworkLatency::utilization(const ArrayConfig& cfg) const {
  std::uint64_t macs = 0;
  for (const LatencyEstimate& est : per_layer) {
    macs += est.mac_ops;
  }
  if (total_cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(macs) /
         (static_cast<double>(total_cycles) *
          static_cast<double>(cfg.pe_count()));
}

NetworkLatency network_latency(const NetworkModel& model,
                               const ArrayConfig& cfg,
                               LatencyCache* cache) {
  NetworkLatency result;
  result.per_layer.reserve(model.layers.size());
  for (const LayerDesc& layer : model.layers) {
    LatencyEstimate est = cached_layer_latency(layer, cfg, cache);
    result.total_cycles += est.cycles;
    result.per_layer.push_back(est);
  }
  return result;
}

std::string operator_class_name(OperatorClass cls) {
  switch (cls) {
    case OperatorClass::kStandardConv:
      return "standard-conv";
    case OperatorClass::kDepthwise:
      return "depthwise";
    case OperatorClass::kPointwise:
      return "pointwise";
    case OperatorClass::kFuse:
      return "fuse";
    case OperatorClass::kFcAndSe:
      return "fc+se";
  }
  return "?";
}

OperatorClass classify_layer(const LayerDesc& layer) {
  switch (layer.kind) {
    case OpKind::kStandardConv:
    case OpKind::kGroupedConv:
      return OperatorClass::kStandardConv;
    case OpKind::kDepthwiseConv:
      return OperatorClass::kDepthwise;
    case OpKind::kPointwiseConv:
      return OperatorClass::kPointwise;
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
      return OperatorClass::kFuse;
    case OpKind::kFullyConnected:
    default:
      return OperatorClass::kFcAndSe;
  }
}

std::uint64_t OperatorBreakdown::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : cycles) {
    sum += c;
  }
  return sum;
}

double OperatorBreakdown::fraction(OperatorClass cls) const {
  const std::uint64_t sum = total();
  if (sum == 0) {
    return 0.0;
  }
  return static_cast<double>(of(cls)) / static_cast<double>(sum);
}

OperatorBreakdown operator_breakdown(const NetworkModel& model,
                                     const ArrayConfig& cfg) {
  OperatorBreakdown breakdown;
  for (const LayerDesc& layer : model.layers) {
    if (!layer.counts_for_latency()) {
      continue;
    }
    breakdown.cycles[static_cast<int>(classify_layer(layer))] +=
        layer_latency(layer, cfg).cycles;
  }
  return breakdown;
}

namespace {

/// Cycles attributed to each fuse slot (dw/fuse layer + its SE + its
/// projection pointwise), via the fuse_slot tags.
std::map<int, std::uint64_t> cycles_by_slot(const NetworkModel& model,
                                            const ArrayConfig& cfg,
                                            LatencyCache* cache) {
  std::map<int, std::uint64_t> by_slot;
  for (const LayerDesc& layer : model.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    by_slot[layer.fuse_slot] += cached_layer_latency(layer, cfg, cache).cycles;
  }
  return by_slot;
}

}  // namespace

std::vector<double> slot_savings(NetworkId id, FuseMode mode,
                                 const ArrayConfig& cfg,
                                 LatencyCache* cache) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "slot_savings needs a replacing mode";
  const NetworkModel baseline = nets::build_network(id);
  const NetworkModel fused = nets::build_network(
      id, core::uniform_modes(baseline.num_slots, mode));

  const auto base_slots = cycles_by_slot(baseline, cfg, cache);
  const auto fused_slots = cycles_by_slot(fused, cfg, cache);

  std::vector<double> savings(static_cast<std::size_t>(baseline.num_slots),
                              0.0);
  for (int slot = 0; slot < baseline.num_slots; ++slot) {
    const auto base_it = base_slots.find(slot);
    const auto fused_it = fused_slots.find(slot);
    FUSE_CHECK(base_it != base_slots.end() &&
               fused_it != fused_slots.end())
        << "slot " << slot << " missing from lowered network";
    savings[static_cast<std::size_t>(slot)] =
        static_cast<double>(base_it->second) -
        static_cast<double>(fused_it->second);
  }
  return savings;
}

VariantBuild build_variant(NetworkId id, NetworkVariant variant,
                           const ArrayConfig& cfg, LatencyCache* cache) {
  const int slots = nets::num_fuse_slots(id);
  std::vector<double> savings;
  if (variant == NetworkVariant::kFuseFull50) {
    savings = slot_savings(id, FuseMode::kFull, cfg, cache);
  } else if (variant == NetworkVariant::kFuseHalf50) {
    savings = slot_savings(id, FuseMode::kHalf, cfg, cache);
  }
  VariantBuild build;
  build.modes = core::modes_for_variant(variant, slots, savings);
  build.model = nets::build_network(id, build.modes);
  return build;
}

double speedup_vs_baseline(NetworkId id, NetworkVariant variant,
                           const ArrayConfig& cfg, LatencyCache* cache) {
  const VariantBuild baseline =
      build_variant(id, NetworkVariant::kBaseline, cfg, cache);
  const VariantBuild target = build_variant(id, variant, cfg, cache);
  const std::uint64_t base_cycles =
      network_latency(baseline.model, cfg, cache).total_cycles;
  const std::uint64_t variant_cycles =
      network_latency(target.model, cfg, cache).total_cycles;
  FUSE_CHECK(variant_cycles > 0) << "variant has zero latency";
  return static_cast<double>(base_cycles) /
         static_cast<double>(variant_cycles);
}

systolic::TrafficEstimate layer_traffic(const LayerDesc& layer,
                                        const ArrayConfig& cfg,
                                        const systolic::MemoryConfig& mem) {
  return systolic::plan_traffic(systolic::lower(layer, cfg), cfg, mem);
}

NetworkRoofline network_roofline(const NetworkModel& model,
                                 const ArrayConfig& cfg,
                                 const systolic::MemoryConfig& mem) {
  // The roofline is a view over the network schedule; the process-wide
  // mode (default per-layer, which reproduces the historical per-layer
  // walk bit for bit) decides whether fused pairs share their
  // intermediate traffic.
  return plan_roofline(plan_network(model, cfg, mem, sched_mode()));
}

double roofline_speedup(NetworkId id, NetworkVariant variant,
                        const ArrayConfig& cfg,
                        const systolic::MemoryConfig& mem) {
  const VariantBuild baseline =
      build_variant(id, NetworkVariant::kBaseline, cfg);
  const VariantBuild target = build_variant(id, variant, cfg);
  const std::uint64_t base =
      network_roofline(baseline.model, cfg, mem).bound_cycles;
  const std::uint64_t var =
      network_roofline(target.model, cfg, mem).bound_cycles;
  FUSE_CHECK(var > 0) << "variant has zero roofline latency";
  return static_cast<double>(base) / static_cast<double>(var);
}

hw::EnergyReport network_energy(const NetworkModel& model,
                                const ArrayConfig& cfg,
                                const systolic::MemoryConfig& mem,
                                const hw::EnergyModel& energy) {
  hw::EnergyReport report;
  for (const LayerDesc& layer : model.layers) {
    const LatencyEstimate est = layer_latency(layer, cfg);
    const systolic::TrafficEstimate traffic = layer_traffic(layer, cfg, mem);
    report += hw::operator_energy(est.mac_ops, est.cycles, cfg.pe_count(),
                                  traffic.total_bytes(), energy);
  }
  return report;
}

}  // namespace fuse::sched
