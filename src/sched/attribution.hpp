// Bottleneck attribution: an exact decomposition of every cycle the
// analytic model charges, over a NetworkPlan.
//
// The paper's argument is not "FuSeConv is faster" but *why*: depthwise
// layers occupy one array column while FuSe 1-D lines fill both array
// dimensions (§III-B vs §IV-C). This module turns that argument into an
// instrument. Every layer's analytic latency splits into
//
//   cycles = compute_cycles     // the MAC-streaming window of each fold
//          + fill_drain_cycles  // wavefront skew, preload, drain
//
// and every PE-cycle of the array splits into
//
//   cycles * pe_count = pe_busy              // useful MACs (1 MAC/PE/cy)
//                     + pe_idle_geometry     // idle PEs *during* compute
//                                            // windows: edge tiles, the
//                                            // depthwise single-column
//                                            // pathology
//                     + pe_idle_fill_drain   // whole-array dead time
//
// both identities FUSE_CHECKed per layer and summed per network. On top,
// the roofline view charges each scheduling unit (a layer, or a fused
// producer->pointwise group under SchedMode::kFused) a DRAM stall of
// max(0, memory_cycles - compute) so
//
//   sum(unit cycles + unit dram_stall) == plan_roofline(plan).bound_cycles
//
// exactly. Per-layer roofline points (operational intensity in MACs/byte
// vs attained cycles/MAC) ride along for plotting.
//
// The decomposition is a pure view over the MappingPlan fold walk — it
// re-enumerates for_each_fold_tile with the cycle-model formulas split
// into their components, and checks the components sum back to the
// LatencyEstimate the plan already carries. Nothing here records metrics
// or mutates process state.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sched/latency.hpp"
#include "sched/netplan.hpp"
#include "systolic/mapping.hpp"

namespace fuse::sched {

/// The two time components of one fold (or one primitive, or one layer).
struct CycleSplit {
  std::uint64_t compute = 0;     // MAC-streaming window
  std::uint64_t fill_drain = 0;  // wavefront skew + preload + drain

  std::uint64_t total() const { return compute + fill_drain; }
  CycleSplit& operator+=(const CycleSplit& other) {
    compute += other.compute;
    fill_drain += other.fill_drain;
    return *this;
  }
};

/// Walks every fold of `op` (repeats included) in the canonical
/// for_each_fold_tile order and calls fn(split, mac_ops) once per fold.
/// The splits sum exactly to op.total().cycles and the macs to
/// op.total().mac_ops — the same formulas as systolic/cycle_model.cpp,
/// separated into their components (verified by decompose_primitive's
/// FUSE_CHECK and tests/test_attribution.cpp).
void for_each_fold_split(
    const systolic::PrimitiveOp& op, const systolic::ArrayConfig& cfg,
    const std::function<void(const CycleSplit&, std::uint64_t)>& fn);

/// Fold of for_each_fold_split; FUSE_CHECKs total() == op.total().cycles.
CycleSplit decompose_primitive(const systolic::PrimitiveOp& op,
                               const systolic::ArrayConfig& cfg);

/// One on-array layer's attribution row.
struct LayerAttribution {
  std::size_t layer_index = 0;  // into model.layers
  std::string name;
  OperatorClass op_class = OperatorClass::kStandardConv;

  // Time decomposition (cycles == compute + fill_drain, FUSE_CHECKed).
  std::uint64_t cycles = 0;
  CycleSplit split;

  // PE-cycle decomposition (busy + idle_geometry + idle_fill_drain ==
  // pe_total, exact by construction, FUSE_CHECKed).
  std::uint64_t pe_total = 0;
  std::uint64_t pe_busy = 0;           // == mac_ops
  std::uint64_t pe_idle_geometry = 0;  // idle PEs inside compute windows
  std::uint64_t pe_idle_fill_drain = 0;

  // Roofline point.
  std::uint64_t mac_ops = 0;
  std::uint64_t folds = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t memory_cycles = 0;

  /// Busy fraction of all PE-cycles, in [0, 1].
  double occupancy() const {
    return pe_total == 0 ? 0.0
                         : static_cast<double>(pe_busy) /
                               static_cast<double>(pe_total);
  }
  /// MACs per DRAM byte (the roofline x axis).
  double operational_intensity() const {
    return dram_bytes == 0 ? 0.0
                           : static_cast<double>(mac_ops) /
                                 static_cast<double>(dram_bytes);
  }
  /// Attained cycles per MAC under the roofline bound (the y axis; lower
  /// is better, 1/pe_count is the array's peak).
  double cycles_per_mac() const {
    const std::uint64_t bound =
        cycles > memory_cycles ? cycles : memory_cycles;
    return mac_ops == 0 ? 0.0
                        : static_cast<double>(bound) /
                              static_cast<double>(mac_ops);
  }
};

/// One roofline scheduling unit: a single layer in per-layer mode, a fused
/// producer(s)->consumer group in fused mode. Mirrors plan_roofline's
/// walk; sum(bound_cycles) over units == plan_roofline(plan).bound_cycles.
struct UnitAttribution {
  std::vector<std::size_t> layer_indices;  // into model.layers
  std::string name;                        // lead layer (+N for groups)
  bool fused = false;

  std::uint64_t compute_cycles = 0;  // sum of member analytic latencies
  std::uint64_t memory_cycles = 0;   // reduced traffic under fusion
  std::uint64_t dram_stall_cycles = 0;  // max(0, memory - compute)
  std::uint64_t bound_cycles = 0;       // compute + dram_stall
  std::uint64_t dram_bytes = 0;
  bool memory_bound = false;
};

/// One schedule segment's share of its layer's decomposition: the
/// segment's `folds` consecutive folds in the layer's canonical fold
/// order. Summing a layer's segments reproduces the layer's split exactly
/// (FUSE_CHECKed) — this is the per-fused-segment view of the fused
/// schedule's interleaving.
struct SegmentAttribution {
  std::size_t segment_index = 0;  // into plan.segments
  std::size_t layer_index = 0;
  CycleSplit split;
  std::uint64_t mac_ops = 0;
};

/// The whole-network attribution.
struct AttributionReport {
  SchedMode mode = SchedMode::kPerLayer;
  systolic::ArrayConfig cfg;
  systolic::MemoryConfig mem;
  std::string network;

  std::vector<LayerAttribution> layers;     // on-array layers only
  std::vector<UnitAttribution> units;       // roofline scheduling units
  std::vector<SegmentAttribution> segments; // parallel to plan.segments

  // Network totals (each FUSE_CHECKed against the plan it came from).
  std::uint64_t total_cycles = 0;        // == plan.total_cycles
  CycleSplit total_split;                // components of total_cycles
  std::uint64_t total_dram_stall = 0;    // sum over units
  std::uint64_t bound_cycles = 0;        // == plan_roofline(plan).bound
  std::uint64_t pe_total = 0;
  std::uint64_t pe_busy = 0;
  std::uint64_t pe_idle_geometry = 0;
  std::uint64_t pe_idle_fill_drain = 0;

  /// Cycles per attributed category aggregated by operator class
  /// (index with static_cast<int>(OperatorClass)).
  CycleSplit by_class[5];

  double occupancy() const {
    return pe_total == 0 ? 0.0
                         : static_cast<double>(pe_busy) /
                               static_cast<double>(pe_total);
  }
};

/// Builds the full attribution over an already-built schedule. Pure: no
/// metrics, no process state. Every decomposition identity is
/// FUSE_CHECKed against the plan's own latency/roofline numbers.
AttributionReport attribute_network(const NetworkPlan& plan,
                                    const nets::NetworkModel& model);

/// Serializes the report as one JSON document: {"schema": 1, "layers":
/// [...], "units": [...], "totals": {...}}. Stable field order, valid
/// JSON (parse-back pinned in tests and tools/check.sh).
void write_attribution_json(std::ostream& out,
                            const AttributionReport& report);
void write_attribution_json_file(const std::string& path,
                                 const AttributionReport& report);

}  // namespace fuse::sched
