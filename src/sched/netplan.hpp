// Network-level scheduler: the Plan-of-plans above the per-layer
// MappingPlan IR.
//
//   NetworkModel --plan_network()--> NetworkPlan --roofline/timeline/
//                                                  execute/trace
//
// plan_network lowers every layer once, runs a liveness analysis over the
// inter-layer activations, assigns SRAM regions (double-buffered fold
// staging + resident activation buffers) under MemoryConfig::sram_bytes,
// and — in the fused schedule mode — pairs each depthwise/FuSe producer
// with its pointwise consumer and interleaves their folds so a pointwise
// row-stripe launches as soon as the producer folds feeding its input
// positions have landed. Fusion removes the pair's redundant DRAM traffic
// (the producer's output never leaves SRAM; the consumer's input is never
// re-streamed from DRAM), which is what plan_roofline charges; compute
// cycles are NEVER changed — the schedule only reorders whole folds, so
// total_cycles is byte-for-byte the sum of the per-layer analytic
// latencies in both modes (FUSE_CHECKed at plan time). That identity is
// what keeps every golden byte-identical in the default per-layer mode and
// makes the fused roofline provably never slower:
//   max(c1 + c2, ceil((B1' + B2')/bw)) <= max(c1, ceil(B1/bw))
//                                       + max(c2, ceil(B2/bw))
// for B1' <= B1, B2' <= B2 (ceil is subadditive, max is monotone).
//
// docs/scheduler.md walks the IR, the legality rules, and the SRAM
// planning algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/latency.hpp"
#include "systolic/mapping.hpp"

namespace fuse::sched {

/// Process-wide schedule mode, mirroring the kernel/sim backend dispatch:
/// defaults to per-layer (every golden unchanged), overridable with
/// FUSE_SCHED_MODE=fused|per-layer or --sched-mode on every bench.
enum class SchedMode {
  kPerLayer,  // layers cost their full load/flush traffic, run serially
  kFused,     // legal dw/FuSe->pw pairs share SRAM and interleave folds
};

/// "per-layer" / "fused".
const char* sched_mode_name(SchedMode mode);

/// Parses "per-layer"/"per_layer"/"fused"; returns false on unknown names.
bool parse_sched_mode(const std::string& name, SchedMode* out);

/// The process-wide mode (first call reads FUSE_SCHED_MODE; unknown values
/// fall back to per-layer with a stderr note).
SchedMode sched_mode();
void set_sched_mode(SchedMode mode);

/// One inter-layer activation tensor with its SRAM placement. `producer`
/// is the index into model.layers whose output this is (kNetworkInput for
/// the network input); the buffer is live over the on-array step interval
/// [first_step, last_step] (steps index the on-array layer order).
struct ActivationBuffer {
  static constexpr std::size_t kNetworkInput =
      static_cast<std::size_t>(-1);

  std::size_t producer = kNetworkInput;
  std::size_t first_step = 0;
  std::size_t last_step = 0;
  std::uint64_t bytes = 0;
  std::uint64_t offset = 0;  // SRAM byte offset when resident
  bool spilled = false;      // did not fit: lives in DRAM instead
};

/// One fused producer(s)->consumer group and the DRAM traffic it removes:
/// the producer outputs are consumed from SRAM (never flushed), and the
/// consumer's input is served from SRAM (never re-streamed per col-fold).
/// A depthwise -> pointwise pair has one producer; a FuSe stage fuses as a
/// {row, col} -> pointwise triple (`producer2` set) because the pointwise
/// consumes the concatenation of both 1D branches.
struct FusedPair {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t producer = 0;     // index into model.layers
  std::size_t producer2 = kNone;  // second branch of a FuSe triple
  std::size_t consumer = 0;
  std::uint64_t saved_output_bytes = 0;  // producer output flushes removed
  std::uint64_t saved_input_bytes = 0;   // consumer input loads removed
};

/// One contiguous span of array time given to one layer's folds. Per-layer
/// schedules have exactly one segment per on-array layer; fused pairs
/// alternate producer/consumer segments (`fused` set on both halves).
struct ScheduleSegment {
  std::size_t layer_index = 0;  // into model.layers
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  // exclusive
  std::uint64_t folds = 0;      // array passes inside this segment
  bool fused = false;
  /// Resident SRAM during the segment: live activation buffers plus the
  /// running layer's double-buffered fold staging.
  std::uint64_t sram_bytes = 0;

  std::uint64_t duration() const { return end_cycle - start_cycle; }
};

/// The per-layer numbers the network schedule is a function of — what a
/// lowered MappingPlan costs, without the plan itself. Both cost paths
/// produce these: plan_network folds them out of real lowered plans, and
/// sched/eval_fast computes them in closed form. schedule_costs /
/// roofline_over below consume ONLY this struct, which is what makes the
/// two paths provably agree: identical LayerCosts in, identical schedule
/// and roofline out.
struct LayerCost {
  systolic::LatencyEstimate latency;
  systolic::TrafficEstimate traffic;
  /// Largest per-fold operand footprint (plan_peak_fold_bytes).
  std::uint64_t peak_fold_bytes = 0;
  /// False for glue ops (pool/activation/add) that never touch the array.
  bool on_array = false;
};

/// The schedule-level decisions derived from per-layer costs: which layers
/// run on the array, where their activations live in SRAM, and which
/// producer->consumer groups fuse. Everything except the segment timeline
/// of a full NetworkPlan.
struct CostSchedule {
  std::vector<std::size_t> on_array;
  std::vector<ActivationBuffer> buffers;
  std::vector<FusedPair> fused_pairs;
  std::uint64_t staging_bytes = 0;
};

/// Runs the liveness analysis, SRAM first-fit allocation, and (in fused
/// mode) the fusion-legality scan over per-layer costs. This is the single
/// home of the scheduler's legality rules — plan_network and the
/// closed-form evaluator both call it. Records the netplan.* pair/spill
/// counters.
CostSchedule schedule_costs(const nets::NetworkModel& model,
                            const std::vector<LayerCost>& costs,
                            const systolic::MemoryConfig& mem,
                            SchedMode mode);

/// Roofline over per-layer costs + fused pairs: each unfused layer (and
/// each fused group, as one unit with the pair's saved bytes subtracted)
/// contributes max(compute, memory). plan_roofline is this applied to a
/// NetworkPlan's own vectors.
NetworkRoofline roofline_over(const std::vector<LayerCost>& costs,
                              const std::vector<FusedPair>& pairs,
                              const systolic::MemoryConfig& mem);

/// The whole-network schedule. Per-layer vectors are parallel to
/// model.layers (glue ops carry empty plans and zero estimates).
struct NetworkPlan {
  SchedMode mode = SchedMode::kPerLayer;
  systolic::ArrayConfig cfg;
  systolic::MemoryConfig mem;

  std::vector<systolic::MappingPlan> layer_plans;
  std::vector<systolic::LatencyEstimate> layer_latency;
  std::vector<systolic::TrafficEstimate> layer_traffic;
  std::vector<std::size_t> on_array;  // layer indices with non-empty plans

  std::vector<ActivationBuffer> buffers;
  std::vector<FusedPair> fused_pairs;
  std::vector<ScheduleSegment> segments;

  /// Sum of per-layer analytic latencies — identical across modes (fold
  /// interleaving only reorders; FUSE_CHECKed in plan_network).
  std::uint64_t total_cycles = 0;
  /// 2x the largest per-fold operand footprint of any layer: the statically
  /// reserved [0, staging_bytes) region whose two halves are the
  /// current/prefetch double-buffer slots.
  std::uint64_t staging_bytes = 0;
  /// max over steps of (resident live activation bytes + the step's
  /// double-buffered staging).
  std::uint64_t sram_high_water = 0;

  /// The pair/triple that `layer_index` produces or consumes in, or
  /// nullptr.
  const FusedPair* pair_of(std::size_t layer_index) const;
};

/// Builds the schedule for one network on one array. Lowers each layer
/// exactly once; records the per-layer sched.* metrics (like
/// layer_latency would) plus the netplan.* pair/SRAM metrics.
NetworkPlan plan_network(const nets::NetworkModel& model,
                         const systolic::ArrayConfig& cfg,
                         const systolic::MemoryConfig& mem,
                         SchedMode mode);

/// Roofline over a schedule: per-layer mode charges every layer
/// max(compute, memory) independently (identical to the legacy
/// network_roofline walk); fused mode charges each fused pair as ONE unit
/// — max(c1 + c2, memory of the pair's reduced traffic) — so the bound is
/// never above the per-layer bound. memory_bound_layers counts scheduling
/// units (a fused pair is one unit).
NetworkRoofline plan_roofline(const NetworkPlan& plan);

}  // namespace fuse::sched
