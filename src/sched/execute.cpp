#include "sched/execute.hpp"

#include <algorithm>

#include "nn/kernels.hpp"
#include "systolic/mapping.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace fuse::sched {

using nn::LayerDesc;
using nn::OpKind;
using systolic::PrimitiveKind;
using systolic::PrimitiveOp;
using systolic::SimResult;
using systolic::SystolicArraySim;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// [1, C, H, W] -> [C, H, W] view copy.
Tensor squeeze_batch(const Tensor& input) {
  FUSE_CHECK(input.shape().rank() == 4 && input.shape().dim(0) == 1)
      << "execute_layer_on_array expects a batch-1 NCHW input, got "
      << input.shape().to_string();
  Tensor image(Shape{input.shape().dim(1), input.shape().dim(2),
                     input.shape().dim(3)});
  std::copy(input.data(), input.data() + image.num_elements(), image.data());
  return image;
}

/// [positions, C_out] column-major result -> [1, C_out, H, W].
Tensor positions_to_nchw(const Tensor& product, std::int64_t out_c,
                         std::int64_t out_h, std::int64_t out_w) {
  Tensor output(Shape{1, out_c, out_h, out_w});
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    for (std::int64_t pos = 0; pos < out_h * out_w; ++pos) {
      output.at(0, oc, pos / out_w, pos % out_w) = product.at(pos, oc);
    }
  }
  return output;
}

LayerExecution from_sim(SimResult result) {
  LayerExecution exec;
  exec.output = std::move(result.output);
  exec.cycles = result.cycles;
  exec.folds = result.folds;
  exec.mac_ops = result.mac_ops;
  return exec;
}

LayerExecution execute_standard_conv(const LayerDesc& layer,
                                     const PrimitiveOp& op,
                                     const Tensor& input,
                                     const Tensor& weight,
                                     SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  const Tensor patches =
      tensor::im2col(image, layer.kernel_h, layer.kernel_w, layer.stride_h,
                     layer.stride_w, layer.pad_h, layer.pad_w);
  FUSE_CHECK(op.m == patches.shape().dim(0) &&
             op.k == patches.shape().dim(1) && op.n == layer.out_c)
      << "im2col plan does not match layer " << layer.name;
  // Flatten the filter bank to [taps, C_out].
  const Tensor filters = nn::kernels::flatten_filters(weight);
  SimResult result = sim.matmul(patches, filters);
  LayerExecution exec = from_sim(std::move(result));
  exec.output =
      positions_to_nchw(exec.output, layer.out_c, layer.out_h, layer.out_w);
  return exec;
}

/// Channelwise standard conv (Fig. 3(b)): one [positions, C_in] x
/// [C_in, C_out] matmul per kernel tap, partials accumulated off-array
/// (standing in for the adder tree the mapping assumes).
LayerExecution execute_channelwise_conv(const LayerDesc& layer,
                                        const PrimitiveOp& op,
                                        const Tensor& input,
                                        const Tensor& weight,
                                        SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  const std::int64_t positions = layer.out_h * layer.out_w;
  FUSE_CHECK(op.m == positions && op.k == layer.in_c &&
             op.n == layer.out_c &&
             op.repeats == layer.kernel_h * layer.kernel_w)
      << "channelwise plan does not match layer " << layer.name;
  Tensor accum(Shape{positions, layer.out_c});
  LayerExecution exec;
  for (std::int64_t ky = 0; ky < layer.kernel_h; ++ky) {
    for (std::int64_t kx = 0; kx < layer.kernel_w; ++kx) {
      // The tap's activations: input shifted by (ky, kx), zero padded.
      Tensor activations(Shape{positions, layer.in_c});
      for (std::int64_t pos = 0; pos < positions; ++pos) {
        const std::int64_t iy =
            (pos / layer.out_w) * layer.stride_h - layer.pad_h + ky;
        const std::int64_t ix =
            (pos % layer.out_w) * layer.stride_w - layer.pad_w + kx;
        if (iy < 0 || iy >= layer.in_h || ix < 0 || ix >= layer.in_w) {
          continue;
        }
        for (std::int64_t ic = 0; ic < layer.in_c; ++ic) {
          activations.at(pos, ic) = image.at(ic, iy, ix);
        }
      }
      Tensor filters(Shape{layer.in_c, layer.out_c});
      for (std::int64_t oc = 0; oc < layer.out_c; ++oc) {
        for (std::int64_t ic = 0; ic < layer.in_c; ++ic) {
          filters.at(ic, oc) = weight.at(oc, ic, ky, kx);
        }
      }
      const SimResult result = sim.matmul(activations, filters);
      exec.cycles += result.cycles;
      exec.folds += result.folds;
      exec.mac_ops += result.mac_ops;
      for (std::int64_t i = 0; i < accum.num_elements(); ++i) {
        accum[i] += result.output[i];
      }
    }
  }
  exec.output =
      positions_to_nchw(accum, layer.out_c, layer.out_h, layer.out_w);
  return exec;
}

LayerExecution execute_depthwise(const LayerDesc& layer,
                                 const PrimitiveOp& op, const Tensor& input,
                                 const Tensor& weight,
                                 SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  FUSE_CHECK(op.m == layer.out_h * layer.out_w &&
             op.k == layer.kernel_h * layer.kernel_w && op.n == 1 &&
             op.repeats == layer.out_c)
      << "depthwise plan does not match layer " << layer.name;
  LayerExecution exec;
  exec.output = Tensor(Shape{1, layer.out_c, layer.out_h, layer.out_w});
  // One single-column matmul per channel — the §III-B mapping; channels
  // serialize on the array.
  for (std::int64_t c = 0; c < layer.in_c; ++c) {
    Tensor plane(Shape{layer.in_h, layer.in_w});
    for (std::int64_t i = 0; i < plane.num_elements(); ++i) {
      plane[i] = image[c * plane.num_elements() + i];
    }
    const Tensor patches = tensor::im2col_plane(
        plane, layer.kernel_h, layer.kernel_w, layer.stride_h,
        layer.stride_w, layer.pad_h, layer.pad_w);
    Tensor filter(Shape{layer.kernel_h * layer.kernel_w, 1});
    for (std::int64_t ky = 0; ky < layer.kernel_h; ++ky) {
      for (std::int64_t kx = 0; kx < layer.kernel_w; ++kx) {
        filter.at(ky * layer.kernel_w + kx, 0) = weight.at(c, 0, ky, kx);
      }
    }
    const SimResult result = sim.matmul(patches, filter);
    exec.cycles += result.cycles;
    exec.folds += result.folds;
    exec.mac_ops += result.mac_ops;
    for (std::int64_t pos = 0; pos < layer.out_h * layer.out_w; ++pos) {
      exec.output.at(0, c, pos / layer.out_w, pos % layer.out_w) =
          result.output.at(pos, 0);
    }
  }
  return exec;
}

LayerExecution execute_pointwise(const LayerDesc& layer,
                                 const PrimitiveOp& op, const Tensor& input,
                                 const Tensor& weight,
                                 SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  const std::int64_t positions = layer.in_h * layer.in_w;
  FUSE_CHECK(op.m == positions && op.k == layer.in_c && op.n == layer.out_c)
      << "pointwise plan does not match layer " << layer.name;
  Tensor activations(Shape{positions, layer.in_c});
  for (std::int64_t c = 0; c < layer.in_c; ++c) {
    for (std::int64_t pos = 0; pos < positions; ++pos) {
      activations.at(pos, c) = image[c * positions + pos];
    }
  }
  // [C_out, C_in, 1, 1] flattens to exactly the [C_in, C_out] operand.
  const Tensor filters = nn::kernels::flatten_filters(weight);
  SimResult result = sim.matmul(activations, filters);
  LayerExecution exec = from_sim(std::move(result));
  exec.output =
      positions_to_nchw(exec.output, layer.out_c, layer.out_h, layer.out_w);
  return exec;
}

/// Shared by the row and column branches: lays out one padded line per
/// (channel, spatial line) with the channel's 1-D kernel, runs the
/// broadcast dataflow, and scatters the outputs back to NCHW.
///
/// Stride handling mirrors the latency model (ArrayConfig's
/// strided_fuse_dense_compute rationale): whole lines along the
/// non-convolved axis are skipped (only out_h rows / out_w columns are
/// mapped), while along the convolved axis the shift-register flow
/// computes the dense output and the scatter below keeps every stride-th
/// value — so the measured cycles match the dense-compute model exactly.
LayerExecution execute_fuse(const LayerDesc& layer, const PrimitiveOp& op,
                            const Tensor& input, const Tensor& weight,
                            SystolicArraySim& sim) {
  const bool row_branch = layer.kind == OpKind::kFuseRowConv;
  const Tensor image = squeeze_batch(input);
  const std::int64_t channels = layer.in_c;
  const std::int64_t taps = row_branch ? layer.kernel_w : layer.kernel_h;
  const std::int64_t pad = row_branch ? layer.pad_w : layer.pad_h;
  const std::int64_t stride = row_branch ? layer.stride_w : layer.stride_h;
  // Stride along the line-index axis: those lines are simply not mapped.
  const std::int64_t line_stride =
      row_branch ? layer.stride_h : layer.stride_w;
  // Lines run along the convolved axis; the other axis indexes lines.
  const std::int64_t line_count_per_channel =
      row_branch ? layer.out_h : layer.out_w;
  const std::int64_t line_length = row_branch ? layer.in_w : layer.in_h;
  const std::int64_t padded = line_length + 2 * pad;

  FUSE_CHECK(op.lines == channels * line_count_per_channel &&
             op.taps == taps)
      << "fuse plan does not match layer " << layer.name;

  Tensor lines(Shape{channels * line_count_per_channel, padded});
  Tensor kernels(Shape{channels * line_count_per_channel, taps});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t l = 0; l < line_count_per_channel; ++l) {
      const std::int64_t line = c * line_count_per_channel + l;
      const std::int64_t source_line = l * line_stride;
      for (std::int64_t x = 0; x < line_length; ++x) {
        lines.at(line, x + pad) = row_branch
                                      ? image.at(c, source_line, x)
                                      : image.at(c, x, source_line);
      }
      for (std::int64_t k = 0; k < taps; ++k) {
        kernels.at(line, k) =
            row_branch ? weight.at(c, 0, 0, k) : weight.at(c, 0, k, 0);
      }
    }
  }

  LayerExecution exec;
  const std::int64_t kept = row_branch ? layer.out_w : layer.out_h;
  const std::int64_t total_lines = channels * line_count_per_channel;
  Tensor line_values(Shape{total_lines, kept});
  if (op.broadcast) {
    const SimResult result = sim.conv1d_broadcast(lines, kernels);
    exec.cycles = result.cycles;
    exec.folds = result.folds;
    exec.mac_ops = result.mac_ops;
    // Dense output along the convolved axis; keep every stride-th value.
    for (std::int64_t line = 0; line < total_lines; ++line) {
      for (std::int64_t o = 0; o < kept; ++o) {
        line_values.at(line, o) = result.output.at(line, o * stride);
      }
    }
  } else {
    // No broadcast bus: each line degrades to a serialized single-column
    // matmul (the ablation baseline the plan's no-broadcast op models).
    const std::int64_t dense = padded - taps + 1;
    FUSE_CHECK(op.line_out == dense || op.line_out == kept)
        << "fuse plan width does not match layer " << layer.name;
    // A matmul can gather strided patches directly, so only the positions
    // the plan charges for are computed.
    const std::int64_t in_step = op.line_out == dense ? 1 : stride;
    const std::int64_t read_step = op.line_out == dense ? stride : 1;
    for (std::int64_t line = 0; line < total_lines; ++line) {
      Tensor patches(Shape{op.line_out, taps});
      for (std::int64_t o = 0; o < op.line_out; ++o) {
        for (std::int64_t k = 0; k < taps; ++k) {
          patches.at(o, k) = lines.at(line, o * in_step + k);
        }
      }
      Tensor filter(Shape{taps, 1});
      for (std::int64_t k = 0; k < taps; ++k) {
        filter.at(k, 0) = kernels.at(line, k);
      }
      const SimResult result = sim.matmul(patches, filter);
      exec.cycles += result.cycles;
      exec.folds += result.folds;
      exec.mac_ops += result.mac_ops;
      for (std::int64_t o = 0; o < kept; ++o) {
        line_values.at(line, o) = result.output.at(o * read_step, 0);
      }
    }
  }
  exec.output = Tensor(Shape{1, layer.out_c, layer.out_h, layer.out_w});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t l = 0; l < line_count_per_channel; ++l) {
      const std::int64_t line = c * line_count_per_channel + l;
      for (std::int64_t o = 0; o < kept; ++o) {
        if (row_branch) {
          exec.output.at(0, c, l, o) = line_values.at(line, o);
        } else {
          exec.output.at(0, c, o, l) = line_values.at(line, o);
        }
      }
    }
  }
  return exec;
}

LayerExecution execute_fully_connected(const LayerDesc& layer,
                                       const PrimitiveOp& op,
                                       const Tensor& input,
                                       const Tensor& weight,
                                       SystolicArraySim& sim) {
  FUSE_CHECK(input.num_elements() == layer.in_c)
      << "FC input must flatten to " << layer.in_c << " features";
  FUSE_CHECK(op.m == 1 && op.k == layer.in_c && op.n == layer.out_c)
      << "FC plan does not match layer " << layer.name;
  const Tensor row = input.reshaped(Shape{1, layer.in_c});
  const Tensor filters = nn::kernels::transpose_2d(weight);
  SimResult result = sim.matmul(row, filters);
  LayerExecution exec = from_sim(std::move(result));
  exec.output = exec.output.reshaped(Shape{1, layer.out_c, 1, 1});
  return exec;
}

}  // namespace

LayerExecution execute_layer_on_array(const LayerDesc& layer,
                                      const Tensor& input,
                                      const Tensor& weight,
                                      const systolic::ArrayConfig& cfg) {
  // The same lowering the analytic model folds over drives the execution:
  // the plan picks the primitive, the layer only supplies the data layout.
  const systolic::MappingPlan plan = systolic::lower(layer, cfg);
  FUSE_CHECK(!plan.ops.empty() && layer.kind != OpKind::kGroupedConv)
      << "layer kind " << nn::op_kind_name(layer.kind)
      << " does not execute on the array (layer " << layer.name << ")";
  const PrimitiveOp& op = plan.ops.front();
  SystolicArraySim sim(cfg);
  switch (op.kind) {
    case PrimitiveKind::kMatmulTile:
      return layer.kind == OpKind::kFullyConnected
                 ? execute_fully_connected(layer, op, input, weight, sim)
                 : execute_pointwise(layer, op, input, weight, sim);
    case PrimitiveKind::kIm2colTile:
      return layer.kind == OpKind::kDepthwiseConv
                 ? execute_depthwise(layer, op, input, weight, sim)
                 : execute_standard_conv(layer, op, input, weight, sim);
    case PrimitiveKind::kChannelwiseTile:
      return execute_channelwise_conv(layer, op, input, weight, sim);
    case PrimitiveKind::kFuse1DLine:
      return execute_fuse(layer, op, input, weight, sim);
  }
  FUSE_CHECK(false) << "unknown primitive kind for layer " << layer.name;
  return {};
}

NetworkExecution execute_network_on_array(
    const nets::NetworkModel& model,
    const std::vector<tensor::Tensor>& weights, const Tensor& input,
    const NetworkPlan& plan, const systolic::ArrayConfig& cfg) {
  FUSE_CHECK(weights.size() == model.layers.size())
      << "execute_network_on_array needs one weight entry per layer";
  FUSE_CHECK(plan.layer_plans.size() == model.layers.size())
      << "NetworkPlan does not match the model";
  FUSE_CHECK(plan.on_array.size() == model.layers.size())
      << "execute_network_on_array requires every layer on-array "
         "(pool/add glue cannot thread the flat activation chain)";

  // The schedule orders folds, not arithmetic: executing in layer order
  // computes the same values the interleaved schedule would (a consumer
  // stripe only ever reads producer outputs that have already landed),
  // which is why fused and per-layer modes are bit-identical.
  NetworkExecution exec;
  Tensor activation = input;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    LayerExecution layer_exec = execute_layer_on_array(
        model.layers[i], activation, weights[i], cfg);
    exec.cycles += layer_exec.cycles;
    exec.folds += layer_exec.folds;
    exec.mac_ops += layer_exec.mac_ops;
    activation = std::move(layer_exec.output);
  }
  exec.output = std::move(activation);
  if (!cfg.overlap_fold_drain) {
    // Without drain overlap the analytic model and the simulator share
    // the same per-fold accounting, so the schedule's cycle axis must be
    // what the simulated execution measured.
    FUSE_CHECK(exec.cycles == plan.total_cycles)
        << "executed cycles " << exec.cycles
        << " diverged from the schedule total " << plan.total_cycles;
  }
  return exec;
}

}  // namespace fuse::sched
