#include "sched/execute.hpp"

#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace fuse::sched {

using nn::LayerDesc;
using nn::OpKind;
using systolic::SimResult;
using systolic::SystolicArraySim;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// [1, C, H, W] -> [C, H, W] view copy.
Tensor squeeze_batch(const Tensor& input) {
  FUSE_CHECK(input.shape().rank() == 4 && input.shape().dim(0) == 1)
      << "execute_layer_on_array expects a batch-1 NCHW input, got "
      << input.shape().to_string();
  Tensor image(Shape{input.shape().dim(1), input.shape().dim(2),
                     input.shape().dim(3)});
  for (std::int64_t i = 0; i < image.num_elements(); ++i) {
    image[i] = input[i];
  }
  return image;
}

/// [positions, C_out] column-major result -> [1, C_out, H, W].
Tensor positions_to_nchw(const Tensor& product, std::int64_t out_c,
                         std::int64_t out_h, std::int64_t out_w) {
  Tensor output(Shape{1, out_c, out_h, out_w});
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    for (std::int64_t pos = 0; pos < out_h * out_w; ++pos) {
      output.at(0, oc, pos / out_w, pos % out_w) = product.at(pos, oc);
    }
  }
  return output;
}

LayerExecution from_sim(SimResult result) {
  LayerExecution exec;
  exec.output = std::move(result.output);
  exec.cycles = result.cycles;
  exec.folds = result.folds;
  exec.mac_ops = result.mac_ops;
  return exec;
}

LayerExecution execute_standard_conv(const LayerDesc& layer,
                                     const Tensor& input,
                                     const Tensor& weight,
                                     SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  const Tensor patches =
      tensor::im2col(image, layer.kernel_h, layer.kernel_w, layer.stride_h,
                     layer.stride_w, layer.pad_h, layer.pad_w);
  // Flatten the filter bank to [taps, C_out].
  const std::int64_t taps =
      layer.in_c * layer.kernel_h * layer.kernel_w;
  Tensor filters(Shape{taps, layer.out_c});
  for (std::int64_t oc = 0; oc < layer.out_c; ++oc) {
    std::int64_t t = 0;
    for (std::int64_t ic = 0; ic < layer.in_c; ++ic) {
      for (std::int64_t ky = 0; ky < layer.kernel_h; ++ky) {
        for (std::int64_t kx = 0; kx < layer.kernel_w; ++kx) {
          filters.at(t++, oc) = weight.at(oc, ic, ky, kx);
        }
      }
    }
  }
  SimResult result = sim.matmul(patches, filters);
  LayerExecution exec = from_sim(std::move(result));
  exec.output =
      positions_to_nchw(exec.output, layer.out_c, layer.out_h, layer.out_w);
  return exec;
}

LayerExecution execute_depthwise(const LayerDesc& layer, const Tensor& input,
                                 const Tensor& weight,
                                 SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  LayerExecution exec;
  exec.output = Tensor(Shape{1, layer.out_c, layer.out_h, layer.out_w});
  // One single-column matmul per channel — the §III-B mapping; channels
  // serialize on the array.
  for (std::int64_t c = 0; c < layer.in_c; ++c) {
    Tensor plane(Shape{layer.in_h, layer.in_w});
    for (std::int64_t i = 0; i < plane.num_elements(); ++i) {
      plane[i] = image[c * plane.num_elements() + i];
    }
    const Tensor patches = tensor::im2col_plane(
        plane, layer.kernel_h, layer.kernel_w, layer.stride_h,
        layer.stride_w, layer.pad_h, layer.pad_w);
    Tensor filter(Shape{layer.kernel_h * layer.kernel_w, 1});
    for (std::int64_t ky = 0; ky < layer.kernel_h; ++ky) {
      for (std::int64_t kx = 0; kx < layer.kernel_w; ++kx) {
        filter.at(ky * layer.kernel_w + kx, 0) = weight.at(c, 0, ky, kx);
      }
    }
    const SimResult result = sim.matmul(patches, filter);
    exec.cycles += result.cycles;
    exec.folds += result.folds;
    exec.mac_ops += result.mac_ops;
    for (std::int64_t pos = 0; pos < layer.out_h * layer.out_w; ++pos) {
      exec.output.at(0, c, pos / layer.out_w, pos % layer.out_w) =
          result.output.at(pos, 0);
    }
  }
  return exec;
}

LayerExecution execute_pointwise(const LayerDesc& layer, const Tensor& input,
                                 const Tensor& weight,
                                 SystolicArraySim& sim) {
  const Tensor image = squeeze_batch(input);
  const std::int64_t positions = layer.in_h * layer.in_w;
  Tensor activations(Shape{positions, layer.in_c});
  for (std::int64_t c = 0; c < layer.in_c; ++c) {
    for (std::int64_t pos = 0; pos < positions; ++pos) {
      activations.at(pos, c) = image[c * positions + pos];
    }
  }
  Tensor filters(Shape{layer.in_c, layer.out_c});
  for (std::int64_t oc = 0; oc < layer.out_c; ++oc) {
    for (std::int64_t ic = 0; ic < layer.in_c; ++ic) {
      filters.at(ic, oc) = weight.at(oc, ic, 0, 0);
    }
  }
  SimResult result = sim.matmul(activations, filters);
  LayerExecution exec = from_sim(std::move(result));
  exec.output =
      positions_to_nchw(exec.output, layer.out_c, layer.out_h, layer.out_w);
  return exec;
}

/// Shared by the row and column branches: lays out one padded line per
/// (channel, spatial line) with the channel's 1-D kernel, runs the
/// broadcast dataflow, and scatters the outputs back to NCHW.
///
/// Stride handling mirrors the latency model (ArrayConfig's
/// strided_fuse_dense_compute rationale): whole lines along the
/// non-convolved axis are skipped (only out_h rows / out_w columns are
/// mapped), while along the convolved axis the shift-register flow
/// computes the dense output and the scatter below keeps every stride-th
/// value — so the measured cycles match the dense-compute model exactly.
LayerExecution execute_fuse(const LayerDesc& layer, const Tensor& input,
                            const Tensor& weight, SystolicArraySim& sim) {
  const bool row_branch = layer.kind == OpKind::kFuseRowConv;
  const Tensor image = squeeze_batch(input);
  const std::int64_t channels = layer.in_c;
  const std::int64_t taps = row_branch ? layer.kernel_w : layer.kernel_h;
  const std::int64_t pad = row_branch ? layer.pad_w : layer.pad_h;
  const std::int64_t stride = row_branch ? layer.stride_w : layer.stride_h;
  // Stride along the line-index axis: those lines are simply not mapped.
  const std::int64_t line_stride =
      row_branch ? layer.stride_h : layer.stride_w;
  // Lines run along the convolved axis; the other axis indexes lines.
  const std::int64_t line_count_per_channel =
      row_branch ? layer.out_h : layer.out_w;
  const std::int64_t line_length = row_branch ? layer.in_w : layer.in_h;
  const std::int64_t padded = line_length + 2 * pad;

  Tensor lines(Shape{channels * line_count_per_channel, padded});
  Tensor kernels(Shape{channels * line_count_per_channel, taps});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t l = 0; l < line_count_per_channel; ++l) {
      const std::int64_t line = c * line_count_per_channel + l;
      const std::int64_t source_line = l * line_stride;
      for (std::int64_t x = 0; x < line_length; ++x) {
        lines.at(line, x + pad) = row_branch
                                      ? image.at(c, source_line, x)
                                      : image.at(c, x, source_line);
      }
      for (std::int64_t k = 0; k < taps; ++k) {
        kernels.at(line, k) =
            row_branch ? weight.at(c, 0, 0, k) : weight.at(c, 0, k, 0);
      }
    }
  }

  SimResult result = sim.conv1d_broadcast(lines, kernels);
  LayerExecution exec;
  exec.cycles = result.cycles;
  exec.folds = result.folds;
  exec.mac_ops = result.mac_ops;
  exec.output = Tensor(Shape{1, layer.out_c, layer.out_h, layer.out_w});
  // Dense output along the convolved axis; keep every stride-th value.
  const std::int64_t kept = row_branch ? layer.out_w : layer.out_h;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t l = 0; l < line_count_per_channel; ++l) {
      const std::int64_t line = c * line_count_per_channel + l;
      for (std::int64_t o = 0; o < kept; ++o) {
        const float value = result.output.at(line, o * stride);
        if (row_branch) {
          exec.output.at(0, c, l, o) = value;
        } else {
          exec.output.at(0, c, o, l) = value;
        }
      }
    }
  }
  return exec;
}

LayerExecution execute_fully_connected(const LayerDesc& layer,
                                       const Tensor& input,
                                       const Tensor& weight,
                                       SystolicArraySim& sim) {
  FUSE_CHECK(input.num_elements() == layer.in_c)
      << "FC input must flatten to " << layer.in_c << " features";
  const Tensor row = input.reshaped(Shape{1, layer.in_c});
  Tensor filters(Shape{layer.in_c, layer.out_c});
  for (std::int64_t o = 0; o < layer.out_c; ++o) {
    for (std::int64_t i = 0; i < layer.in_c; ++i) {
      filters.at(i, o) = weight.at(o, i);
    }
  }
  SimResult result = sim.matmul(row, filters);
  LayerExecution exec = from_sim(std::move(result));
  exec.output = exec.output.reshaped(Shape{1, layer.out_c, 1, 1});
  return exec;
}

}  // namespace

LayerExecution execute_layer_on_array(const LayerDesc& layer,
                                      const Tensor& input,
                                      const Tensor& weight,
                                      const systolic::ArrayConfig& cfg) {
  SystolicArraySim sim(cfg);
  switch (layer.kind) {
    case OpKind::kStandardConv:
      return execute_standard_conv(layer, input, weight, sim);
    case OpKind::kDepthwiseConv:
      return execute_depthwise(layer, input, weight, sim);
    case OpKind::kPointwiseConv:
      return execute_pointwise(layer, input, weight, sim);
    case OpKind::kFuseRowConv:
    case OpKind::kFuseColConv:
      return execute_fuse(layer, input, weight, sim);
    case OpKind::kFullyConnected:
      return execute_fully_connected(layer, input, weight, sim);
    case OpKind::kGroupedConv:
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      FUSE_CHECK(false) << "layer kind " << nn::op_kind_name(layer.kind)
                        << " does not execute on the array (layer "
                        << layer.name << ")";
  }
  return {};
}

}  // namespace fuse::sched
