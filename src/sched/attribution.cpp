#include "sched/attribution.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/trace_sink.hpp"

namespace fuse::sched {

using systolic::ArrayConfig;
using systolic::Dataflow;
using systolic::FoldTile;
using systolic::PrimitiveKind;
using systolic::PrimitiveOp;

namespace {

/// Per-fold component walk of one matmul-shaped repeat — the formulas of
/// systolic/cycle_model.cpp with skew/preload/drain separated from the
/// MAC-streaming window. Emits fn(split, macs) once per fold.
void matmul_fold_splits(
    std::int64_t m, std::int64_t t, std::int64_t n, const ArrayConfig& cfg,
    const std::function<void(const CycleSplit&, std::uint64_t)>& fn) {
  // Gather the fold grid first: the overlap variants treat the first
  // (preload) or last (drain) fold specially.
  std::vector<FoldTile> tiles;
  switch (cfg.dataflow) {
    case Dataflow::kOutputStationary:
      systolic::for_each_fold_tile(
          m, n, cfg, [&](const FoldTile& tile) { tiles.push_back(tile); });
      break;
    case Dataflow::kWeightStationary:
      systolic::for_each_fold_tile(
          t, n, cfg, [&](const FoldTile& tile) { tiles.push_back(tile); });
      break;
    case Dataflow::kInputStationary:
      systolic::for_each_fold_tile(
          m, t, cfg, [&](const FoldTile& tile) { tiles.push_back(tile); });
      break;
  }
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const FoldTile& tile = tiles[i];
    const bool first = i == 0;
    const bool last = i + 1 == tiles.size();
    CycleSplit split;
    std::uint64_t macs = 0;
    switch (cfg.dataflow) {
      case Dataflow::kOutputStationary:
        // (R-1)+(C-1) fill skew, T MAC cycles, R drain (last fold only
        // when drains overlap the next fold's fill); skew/drain shrink
        // with transparency.
        split.fill_drain = static_cast<std::uint64_t>(
            cfg.skew_cycles(tile.rows) + cfg.skew_cycles(tile.cols));
        split.compute = static_cast<std::uint64_t>(t);
        if (!cfg.overlap_fold_drain || last) {
          split.fill_drain +=
              static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
        }
        macs = static_cast<std::uint64_t>(tile.rows) *
               static_cast<std::uint64_t>(tile.cols) *
               static_cast<std::uint64_t>(t);
        break;
      case Dataflow::kWeightStationary:
        // T_u preload (hidden behind the previous fold's streaming when
        // double-buffered), M streaming MAC cycles, (T_u + N_u - 2)
        // propagation skew.
        if (first || !cfg.overlap_fold_drain) {
          split.fill_drain += static_cast<std::uint64_t>(tile.rows);
        }
        split.compute = static_cast<std::uint64_t>(m);
        split.fill_drain += static_cast<std::uint64_t>(
            cfg.skew_cycles(tile.rows) + cfg.skew_cycles(tile.cols));
        macs = static_cast<std::uint64_t>(m) *
               static_cast<std::uint64_t>(tile.rows) *
               static_cast<std::uint64_t>(tile.cols);
        break;
      case Dataflow::kInputStationary:
        // Symmetric to WS with the activations pinned: M_u preload, N
        // streaming, (M_u + T_u - 2) skew.
        if (first || !cfg.overlap_fold_drain) {
          split.fill_drain += static_cast<std::uint64_t>(tile.rows);
        }
        split.compute = static_cast<std::uint64_t>(n);
        split.fill_drain += static_cast<std::uint64_t>(
            cfg.skew_cycles(tile.rows) + cfg.skew_cycles(tile.cols));
        macs = static_cast<std::uint64_t>(n) *
               static_cast<std::uint64_t>(tile.rows) *
               static_cast<std::uint64_t>(tile.cols);
        break;
    }
    fn(split, macs);
  }
}

/// The broadcast FuSe 1-D wave: (C-1) input skew along the row, k
/// broadcast MAC cycles, R drain (last wave only under overlap).
void fuse1d_fold_splits(
    std::int64_t lines, std::int64_t line_out, std::int64_t k,
    const ArrayConfig& cfg,
    const std::function<void(const CycleSplit&, std::uint64_t)>& fn) {
  std::vector<FoldTile> tiles;
  systolic::for_each_fold_tile(
      lines, line_out, cfg,
      [&](const FoldTile& tile) { tiles.push_back(tile); });
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const FoldTile& tile = tiles[i];
    const bool last = i + 1 == tiles.size();
    CycleSplit split;
    split.fill_drain = static_cast<std::uint64_t>(cfg.skew_cycles(tile.cols));
    split.compute = static_cast<std::uint64_t>(k);
    if (!cfg.overlap_fold_drain || last) {
      split.fill_drain +=
          static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
    }
    fn(split, static_cast<std::uint64_t>(tile.rows) *
                  static_cast<std::uint64_t>(tile.cols) *
                  static_cast<std::uint64_t>(k));
  }
}

}  // namespace

void for_each_fold_split(
    const PrimitiveOp& op, const ArrayConfig& cfg,
    const std::function<void(const CycleSplit&, std::uint64_t)>& fn) {
  FUSE_CHECK(op.repeats >= 1) << "primitive op with repeats=" << op.repeats;
  for (std::int64_t r = 0; r < op.repeats; ++r) {
    switch (op.kind) {
      case PrimitiveKind::kMatmulTile:
      case PrimitiveKind::kIm2colTile:
      case PrimitiveKind::kChannelwiseTile:
        matmul_fold_splits(op.m, op.k, op.n, cfg, fn);
        break;
      case PrimitiveKind::kFuse1DLine:
        if (op.broadcast) {
          fuse1d_fold_splits(op.lines, op.line_out, op.taps, cfg, fn);
        } else {
          // Broadcast-less lines degrade to serialized single-column
          // matmuls (one per repeat — lower() sets repeats = lines).
          matmul_fold_splits(op.line_out, op.taps, /*n=*/1, cfg, fn);
        }
        break;
    }
  }
}

CycleSplit decompose_primitive(const PrimitiveOp& op,
                               const ArrayConfig& cfg) {
  CycleSplit split;
  std::uint64_t macs = 0;
  std::uint64_t folds = 0;
  for_each_fold_split(op, cfg,
                      [&](const CycleSplit& fold, std::uint64_t fold_macs) {
                        split += fold;
                        macs += fold_macs;
                        ++folds;
                      });
  const systolic::LatencyEstimate total = op.total();
  FUSE_CHECK(split.total() == total.cycles)
      << "attribution components (" << split.compute << " compute + "
      << split.fill_drain << " fill/drain) do not sum to the analytic "
      << total.cycles << " cycles of " << primitive_kind_name(op.kind);
  FUSE_CHECK(macs == total.mac_ops && folds == total.folds)
      << "attribution fold walk diverged from the plan fold counts for "
      << primitive_kind_name(op.kind);
  return split;
}

AttributionReport attribute_network(const NetworkPlan& plan,
                                    const nets::NetworkModel& model) {
  FUSE_CHECK(plan.layer_plans.size() == model.layers.size())
      << "attribution needs the plan built from this model";
  AttributionReport report;
  report.mode = plan.mode;
  report.cfg = plan.cfg;
  report.mem = plan.mem;
  report.network = model.name;

  const std::uint64_t pe_count =
      static_cast<std::uint64_t>(plan.cfg.pe_count());

  // --- per-layer time + PE decomposition -------------------------------------
  report.layers.reserve(plan.on_array.size());
  for (const std::size_t idx : plan.on_array) {
    const systolic::LatencyEstimate& est = plan.layer_latency[idx];
    LayerAttribution la;
    la.layer_index = idx;
    la.name = model.layers[idx].name;
    la.op_class = classify_layer(model.layers[idx]);
    la.cycles = est.cycles;
    la.mac_ops = est.mac_ops;
    la.folds = est.folds;
    for (const PrimitiveOp& op : plan.layer_plans[idx].ops) {
      la.split += decompose_primitive(op, plan.cfg);
    }
    FUSE_CHECK(la.split.total() == est.cycles)
        << "layer '" << la.name << "' attribution (" << la.split.compute
        << " + " << la.split.fill_drain << ") != analytic latency "
        << est.cycles;
    la.pe_total = est.cycles * pe_count;
    la.pe_busy = est.mac_ops;
    const std::uint64_t pe_compute = la.split.compute * pe_count;
    FUSE_CHECK(pe_compute >= la.pe_busy)
        << "layer '" << la.name
        << "' performs more MACs than its compute windows allow";
    la.pe_idle_geometry = pe_compute - la.pe_busy;
    la.pe_idle_fill_drain = la.split.fill_drain * pe_count;
    const systolic::TrafficEstimate& traffic = plan.layer_traffic[idx];
    la.dram_bytes = traffic.total_bytes();
    la.memory_cycles = traffic.memory_cycles(plan.mem);

    report.total_cycles += la.cycles;
    report.total_split += la.split;
    report.pe_total += la.pe_total;
    report.pe_busy += la.pe_busy;
    report.pe_idle_geometry += la.pe_idle_geometry;
    report.pe_idle_fill_drain += la.pe_idle_fill_drain;
    report.by_class[static_cast<int>(la.op_class)] += la.split;
    report.layers.push_back(std::move(la));
  }
  FUSE_CHECK(report.total_cycles == plan.total_cycles)
      << "attributed layer cycles " << report.total_cycles
      << " != schedule total " << plan.total_cycles;
  FUSE_CHECK(report.total_split.total() == plan.total_cycles)
      << "attribution categories do not sum to the schedule total";
  FUSE_CHECK(report.pe_busy + report.pe_idle_geometry +
                 report.pe_idle_fill_drain ==
             report.pe_total)
      << "PE-cycle attribution does not sum to cycles x PEs";

  // --- roofline scheduling units (mirrors plan_roofline's walk) --------------
  std::vector<bool> consumed(plan.layer_latency.size(), false);
  for (const FusedPair& pair : plan.fused_pairs) {
    if (pair.producer2 != FusedPair::kNone) {
      consumed[pair.producer2] = true;
    }
    consumed[pair.consumer] = true;
  }
  for (std::size_t i = 0; i < plan.layer_latency.size(); ++i) {
    if (consumed[i]) {
      continue;
    }
    const FusedPair* pair = plan.pair_of(i);
    UnitAttribution unit;
    unit.layer_indices.push_back(i);
    unit.name = model.layers[i].name;
    unit.compute_cycles = plan.layer_latency[i].cycles;
    systolic::TrafficEstimate traffic = plan.layer_traffic[i];
    if (pair != nullptr && pair->producer == i) {
      unit.fused = true;
      if (pair->producer2 != FusedPair::kNone) {
        unit.layer_indices.push_back(pair->producer2);
        unit.compute_cycles += plan.layer_latency[pair->producer2].cycles;
        traffic += plan.layer_traffic[pair->producer2];
      }
      unit.layer_indices.push_back(pair->consumer);
      unit.compute_cycles += plan.layer_latency[pair->consumer].cycles;
      traffic.output_bytes -= pair->saved_output_bytes;
      traffic += plan.layer_traffic[pair->consumer];
      traffic.input_bytes -= pair->saved_input_bytes;
      unit.name += " +" + std::to_string(unit.layer_indices.size() - 1);
    }
    unit.memory_cycles = traffic.memory_cycles(plan.mem);
    unit.dram_bytes = traffic.total_bytes();
    unit.dram_stall_cycles = unit.memory_cycles > unit.compute_cycles
                                 ? unit.memory_cycles - unit.compute_cycles
                                 : 0;
    unit.bound_cycles = unit.compute_cycles + unit.dram_stall_cycles;
    unit.memory_bound =
        unit.memory_cycles > unit.compute_cycles && unit.compute_cycles > 0;
    report.total_dram_stall += unit.dram_stall_cycles;
    report.bound_cycles += unit.bound_cycles;
    if (unit.bound_cycles > 0) {  // glue layers contribute nothing
      report.units.push_back(std::move(unit));
    }
  }
  const NetworkRoofline roofline = plan_roofline(plan);
  FUSE_CHECK(report.bound_cycles == roofline.bound_cycles)
      << "attributed roofline bound " << report.bound_cycles
      << " != plan_roofline " << roofline.bound_cycles;
  FUSE_CHECK(report.bound_cycles ==
             report.total_cycles + report.total_dram_stall)
      << "DRAM stall attribution does not close the roofline gap";

  // --- per-segment shares of the layer decompositions ------------------------
  // The schedule only reorders whole folds and preserves each layer's
  // internal fold order, so segment k of a layer covers the next
  // `seg.folds` folds of the layer's canonical walk.
  std::vector<std::vector<std::size_t>> layer_segments(
      plan.layer_plans.size());
  for (std::size_t s = 0; s < plan.segments.size(); ++s) {
    layer_segments[plan.segments[s].layer_index].push_back(s);
  }
  report.segments.resize(plan.segments.size());
  for (const std::size_t idx : plan.on_array) {
    const std::vector<std::size_t>& segs = layer_segments[idx];
    if (segs.empty()) {
      continue;  // plans without segments (not scheduled on the array)
    }
    std::size_t cursor = 0;  // index into segs
    std::uint64_t taken = 0;  // folds consumed by segs[cursor]
    CycleSplit layer_sum;
    for (const PrimitiveOp& op : plan.layer_plans[idx].ops) {
      for_each_fold_split(
          op, plan.cfg,
          [&](const CycleSplit& fold, std::uint64_t fold_macs) {
            while (cursor < segs.size() &&
                   taken >= plan.segments[segs[cursor]].folds) {
              ++cursor;
              taken = 0;
            }
            FUSE_CHECK(cursor < segs.size())
                << "layer '" << model.layers[idx].name
                << "' has more folds than its schedule segments cover";
            SegmentAttribution& sa = report.segments[segs[cursor]];
            sa.segment_index = segs[cursor];
            sa.layer_index = idx;
            sa.split += fold;
            sa.mac_ops += fold_macs;
            layer_sum += fold;
            ++taken;
          });
    }
    // Every segment fully consumed, and the segment shares reproduce the
    // layer's own decomposition exactly.
    FUSE_CHECK(cursor + 1 >= segs.size())
        << "layer '" << model.layers[idx].name
        << "' schedule segments cover more folds than the layer has";
    FUSE_CHECK(layer_sum.total() == plan.layer_latency[idx].cycles)
        << "segment attribution of '" << model.layers[idx].name
        << "' does not sum to its analytic latency";
  }
  return report;
}

namespace {

void write_split_fields(std::ostream& out, const CycleSplit& split) {
  out << "\"compute_cycles\": " << split.compute
      << ", \"fill_drain_cycles\": " << split.fill_drain;
}

}  // namespace

void write_attribution_json(std::ostream& out,
                            const AttributionReport& report) {
  out << "{\n  \"schema\": 1,\n";
  out << "  \"network\": \"" << util::json_escape(report.network)
      << "\",\n";
  out << "  \"sched_mode\": \"" << sched_mode_name(report.mode) << "\",\n";
  out << "  \"array\": \"" << util::json_escape(report.cfg.to_string())
      << "\",\n";
  out << "  \"dataflow\": \"" << systolic::dataflow_name(report.cfg.dataflow)
      << "\",\n";
  out << "  \"dram_bytes_per_cycle\": "
      << util::fixed(report.mem.dram_bytes_per_cycle, 2) << ",\n";
  out << "  \"layers\": [";
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const LayerAttribution& la = report.layers[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << util::json_escape(la.name) << "\", \"class\": \""
        << operator_class_name(la.op_class) << "\", \"cycles\": "
        << la.cycles << ", ";
    write_split_fields(out, la.split);
    out << ", \"mac_ops\": " << la.mac_ops << ", \"folds\": " << la.folds
        << ", \"pe_busy\": " << la.pe_busy
        << ", \"pe_idle_geometry\": " << la.pe_idle_geometry
        << ", \"pe_idle_fill_drain\": " << la.pe_idle_fill_drain
        << ", \"dram_bytes\": " << la.dram_bytes
        << ", \"memory_cycles\": " << la.memory_cycles
        << ", \"occupancy\": " << util::fixed(la.occupancy(), 6)
        << ", \"operational_intensity\": "
        << util::fixed(la.operational_intensity(), 4)
        << ", \"cycles_per_mac\": " << util::fixed(la.cycles_per_mac(), 6)
        << "}";
  }
  out << (report.layers.empty() ? "" : "\n  ") << "],\n";
  out << "  \"units\": [";
  for (std::size_t i = 0; i < report.units.size(); ++i) {
    const UnitAttribution& unit = report.units[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << util::json_escape(unit.name) << "\", \"fused\": "
        << (unit.fused ? "true" : "false")
        << ", \"compute_cycles\": " << unit.compute_cycles
        << ", \"memory_cycles\": " << unit.memory_cycles
        << ", \"dram_stall_cycles\": " << unit.dram_stall_cycles
        << ", \"bound_cycles\": " << unit.bound_cycles
        << ", \"dram_bytes\": " << unit.dram_bytes << ", \"memory_bound\": "
        << (unit.memory_bound ? "true" : "false") << "}";
  }
  out << (report.units.empty() ? "" : "\n  ") << "],\n";
  out << "  \"totals\": {\"cycles\": " << report.total_cycles << ", ";
  write_split_fields(out, report.total_split);
  out << ", \"dram_stall_cycles\": " << report.total_dram_stall
      << ", \"bound_cycles\": " << report.bound_cycles
      << ", \"pe_busy\": " << report.pe_busy
      << ", \"pe_idle_geometry\": " << report.pe_idle_geometry
      << ", \"pe_idle_fill_drain\": " << report.pe_idle_fill_drain
      << ", \"occupancy\": " << util::fixed(report.occupancy(), 6)
      << "},\n";
  out << "  \"by_class\": {";
  for (int cls = 0; cls < 5; ++cls) {
    out << (cls == 0 ? "\n" : ",\n") << "    \""
        << operator_class_name(static_cast<OperatorClass>(cls)) << "\": {";
    write_split_fields(out, report.by_class[cls]);
    out << "}";
  }
  out << "\n  }\n}\n";
}

void write_attribution_json_file(const std::string& path,
                                 const AttributionReport& report) {
  std::ofstream out(path);
  FUSE_CHECK(out.good()) << "cannot open attribution output file " << path;
  write_attribution_json(out, report);
}

}  // namespace fuse::sched
