// Execution timeline: when each layer occupies the array.
//
// SCALE-Sim's hallmark output is a cycle-accurate trace; this is the
// layer-granularity equivalent for our model. Layers run back-to-back (the
// array processes one operator at a time, per the paper's methodology), so
// the timeline is a contiguous sequence of [start, end) intervals that
// tests check against network_latency. Besides CSV export, an ASCII Gantt
// rendering makes the "depthwise layers own the machine" pathology visible
// at a glance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/latency.hpp"
#include "sched/netplan.hpp"

namespace fuse::sched {

struct TimelineEntry {
  std::size_t layer_index = 0;  // into model.layers
  std::string name;
  nn::OpKind kind = nn::OpKind::kStandardConv;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  // exclusive
  double utilization = 0.0;

  std::uint64_t duration() const { return end_cycle - start_cycle; }
};

struct Timeline {
  std::vector<TimelineEntry> entries;  // latency-bearing layers only
  std::uint64_t total_cycles = 0;
};

/// Builds the timeline for one network on one array (per-layer schedule —
/// equivalent to plan_timeline over a per-layer NetworkPlan).
Timeline network_timeline(const NetworkModel& model, const ArrayConfig& cfg);

/// Timeline view of a NetworkPlan. Per-layer plans give one entry per
/// latency-bearing layer (identical to network_timeline); fused plans
/// merge each fused pair into ONE entry spanning the interleaved region,
/// named "producer+consumer" and carrying the consumer's kind, with the
/// pair's combined utilization.
Timeline plan_timeline(const NetworkPlan& plan, const NetworkModel& model);

/// Writes the timeline as CSV (layer, kind, start, end, cycles, util).
void write_timeline_csv(const Timeline& timeline, const std::string& path);

/// Renders an ASCII Gantt chart `width` characters wide. Each entry is a
/// bar of '#' proportional to its share of total cycles (minimum one
/// character), labelled with the layer kind.
std::string ascii_gantt(const Timeline& timeline, int width = 72);

}  // namespace fuse::sched
