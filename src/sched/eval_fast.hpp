// Plan-free closed-form latency/traffic evaluator.
//
// layer_latency / plan_network cost a layer by materializing its
// MappingPlan (a heap-allocated op list) and walking every fold tile.
// That walk visits ceil(a/R) * ceil(b/C) tiles — fine for one network,
// far too slow for a design-space sweep over hundreds of ArrayConfigs.
//
// This module computes the SAME numbers in closed form. A row-major fold
// grid has at most 2 distinct tile sizes per axis (the full tile and the
// edge remainder), so any per-tile cost sums as a 2x2 class
// decomposition: (na-1)(nb-1) interior tiles, nb-1 / na-1 edge strips,
// and 1 corner. Per-fold skew/compute/drain terms, preloads, traffic
// bytes, and peak fold footprints all collapse this way, and the op
// shapes themselves are mirrored from systolic::lower() without building
// the plan.
//
// Equality contract (the repo's oracle-vs-fast idiom, like kernels PR 4
// and the simulator PR 5): for every layer and every ArrayConfig,
//
//   eval_layer_fast(l, cfg, mem).latency == plan_latency(lower(l, cfg))
//   eval_layer_fast(l, cfg, mem).traffic == plan_traffic(lower(l, cfg))
//   eval_layer_fast(l, cfg, mem).peak_fold_bytes
//                                == plan_peak_fold_bytes(lower(l, cfg))
//
// and eval_network_fast's schedule/roofline equal plan_network /
// plan_roofline — structurally, because both paths feed the identical
// LayerCosts through the shared schedule_costs / roofline_over
// (netplan.hpp). tests/test_eval_fast.cpp FUSE_CHECKs the whole grid
// (5 networks x 5 variants x dataflows x broadcast x sched modes), and
// bench_dse gates the >= 10x configs-per-second win this buys.
//
// Telemetry: the evaluator intentionally skips the per-layer mapping.* /
// sched.* counters of the plan path (not materializing the plan is the
// point); it has its own eval.hits / eval.misses counters and the
// eval.memo_hit_pct gauge on the EvalCache.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "sched/latency_cache.hpp"
#include "sched/netplan.hpp"

namespace fuse::sched {

/// Closed-form LayerCost of one layer: latency, DRAM traffic, and peak
/// per-fold SRAM footprint, equal to the plan-folded path (see the
/// equality contract above). Pure function of (layer geometry, cfg, mem).
LayerCost eval_layer_fast(const nn::LayerDesc& layer,
                          const systolic::ArrayConfig& cfg,
                          const systolic::MemoryConfig& mem);

/// Memo key: the full latency shape key (every LayerDesc/ArrayConfig field
/// the cycle model reads, including the pipelining/datapath axes) plus the
/// memory dtype width, which scales the byte fields. Bandwidth and SRAM
/// size stay OUT of the key: the cached cost stores bytes, and
/// memory_cycles / buffer placement are derived downstream.
struct EvalKey {
  LatencyKey shape;
  std::int64_t dtype_bytes = 0;

  bool operator==(const EvalKey& other) const = default;
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& key) const;
};

/// Sharded memo table for eval_layer_fast, mirroring LatencyCache's
/// locking discipline (readers share, inserts exclusive, compute outside
/// any lock — eval_layer_fast is pure, so racing double-computes are
/// harmless).
class EvalCache {
 public:
  LayerCost get_or_compute(const nn::LayerDesc& layer,
                           const systolic::ArrayConfig& cfg,
                           const systolic::MemoryConfig& mem);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  /// Hit fraction in percent (0 when never queried).
  double hit_rate_pct() const;
  /// Writes hit_rate_pct() to the eval.memo_hit_pct gauge (kept off the
  /// lookup hot path — call once per sweep, not per layer).
  void publish_hit_rate() const;
  std::size_t entries() const;
  void clear();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<EvalKey, LayerCost, EvalKeyHash> map;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Whole-network closed-form evaluation: per-layer costs plus the shared
/// schedule (SRAM liveness + fusion legality) and roofline.
struct NetworkEval {
  std::vector<LayerCost> layers;  // parallel to model.layers
  /// Sum of per-layer analytic latencies — equals NetworkPlan::total_cycles.
  std::uint64_t total_cycles = 0;
  CostSchedule schedule;
  NetworkRoofline roofline;
};

/// Evaluates the network without materializing any MappingPlan. With a
/// non-null cache, per-layer costs are memoized across calls (identical
/// values — eval_layer_fast is pure). The roofline equals
/// plan_roofline(plan_network(model, cfg, mem, mode)) field for field.
NetworkEval eval_network_fast(const nets::NetworkModel& model,
                              const systolic::ArrayConfig& cfg,
                              const systolic::MemoryConfig& mem,
                              SchedMode mode, EvalCache* cache = nullptr);

}  // namespace fuse::sched
