// Execute a layer ON the simulated array: real tensors in, real tensors
// out, with the cycle count measured by the PE-grid simulator rather than
// predicted by the analytic model. This is the repo's end-to-end
// verification path — tests assert, for every operator kind, that
//   execute_layer_on_array(...).output  == fuse::nn reference
//   execute_layer_on_array(...).cycles  == sched::layer_latency(...)
// (with fold-drain overlap disabled, which is what the simulator models).
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "sched/netplan.hpp"
#include "systolic/sim.hpp"
#include "tensor/tensor.hpp"

namespace fuse::sched {

/// Output and measured cost of one simulated layer.
struct LayerExecution {
  tensor::Tensor output;  // [1, C_out, H_out, W_out]
  std::uint64_t cycles = 0;
  std::uint64_t folds = 0;
  std::uint64_t mac_ops = 0;
};

/// Runs `layer` on the simulated systolic array.
///
/// input  : [1, in_c, in_h, in_w] (batch 1, as in the paper's evaluation).
/// weight : layout depends on the kind —
///   standard conv  [out_c, in_c, kh, kw]
///   depthwise      [C, 1, k, k]
///   pointwise      [out_c, in_c, 1, 1]
///   fuse row       [C, 1, 1, k]
///   fuse col       [C, 1, k, 1]
///   fully connected [out_f, in_f]
///
/// The layer is lowered through systolic::lower() and the resulting
/// MappingPlan picks the execution path — including the channelwise
/// standard-conv mapping and the serialized no-broadcast FuSe fallback —
/// so measured cycles track the analytic model for every config. Strided
/// broadcast FuSe layers execute with the dense-compute-and-discard flow
/// (the shift-register dataflow cannot skip outputs; see
/// ArrayConfig::strided_fuse_dense_compute), so their measured cycles
/// match the default latency model. Glue ops (pool/activation/add) and
/// grouped convs do not run on the array and are rejected.
LayerExecution execute_layer_on_array(const nn::LayerDesc& layer,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& weight,
                                      const systolic::ArrayConfig& cfg);

/// Output and measured cost of one simulated whole-network inference.
struct NetworkExecution {
  tensor::Tensor output;
  std::uint64_t cycles = 0;
  std::uint64_t folds = 0;
  std::uint64_t mac_ops = 0;
};

/// Runs a whole network on the simulated array, driven by a NetworkPlan
/// (sched/netplan.hpp). Layers execute in schedule order with activations
/// flowing forward; `weights` is parallel to model.layers (entries for
/// glue ops are ignored). Every layer must be on-array executable — the
/// executor rejects models with pool/add glue, which the flat activation
/// chain cannot thread through. Fused schedules change WHICH DRAM
/// transfers happen, never the arithmetic: outputs are bit-identical
/// across modes (and across sim thread counts), which
/// tests/test_netplan.cpp pins with memcmp. With
/// cfg.overlap_fold_drain == false the measured cycles equal
/// plan.total_cycles exactly (the simulator's accounting), FUSE_CHECKed
/// here.
NetworkExecution execute_network_on_array(
    const nets::NetworkModel& model,
    const std::vector<tensor::Tensor>& weights,
    const tensor::Tensor& input, const NetworkPlan& plan,
    const systolic::ArrayConfig& cfg);

}  // namespace fuse::sched
