// Report builders behind the paper's Table I and Fig. 8. Bench binaries
// format these; tests assert their qualitative shape (who wins, by roughly
// what factor, where crossovers fall).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/attribution.hpp"
#include "sched/latency.hpp"
#include "util/table.hpp"

namespace fuse::sched {

/// One row of the reproduced Table I.
struct Table1Row {
  NetworkId network;
  NetworkVariant variant;
  std::uint64_t macs = 0;
  std::uint64_t params = 0;
  std::uint64_t cycles = 0;
  double speedup = 1.0;  // measured, vs this network's baseline

  // Paper-reported reference values (see nets::paper_table1).
  double paper_accuracy = 0.0;
  double paper_macs_millions = 0.0;
  double paper_params_millions = 0.0;
  double paper_speedup = 0.0;
};

/// All 5 networks x 5 variants on the given array (Table I / Fig. 8(a)).
std::vector<Table1Row> table1_rows(const ArrayConfig& cfg);

/// Per-depthwise-slot speedup (Fig. 8(b)). For each replaceable block:
/// cycles of the block's layers in the baseline vs the fused network.
struct SlotSpeedup {
  int slot = 0;
  std::string name;             // the baseline depthwise layer's name
  std::int64_t in_h = 0, in_w = 0, channels = 0;
  std::uint64_t baseline_cycles = 0;
  std::uint64_t fused_cycles = 0;
  double speedup = 1.0;
};
std::vector<SlotSpeedup> layerwise_speedup(NetworkId id, FuseMode mode,
                                           const ArrayConfig& cfg);

/// Speedup of a variant across array sizes (Fig. 8(d)).
struct ScalingPoint {
  std::int64_t array_size = 0;
  double speedup = 1.0;
};
std::vector<ScalingPoint> scaling_sweep(NetworkId id, NetworkVariant variant,
                                        const std::vector<std::int64_t>& sizes);

/// Per-layer attribution table: one row per on-array layer (cycles split
/// into compute vs fill/drain, PE occupancy, roofline point), a separator,
/// then the network totals row. `top_n` > 0 keeps only the top_n layers by
/// cycles (the totals row still covers everything).
util::TablePrinter attribution_layer_table(const AttributionReport& report,
                                           std::size_t top_n = 0);

/// Attributed cycles per operator class (the paper's Fig. 8(c) axis),
/// with compute/fill-drain shares — the "depthwise wastes the array"
/// argument as a table.
util::TablePrinter attribution_class_table(const AttributionReport& report);

/// Roofline scheduling units: compute vs memory cycles, the DRAM stall
/// each unit adds on top of its compute time, and the bound.
util::TablePrinter attribution_unit_table(const AttributionReport& report);

}  // namespace fuse::sched
