// Report builders behind the paper's Table I and Fig. 8. Bench binaries
// format these; tests assert their qualitative shape (who wins, by roughly
// what factor, where crossovers fall).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/latency.hpp"

namespace fuse::sched {

/// One row of the reproduced Table I.
struct Table1Row {
  NetworkId network;
  NetworkVariant variant;
  std::uint64_t macs = 0;
  std::uint64_t params = 0;
  std::uint64_t cycles = 0;
  double speedup = 1.0;  // measured, vs this network's baseline

  // Paper-reported reference values (see nets::paper_table1).
  double paper_accuracy = 0.0;
  double paper_macs_millions = 0.0;
  double paper_params_millions = 0.0;
  double paper_speedup = 0.0;
};

/// All 5 networks x 5 variants on the given array (Table I / Fig. 8(a)).
std::vector<Table1Row> table1_rows(const ArrayConfig& cfg);

/// Per-depthwise-slot speedup (Fig. 8(b)). For each replaceable block:
/// cycles of the block's layers in the baseline vs the fused network.
struct SlotSpeedup {
  int slot = 0;
  std::string name;             // the baseline depthwise layer's name
  std::int64_t in_h = 0, in_w = 0, channels = 0;
  std::uint64_t baseline_cycles = 0;
  std::uint64_t fused_cycles = 0;
  double speedup = 1.0;
};
std::vector<SlotSpeedup> layerwise_speedup(NetworkId id, FuseMode mode,
                                           const ArrayConfig& cfg);

/// Speedup of a variant across array sizes (Fig. 8(d)).
struct ScalingPoint {
  std::int64_t array_size = 0;
  double speedup = 1.0;
};
std::vector<ScalingPoint> scaling_sweep(NetworkId id, NetworkVariant variant,
                                        const std::vector<std::int64_t>& sizes);

}  // namespace fuse::sched
