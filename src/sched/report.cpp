#include "sched/report.hpp"

#include <map>

#include "sched/sweep.hpp"
#include "util/check.hpp"

namespace fuse::sched {

std::vector<Table1Row> table1_rows(const ArrayConfig& cfg) {
  // Fans the 25 (network, variant) cells across the process-wide
  // SweepEngine; results are index-ordered and bit-identical to the old
  // serial walk (test_sweep_determinism.cpp).
  return default_sweep_engine().table1_rows(cfg);
}

std::vector<SlotSpeedup> layerwise_speedup(NetworkId id, FuseMode mode,
                                           const ArrayConfig& cfg) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "layerwise_speedup needs a replacing mode";
  const NetworkModel baseline = nets::build_network(id);
  const NetworkModel fused = nets::build_network(
      id, core::uniform_modes(baseline.num_slots, mode));

  // Collect per-slot cycles and the baseline layer metadata.
  std::map<int, SlotSpeedup> slots;
  for (const nn::LayerDesc& layer : baseline.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    SlotSpeedup& s = slots[layer.fuse_slot];
    s.slot = layer.fuse_slot;
    s.baseline_cycles += layer_latency(layer, cfg).cycles;
    if (layer.kind == nn::OpKind::kDepthwiseConv) {
      s.name = layer.name;
      s.in_h = layer.in_h;
      s.in_w = layer.in_w;
      s.channels = layer.in_c;
    }
  }
  for (const nn::LayerDesc& layer : fused.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    slots[layer.fuse_slot].fused_cycles += layer_latency(layer, cfg).cycles;
  }

  std::vector<SlotSpeedup> result;
  result.reserve(slots.size());
  for (auto& [slot, s] : slots) {
    FUSE_CHECK(s.fused_cycles > 0) << "slot " << slot << " has zero cycles";
    s.speedup = static_cast<double>(s.baseline_cycles) /
                static_cast<double>(s.fused_cycles);
    result.push_back(s);
  }
  return result;
}

std::vector<ScalingPoint> scaling_sweep(
    NetworkId id, NetworkVariant variant,
    const std::vector<std::int64_t>& sizes) {
  return default_sweep_engine().scaling_sweep(id, variant, sizes);
}

}  // namespace fuse::sched
