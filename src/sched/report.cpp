#include "sched/report.hpp"

#include <map>

#include "util/check.hpp"

namespace fuse::sched {

std::vector<Table1Row> table1_rows(const ArrayConfig& cfg) {
  std::vector<Table1Row> rows;
  for (NetworkId id : nets::paper_networks()) {
    const auto paper_rows = nets::paper_table1(id);
    const VariantBuild baseline =
        build_variant(id, NetworkVariant::kBaseline, cfg);
    const std::uint64_t baseline_cycles =
        network_latency(baseline.model, cfg).total_cycles;

    for (NetworkVariant variant : core::all_network_variants()) {
      const VariantBuild build = build_variant(id, variant, cfg);
      Table1Row row;
      row.network = id;
      row.variant = variant;
      row.macs = build.model.total_macs();
      row.params = build.model.total_params();
      row.cycles = network_latency(build.model, cfg).total_cycles;
      FUSE_CHECK(row.cycles > 0) << "zero-cycle network";
      row.speedup = static_cast<double>(baseline_cycles) /
                    static_cast<double>(row.cycles);
      for (const auto& paper : paper_rows) {
        if (paper.variant == variant) {
          row.paper_accuracy = paper.imagenet_accuracy;
          row.paper_macs_millions = paper.macs_millions;
          row.paper_params_millions = paper.params_millions;
          row.paper_speedup = paper.speedup;
        }
      }
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<SlotSpeedup> layerwise_speedup(NetworkId id, FuseMode mode,
                                           const ArrayConfig& cfg) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "layerwise_speedup needs a replacing mode";
  const NetworkModel baseline = nets::build_network(id);
  const NetworkModel fused = nets::build_network(
      id, core::uniform_modes(baseline.num_slots, mode));

  // Collect per-slot cycles and the baseline layer metadata.
  std::map<int, SlotSpeedup> slots;
  for (const nn::LayerDesc& layer : baseline.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    SlotSpeedup& s = slots[layer.fuse_slot];
    s.slot = layer.fuse_slot;
    s.baseline_cycles += layer_latency(layer, cfg).cycles;
    if (layer.kind == nn::OpKind::kDepthwiseConv) {
      s.name = layer.name;
      s.in_h = layer.in_h;
      s.in_w = layer.in_w;
      s.channels = layer.in_c;
    }
  }
  for (const nn::LayerDesc& layer : fused.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    slots[layer.fuse_slot].fused_cycles += layer_latency(layer, cfg).cycles;
  }

  std::vector<SlotSpeedup> result;
  result.reserve(slots.size());
  for (auto& [slot, s] : slots) {
    FUSE_CHECK(s.fused_cycles > 0) << "slot " << slot << " has zero cycles";
    s.speedup = static_cast<double>(s.baseline_cycles) /
                static_cast<double>(s.fused_cycles);
    result.push_back(s);
  }
  return result;
}

std::vector<ScalingPoint> scaling_sweep(
    NetworkId id, NetworkVariant variant,
    const std::vector<std::int64_t>& sizes) {
  std::vector<ScalingPoint> points;
  points.reserve(sizes.size());
  for (std::int64_t size : sizes) {
    const ArrayConfig cfg = systolic::square_array(size);
    points.push_back(ScalingPoint{size, speedup_vs_baseline(id, variant, cfg)});
  }
  return points;
}

}  // namespace fuse::sched
