#include "sched/report.hpp"

#include <algorithm>
#include <map>

#include "sched/sweep.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace fuse::sched {

std::vector<Table1Row> table1_rows(const ArrayConfig& cfg) {
  // Fans the 25 (network, variant) cells across the process-wide
  // SweepEngine; results are index-ordered and bit-identical to the old
  // serial walk (test_sweep_determinism.cpp).
  return default_sweep_engine().table1_rows(cfg);
}

std::vector<SlotSpeedup> layerwise_speedup(NetworkId id, FuseMode mode,
                                           const ArrayConfig& cfg) {
  FUSE_CHECK(mode != FuseMode::kBaseline)
      << "layerwise_speedup needs a replacing mode";
  const NetworkModel baseline = nets::build_network(id);
  const NetworkModel fused = nets::build_network(
      id, core::uniform_modes(baseline.num_slots, mode));

  // Collect per-slot cycles and the baseline layer metadata.
  std::map<int, SlotSpeedup> slots;
  for (const nn::LayerDesc& layer : baseline.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    SlotSpeedup& s = slots[layer.fuse_slot];
    s.slot = layer.fuse_slot;
    s.baseline_cycles += layer_latency(layer, cfg).cycles;
    if (layer.kind == nn::OpKind::kDepthwiseConv) {
      s.name = layer.name;
      s.in_h = layer.in_h;
      s.in_w = layer.in_w;
      s.channels = layer.in_c;
    }
  }
  for (const nn::LayerDesc& layer : fused.layers) {
    if (layer.fuse_slot < 0) {
      continue;
    }
    slots[layer.fuse_slot].fused_cycles += layer_latency(layer, cfg).cycles;
  }

  std::vector<SlotSpeedup> result;
  result.reserve(slots.size());
  for (auto& [slot, s] : slots) {
    FUSE_CHECK(s.fused_cycles > 0) << "slot " << slot << " has zero cycles";
    s.speedup = static_cast<double>(s.baseline_cycles) /
                static_cast<double>(s.fused_cycles);
    result.push_back(s);
  }
  return result;
}

std::vector<ScalingPoint> scaling_sweep(
    NetworkId id, NetworkVariant variant,
    const std::vector<std::int64_t>& sizes) {
  return default_sweep_engine().scaling_sweep(id, variant, sizes);
}

namespace {

std::string percent_of(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? "-"
                    : util::fixed(100.0 * static_cast<double>(part) /
                                      static_cast<double>(whole),
                                  1) + "%";
}

}  // namespace

util::TablePrinter attribution_layer_table(const AttributionReport& report,
                                           std::size_t top_n) {
  util::TablePrinter table({"layer", "class", "cycles", "compute",
                            "fill/drain", "occupancy", "macs/byte",
                            "cy/mac"});
  std::vector<const LayerAttribution*> rows;
  rows.reserve(report.layers.size());
  for (const LayerAttribution& la : report.layers) {
    rows.push_back(&la);
  }
  if (top_n > 0 && top_n < rows.size()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const LayerAttribution* a, const LayerAttribution* b) {
                       return a->cycles > b->cycles;
                     });
    rows.resize(top_n);
  }
  for (const LayerAttribution* la : rows) {
    table.add_row({la->name, operator_class_name(la->op_class),
                   std::to_string(la->cycles),
                   percent_of(la->split.compute, la->cycles),
                   percent_of(la->split.fill_drain, la->cycles),
                   util::fixed(la->occupancy(), 3),
                   util::fixed(la->operational_intensity(), 2),
                   util::fixed(la->cycles_per_mac(), 4)});
  }
  table.add_separator();
  table.add_row({"total", "", std::to_string(report.total_cycles),
                 percent_of(report.total_split.compute, report.total_cycles),
                 percent_of(report.total_split.fill_drain,
                            report.total_cycles),
                 util::fixed(report.occupancy(), 3), "", ""});
  return table;
}

util::TablePrinter attribution_class_table(const AttributionReport& report) {
  util::TablePrinter table(
      {"class", "cycles", "share", "compute", "fill/drain"});
  for (int cls = 0; cls < 5; ++cls) {
    const CycleSplit& split = report.by_class[cls];
    if (split.total() == 0) {
      continue;
    }
    table.add_row({operator_class_name(static_cast<OperatorClass>(cls)),
                   std::to_string(split.total()),
                   percent_of(split.total(), report.total_cycles),
                   percent_of(split.compute, split.total()),
                   percent_of(split.fill_drain, split.total())});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(report.total_cycles), "100.0%",
                 percent_of(report.total_split.compute, report.total_cycles),
                 percent_of(report.total_split.fill_drain,
                            report.total_cycles)});
  return table;
}

util::TablePrinter attribution_unit_table(const AttributionReport& report) {
  util::TablePrinter table({"unit", "compute", "memory", "dram stall",
                            "bound", "dram bytes", "bound by"});
  for (const UnitAttribution& unit : report.units) {
    table.add_row({unit.name, std::to_string(unit.compute_cycles),
                   std::to_string(unit.memory_cycles),
                   std::to_string(unit.dram_stall_cycles),
                   std::to_string(unit.bound_cycles),
                   util::format_bytes(unit.dram_bytes),
                   unit.memory_bound ? "memory" : "compute"});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(report.total_cycles), "",
                 std::to_string(report.total_dram_stall),
                 std::to_string(report.bound_cycles), "", ""});
  return table;
}

}  // namespace fuse::sched
