#include "sched/sweep.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"

namespace fuse::sched {

namespace {

/// The calling thread participates in every parallel_for, so an engine
/// asked for N threads spawns N-1 workers (N <= 1 means no workers: the
/// exact serial execution).
int worker_count(int threads) {
  const int resolved =
      threads < 0 ? util::ThreadPool::hardware_threads() : threads;
  return std::max(0, resolved - 1);
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions options)
    : options_(options), pool_(worker_count(options.threads)) {}

LatencyEstimate SweepEngine::layer_latency(const LayerDesc& layer,
                                           const ArrayConfig& cfg) {
  return options_.use_cache ? cache_.get_or_compute(layer, cfg)
                            : sched::layer_latency(layer, cfg);
}

NetworkLatency SweepEngine::network_latency(const NetworkModel& model,
                                            const ArrayConfig& cfg) {
  const std::int64_t n = static_cast<std::int64_t>(model.layers.size());
  util::ScopedSpan span("sweep.network_latency");
  if (span.active()) {
    span.annotate("network", model.name);
    span.annotate("layers", static_cast<std::uint64_t>(n));
  }
  NetworkLatency result;
  result.per_layer.resize(model.layers.size());
  // Each iteration writes only its own slot; the total is reduced serially
  // in layer order afterwards -> identical for any thread count.
  pool_.parallel_for(
      n,
      [&](std::int64_t i) {
        result.per_layer[static_cast<std::size_t>(i)] =
            layer_latency(model.layers[static_cast<std::size_t>(i)], cfg);
      },
      /*grain=*/16);
  for (const LatencyEstimate& est : result.per_layer) {
    result.total_cycles += est.cycles;
  }
  return result;
}

std::uint64_t SweepEngine::network_cycles(const NetworkModel& model,
                                          const ArrayConfig& cfg) {
  return sched::network_latency(model, cfg, cache()).total_cycles;
}

VariantBuild SweepEngine::build_variant(NetworkId id, NetworkVariant variant,
                                        const ArrayConfig& cfg) {
  return sched::build_variant(id, variant, cfg, cache());
}

double SweepEngine::speedup_vs_baseline(NetworkId id, NetworkVariant variant,
                                        const ArrayConfig& cfg) {
  return sched::speedup_vs_baseline(id, variant, cfg, cache());
}

std::vector<Table1Row> SweepEngine::table1_rows(const ArrayConfig& cfg) {
  util::ScopedSpan sweep_span("sweep.table1_rows");
  const std::vector<NetworkId> networks = nets::paper_networks();
  const std::vector<NetworkVariant> variants = core::all_network_variants();
  const std::int64_t num_networks = static_cast<std::int64_t>(networks.size());
  const std::int64_t num_variants = static_cast<std::int64_t>(variants.size());

  // Phase 1: each network's baseline cycles (the speedup denominator).
  std::vector<std::uint64_t> baseline_cycles(
      static_cast<std::size_t>(num_networks), 0);
  pool_.parallel_for(num_networks, [&](std::int64_t i) {
    const NetworkId id = networks[static_cast<std::size_t>(i)];
    util::ScopedSpan span("sweep.table1.baseline");
    if (span.active()) {
      span.annotate("network", nets::network_name(id));
    }
    const VariantBuild baseline =
        build_variant(id, NetworkVariant::kBaseline, cfg);
    baseline_cycles[static_cast<std::size_t>(i)] =
        network_cycles(baseline.model, cfg);
  });

  // Phase 2: one task per (network, variant) cell, written by index so the
  // row order matches the serial walk exactly.
  std::vector<Table1Row> rows(
      static_cast<std::size_t>(num_networks * num_variants));
  pool_.parallel_for(num_networks * num_variants, [&](std::int64_t flat) {
    const std::size_t net_index = static_cast<std::size_t>(flat / num_variants);
    const NetworkId id = networks[net_index];
    const NetworkVariant variant =
        variants[static_cast<std::size_t>(flat % num_variants)];

    util::ScopedSpan span("sweep.table1.cell");
    if (span.active()) {
      span.annotate("network", nets::network_name(id));
      span.annotate("variant", core::network_variant_name(variant));
    }
    const VariantBuild build = build_variant(id, variant, cfg);
    Table1Row row;
    row.network = id;
    row.variant = variant;
    row.macs = build.model.total_macs();
    row.params = build.model.total_params();
    row.cycles = network_cycles(build.model, cfg);
    FUSE_CHECK(row.cycles > 0) << "zero-cycle network";
    row.speedup = static_cast<double>(baseline_cycles[net_index]) /
                  static_cast<double>(row.cycles);
    for (const auto& paper : nets::paper_table1(id)) {
      if (paper.variant == variant) {
        row.paper_accuracy = paper.imagenet_accuracy;
        row.paper_macs_millions = paper.macs_millions;
        row.paper_params_millions = paper.params_millions;
        row.paper_speedup = paper.speedup;
      }
    }
    rows[static_cast<std::size_t>(flat)] = row;
  });
  return rows;
}

std::vector<ScalingPoint> SweepEngine::scaling_sweep(
    NetworkId id, NetworkVariant variant,
    const std::vector<std::int64_t>& sizes) {
  std::vector<ScalingPoint> points(sizes.size());
  pool_.parallel_for(
      static_cast<std::int64_t>(sizes.size()), [&](std::int64_t i) {
        const std::size_t s = static_cast<std::size_t>(i);
        util::ScopedSpan span("sweep.scaling_point");
        if (span.active()) {
          span.annotate("network", nets::network_name(id));
          span.annotate("array_size",
                        static_cast<std::uint64_t>(sizes[s]));
        }
        const ArrayConfig cfg = systolic::square_array(sizes[s]);
        points[s] = ScalingPoint{sizes[s],
                                 speedup_vs_baseline(id, variant, cfg)};
      });
  return points;
}

SweepStats SweepEngine::stats() const {
  SweepStats stats;
  stats.threads = pool_.size() + 1;  // workers + the calling thread
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_entries = cache_.entries();
  return stats;
}

SweepEngine& default_sweep_engine() {
  static SweepEngine engine;  // hardware threads, cache on
  return engine;
}

void add_sweep_flags(util::CliFlags& flags) {
  flags.add_int("threads", -1,
                "sweep worker threads (-1 = hardware concurrency)");
  flags.add_bool("no-cache", false, "disable layer-latency memoization");
}

SweepOptions sweep_options_from_flags(const util::CliFlags& flags) {
  SweepOptions options;
  options.threads = static_cast<int>(flags.get_int("threads"));
  options.use_cache = !flags.get_bool("no-cache");
  return options;
}

std::string sweep_stats_line(const SweepEngine& engine, double wall_ms) {
  const SweepStats stats = engine.stats();
  std::ostringstream out;
  out << "sweep: " << stats.threads << " thread"
      << (stats.threads == 1 ? "" : "s") << ", cache ";
  if (engine.options().use_cache) {
    out << util::format_count(stats.cache_hits) << " hits / "
        << util::format_count(stats.cache_misses) << " misses ("
        << util::format_count(stats.cache_entries) << " shapes)";
  } else {
    out << "off";
  }
  out << ", " << util::fixed(wall_ms, 2) << " ms";
  return out.str();
}

}  // namespace fuse::sched
