#include "sched/eval_fast.hpp"

#include <algorithm>
#include <mutex>

#include "systolic/memory.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::sched {

using nn::LayerDesc;
using nn::OpKind;
using systolic::ArrayConfig;
using systolic::LatencyEstimate;
using systolic::MemoryConfig;
using systolic::TrafficEstimate;

namespace {

/// The row-major fold grid of an [a, b] operand over an R x C array,
/// described by its 2x2 tile-size classes: na x nb tiles total, where
/// every tile is (R, C) except the last row/column of the grid, which is
/// (last_a, C) / (R, last_b) / (last_a, last_b) at the corner. Any
/// per-tile cost f(rows, cols) sums in closed form as
///   (na-1)(nb-1) f(R,C) + (na-1) f(R,last_b)
/// + (nb-1) f(last_a,C) + f(last_a,last_b)
/// which is what turns the O(na*nb) fold walks into O(1).
struct FoldGrid {
  std::int64_t na = 0;
  std::int64_t nb = 0;
  std::int64_t last_a = 0;
  std::int64_t last_b = 0;

  std::uint64_t folds() const {
    return static_cast<std::uint64_t>(na) * static_cast<std::uint64_t>(nb);
  }
};

FoldGrid fold_grid(std::int64_t a, std::int64_t b, std::int64_t rows,
                   std::int64_t cols) {
  FoldGrid grid;
  grid.na = (a + rows - 1) / rows;
  grid.nb = (b + cols - 1) / cols;
  grid.last_a = a - (grid.na - 1) * rows;
  grid.last_b = b - (grid.nb - 1) * cols;
  return grid;
}

/// Sum over the grid's a-axis tile sizes of cfg.skew_cycles(size):
/// (na-1) full tiles of `rows` plus the edge remainder.
std::uint64_t sum_skew_a(const FoldGrid& g, std::int64_t rows,
                         const ArrayConfig& cfg) {
  return static_cast<std::uint64_t>(g.na - 1) *
             static_cast<std::uint64_t>(cfg.skew_cycles(rows)) +
         static_cast<std::uint64_t>(cfg.skew_cycles(g.last_a));
}

std::uint64_t sum_skew_b(const FoldGrid& g, std::int64_t cols,
                         const ArrayConfig& cfg) {
  return static_cast<std::uint64_t>(g.nb - 1) *
             static_cast<std::uint64_t>(cfg.skew_cycles(cols)) +
         static_cast<std::uint64_t>(cfg.skew_cycles(g.last_b));
}

/// Sum over the a-axis tile sizes of cfg.drain_cycles(size).
std::uint64_t sum_drain_a(const FoldGrid& g, std::int64_t rows,
                          const ArrayConfig& cfg) {
  return static_cast<std::uint64_t>(g.na - 1) *
             static_cast<std::uint64_t>(cfg.drain_cycles(rows)) +
         static_cast<std::uint64_t>(cfg.drain_cycles(g.last_a));
}

/// Closed form of matmul_latency_os: folds pay skew(r)+skew(c)+t each; the
/// drain overlaps the next fold's fill (only the row-major-last tile —
/// which has last_a rows — pays it) or every fold pays its own.
LatencyEstimate matmul_closed_os(std::int64_t m, std::int64_t t,
                                 std::int64_t n, const ArrayConfig& cfg) {
  const FoldGrid g = fold_grid(m, n, cfg.rows, cfg.cols);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.folds = g.folds();
  est.cycles = static_cast<std::uint64_t>(g.nb) * sum_skew_a(g, cfg.rows, cfg) +
               static_cast<std::uint64_t>(g.na) * sum_skew_b(g, cfg.cols, cfg) +
               est.folds * static_cast<std::uint64_t>(t);
  if (cfg.overlap_fold_drain) {
    est.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(g.last_a));
  } else {
    est.cycles += static_cast<std::uint64_t>(g.nb) * sum_drain_a(g, cfg.rows, cfg);
  }
  est.mac_ops = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(t) *
                static_cast<std::uint64_t>(n);
  return est;
}

/// Closed form of matmul_latency_ws: the [t, n] weight grid streams m
/// activation rows per fold; the preload is the first fold's used depth
/// under overlap (later preloads hide behind streaming) or every fold's
/// used depth — which telescopes to nb * t.
LatencyEstimate matmul_closed_ws(std::int64_t m, std::int64_t t,
                                 std::int64_t n, const ArrayConfig& cfg) {
  const FoldGrid g = fold_grid(t, n, cfg.rows, cfg.cols);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.folds = g.folds();
  est.cycles = est.folds * static_cast<std::uint64_t>(m) +
               static_cast<std::uint64_t>(g.nb) * sum_skew_a(g, cfg.rows, cfg) +
               static_cast<std::uint64_t>(g.na) * sum_skew_b(g, cfg.cols, cfg);
  est.cycles += cfg.overlap_fold_drain
                    ? static_cast<std::uint64_t>(std::min(t, cfg.rows))
                    : static_cast<std::uint64_t>(g.nb) *
                          static_cast<std::uint64_t>(t);
  est.mac_ops = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(t) *
                static_cast<std::uint64_t>(n);
  return est;
}

/// Closed form of matmul_latency_is (symmetric to WS with the [m, t]
/// activation grid pinned and n weight columns streaming).
LatencyEstimate matmul_closed_is(std::int64_t m, std::int64_t t,
                                 std::int64_t n, const ArrayConfig& cfg) {
  const FoldGrid g = fold_grid(m, t, cfg.rows, cfg.cols);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.folds = g.folds();
  est.cycles = est.folds * static_cast<std::uint64_t>(n) +
               static_cast<std::uint64_t>(g.nb) * sum_skew_a(g, cfg.rows, cfg) +
               static_cast<std::uint64_t>(g.na) * sum_skew_b(g, cfg.cols, cfg);
  est.cycles += cfg.overlap_fold_drain
                    ? static_cast<std::uint64_t>(std::min(m, cfg.rows))
                    : static_cast<std::uint64_t>(g.nb) *
                          static_cast<std::uint64_t>(m);
  est.mac_ops = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(t) *
                static_cast<std::uint64_t>(n);
  return est;
}

LatencyEstimate matmul_closed(std::int64_t m, std::int64_t t, std::int64_t n,
                              const ArrayConfig& cfg) {
  FUSE_CHECK(m > 0 && t > 0 && n > 0)
      << "matmul_closed(" << m << ", " << t << ", " << n << ")";
  switch (cfg.dataflow) {
    case systolic::Dataflow::kOutputStationary:
      return matmul_closed_os(m, t, n, cfg);
    case systolic::Dataflow::kWeightStationary:
      return matmul_closed_ws(m, t, n, cfg);
    case systolic::Dataflow::kInputStationary:
      return matmul_closed_is(m, t, n, cfg);
  }
  FUSE_CHECK(false) << "unknown dataflow";
  return {};
}

/// Closed form of fuse1d_latency: every fold pays skew(cols)+k; the drain
/// follows the OS overlap rule.
LatencyEstimate fuse1d_closed(std::int64_t lines, std::int64_t line_out,
                              std::int64_t k, const ArrayConfig& cfg) {
  FUSE_CHECK(lines > 0 && line_out > 0 && k > 0)
      << "fuse1d_closed(" << lines << ", " << line_out << ", " << k << ")";
  const FoldGrid g = fold_grid(lines, line_out, cfg.rows, cfg.cols);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.folds = g.folds();
  est.cycles = static_cast<std::uint64_t>(g.na) * sum_skew_b(g, cfg.cols, cfg) +
               est.folds * static_cast<std::uint64_t>(k);
  if (cfg.overlap_fold_drain) {
    est.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(g.last_a));
  } else {
    est.cycles += static_cast<std::uint64_t>(g.nb) * sum_drain_a(g, cfg.rows, cfg);
  }
  est.mac_ops = static_cast<std::uint64_t>(lines) *
                static_cast<std::uint64_t>(line_out) *
                static_cast<std::uint64_t>(k);
  return est;
}

/// unit * repeats, exactly PrimitiveOp::total().
LatencyEstimate scale_unit(const LatencyEstimate& unit, std::int64_t repeats) {
  const std::uint64_t r = static_cast<std::uint64_t>(repeats);
  LatencyEstimate est;
  est.pe_count = unit.pe_count;
  est.cycles = unit.cycles * r;
  est.folds = unit.folds * r;
  est.mac_ops = unit.mac_ops * r;
  return est;
}

/// Peak per-fold operand footprint of a matmul-shaped op — the first
/// (full-sized) tile, clamped to the operand dims; mirrors
/// plan_peak_fold_bytes.
std::uint64_t matmul_peak_bytes(std::int64_t m, std::int64_t t,
                                std::int64_t n, const ArrayConfig& cfg,
                                const MemoryConfig& mem) {
  const std::int64_t rows = std::min(m, cfg.rows);
  const std::int64_t cols = std::min(n, cfg.cols);
  return static_cast<std::uint64_t>(rows * t + t * cols + rows * cols) *
         static_cast<std::uint64_t>(mem.dtype_bytes);
}

std::uint64_t fuse1d_peak_bytes(std::int64_t lines, std::int64_t line_out,
                                std::int64_t taps, const ArrayConfig& cfg,
                                const MemoryConfig& mem) {
  const std::int64_t rows = std::min(lines, cfg.rows);
  const std::int64_t cols = std::min(line_out, cfg.cols);
  return static_cast<std::uint64_t>(rows * (cols + taps - 1) + rows * taps +
                                    rows * cols) *
         static_cast<std::uint64_t>(mem.dtype_bytes);
}

/// Traffic of a matmul-shaped op repeated `repeats` times; channelwise
/// repeats stream fresh operands per tap but the adder tree keeps the
/// output on-chip, so it leaves once (mirrors plan_traffic).
TrafficEstimate repeat_matmul_traffic(std::int64_t m, std::int64_t t,
                                      std::int64_t n, std::int64_t repeats,
                                      bool output_once,
                                      const ArrayConfig& cfg,
                                      const MemoryConfig& mem) {
  const TrafficEstimate per = systolic::matmul_traffic(m, t, n, cfg, mem);
  const std::uint64_t r = static_cast<std::uint64_t>(repeats);
  TrafficEstimate traffic;
  traffic.input_bytes = per.input_bytes * r;
  traffic.weight_bytes = per.weight_bytes * r;
  traffic.output_bytes = output_once ? per.output_bytes : per.output_bytes * r;
  return traffic;
}

/// Dense width the shift-register flow must compute along a strided line;
/// mirrors the lowering's fuse_dense_width.
std::int64_t fuse_dense_width(std::int64_t keep, std::int64_t in,
                              std::int64_t pad, std::int64_t taps,
                              std::int64_t stride, const ArrayConfig& cfg) {
  if (cfg.strided_fuse_dense_compute && stride > 1) {
    return in + 2 * pad - taps + 1;
  }
  return keep;
}

/// Cost of a matmul-shaped layer (the im2col/channelwise/matmul kinds).
LayerCost matmul_shaped_cost(std::int64_t m, std::int64_t t, std::int64_t n,
                             std::int64_t repeats, bool output_once,
                             const ArrayConfig& cfg,
                             const MemoryConfig& mem) {
  LayerCost cost;
  cost.latency = scale_unit(matmul_closed(m, t, n, cfg), repeats);
  cost.traffic = repeat_matmul_traffic(m, t, n, repeats, output_once, cfg, mem);
  cost.peak_fold_bytes = matmul_peak_bytes(m, t, n, cfg, mem);
  cost.on_array = true;
  return cost;
}

/// Cost of a FuSe 1-D stage (row or col branch).
LayerCost fuse_line_cost(std::int64_t lines, std::int64_t line_out,
                         std::int64_t line_keep, std::int64_t taps,
                         const ArrayConfig& cfg, const MemoryConfig& mem) {
  LayerCost cost;
  if (cfg.broadcast_links) {
    cost.latency = fuse1d_closed(lines, line_out, taps, cfg);
    cost.peak_fold_bytes = fuse1d_peak_bytes(lines, line_out, taps, cfg, mem);
  } else {
    // Broadcast-less fallback: each line is a serialized single-column
    // matmul (repeats = lines).
    cost.latency =
        scale_unit(matmul_closed(line_out, taps, /*n=*/1, cfg), lines);
    cost.peak_fold_bytes = matmul_peak_bytes(line_out, taps, /*n=*/1, cfg, mem);
  }
  // Window reads fold over the KEPT outputs; same traffic with or without
  // broadcast links (the ablation varies compute only).
  cost.traffic = systolic::fuse1d_traffic(lines, line_keep, taps, cfg, mem);
  cost.on_array = true;
  return cost;
}

util::Counter& eval_hit_metric() {
  static util::Counter& counter = util::metrics().counter("eval.hits");
  return counter;
}
util::Counter& eval_miss_metric() {
  static util::Counter& counter = util::metrics().counter("eval.misses");
  return counter;
}
util::Gauge& eval_hit_pct_gauge() {
  static util::Gauge& gauge = util::metrics().gauge("eval.memo_hit_pct");
  return gauge;
}

}  // namespace

LayerCost eval_layer_fast(const LayerDesc& layer, const ArrayConfig& cfg,
                          const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  const std::int64_t positions = layer.out_h * layer.out_w;
  switch (layer.kind) {
    case OpKind::kStandardConv:
      if (cfg.standard_conv_mapping ==
          systolic::StandardConvMapping::kChannelwise) {
        return matmul_shaped_cost(positions, layer.in_c, layer.out_c,
                                  /*repeats=*/layer.kernel_h * layer.kernel_w,
                                  /*output_once=*/true, cfg, mem);
      }
      return matmul_shaped_cost(positions,
                                layer.kernel_h * layer.kernel_w * layer.in_c,
                                layer.out_c, /*repeats=*/1,
                                /*output_once=*/false, cfg, mem);
    case OpKind::kGroupedConv:
      FUSE_CHECK(layer.groups > 0 && layer.in_c % layer.groups == 0 &&
                 layer.out_c % layer.groups == 0)
          << "grouped conv channels not divisible by groups for layer "
          << layer.name << " (in_c=" << layer.in_c
          << ", out_c=" << layer.out_c << ", groups=" << layer.groups << ")";
      return matmul_shaped_cost(
          positions,
          layer.kernel_h * layer.kernel_w * (layer.in_c / layer.groups),
          layer.out_c / layer.groups, /*repeats=*/layer.groups,
          /*output_once=*/false, cfg, mem);
    case OpKind::kDepthwiseConv:
      // One single-column matmul per channel — the §III-B pathology.
      return matmul_shaped_cost(positions, layer.kernel_h * layer.kernel_w,
                                /*n=*/1, /*repeats=*/layer.out_c,
                                /*output_once=*/false, cfg, mem);
    case OpKind::kPointwiseConv:
      return matmul_shaped_cost(positions, layer.in_c, layer.out_c,
                                /*repeats=*/1, /*output_once=*/false, cfg,
                                mem);
    case OpKind::kFuseRowConv:
      return fuse_line_cost(
          layer.out_c * layer.out_h,
          fuse_dense_width(layer.out_w, layer.in_w, layer.pad_w,
                           layer.kernel_w, layer.stride_w, cfg),
          layer.out_w, layer.kernel_w, cfg, mem);
    case OpKind::kFuseColConv:
      return fuse_line_cost(
          layer.out_c * layer.out_w,
          fuse_dense_width(layer.out_h, layer.in_h, layer.pad_h,
                           layer.kernel_h, layer.stride_h, cfg),
          layer.out_h, layer.kernel_h, cfg, mem);
    case OpKind::kFullyConnected:
      return matmul_shaped_cost(/*m=*/1, layer.in_c, layer.out_c,
                                /*repeats=*/1, /*output_once=*/false, cfg,
                                mem);
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      break;  // zero array cycles, no traffic
  }
  LayerCost glue;
  glue.latency.pe_count = cfg.pe_count();  // matches the empty plan's total
  glue.on_array = false;
  return glue;
}

std::size_t EvalKeyHash::operator()(const EvalKey& key) const {
  std::uint64_t hash =
      static_cast<std::uint64_t>(LatencyKeyHash{}(key.shape));
  std::uint64_t v = static_cast<std::uint64_t>(key.dtype_bytes);
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (v >> (8 * byte)) & 0xFF;
    hash *= 1099511628211ULL;  // FNV prime
  }
  return static_cast<std::size_t>(hash);
}

LayerCost EvalCache::get_or_compute(const LayerDesc& layer,
                                    const ArrayConfig& cfg,
                                    const MemoryConfig& mem) {
  EvalKey key;
  key.shape = make_latency_key(layer, cfg);
  key.dtype_bytes = mem.dtype_bytes;
  Shard& shard = shards_[EvalKeyHash{}(key) % kShards];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1);
      eval_hit_metric().add();
      return it->second;
    }
  }
  // Compute outside any lock: eval_layer_fast is pure, so a concurrent
  // miss on the same key just computes the same value.
  const LayerCost cost = eval_layer_fast(layer, cfg, mem);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.map.try_emplace(key, cost);
  }
  misses_.fetch_add(1);
  eval_miss_metric().add();
  return cost;
}

// The eval.memo_hit_pct gauge is published here rather than per lookup:
// recomputing the running percentage inside get_or_compute would cost
// more than the closed-form evaluation the cache exists to skip.
void EvalCache::publish_hit_rate() const {
  eval_hit_pct_gauge().set(static_cast<std::int64_t>(hit_rate_pct()));
}

double EvalCache::hit_rate_pct() const {
  const std::uint64_t hits = hits_.load();
  const std::uint64_t total = hits + misses_.load();
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(hits) /
                          static_cast<double>(total);
}

std::size_t EvalCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.map.clear();
  }
  hits_.store(0);
  misses_.store(0);
}

NetworkEval eval_network_fast(const nets::NetworkModel& model,
                              const ArrayConfig& cfg,
                              const MemoryConfig& mem, SchedMode mode,
                              EvalCache* cache) {
  cfg.validate();
  mem.validate();
  NetworkEval ev;
  ev.layers.reserve(model.layers.size());
  for (const LayerDesc& layer : model.layers) {
    LayerCost cost = cache != nullptr ? cache->get_or_compute(layer, cfg, mem)
                                      : eval_layer_fast(layer, cfg, mem);
    ev.total_cycles += cost.latency.cycles;
    ev.layers.push_back(std::move(cost));
  }
  ev.schedule = schedule_costs(model, ev.layers, mem, mode);
  ev.roofline = roofline_over(ev.layers, ev.schedule.fused_pairs, mem);
  return ev;
}

}  // namespace fuse::sched
