// Shape-keyed memoization of layer_latency results.
//
// MobileNet-style networks repeat layer geometries heavily (stacked
// inverted residuals at one resolution), and a sweep evaluates the same
// lowered shapes across many variants and array configs — so the analytic
// model recomputes identical closed forms thousands of times. This cache
// keys on exactly the LayerDesc / ArrayConfig fields the model reads and
// returns the memoized LatencyEstimate.
//
// Thread safety: the table is sharded by key hash; each shard is guarded
// by its own std::shared_mutex (readers share, inserts exclusive), so
// concurrent sweep workers mostly take uncontended read locks. Because
// layer_latency is a pure function of the key, a racing double-compute
// inserts the same value twice — harmless, first insert wins.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "nn/layer.hpp"
#include "systolic/config.hpp"
#include "systolic/cycle_model.hpp"

namespace fuse::sched {

/// Every LayerDesc and ArrayConfig field the analytic latency model reads,
/// flattened to integers. Excluded on purpose: layer name, activation,
/// bias/batchnorm flags, squeeze-excite/fuse-slot tags (never affect
/// cycles) and ArrayConfig::freq_mhz (converts cycles to time, does not
/// produce them).
struct LatencyKey {
  std::array<std::int64_t, 18> fields{};

  bool operator==(const LatencyKey& other) const = default;
};

LatencyKey make_latency_key(const nn::LayerDesc& layer,
                            const systolic::ArrayConfig& cfg);

/// FNV-1a over the key fields.
struct LatencyKeyHash {
  std::size_t operator()(const LatencyKey& key) const;
};

class LatencyCache {
 public:
  /// Returns the memoized estimate, computing sched::layer_latency on a
  /// miss. Safe to call concurrently.
  systolic::LatencyEstimate get_or_compute(const nn::LayerDesc& layer,
                                           const systolic::ArrayConfig& cfg);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::size_t entries() const;
  void clear();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<LatencyKey, systolic::LatencyEstimate, LatencyKeyHash>
        map;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace fuse::sched
