// SweepEngine: the parallel, memoized evaluation engine behind every
// layer x variant x array-config sweep in the repo.
//
// Two ingredients:
//   * a util::ThreadPool (work-stealing) that fans independent sweep
//     tasks — per-layer latency walks, (network, variant) builds, array
//     sizes — across worker threads, and
//   * a LatencyCache that memoizes layer_latency by shape key, so the
//     shapes MobileNet-style nets repeat (and that recur across FuSe
//     variants and sweep points) are computed once.
//
// Determinism guarantee: every parallel loop writes results into a slot
// indexed by its iteration number and reductions happen serially in index
// order afterwards, so the output is BYTE-IDENTICAL for any thread count
// (including 0/1) and with the cache on or off. layer_latency is a pure
// function of (layer geometry, array config) — memoization cannot change
// a value, only skip recomputation. tests/test_sweep_determinism.cpp and
// the differential property in tests/test_properties.cpp pin this.
#pragma once

#include <cstdint>
#include <string>

#include "sched/latency_cache.hpp"
#include "sched/report.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace fuse::sched {

struct SweepOptions {
  /// Worker threads. -1 -> util::ThreadPool::hardware_threads();
  /// 0 and 1 both execute serially (0 = no workers at all).
  int threads = -1;

  /// Memoize layer_latency results through the LatencyCache.
  bool use_cache = true;
};

/// Observability counters for bench output.
struct SweepStats {
  int threads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  /// Memoized single-layer latency (== sched::layer_latency).
  LatencyEstimate layer_latency(const LayerDesc& layer,
                                const ArrayConfig& cfg);

  /// Whole-network latency, per-layer walk fanned across the pool.
  NetworkLatency network_latency(const NetworkModel& model,
                                 const ArrayConfig& cfg);

  /// Total cycles only (serial cached walk; cheap enough to run inside
  /// other parallel tasks without nesting).
  std::uint64_t network_cycles(const NetworkModel& model,
                               const ArrayConfig& cfg);

  /// Table I: 5 networks x 5 variants, variants fanned across the pool.
  std::vector<Table1Row> table1_rows(const ArrayConfig& cfg);

  /// Fig. 8(d): one task per array size.
  std::vector<ScalingPoint> scaling_sweep(
      NetworkId id, NetworkVariant variant,
      const std::vector<std::int64_t>& sizes);

  /// Memoized variant build / speedup (see latency.hpp).
  VariantBuild build_variant(NetworkId id, NetworkVariant variant,
                             const ArrayConfig& cfg);
  double speedup_vs_baseline(NetworkId id, NetworkVariant variant,
                             const ArrayConfig& cfg);

  SweepStats stats() const;
  const SweepOptions& options() const { return options_; }
  util::ThreadPool& pool() { return pool_; }
  LatencyCache* cache() { return options_.use_cache ? &cache_ : nullptr; }

 private:
  SweepOptions options_;
  util::ThreadPool pool_;
  LatencyCache cache_;
};

/// Process-wide engine (hardware threads, cache on) that the free
/// report-builder functions (sched::table1_rows, sched::scaling_sweep)
/// run on.
SweepEngine& default_sweep_engine();

/// Registers the standard sweep flags on a bench binary:
///   --threads=N   worker threads (default -1 = hardware concurrency)
///   --no-cache    disable layer-latency memoization
void add_sweep_flags(util::CliFlags& flags);

/// Reads the flags registered by add_sweep_flags.
SweepOptions sweep_options_from_flags(const util::CliFlags& flags);

/// One-line bench footer, e.g.
/// "sweep: 8 threads, cache 512 hits / 40 misses (40 shapes), 1.23 ms".
std::string sweep_stats_line(const SweepEngine& engine, double wall_ms);

}  // namespace fuse::sched
