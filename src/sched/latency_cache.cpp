#include "sched/latency_cache.hpp"

#include <mutex>

#include "sched/latency.hpp"
#include "util/telemetry.hpp"

namespace fuse::sched {

namespace {

// Registry mirrors of the per-cache atomic stats: the per-instance
// counters feed the bench footer, these feed --stats-json across every
// cache in the process.
util::Counter& cache_hit_metric() {
  static util::Counter& counter = util::metrics().counter("cache.hits");
  return counter;
}
util::Counter& cache_miss_metric() {
  static util::Counter& counter = util::metrics().counter("cache.misses");
  return counter;
}
util::Counter& cache_eviction_metric() {
  static util::Counter& counter = util::metrics().counter("cache.evictions");
  return counter;
}

}  // namespace

LatencyKey make_latency_key(const nn::LayerDesc& layer,
                            const systolic::ArrayConfig& cfg) {
  LatencyKey key;
  key.fields = {
      static_cast<std::int64_t>(layer.kind),
      layer.in_c,
      layer.in_h,
      layer.in_w,
      layer.out_c,
      layer.out_h,
      layer.out_w,
      layer.kernel_h,
      layer.kernel_w,
      layer.stride_h,
      layer.stride_w,
      layer.pad_h,
      layer.pad_w,
      layer.groups,
      cfg.rows,
      cfg.cols,
      static_cast<std::int64_t>(cfg.dataflow),
      // Remaining config booleans + small enums packed into one slot:
      // mapping (bits 0-1), broadcast (2), overlap (3), strided-fuse (4),
      // pipelining (5-6), datapath (7-8). Datapath never moves cycle
      // counts, but keying on the FULL ArrayConfig keeps the no-alias
      // contract trivially true as fields grow (test_eval_fast pins it).
      static_cast<std::int64_t>(cfg.standard_conv_mapping) |
          (cfg.broadcast_links ? 1LL << 2 : 0) |
          (cfg.overlap_fold_drain ? 1LL << 3 : 0) |
          (cfg.strided_fuse_dense_compute ? 1LL << 4 : 0) |
          (static_cast<std::int64_t>(cfg.pipelining) << 5) |
          (static_cast<std::int64_t>(cfg.datapath) << 7),
  };
  return key;
}

std::size_t LatencyKeyHash::operator()(const LatencyKey& key) const {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (std::int64_t field : key.fields) {
    std::uint64_t v = static_cast<std::uint64_t>(field);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;  // FNV prime
    }
  }
  return static_cast<std::size_t>(hash);
}

systolic::LatencyEstimate LatencyCache::get_or_compute(
    const nn::LayerDesc& layer, const systolic::ArrayConfig& cfg) {
  const LatencyKey key = make_latency_key(layer, cfg);
  Shard& shard = shards_[LatencyKeyHash{}(key) % kShards];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1);
      cache_hit_metric().add();
      return it->second;
    }
  }
  // Compute outside any lock: layer_latency is pure, so a concurrent miss
  // on the same key just computes the same value.
  const systolic::LatencyEstimate estimate = layer_latency(layer, cfg);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.map.try_emplace(key, estimate);
  }
  misses_.fetch_add(1);
  cache_miss_metric().add();
  return estimate;
}

std::size_t LatencyCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void LatencyCache::clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    cache_eviction_metric().add(shard.map.size());
    shard.map.clear();
  }
  hits_.store(0);
  misses_.store(0);
}

}  // namespace fuse::sched
