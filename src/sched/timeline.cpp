#include "sched/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace fuse::sched {

Timeline network_timeline(const NetworkModel& model,
                          const ArrayConfig& cfg) {
  return plan_timeline(
      plan_network(model, cfg, systolic::MemoryConfig{},
                   SchedMode::kPerLayer),
      model);
}

Timeline plan_timeline(const NetworkPlan& plan,
                       const NetworkModel& model) {
  Timeline timeline;
  // Schedule segments are contiguous and in execution order; a fused
  // pair's alternating segments collapse into one merged entry.
  std::size_t i = 0;
  while (i < plan.segments.size()) {
    const ScheduleSegment& first = plan.segments[i];
    const FusedPair* pair =
        first.fused ? plan.pair_of(first.layer_index) : nullptr;
    TimelineEntry entry;
    entry.start_cycle = first.start_cycle;
    if (pair == nullptr) {
      const nn::LayerDesc& layer = model.layers[first.layer_index];
      entry.layer_index = first.layer_index;
      entry.name = layer.name;
      entry.kind = layer.kind;
      entry.end_cycle = first.end_cycle;
      entry.utilization = plan.layer_latency[first.layer_index].utilization();
      ++i;
    } else {
      // Consume every segment of this group (they are contiguous).
      std::uint64_t end = first.end_cycle;
      while (i < plan.segments.size() && plan.segments[i].fused &&
             (plan.segments[i].layer_index == pair->producer ||
              plan.segments[i].layer_index == pair->producer2 ||
              plan.segments[i].layer_index == pair->consumer)) {
        end = plan.segments[i].end_cycle;
        ++i;
      }
      const nn::LayerDesc& producer = model.layers[pair->producer];
      const nn::LayerDesc& consumer = model.layers[pair->consumer];
      LatencyEstimate combined = plan.layer_latency[pair->producer];
      entry.name = producer.name;
      if (pair->producer2 != FusedPair::kNone) {
        combined += plan.layer_latency[pair->producer2];
        entry.name += "+" + model.layers[pair->producer2].name;
      }
      combined += plan.layer_latency[pair->consumer];
      entry.layer_index = pair->producer;
      entry.name += "+" + consumer.name;
      entry.kind = consumer.kind;
      entry.end_cycle = end;
      entry.utilization = combined.utilization();
    }
    timeline.entries.push_back(std::move(entry));
  }
  timeline.total_cycles = plan.total_cycles;
  return timeline;
}

void write_timeline_csv(const Timeline& timeline, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_header(
      {"layer", "kind", "start_cycle", "end_cycle", "cycles", "util"});
  for (const TimelineEntry& entry : timeline.entries) {
    csv.write_row({entry.name, nn::op_kind_name(entry.kind),
                   std::to_string(entry.start_cycle),
                   std::to_string(entry.end_cycle),
                   std::to_string(entry.duration()),
                   util::fixed(entry.utilization, 4)});
  }
}

std::string ascii_gantt(const Timeline& timeline, int width) {
  FUSE_CHECK(width >= 16) << "gantt width too small: " << width;
  std::ostringstream out;
  if (timeline.total_cycles == 0) {
    return "(empty timeline)\n";
  }
  // Longest label for alignment, truncated to keep lines compact.
  std::size_t label_width = 0;
  for (const TimelineEntry& entry : timeline.entries) {
    label_width = std::max(label_width, entry.name.size());
  }
  label_width = std::min<std::size_t>(label_width, 36);

  for (const TimelineEntry& entry : timeline.entries) {
    std::string label = entry.name;
    if (label.size() > label_width) {
      label = "..." + label.substr(label.size() - (label_width - 3));
    }
    const double share = static_cast<double>(entry.duration()) /
                         static_cast<double>(timeline.total_cycles);
    const int bar = std::max(1, static_cast<int>(share * width + 0.5));
    out << label << std::string(label_width - label.size(), ' ') << " |"
        << std::string(static_cast<std::size_t>(bar), '#') << " "
        << util::fixed(100.0 * share, 1) << "% ("
        << nn::op_kind_name(entry.kind) << ", util "
        << util::fixed(100.0 * entry.utilization, 1) << "%)\n";
  }
  out << std::string(label_width, ' ') << " total "
      << util::with_commas(timeline.total_cycles) << " cycles\n";
  return out.str();
}

}  // namespace fuse::sched
