#include "sched/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace fuse::sched {

Timeline network_timeline(const NetworkModel& model,
                          const ArrayConfig& cfg) {
  Timeline timeline;
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const nn::LayerDesc& layer = model.layers[i];
    const LatencyEstimate est = layer_latency(layer, cfg);
    if (est.cycles == 0) {
      continue;  // glue ops occupy no array time
    }
    TimelineEntry entry;
    entry.layer_index = i;
    entry.name = layer.name;
    entry.kind = layer.kind;
    entry.start_cycle = cursor;
    entry.end_cycle = cursor + est.cycles;
    entry.utilization = est.utilization();
    cursor = entry.end_cycle;
    timeline.entries.push_back(std::move(entry));
  }
  timeline.total_cycles = cursor;
  return timeline;
}

void write_timeline_csv(const Timeline& timeline, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_header(
      {"layer", "kind", "start_cycle", "end_cycle", "cycles", "util"});
  for (const TimelineEntry& entry : timeline.entries) {
    csv.write_row({entry.name, nn::op_kind_name(entry.kind),
                   std::to_string(entry.start_cycle),
                   std::to_string(entry.end_cycle),
                   std::to_string(entry.duration()),
                   util::fixed(entry.utilization, 4)});
  }
}

std::string ascii_gantt(const Timeline& timeline, int width) {
  FUSE_CHECK(width >= 16) << "gantt width too small: " << width;
  std::ostringstream out;
  if (timeline.total_cycles == 0) {
    return "(empty timeline)\n";
  }
  // Longest label for alignment, truncated to keep lines compact.
  std::size_t label_width = 0;
  for (const TimelineEntry& entry : timeline.entries) {
    label_width = std::max(label_width, entry.name.size());
  }
  label_width = std::min<std::size_t>(label_width, 36);

  for (const TimelineEntry& entry : timeline.entries) {
    std::string label = entry.name;
    if (label.size() > label_width) {
      label = "..." + label.substr(label.size() - (label_width - 3));
    }
    const double share = static_cast<double>(entry.duration()) /
                         static_cast<double>(timeline.total_cycles);
    const int bar = std::max(1, static_cast<int>(share * width + 0.5));
    out << label << std::string(label_width - label.size(), ' ') << " |"
        << std::string(static_cast<std::size_t>(bar), '#') << " "
        << util::fixed(100.0 * share, 1) << "% ("
        << nn::op_kind_name(entry.kind) << ", util "
        << util::fixed(100.0 * entry.utilization, 1) << "%)\n";
  }
  out << std::string(label_width, ' ') << " total "
      << util::with_commas(timeline.total_cycles) << " cycles\n";
  return out.str();
}

}  // namespace fuse::sched
