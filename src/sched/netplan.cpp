#include "sched/netplan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "systolic/trace.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::sched {

using nn::LayerDesc;
using nn::OpKind;
using systolic::ArrayConfig;
using systolic::FoldTile;
using systolic::MappingPlan;
using systolic::MemoryConfig;
using systolic::PrimitiveKind;
using systolic::PrimitiveOp;

// --- process-wide mode dispatch ----------------------------------------------

const char* sched_mode_name(SchedMode mode) {
  switch (mode) {
    case SchedMode::kPerLayer:
      return "per-layer";
    case SchedMode::kFused:
      return "fused";
  }
  return "?";
}

bool parse_sched_mode(const std::string& name, SchedMode* out) {
  if (name == "per-layer" || name == "per_layer" || name == "perlayer") {
    *out = SchedMode::kPerLayer;
    return true;
  }
  if (name == "fused") {
    *out = SchedMode::kFused;
    return true;
  }
  return false;
}

namespace {

SchedMode mode_from_env() {
  const char* env = std::getenv("FUSE_SCHED_MODE");
  if (env == nullptr || env[0] == '\0') {
    return SchedMode::kPerLayer;
  }
  SchedMode mode;
  if (!parse_sched_mode(env, &mode)) {
    // Unlike the CLI flag (which hard-errors), the env var degrades
    // gracefully so a stale setting cannot brick unrelated tools.
    std::fprintf(stderr,
                 "note: FUSE_SCHED_MODE='%s' not recognized "
                 "(per-layer|fused); using per-layer\n",
                 env);
    return SchedMode::kPerLayer;
  }
  return mode;
}

std::atomic<SchedMode>& mode_state() {
  static std::atomic<SchedMode> state{mode_from_env()};
  return state;
}

}  // namespace

SchedMode sched_mode() {
  return mode_state().load(std::memory_order_relaxed);
}

void set_sched_mode(SchedMode mode) {
  mode_state().store(mode, std::memory_order_relaxed);
}

// --- NetworkPlan -------------------------------------------------------------

const FusedPair* NetworkPlan::pair_of(std::size_t layer_index) const {
  for (const FusedPair& pair : fused_pairs) {
    if (pair.producer == layer_index || pair.producer2 == layer_index ||
        pair.consumer == layer_index) {
      return &pair;
    }
  }
  return nullptr;
}

namespace {

std::uint64_t activation_bytes(std::int64_t c, std::int64_t h,
                               std::int64_t w, const MemoryConfig& mem) {
  return static_cast<std::uint64_t>(c * h * w) *
         static_cast<std::uint64_t>(mem.dtype_bytes);
}

/// Liveness-based first-fit allocation of the activation buffers into
/// [staging_bytes, sram_bytes). Buffers arrive ordered by first_step;
/// two buffers conflict iff their live step intervals intersect, in which
/// case their byte ranges must be disjoint (tests/test_netplan.cpp pins
/// exactly that invariant).
void allocate_buffers(std::vector<ActivationBuffer>& buffers,
                      std::uint64_t staging_bytes, const MemoryConfig& mem) {
  const std::uint64_t sram = static_cast<std::uint64_t>(mem.sram_bytes);
  struct Active {
    std::uint64_t offset;
    std::uint64_t bytes;
    std::size_t last_step;
  };
  std::vector<Active> active;
  static util::Counter& spilled_counter =
      util::metrics().counter("netplan.buffers_spilled");
  for (ActivationBuffer& buffer : buffers) {
    // Expire allocations whose liveness ended before this buffer starts.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const Active& a) {
                                  return a.last_step < buffer.first_step;
                                }),
                 active.end());
    if (staging_bytes + buffer.bytes > sram) {
      buffer.spilled = true;
      spilled_counter.add();
      continue;
    }
    std::sort(active.begin(), active.end(),
              [](const Active& a, const Active& b) {
                return a.offset < b.offset;
              });
    std::uint64_t candidate = staging_bytes;
    for (const Active& a : active) {
      if (candidate + buffer.bytes <= a.offset) {
        break;  // fits in the gap before this allocation
      }
      candidate = std::max(candidate, a.offset + a.bytes);
    }
    if (candidate + buffer.bytes > sram) {
      buffer.spilled = true;
      spilled_counter.add();
      continue;
    }
    buffer.offset = candidate;
    active.push_back({candidate, buffer.bytes, buffer.last_step});
  }
}

/// Resident (non-spilled) activation bytes live at on-array step `step`.
std::uint64_t resident_bytes_at(const std::vector<ActivationBuffer>& buffers,
                                std::size_t step) {
  std::uint64_t bytes = 0;
  for (const ActivationBuffer& buffer : buffers) {
    if (!buffer.spilled && buffer.first_step <= step &&
        step <= buffer.last_step) {
      bytes += buffer.bytes;
    }
  }
  return bytes;
}

/// True when every layer strictly between `from` and `to` is activation
/// glue — the only op the fused pair may carry across (it is elementwise
/// on the SRAM-resident tile). Pools and adds re-shape or merge tensors
/// and break the producer/consumer tiling correspondence.
bool only_activation_between(const nets::NetworkModel& model,
                             std::size_t from, std::size_t to) {
  for (std::size_t i = from + 1; i < to; ++i) {
    if (model.layers[i].kind != OpKind::kActivation) {
      return false;
    }
  }
  return true;
}

/// One producer fold in canonical (pass-major, row-major) order: its cycle
/// cost (pass drain tails folded into the pass-final fold) and the first
/// consumer row-stripe that needs any output position it produces.
struct ProducerFold {
  std::uint64_t cycles = 0;
  std::size_t deadline = 0;
};

/// Enumerates the depthwise producer's folds. The plan is
/// [positions, taps] x [taps, 1] repeated per channel, and the consumer
/// tiles the SAME position axis by cfg.rows, so fold (channel, row-tile i)
/// feeds exactly consumer stripe i.
void enumerate_depthwise_folds(const PrimitiveOp& op, const ArrayConfig& cfg,
                               std::vector<ProducerFold>& folds) {
  for (std::int64_t r = 0; r < op.repeats; ++r) {
    std::size_t pass_first = folds.size();
    systolic::for_each_fold_tile(op.m, /*b=*/1, cfg,
                                 [&](const FoldTile& tile) {
      ProducerFold fold;
      fold.cycles = static_cast<std::uint64_t>(
          cfg.skew_cycles(tile.rows) + cfg.skew_cycles(tile.cols) + op.k);
      if (!cfg.overlap_fold_drain) {
        fold.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
      }
      fold.deadline = static_cast<std::size_t>(tile.a0 / cfg.rows);
      folds.push_back(fold);
    });
    if (cfg.overlap_fold_drain && folds.size() > pass_first) {
      // The pass's trailing drain rides with its final fold.
      const std::int64_t last_rows =
          op.m - ((op.m - 1) / cfg.rows) * cfg.rows;
      folds.back().cycles +=
          static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
    }
  }
}

/// Enumerates a broadcast FuSe producer's folds. Lines are packed c-major
/// (line = channel * line_count + spatial index), so one fold tile spans
/// several spatial lines; its deadline is the earliest consumer stripe
/// touching any KEPT output position it produces. Strided layers compute
/// the dense width and discard — folds covering only discarded outputs get
/// deadline 0 (emitted eagerly; ordering only, the cost is unchanged).
void enumerate_fuse_folds(const LayerDesc& producer, const PrimitiveOp& op,
                          const ArrayConfig& cfg,
                          std::vector<ProducerFold>& folds) {
  const bool row_branch = producer.kind == OpKind::kFuseRowConv;
  const std::int64_t line_count =
      row_branch ? producer.out_h : producer.out_w;
  const std::int64_t kept = row_branch ? producer.out_w : producer.out_h;
  const std::int64_t stride =
      op.line_out == kept
          ? 1
          : (row_branch ? producer.stride_w : producer.stride_h);
  const std::int64_t out_w = producer.out_w;
  const std::size_t pass_first = folds.size();
  systolic::for_each_fold_tile(op.lines, op.line_out, cfg,
                               [&](const FoldTile& tile) {
    ProducerFold fold;
    fold.cycles =
        static_cast<std::uint64_t>(cfg.skew_cycles(tile.cols) + op.taps);
    if (!cfg.overlap_fold_drain) {
      fold.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
    }
    // Smallest kept output index inside this tile's column range.
    const std::int64_t first_kept = (tile.b0 + stride - 1) / stride;
    const std::int64_t last_kept = (tile.b0 + tile.cols - 1) / stride;
    std::int64_t min_pos = -1;
    if (first_kept <= last_kept && first_kept < kept) {
      for (std::int64_t l = tile.a0;
           l < tile.a0 + tile.rows && l < op.lines; ++l) {
        const std::int64_t spatial = l % line_count;
        // Row branch: line = output row y, kept index = output col x.
        // Col branch: line = output col x, kept index = output row y.
        const std::int64_t pos = row_branch
                                     ? spatial * out_w + first_kept
                                     : first_kept * out_w + spatial;
        if (min_pos < 0 || pos < min_pos) {
          min_pos = pos;
        }
      }
    }
    fold.deadline =
        min_pos < 0 ? 0 : static_cast<std::size_t>(min_pos / cfg.rows);
    folds.push_back(fold);
  });
  if (cfg.overlap_fold_drain && folds.size() > pass_first) {
    const std::int64_t last_rows =
        op.lines - ((op.lines - 1) / cfg.rows) * cfg.rows;
    folds.back().cycles +=
        static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
  }
}

/// Per-row-stripe cost of the pointwise consumer's single matmul pass.
struct ConsumerStripe {
  std::uint64_t cycles = 0;
  std::uint64_t folds = 0;
};

std::vector<ConsumerStripe> consumer_stripes(const PrimitiveOp& op,
                                             const ArrayConfig& cfg) {
  const std::size_t count =
      static_cast<std::size_t>((op.m + cfg.rows - 1) / cfg.rows);
  std::vector<ConsumerStripe> stripes(count);
  std::int64_t last_rows = 0;
  systolic::for_each_fold_tile(op.m, op.n, cfg, [&](const FoldTile& tile) {
    std::uint64_t cycles = static_cast<std::uint64_t>(
        cfg.skew_cycles(tile.rows) + cfg.skew_cycles(tile.cols) + op.k);
    if (!cfg.overlap_fold_drain) {
      cycles += static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
    }
    last_rows = tile.rows;
    ConsumerStripe& stripe =
        stripes[static_cast<std::size_t>(tile.a0 / cfg.rows)];
    stripe.cycles += cycles;
    ++stripe.folds;
  });
  if (cfg.overlap_fold_drain && !stripes.empty()) {
    stripes.back().cycles +=
        static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
  }
  return stripes;
}

/// Whether the producer's plan is one of the shapes the fold interleaver
/// understands (single-op plans on the output-stationary dataflow; other
/// dataflows and the no-broadcast fallback run the pair as two sequential
/// fused segments — the traffic saving is schedule-order independent).
bool interleavable(const LayerDesc& producer, const MappingPlan& plan,
                   const ArrayConfig& cfg) {
  if (cfg.dataflow != systolic::Dataflow::kOutputStationary ||
      plan.ops.size() != 1) {
    return false;
  }
  const PrimitiveOp& op = plan.ops.front();
  if (producer.kind == OpKind::kDepthwiseConv) {
    return op.kind == PrimitiveKind::kIm2colTile && op.n == 1;
  }
  return op.kind == PrimitiveKind::kFuse1DLine && op.broadcast;
}

/// Emits the interleaved schedule of one fused group (one or two
/// producers feeding one pointwise consumer): each producer's folds are
/// bucketed by the first consumer stripe that needs them, and each stripe
/// launches as soon as every bucket feeding it has landed. Only whole
/// folds move — every fold keeps its analytic cost, so the group's span is
/// exactly the sum of the member latencies.
void emit_interleaved_group(const NetworkPlan& plan,
                            const nets::NetworkModel& model,
                            const std::vector<std::size_t>& producers,
                            std::size_t c_idx, std::uint64_t pair_sram,
                            std::uint64_t& cursor,
                            std::vector<ScheduleSegment>& segments) {
  const ArrayConfig& cfg = plan.cfg;
  const PrimitiveOp& c_op = plan.layer_plans[c_idx].ops.front();
  const std::vector<ConsumerStripe> stripes = consumer_stripes(c_op, cfg);

  // Per producer: folds plus their deadline buckets (clamped to the
  // stripe count).
  std::vector<std::vector<ProducerFold>> folds(producers.size());
  std::vector<std::vector<std::vector<std::size_t>>> buckets(
      producers.size());
  for (std::size_t p = 0; p < producers.size(); ++p) {
    const std::size_t p_idx = producers[p];
    const PrimitiveOp& p_op = plan.layer_plans[p_idx].ops.front();
    if (p_op.kind == PrimitiveKind::kIm2colTile) {
      enumerate_depthwise_folds(p_op, cfg, folds[p]);
    } else {
      // The producer LayerDesc drives the line -> position mapping.
      enumerate_fuse_folds(model.layers[p_idx], p_op, cfg, folds[p]);
    }
    buckets[p].resize(stripes.size());
    for (std::size_t i = 0; i < folds[p].size(); ++i) {
      const std::size_t d =
          std::min(folds[p][i].deadline, stripes.size() - 1);
      buckets[p][d].push_back(i);
    }
  }

  const std::uint64_t start = cursor;
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    for (std::size_t p = 0; p < producers.size(); ++p) {
      std::uint64_t producer_cycles = 0;
      for (std::size_t i : buckets[p][s]) {
        producer_cycles += folds[p][i].cycles;
      }
      if (producer_cycles == 0) {
        continue;
      }
      ScheduleSegment seg;
      seg.layer_index = producers[p];
      seg.start_cycle = cursor;
      seg.end_cycle = cursor + producer_cycles;
      seg.folds = buckets[p][s].size();
      seg.fused = true;
      seg.sram_bytes = pair_sram;
      cursor = seg.end_cycle;
      segments.push_back(seg);
    }
    ScheduleSegment seg;
    seg.layer_index = c_idx;
    seg.start_cycle = cursor;
    seg.end_cycle = cursor + stripes[s].cycles;
    seg.folds = stripes[s].folds;
    seg.fused = true;
    seg.sram_bytes = pair_sram;
    cursor = seg.end_cycle;
    segments.push_back(seg);
  }
  std::uint64_t expected = plan.layer_latency[c_idx].cycles;
  for (const std::size_t p_idx : producers) {
    expected += plan.layer_latency[p_idx].cycles;
  }
  FUSE_CHECK(cursor - start == expected)
      << "interleaved group schedule diverged from the analytic latencies";
}

}  // namespace

CostSchedule schedule_costs(const nets::NetworkModel& model,
                            const std::vector<LayerCost>& costs,
                            const MemoryConfig& mem, SchedMode mode) {
  FUSE_CHECK(costs.size() == model.layers.size())
      << "schedule_costs needs one LayerCost per model layer, got "
      << costs.size() << " for " << model.layers.size();
  static util::Counter& fused_counter =
      util::metrics().counter("netplan.pairs_fused");
  static util::Counter& rejected_counter =
      util::metrics().counter("netplan.pairs_rejected");
  static util::Counter& saved_counter =
      util::metrics().counter("netplan.saved_bytes");

  CostSchedule cs;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (costs[i].on_array) {
      cs.on_array.push_back(i);
    }
  }

  // Double-buffered fold staging: the largest per-fold operand footprint,
  // twice (current fold + prefetch of the next). The two halves are the
  // statically disjoint double-buffer regions at [0, peak) and
  // [peak, 2*peak).
  std::uint64_t max_peak = 0;
  for (std::size_t i : cs.on_array) {
    max_peak = std::max(max_peak, costs[i].peak_fold_bytes);
  }
  cs.staging_bytes = 2 * max_peak;

  // Liveness: the activation chain is linear in this flat IR (skip
  // connections share the glue adds' inputs and are not tracked
  // separately — docs/scheduler.md discusses the simplification). The
  // network input is live through step 0; step s's output is live until
  // its consumer (step s+1) finishes.
  const std::size_t steps = cs.on_array.size();
  if (steps > 0) {
    const LayerDesc& first = model.layers[cs.on_array.front()];
    ActivationBuffer input;
    input.producer = ActivationBuffer::kNetworkInput;
    input.first_step = 0;
    input.last_step = 0;
    input.bytes = activation_bytes(first.in_c, first.in_h, first.in_w, mem);
    cs.buffers.push_back(input);
  }
  for (std::size_t s = 0; s < steps; ++s) {
    const LayerDesc& layer = model.layers[cs.on_array[s]];
    ActivationBuffer buffer;
    buffer.producer = cs.on_array[s];
    buffer.first_step = s;
    buffer.last_step = std::min(s + 1, steps == 0 ? s : steps - 1);
    buffer.bytes = activation_bytes(layer.out_c, layer.out_h, layer.out_w,
                                    mem);
    cs.buffers.push_back(buffer);
  }
  // FuSe stages break the linear chain: the row and col branches BOTH read
  // the stage input, and the downstream pointwise consumes the
  // concatenation of both outputs. Extend the affected lifetimes (the
  // stage input through the col step, the row output through the
  // pointwise step) so the first-fit allocator cannot overlay them.
  for (std::size_t s = 0; s + 1 < steps; ++s) {
    const LayerDesc& row = model.layers[cs.on_array[s]];
    const LayerDesc& col = model.layers[cs.on_array[s + 1]];
    if (row.kind != OpKind::kFuseRowConv ||
        col.kind != OpKind::kFuseColConv || row.fuse_slot < 0 ||
        row.fuse_slot != col.fuse_slot) {
      continue;
    }
    // buffers[0] is the network input; the output of step s is at 1 + s.
    ActivationBuffer& stage_input = cs.buffers[s == 0 ? 0 : s];
    stage_input.last_step =
        std::max(stage_input.last_step, std::min(s + 1, steps - 1));
    ActivationBuffer& row_output = cs.buffers[1 + s];
    row_output.last_step =
        std::max(row_output.last_step, std::min(s + 2, steps - 1));
  }
  allocate_buffers(cs.buffers, cs.staging_bytes, mem);

  // Fusion legality (fused mode): a depthwise/FuSe producer feeding the
  // immediately next on-array layer(s) ending in a pointwise, with only
  // activation glue between, matching geometry, and SRAM-resident
  // intermediate buffers. A FuSe stage fuses as a {row, col} -> pointwise
  // triple: the pointwise input is the concatenation of both branches.
  std::vector<bool> consumed(model.layers.size(), false);
  const auto paired = [&](std::size_t idx) {
    for (const FusedPair& pair : cs.fused_pairs) {
      if (pair.producer == idx || pair.producer2 == idx ||
          pair.consumer == idx) {
        return true;
      }
    }
    return false;
  };
  if (mode == SchedMode::kFused) {
    for (std::size_t s = 0; s + 1 < steps; ++s) {
      const std::size_t p_idx = cs.on_array[s];
      const LayerDesc& p = model.layers[p_idx];
      if (consumed[p_idx] || paired(p_idx)) {
        continue;
      }
      // FuSe triple: row at s, col at s + 1, pointwise at s + 2.
      if (s + 2 < steps && p.kind == OpKind::kFuseRowConv) {
        const std::size_t p2_idx = cs.on_array[s + 1];
        const std::size_t c_idx = cs.on_array[s + 2];
        const LayerDesc& p2 = model.layers[p2_idx];
        const LayerDesc& c = model.layers[c_idx];
        if (p2.kind == OpKind::kFuseColConv &&
            c.kind == OpKind::kPointwiseConv) {
          const bool legal =
              only_activation_between(model, p_idx, p2_idx) &&
              only_activation_between(model, p2_idx, c_idx) &&
              p.fuse_slot >= 0 && p.fuse_slot == p2.fuse_slot &&
              c.in_c == p.out_c + p2.out_c && c.in_h == p.out_h &&
              c.in_w == p.out_w && c.in_h == p2.out_h &&
              c.in_w == p2.out_w && !cs.buffers[1 + s].spilled &&
              !cs.buffers[2 + s].spilled;
          if (!legal) {
            rejected_counter.add();
            continue;
          }
          FusedPair pair;
          pair.producer = p_idx;
          pair.producer2 = p2_idx;
          pair.consumer = c_idx;
          pair.saved_output_bytes =
              costs[p_idx].traffic.output_bytes +
              costs[p2_idx].traffic.output_bytes;
          pair.saved_input_bytes = costs[c_idx].traffic.input_bytes;
          cs.fused_pairs.push_back(pair);
          consumed[p2_idx] = true;
          consumed[c_idx] = true;
          fused_counter.add();
          saved_counter.add(pair.saved_output_bytes +
                            pair.saved_input_bytes);
          continue;
        }
      }
      const std::size_t c_idx = cs.on_array[s + 1];
      const LayerDesc& c = model.layers[c_idx];
      const bool candidate =
          (p.kind == OpKind::kDepthwiseConv ||
           p.kind == OpKind::kFuseRowConv ||
           p.kind == OpKind::kFuseColConv) &&
          c.kind == OpKind::kPointwiseConv && !consumed[c_idx];
      if (!candidate) {
        continue;
      }
      // buffers[0] is the network input; the output of step s is at 1 + s.
      const ActivationBuffer& intermediate = cs.buffers[1 + s];
      const bool legal =
          only_activation_between(model, p_idx, c_idx) &&
          c.in_c == p.out_c && c.in_h == p.out_h && c.in_w == p.out_w &&
          !intermediate.spilled;
      if (!legal) {
        rejected_counter.add();
        continue;
      }
      FusedPair pair;
      pair.producer = p_idx;
      pair.consumer = c_idx;
      pair.saved_output_bytes = costs[p_idx].traffic.output_bytes;
      pair.saved_input_bytes = costs[c_idx].traffic.input_bytes;
      cs.fused_pairs.push_back(pair);
      consumed[c_idx] = true;
      fused_counter.add();
      saved_counter.add(pair.saved_output_bytes + pair.saved_input_bytes);
    }
  }
  return cs;
}

NetworkRoofline roofline_over(const std::vector<LayerCost>& costs,
                              const std::vector<FusedPair>& pairs,
                              const MemoryConfig& mem) {
  NetworkRoofline roofline;
  std::vector<bool> consumed(costs.size(), false);
  for (const FusedPair& pair : pairs) {
    if (pair.producer2 != FusedPair::kNone) {
      consumed[pair.producer2] = true;
    }
    consumed[pair.consumer] = true;
  }
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (consumed[i]) {
      continue;
    }
    const FusedPair* pair = nullptr;
    for (const FusedPair& p : pairs) {
      if (p.producer == i || p.producer2 == i || p.consumer == i) {
        pair = &p;
        break;
      }
    }
    std::uint64_t compute = costs[i].latency.cycles;
    systolic::TrafficEstimate traffic = costs[i].traffic;
    if (pair != nullptr && pair->producer == i) {
      // The group is one scheduling unit: compute back-to-back, traffic
      // with the SRAM-resident intermediates subtracted on both sides.
      if (pair->producer2 != FusedPair::kNone) {
        compute += costs[pair->producer2].latency.cycles;
        traffic += costs[pair->producer2].traffic;
      }
      compute += costs[pair->consumer].latency.cycles;
      traffic.output_bytes -= pair->saved_output_bytes;
      traffic += costs[pair->consumer].traffic;
      traffic.input_bytes -= pair->saved_input_bytes;
    }
    const std::uint64_t memory = traffic.memory_cycles(mem);
    roofline.compute_cycles += compute;
    roofline.memory_cycles += memory;
    roofline.bound_cycles += std::max(compute, memory);
    roofline.total_bytes += traffic.total_bytes();
    if (memory > compute && compute > 0) {
      ++roofline.memory_bound_layers;
    }
  }
  return roofline;
}

NetworkPlan plan_network(const nets::NetworkModel& model,
                         const ArrayConfig& cfg, const MemoryConfig& mem,
                         SchedMode mode) {
  cfg.validate();
  mem.validate();
  static util::Counter& plans_counter =
      util::metrics().counter("netplan.plans");
  static util::Gauge& high_water_gauge =
      util::metrics().gauge("netplan.sram_high_water");
  plans_counter.add();

  NetworkPlan plan;
  plan.mode = mode;
  plan.cfg = cfg;
  plan.mem = mem;

  // Lower every layer exactly once; the estimates, traffic, liveness, and
  // schedule below are all folds over these shared plans.
  plan.layer_plans.reserve(model.layers.size());
  plan.layer_latency.reserve(model.layers.size());
  plan.layer_traffic.reserve(model.layers.size());
  std::vector<LayerCost> costs(model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    MappingPlan lowered = systolic::lower(model.layers[i], cfg);
    costs[i].latency = plan_latency(lowered);
    costs[i].traffic = systolic::plan_traffic(lowered, cfg, mem);
    costs[i].peak_fold_bytes =
        systolic::plan_peak_fold_bytes(lowered, cfg, mem);
    costs[i].on_array = !lowered.ops.empty();
    plan.layer_latency.push_back(costs[i].latency);
    plan.layer_traffic.push_back(costs[i].traffic);
    plan.layer_plans.push_back(std::move(lowered));
  }

  // Everything below the per-layer costs — SRAM liveness/allocation and
  // fusion legality — is shared with the closed-form evaluator.
  CostSchedule cs = schedule_costs(model, costs, mem, mode);
  plan.on_array = std::move(cs.on_array);
  plan.buffers = std::move(cs.buffers);
  plan.fused_pairs = std::move(cs.fused_pairs);
  plan.staging_bytes = cs.staging_bytes;
  const std::size_t steps = plan.on_array.size();

  // SRAM high water: resident activations + the running layer's staging.
  for (std::size_t s = 0; s < steps; ++s) {
    const std::uint64_t staging =
        2 * costs[plan.on_array[s]].peak_fold_bytes;
    plan.sram_high_water = std::max(
        plan.sram_high_water, resident_bytes_at(plan.buffers, s) + staging);
  }
  high_water_gauge.set(static_cast<std::int64_t>(plan.sram_high_water));

  std::vector<bool> consumed(model.layers.size(), false);
  for (const FusedPair& pair : plan.fused_pairs) {
    if (pair.producer2 != FusedPair::kNone) {
      consumed[pair.producer2] = true;
    }
    consumed[pair.consumer] = true;
  }

  // Schedule segments. The cycle axis is shared with the analytic model:
  // fused pairs only reorder whole folds, so the total is the plain sum of
  // per-layer latencies in both modes.
  std::uint64_t expected_total = 0;
  for (std::size_t i : plan.on_array) {
    expected_total += plan.layer_latency[i].cycles;
  }
  std::uint64_t cursor = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t idx = plan.on_array[s];
    if (consumed[idx]) {
      continue;  // emitted with its producer below
    }
    const FusedPair* pair =
        mode == SchedMode::kFused ? plan.pair_of(idx) : nullptr;
    if (pair != nullptr && pair->producer == idx) {
      std::vector<std::size_t> producers = {idx};
      if (pair->producer2 != FusedPair::kNone) {
        producers.push_back(pair->producer2);
      }
      const std::size_t c_idx = pair->consumer;
      // The group spans consecutive on-array steps starting at s; its SRAM
      // footprint is the worst step's residency plus the deepest member's
      // double-buffered staging.
      std::uint64_t pair_sram = 0;
      std::uint64_t group_peak = costs[c_idx].peak_fold_bytes;
      for (std::size_t m = 0; m <= producers.size(); ++m) {
        pair_sram =
            std::max(pair_sram, resident_bytes_at(plan.buffers, s + m));
      }
      for (const std::size_t p_idx : producers) {
        group_peak = std::max(group_peak, costs[p_idx].peak_fold_bytes);
      }
      pair_sram += 2 * group_peak;
      plan.sram_high_water = std::max(plan.sram_high_water, pair_sram);
      bool can_interleave = true;
      for (const std::size_t p_idx : producers) {
        can_interleave =
            can_interleave &&
            interleavable(model.layers[p_idx], plan.layer_plans[p_idx],
                          cfg);
      }
      if (can_interleave) {
        emit_interleaved_group(plan, model, producers, c_idx, pair_sram,
                               cursor, plan.segments);
      } else {
        producers.push_back(c_idx);
        for (const std::size_t part : producers) {
          ScheduleSegment seg;
          seg.layer_index = part;
          seg.start_cycle = cursor;
          seg.end_cycle = cursor + plan.layer_latency[part].cycles;
          seg.folds = plan.layer_latency[part].folds;
          seg.fused = true;
          seg.sram_bytes = pair_sram;
          cursor = seg.end_cycle;
          plan.segments.push_back(seg);
        }
      }
      continue;
    }
    ScheduleSegment seg;
    seg.layer_index = idx;
    seg.start_cycle = cursor;
    seg.end_cycle = cursor + plan.layer_latency[idx].cycles;
    seg.folds = plan.layer_latency[idx].folds;
    seg.sram_bytes =
        resident_bytes_at(plan.buffers, s) + 2 * costs[idx].peak_fold_bytes;
    cursor = seg.end_cycle;
    plan.segments.push_back(seg);
  }
  plan.total_cycles = cursor;
  FUSE_CHECK(plan.total_cycles == expected_total)
      << "schedule total diverged from the per-layer latency sum: "
      << plan.total_cycles << " vs " << expected_total;
  high_water_gauge.set(static_cast<std::int64_t>(plan.sram_high_water));
  return plan;
}

NetworkRoofline plan_roofline(const NetworkPlan& plan) {
  std::vector<LayerCost> costs(plan.layer_latency.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i].latency = plan.layer_latency[i];
    costs[i].traffic = plan.layer_traffic[i];
    costs[i].on_array = !plan.layer_plans[i].ops.empty();
  }
  return roofline_over(costs, plan.fused_pairs, plan.mem);
}

}  // namespace fuse::sched
