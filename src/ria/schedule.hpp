// Space-time mapping of an RIA onto a systolic array.
//
// Classic systolic synthesis (Quinton 1984; Rao & Kailath 1988): given the
// dependence vectors of an RIA, find a linear schedule λ (time) such that
// every true dependence d satisfies λ·d ≥ 1 (a value is produced before it
// is consumed), and a projection direction u (λ·u ≠ 0) collapsing the
// iteration space onto processor space. For matmul with iteration (i,j,k),
// λ=(1,1,1) and u=(0,0,1) yield the output-stationary 2-D array of
// Fig. 1(d); for 1-D convolution any of Kung's seven designs arise from
// different (λ, u) pairs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ria/ria.hpp"

namespace fuse::ria {

/// A valid space-time mapping.
struct SystolicSchedule {
  std::vector<std::int64_t> time;        // schedule vector λ
  std::vector<std::int64_t> projection;  // processor projection direction u
  int processor_rank = 0;                // iteration rank - 1

  std::string to_string(const std::vector<std::string>& index_names) const;
};

/// Searches small integer schedule vectors (entries in [-bound, bound]) for
/// a λ satisfying λ·d ≥ 1 on all self dependences and λ·d ≥ 0 on input
/// propagation vectors, plus a projection u with λ·u ≠ 0. Returns nullopt
/// when the algorithm is not an RIA or no schedule exists within the bound.
std::optional<SystolicSchedule> find_schedule(const RiaAnalysis& analysis,
                                              int rank, int bound = 2);

/// Convenience: analyze + find_schedule. A true result certifies the
/// algorithm is systolic (RIA + valid space-time mapping).
bool is_systolic_algorithm(const AlgorithmSpec& spec);

/// Enumerates ALL valid (lambda, u) pairs with unit projections and
/// schedule entries in [-bound, bound]. For the matmul RIA of Fig. 1 the
/// three unit projections correspond exactly to the three classic
/// dataflows: projecting out k keeps C stationary (output stationary),
/// projecting out i keeps B stationary (weight stationary), projecting out
/// j keeps A stationary (input stationary) — one RIA, three accelerators.
std::vector<SystolicSchedule> enumerate_schedules(
    const RiaAnalysis& analysis, int rank, int bound = 1);

/// Name of the operand that stays put under a unit projection, for the
/// matmul spec's variable layout (C[i,j,k], A along j, B along i):
/// axis 0 (i) -> "B stationary", 1 (j) -> "A stationary",
/// 2 (k) -> "C stationary". Returns "?" for non-unit projections.
std::string stationary_operand(const SystolicSchedule& schedule);

}  // namespace fuse::ria
