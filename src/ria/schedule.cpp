#include "ria/schedule.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fuse::ria {

namespace {

std::int64_t dot(const std::vector<std::int64_t>& a,
                 const std::vector<std::int64_t>& b) {
  FUSE_CHECK(a.size() == b.size()) << "dot on mismatched ranks";
  std::int64_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += a[i] * b[i];
  }
  return total;
}

/// Enumerates all vectors of the given rank with entries in [-bound, bound].
bool next_vector(std::vector<std::int64_t>& v, int bound) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] < bound) {
      ++v[i];
      return true;
    }
    v[i] = -bound;
  }
  return false;
}

}  // namespace

std::string SystolicSchedule::to_string(
    const std::vector<std::string>& index_names) const {
  std::ostringstream out;
  const auto print = [&](const char* label,
                         const std::vector<std::int64_t>& v) {
    out << label << " = (";
    for (std::size_t i = 0; i < v.size(); ++i) {
      out << (i != 0 ? ", " : "") << v[i];
    }
    out << ")";
  };
  print("lambda", time);
  out << ", ";
  print("u", projection);
  out << " -> " << processor_rank << "-D processor array";
  (void)index_names;
  return out.str();
}

std::optional<SystolicSchedule> find_schedule(const RiaAnalysis& analysis,
                                              int rank, int bound) {
  if (!analysis.is_ria) {
    return std::nullopt;
  }
  FUSE_CHECK(rank > 0) << "schedule search needs positive rank";
  FUSE_CHECK(bound >= 1) << "schedule search bound must be >= 1";

  std::vector<std::int64_t> lambda(static_cast<std::size_t>(rank), -bound);
  do {
    bool ok = true;
    for (const RiaAnalysis::Dependence& dep : analysis.dependences) {
      const std::int64_t product = dot(lambda, dep.vector);
      // Self dependences must advance strictly in time; input propagation
      // must at least not travel backwards.
      if (dep.self ? product < 1 : product < 0) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;
    }
    // Find a projection direction not orthogonal to time (so no two
    // iterations mapped to the same PE share a time step). Prefer unit
    // vectors — they give the familiar array layouts.
    for (int axis = rank - 1; axis >= 0; --axis) {
      std::vector<std::int64_t> u(static_cast<std::size_t>(rank), 0);
      u[static_cast<std::size_t>(axis)] = 1;
      if (dot(lambda, u) != 0) {
        SystolicSchedule schedule;
        schedule.time = lambda;
        schedule.projection = std::move(u);
        schedule.processor_rank = rank - 1;
        return schedule;
      }
    }
  } while (next_vector(lambda, bound));
  return std::nullopt;
}

std::vector<SystolicSchedule> enumerate_schedules(
    const RiaAnalysis& analysis, int rank, int bound) {
  std::vector<SystolicSchedule> schedules;
  if (!analysis.is_ria) {
    return schedules;
  }
  FUSE_CHECK(rank > 0 && bound >= 1) << "bad enumerate_schedules args";

  std::vector<std::int64_t> lambda(static_cast<std::size_t>(rank), -bound);
  do {
    bool ok = true;
    for (const RiaAnalysis::Dependence& dep : analysis.dependences) {
      const std::int64_t product = dot(lambda, dep.vector);
      if (dep.self ? product < 1 : product < 0) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;
    }
    for (int axis = 0; axis < rank; ++axis) {
      std::vector<std::int64_t> u(static_cast<std::size_t>(rank), 0);
      u[static_cast<std::size_t>(axis)] = 1;
      if (dot(lambda, u) != 0) {
        SystolicSchedule schedule;
        schedule.time = lambda;
        schedule.projection = std::move(u);
        schedule.processor_rank = rank - 1;
        schedules.push_back(std::move(schedule));
      }
    }
  } while (next_vector(lambda, bound));
  return schedules;
}

std::string stationary_operand(const SystolicSchedule& schedule) {
  // Unit projection along axis d collapses that axis onto time: the
  // variable whose recurrence moves along d stays in one PE. For the
  // matmul layout: B broadcasts along i, A along j, C accumulates along k.
  int axis = -1;
  for (std::size_t d = 0; d < schedule.projection.size(); ++d) {
    if (schedule.projection[d] == 1 && axis < 0) {
      axis = static_cast<int>(d);
    } else if (schedule.projection[d] != 0) {
      return "?";  // non-unit projection
    }
  }
  switch (axis) {
    case 0:
      return "B stationary (weight stationary)";
    case 1:
      return "A stationary (input stationary)";
    case 2:
      return "C stationary (output stationary)";
    default:
      return "?";
  }
}

bool is_systolic_algorithm(const AlgorithmSpec& spec) {
  const RiaAnalysis analysis = analyze(spec);
  if (!analysis.is_ria) {
    return false;
  }
  return find_schedule(analysis,
                       static_cast<int>(spec.index_names.size()))
      .has_value();
}

}  // namespace fuse::ria
