#include "ria/algorithms.hpp"

namespace fuse::ria {

AlgorithmSpec matmul_spec() {
  AlgorithmSpec spec;
  spec.name = "matrix multiplication";
  spec.index_names = {"i", "j", "k"};

  Recurrence c;
  c.lhs_var = "C";
  c.description = "C[i,j,k] = C[i,j,k-1] + A[i,j,k] * B[i,j,k]";
  // Pipelined operands: A propagates along j, B along i (Fig. 1(c)); after
  // uniformization every access is at a constant offset.
  c.rhs.push_back(VarAccess{
      "C", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, 0),
            IndexExpr::var_plus(2, -1)}});
  c.rhs.push_back(VarAccess{
      "A", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, -1),
            IndexExpr::var_plus(2, 0)}});
  c.rhs.push_back(VarAccess{
      "B", {IndexExpr::var_plus(0, -1), IndexExpr::var_plus(1, 0),
            IndexExpr::var_plus(2, 0)}});
  spec.relations.push_back(std::move(c));
  return spec;
}

AlgorithmSpec conv1d_spec(std::int64_t /*kernel*/) {
  AlgorithmSpec spec;
  spec.name = "1-D convolution";
  spec.index_names = {"i", "k"};

  Recurrence c;
  c.lhs_var = "C";
  c.description = "C[i,k] = C[i,k-1] + A[i+k] * B[k]";
  // A[i+k] in single-assignment form is A[i,k] propagated along the
  // diagonal: A[i,k] = A[i+1,k-1]; B[k] broadcasts along i: B[i,k] =
  // B[i-1,k]. All offsets constant.
  c.rhs.push_back(VarAccess{
      "C", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, -1)}});
  c.rhs.push_back(VarAccess{
      "A", {IndexExpr::var_plus(0, 1), IndexExpr::var_plus(1, -1)}});
  c.rhs.push_back(VarAccess{
      "B", {IndexExpr::var_plus(0, -1), IndexExpr::var_plus(1, 0)}});
  spec.relations.push_back(std::move(c));
  return spec;
}

AlgorithmSpec conv2d_naive_spec(std::int64_t kernel) {
  AlgorithmSpec spec;
  spec.name = "2-D convolution (kernel loops flattened to k)";
  spec.index_names = {"i", "j", "k"};

  Recurrence c;
  c.lhs_var = "C";
  c.description =
      "C[i,j,k] = C[i,j,k-1] + A[i+floor(k/K), j+k%K] * B[floor(k/K), k%K]";
  c.rhs.push_back(VarAccess{
      "C", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, 0),
            IndexExpr::var_plus(2, -1)}});
  // The A access: dimension 0 reads i + floor(k/K) — not i + const;
  // dimension 1 reads j + k%K — not j + const. We conservatively express
  // each offending dimension with the non-affine expression itself.
  c.rhs.push_back(VarAccess{
      "A", {IndexExpr::floor_div(2, kernel), IndexExpr::mod(2, kernel),
            IndexExpr::var_plus(2, 0)}});
  c.rhs.push_back(VarAccess{
      "B", {IndexExpr::floor_div(2, kernel), IndexExpr::mod(2, kernel),
            IndexExpr::var_plus(2, 0)}});
  spec.relations.push_back(std::move(c));
  return spec;
}

AlgorithmSpec conv2d_im2col_spec() {
  AlgorithmSpec spec;
  spec.name = "2-D convolution after im2col (matmul on A', B')";
  spec.index_names = {"r", "k"};

  Recurrence c;
  c.lhs_var = "C";
  c.description = "C[r,k] = C[r,k-1] + A'[r,k] * B'[k]";
  c.rhs.push_back(VarAccess{
      "C", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, -1)}});
  c.rhs.push_back(VarAccess{
      "A'", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, 0)}});
  c.rhs.push_back(VarAccess{
      "B'", {IndexExpr::var_plus(0, -1), IndexExpr::var_plus(1, 0)}});
  spec.relations.push_back(std::move(c));
  return spec;
}

AlgorithmSpec pointwise_conv_spec() {
  AlgorithmSpec spec;
  spec.name = "pointwise (1x1) convolution";
  spec.index_names = {"p", "f", "c"};  // position, filter, channel

  Recurrence out;
  out.lhs_var = "C";
  out.description = "C[p,f,c] = C[p,f,c-1] + A[p,c] * B[c,f]";
  // Structurally identical to matmul: A propagates along f, B along p.
  out.rhs.push_back(VarAccess{
      "C", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, 0),
            IndexExpr::var_plus(2, -1)}});
  out.rhs.push_back(VarAccess{
      "A", {IndexExpr::var_plus(0, 0), IndexExpr::var_plus(1, -1),
            IndexExpr::var_plus(2, 0)}});
  out.rhs.push_back(VarAccess{
      "B", {IndexExpr::var_plus(0, -1), IndexExpr::var_plus(1, 0),
            IndexExpr::var_plus(2, 0)}});
  spec.relations.push_back(std::move(out));
  return spec;
}

AlgorithmSpec depthwise_conv_spec(std::int64_t kernel) {
  AlgorithmSpec spec = conv2d_naive_spec(kernel);
  spec.name = "depthwise convolution (independent 2-D convs per channel)";
  return spec;
}

}  // namespace fuse::ria
