#include "ria/ria.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fuse::ria {

IndexExpr IndexExpr::var_plus(int dim, std::int64_t offset) {
  FUSE_CHECK(dim >= 0) << "index dimension must be non-negative";
  IndexExpr e;
  e.kind_ = Kind::kAffine;
  e.coeffs_.assign(static_cast<std::size_t>(dim) + 1, 0);
  e.coeffs_[static_cast<std::size_t>(dim)] = 1;
  e.constant_ = offset;
  return e;
}

IndexExpr IndexExpr::affine(std::vector<std::int64_t> coeffs,
                            std::int64_t constant) {
  IndexExpr e;
  e.kind_ = Kind::kAffine;
  e.coeffs_ = std::move(coeffs);
  e.constant_ = constant;
  return e;
}

IndexExpr IndexExpr::constant(std::int64_t value) {
  return affine({}, value);
}

IndexExpr IndexExpr::floor_div(int dim, std::int64_t divisor) {
  FUSE_CHECK(dim >= 0 && divisor > 0) << "floor_div(dim, divisor>0)";
  IndexExpr e;
  e.kind_ = Kind::kFloorDiv;
  e.dim_ = dim;
  e.divisor_ = divisor;
  return e;
}

IndexExpr IndexExpr::mod(int dim, std::int64_t divisor) {
  FUSE_CHECK(dim >= 0 && divisor > 0) << "mod(dim, divisor>0)";
  IndexExpr e;
  e.kind_ = Kind::kMod;
  e.dim_ = dim;
  e.divisor_ = divisor;
  return e;
}

std::optional<std::int64_t> IndexExpr::offset_from(int dim) const {
  if (kind_ != Kind::kAffine) {
    return std::nullopt;
  }
  // Must be exactly 1 * idx[dim] + c: coefficient 1 at `dim`, 0 elsewhere.
  for (std::size_t d = 0; d < coeffs_.size(); ++d) {
    const std::int64_t expected =
        (static_cast<int>(d) == dim) ? 1 : 0;
    if (coeffs_[d] != expected) {
      return std::nullopt;
    }
  }
  if (static_cast<std::size_t>(dim) >= coeffs_.size()) {
    return std::nullopt;  // coefficient of idx[dim] is implicitly 0
  }
  return constant_;
}

std::string IndexExpr::to_string(
    const std::vector<std::string>& index_names) const {
  const auto name = [&](int dim) -> std::string {
    if (dim >= 0 && static_cast<std::size_t>(dim) < index_names.size()) {
      return index_names[static_cast<std::size_t>(dim)];
    }
    return "x" + std::to_string(dim);
  };
  std::ostringstream out;
  switch (kind_) {
    case Kind::kAffine: {
      bool first = true;
      for (std::size_t d = 0; d < coeffs_.size(); ++d) {
        if (coeffs_[d] == 0) {
          continue;
        }
        if (!first) {
          out << (coeffs_[d] > 0 ? "+" : "");
        }
        if (coeffs_[d] == -1) {
          out << '-';
        } else if (coeffs_[d] != 1) {
          out << coeffs_[d] << '*';
        }
        out << name(static_cast<int>(d));
        first = false;
      }
      if (constant_ != 0 || first) {
        if (!first && constant_ > 0) {
          out << '+';
        }
        out << constant_;
      }
      break;
    }
    case Kind::kFloorDiv:
      out << "floor(" << name(dim_) << "/" << divisor_ << ")";
      break;
    case Kind::kMod:
      out << name(dim_) << "%" << divisor_;
      break;
  }
  return out.str();
}

RiaAnalysis analyze(const AlgorithmSpec& spec) {
  RiaAnalysis result;
  result.is_ria = true;
  const int rank = static_cast<int>(spec.index_names.size());

  for (std::size_t r = 0; r < spec.relations.size(); ++r) {
    const Recurrence& rel = spec.relations[r];
    for (const VarAccess& access : rel.rhs) {
      FUSE_CHECK(static_cast<int>(access.indices.size()) == rank)
          << "access to " << access.var << " in relation " << r << " has "
          << access.indices.size() << " indices, iteration rank is " << rank;
      bool constant_offsets = true;
      std::vector<std::int64_t> offsets(static_cast<std::size_t>(rank), 0);
      for (int d = 0; d < rank; ++d) {
        const IndexExpr& expr =
            access.indices[static_cast<std::size_t>(d)];
        const auto offset = expr.offset_from(d);
        if (!offset.has_value()) {
          constant_offsets = false;
          result.is_ria = false;
          result.violations.push_back(RiaViolation{
              static_cast<int>(r), access.var, d,
              "index expression '" + expr.to_string(spec.index_names) +
                  "' is not '" + spec.index_names[static_cast<std::size_t>(d)] +
                  " + const'"});
        } else {
          offsets[static_cast<std::size_t>(d)] = *offset;
        }
      }
      if (constant_offsets) {
        // Dependence vector points from producer to consumer:
        // LHS index - RHS index = -offsets.
        std::vector<std::int64_t> dependence(offsets.size());
        for (std::size_t d = 0; d < offsets.size(); ++d) {
          dependence[d] = -offsets[d];
        }
        result.dependences.push_back(RiaAnalysis::Dependence{
            access.var, access.var == rel.lhs_var, std::move(dependence)});
      }
    }
  }
  return result;
}

std::string RiaAnalysis::report(const AlgorithmSpec& spec) const {
  std::ostringstream out;
  out << "algorithm: " << spec.name << "\n";
  out << "iteration vector: (";
  for (std::size_t d = 0; d < spec.index_names.size(); ++d) {
    out << (d != 0 ? ", " : "") << spec.index_names[d];
  }
  out << ")\n";
  for (const Recurrence& rel : spec.relations) {
    out << "  " << rel.description << "\n";
  }
  if (is_ria) {
    out << "verdict: RIA (all index offsets constant)\n";
    out << "dependence vectors (consumer - producer):\n";
    for (const Dependence& dep : dependences) {
      out << "  " << dep.var << (dep.self ? " [self]" : " [input]") << ": (";
      for (std::size_t d = 0; d < dep.vector.size(); ++d) {
        out << (d != 0 ? ", " : "") << dep.vector[d];
      }
      out << ")\n";
    }
  } else {
    out << "verdict: NOT an RIA\n";
    for (const RiaViolation& v : violations) {
      out << "  relation " << v.relation << ", variable " << v.rhs_var
          << ", dim " << spec.index_names[static_cast<std::size_t>(v.dimension)]
          << ": " << v.reason << "\n";
    }
  }
  return out.str();
}

}  // namespace fuse::ria
