// Canonical algorithm specifications studied by the paper.
#pragma once

#include <cstdint>

#include "ria/ria.hpp"

namespace fuse::ria {

/// Matrix multiplication C[i,j,k] = C[i,j,k-1] + A[i,k]*B[k,j], written
/// with the single-assignment third index (paper Fig. 1(b)). An RIA.
AlgorithmSpec matmul_spec();

/// 1-D convolution C[i,k] = C[i,k-1] + A[i+k]*B[k] over iteration (i,k)
/// (paper Fig. 7(a)). An RIA.
AlgorithmSpec conv1d_spec(std::int64_t kernel);

/// Naive 2-D convolution with the two kernel loops flattened into one
/// single-assignment index k (paper Fig. 2(b)):
///   C[i,j,k] = C[i,j,k-1] + A[i+floor(k/K), j+k%K] * B[floor(k/K), k%K]
/// NOT an RIA: the offsets to A and B depend on k.
AlgorithmSpec conv2d_naive_spec(std::int64_t kernel);

/// 2-D convolution after the im2col transformation: the patch matrix A' and
/// flattened kernel B' turn the computation into a matmul with a single
/// output column per depthwise channel (paper Fig. 2(c)). An RIA again —
/// the transformation is what restores constant offsets.
AlgorithmSpec conv2d_im2col_spec();

/// Pointwise (1x1) convolution: for each spatial position, a vector dot
/// product across channels — C[p,f,c] = C[p,f,c-1] + A[p,c]*B[c,f], i.e.
/// a matmul over (positions, filters, channels). The paper's §IV-B: "the
/// other operation in a FuSeConv layer, point-wise convolution, is a
/// vector dot-product and is also a systolic algorithm". An RIA.
AlgorithmSpec pointwise_conv_spec();

/// Depthwise convolution expressed channel-by-channel without any
/// transformation; same structure as conv2d_naive_spec with a channel index
/// along which no computation flows. NOT an RIA.
AlgorithmSpec depthwise_conv_spec(std::int64_t kernel);

}  // namespace fuse::ria
