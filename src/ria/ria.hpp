// Regular Iterative Algorithm (RIA) formalism (Rao & Kailath 1988),
// as used in the paper's Section III to show that matrix multiplication and
// 1-D convolution are systolic algorithms while naive 2-D convolution is
// not.
//
// An algorithm is a set of recurrence relations over variables indexed by
// the iteration vector (single-assignment form). It is an RIA iff, in every
// relation, the difference between the LHS index vector (always the plain
// iteration vector here) and each RHS index expression is a constant —
// i.e., each RHS index along dimension d is exactly idx[d] + c. Index
// expressions like floor(k/K) or k mod K (which appear when one flattens
// the two kernel loops of a 2-D convolution) violate this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fuse::ria {

/// One index expression of an RHS variable access, a function of the
/// iteration vector.
class IndexExpr {
 public:
  enum class Kind {
    kAffine,    // sum(coeffs[d] * idx[d]) + constant
    kFloorDiv,  // floor(idx[dim] / divisor)
    kMod,       // idx[dim] mod divisor
  };

  /// idx[dim] + offset — the only form an RIA permits.
  static IndexExpr var_plus(int dim, std::int64_t offset);

  /// General affine combination of iteration indices.
  static IndexExpr affine(std::vector<std::int64_t> coeffs,
                          std::int64_t constant);

  /// Constant expression (affine with zero coefficients).
  static IndexExpr constant(std::int64_t value);

  /// floor(idx[dim] / divisor).
  static IndexExpr floor_div(int dim, std::int64_t divisor);

  /// idx[dim] mod divisor.
  static IndexExpr mod(int dim, std::int64_t divisor);

  Kind kind() const { return kind_; }

  /// If the expression is exactly idx[dim] + c for the queried dim, returns
  /// c; otherwise nullopt. This encodes the RIA constant-offset test.
  std::optional<std::int64_t> offset_from(int dim) const;

  /// Renders e.g. "k+1", "floor(k/3)", "i-j".
  std::string to_string(const std::vector<std::string>& index_names) const;

 private:
  IndexExpr() = default;

  Kind kind_ = Kind::kAffine;
  std::vector<std::int64_t> coeffs_;  // affine only
  std::int64_t constant_ = 0;         // affine only
  int dim_ = 0;                       // floordiv/mod only
  std::int64_t divisor_ = 1;          // floordiv/mod only
};

/// An access to variable `var` at the given index expressions.
struct VarAccess {
  std::string var;
  std::vector<IndexExpr> indices;
};

/// One recurrence relation. The LHS is implicitly the variable accessed at
/// the plain iteration vector (single-assignment form).
struct Recurrence {
  std::string lhs_var;
  std::vector<VarAccess> rhs;
  std::string description;  // human-readable form for reports
};

/// A complete algorithm specification.
struct AlgorithmSpec {
  std::string name;
  std::vector<std::string> index_names;  // iteration vector, e.g. {i, j, k}
  std::vector<Recurrence> relations;
};

/// One failed constant-offset check.
struct RiaViolation {
  int relation = 0;      // index into AlgorithmSpec::relations
  std::string rhs_var;   // offending variable
  int dimension = 0;     // offending index dimension
  std::string reason;    // e.g. "index expression floor(k/3) is not k + c"
};

/// Result of the RIA test plus the dependence vectors it implies.
struct RiaAnalysis {
  bool is_ria = false;
  std::vector<RiaViolation> violations;

  /// For each (relation, rhs access) with constant offsets: the dependence
  /// vector LHS_index - RHS_index (only meaningful for accesses to the
  /// LHS's own variable; others are input propagation vectors).
  struct Dependence {
    std::string var;
    bool self = false;  // RHS var == LHS var (a true data dependence)
    std::vector<std::int64_t> vector;
  };
  std::vector<Dependence> dependences;

  /// Multi-line report mirroring the paper's Fig. 1(b)/2(b) discussion.
  std::string report(const AlgorithmSpec& spec) const;
};

/// Runs the constant-offset test on every relation.
RiaAnalysis analyze(const AlgorithmSpec& spec);

}  // namespace fuse::ria
