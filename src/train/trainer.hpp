// Training loop + evaluation.
#pragma once

#include <functional>
#include <string>

#include "train/dataset.hpp"
#include "train/module.hpp"
#include "train/optimizer.hpp"

namespace fuse::train {

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 16;
  double lr = 0.01;
  double lr_decay = 0.97;       // multiplicative per epoch (paper: 0.97
                                // every 2.4 epochs; compressed here)
  double weight_decay = 1e-5;   // paper: 1e-5
  bool use_rmsprop = true;      // paper trains with RMSprop

  /// Round parameters (after each step) and input batches through binary16
  /// — the paper trains and infers in FP16.
  bool fp16 = false;

  /// Exponential moving average of all weights (paper: decay 0.9999 on
  /// ImageNet; use a smaller decay for short synthetic runs). 0 disables.
  /// The final evaluation additionally reports accuracy with the EMA
  /// weights swapped in.
  double ema_decay = 0.0;

  bool verbose = false;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double eval_accuracy = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_eval_accuracy = 0.0;

  /// Accuracy with EMA weights (== final_eval_accuracy when EMA disabled).
  double final_eval_accuracy_ema = 0.0;
};

/// Evaluation accuracy of `model` on `data`.
double evaluate(Module& model, const TextureDataset& data,
                std::int64_t batch_size = 32);

/// Trains `model` on `train_data`, evaluating on `eval_data` each epoch.
TrainResult train_model(Module& model, const TextureDataset& train_data,
                        const TextureDataset& eval_data,
                        const TrainConfig& config);

}  // namespace fuse::train
