// Synthetic oriented-texture dataset.
//
// Substitutes for ImageNet in the accuracy study (see DESIGN.md). Each
// class k is a sinusoidal grating at orientation theta_k = k*pi/classes,
// with randomized phase, spatial frequency, amplitude, and additive noise.
// Orientation discrimination needs joint horizontal+vertical spatial
// filtering, which is precisely the capability depthwise KxK kernels have
// and FuSeConv must recover through its separated 1-D branches — so the
// task is sensitive to the operator substitution the paper studies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fuse::train {

/// Two synthetic tasks with different inductive demands:
///   kOrientedTextures — classes are grating orientations; discriminating
///     them requires JOINT horizontal+vertical filtering (the capability a
///     KxK depthwise kernel has natively and FuSeConv must recover).
///   kBlobScale — classes are Gaussian blob radii at random positions;
///     discriminating them requires multi-scale spatial pooling, a second,
///     structurally different probe of the operator substitution.
enum class SyntheticTask {
  kOrientedTextures,
  kBlobScale,
};

/// "textures" / "blobs".
std::string synthetic_task_name(SyntheticTask task);

struct DatasetConfig {
  SyntheticTask task = SyntheticTask::kOrientedTextures;
  std::int64_t num_classes = 4;
  std::int64_t channels = 3;
  std::int64_t height = 16;
  std::int64_t width = 16;
  double noise_stddev = 0.25;
};

struct Example {
  tensor::Tensor image;  // [C, H, W]
  std::int64_t label = 0;
};

/// Deterministic in-memory dataset.
class TextureDataset {
 public:
  TextureDataset(DatasetConfig config, std::int64_t size,
                 std::uint64_t seed);

  std::int64_t size() const {
    return static_cast<std::int64_t>(examples_.size());
  }
  const Example& example(std::int64_t index) const;
  const DatasetConfig& config() const { return config_; }

  /// Stacks examples [first, first+count) into a batch tensor [N, C, H, W]
  /// plus labels.
  void batch(std::int64_t first, std::int64_t count, tensor::Tensor* images,
             std::vector<std::int64_t>* labels) const;

 private:
  DatasetConfig config_;
  std::vector<Example> examples_;
};

/// Generates one example of the configured task (exposed for tests).
Example make_texture_example(const DatasetConfig& config,
                             std::int64_t label, util::Rng& rng);

/// The blob-scale generator (called by make_texture_example when the task
/// is kBlobScale; exposed for tests).
Example make_blob_example(const DatasetConfig& config, std::int64_t label,
                          util::Rng& rng);

}  // namespace fuse::train
