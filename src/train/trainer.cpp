#include "train/trainer.hpp"

#include <cstdio>
#include <memory>

#include "tensor/half.hpp"
#include "train/loss.hpp"
#include "util/check.hpp"

namespace fuse::train {

double evaluate(Module& model, const TextureDataset& data,
                std::int64_t batch_size) {
  std::int64_t correct = 0;
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  for (std::int64_t first = 0; first < data.size(); first += batch_size) {
    const std::int64_t count = std::min(batch_size, data.size() - first);
    data.batch(first, count, &images, &labels);
    const tensor::Tensor logits = model.forward(images);
    const LossResult result = softmax_cross_entropy(logits, labels);
    correct += result.correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TrainResult train_model(Module& model, const TextureDataset& train_data,
                        const TextureDataset& eval_data,
                        const TrainConfig& config) {
  FUSE_CHECK(config.epochs > 0 && config.batch_size > 0)
      << "bad training config";

  std::vector<Parameter*> params;
  model.collect_params(params);
  FUSE_CHECK(!params.empty()) << "model has no parameters";

  std::unique_ptr<Optimizer> optimizer;
  if (config.use_rmsprop) {
    optimizer = std::make_unique<RmsProp>(params, config.lr, /*alpha=*/0.9,
                                          /*momentum=*/0.9, /*eps=*/1e-3,
                                          config.weight_decay);
  } else {
    optimizer = std::make_unique<Sgd>(params, config.lr, /*momentum=*/0.9,
                                      config.weight_decay);
  }

  TrainResult result;
  double lr = config.lr;
  tensor::Tensor images;
  std::vector<std::int64_t> labels;

  // EMA shadow weights (paper §V-A2: exponential moving averages of all
  // weights).
  std::vector<tensor::Tensor> ema;
  if (config.ema_decay > 0.0) {
    FUSE_CHECK(config.ema_decay < 1.0)
        << "EMA decay must be in (0, 1), got " << config.ema_decay;
    ema.reserve(params.size());
    for (const Parameter* p : params) {
      ema.push_back(p->value);
    }
  }

  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::int64_t epoch_correct = 0;
    std::int64_t batches = 0;

    for (std::int64_t first = 0; first < train_data.size();
         first += config.batch_size) {
      const std::int64_t count =
          std::min(config.batch_size, train_data.size() - first);
      train_data.batch(first, count, &images, &labels);
      if (config.fp16) {
        tensor::quantize_half_inplace(images);
      }

      optimizer->zero_grad();
      const tensor::Tensor logits = model.forward(images);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      optimizer->step();
      if (config.fp16) {
        for (Parameter* p : params) {
          tensor::quantize_half_inplace(p->value);
        }
      }
      if (!ema.empty()) {
        const float decay = static_cast<float>(config.ema_decay);
        for (std::size_t i = 0; i < params.size(); ++i) {
          tensor::Tensor& shadow = ema[i];
          const tensor::Tensor& value = params[i]->value;
          for (std::int64_t j = 0; j < shadow.num_elements(); ++j) {
            shadow[j] = decay * shadow[j] + (1.0F - decay) * value[j];
          }
        }
      }

      epoch_loss += loss.loss;
      epoch_correct += loss.correct;
      ++batches;
    }

    lr *= config.lr_decay;
    if (auto* rms = dynamic_cast<RmsProp*>(optimizer.get())) {
      rms->set_lr(lr);
    } else if (auto* sgd = dynamic_cast<Sgd*>(optimizer.get())) {
      sgd->set_lr(lr);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = epoch_loss / static_cast<double>(batches);
    stats.train_accuracy = static_cast<double>(epoch_correct) /
                           static_cast<double>(train_data.size());
    stats.eval_accuracy = evaluate(model, eval_data);
    if (config.verbose) {
      std::printf("epoch %2lld  loss %.4f  train %.3f  eval %.3f\n",
                  static_cast<long long>(epoch), stats.train_loss,
                  stats.train_accuracy, stats.eval_accuracy);
    }
    result.history.push_back(stats);
  }
  result.final_eval_accuracy = result.history.back().eval_accuracy;

  if (!ema.empty()) {
    // Evaluate with EMA weights swapped in, then restore.
    std::vector<tensor::Tensor> saved;
    saved.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      saved.push_back(params[i]->value);
      params[i]->value = ema[i];
    }
    result.final_eval_accuracy_ema = evaluate(model, eval_data);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = saved[i];
    }
  } else {
    result.final_eval_accuracy_ema = result.final_eval_accuracy;
  }
  return result;
}

}  // namespace fuse::train
