#include "train/loss.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fuse::train {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  FUSE_CHECK(logits.shape().rank() == 2)
      << "logits must be [N, classes], got " << logits.shape().to_string();
  const std::int64_t batch = logits.shape().dim(0);
  const std::int64_t classes = logits.shape().dim(1);
  FUSE_CHECK(static_cast<std::int64_t>(labels.size()) == batch)
      << "label count " << labels.size() << " != batch " << batch;

  LossResult result;
  result.grad_logits = tensor::Tensor(logits.shape());
  double total_loss = 0.0;

  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t label = labels[static_cast<std::size_t>(n)];
    FUSE_CHECK(label >= 0 && label < classes)
        << "label " << label << " out of range for " << classes
        << " classes";

    // Stable softmax.
    float max_logit = logits.at(n, 0);
    std::int64_t argmax = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (logits.at(n, c) > max_logit) {
        max_logit = logits.at(n, c);
        argmax = c;
      }
    }
    if (argmax == label) {
      ++result.correct;
    }
    double denom = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(logits.at(n, c) - max_logit));
    }
    const double log_denom = std::log(denom);
    total_loss -=
        static_cast<double>(logits.at(n, label) - max_logit) - log_denom;

    const float inv_batch = 1.0F / static_cast<float>(batch);
    for (std::int64_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(n, c) - max_logit)) / denom;
      result.grad_logits.at(n, c) =
          (static_cast<float>(p) - (c == label ? 1.0F : 0.0F)) * inv_batch;
    }
  }
  result.loss = total_loss / static_cast<double>(batch);
  return result;
}

}  // namespace fuse::train
