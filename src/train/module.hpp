// Minimal training substrate: layer modules with explicit forward/backward.
//
// The paper's accuracy study trains ImageNet models in PyTorch; this repo
// substitutes a small, self-contained C++ substrate able to train tiny
// networks (with depthwise or FuSeConv blocks) on a synthetic dataset and
// reproduce the accuracy *ordering* of Table I. Reverse-mode gradients are
// written per layer and verified against finite differences in tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fuse::train {

using nn::Activation;
using tensor::Shape;
using tensor::Tensor;

/// A learnable tensor and its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Parameter(std::string param_name, Shape shape)
      : name(std::move(param_name)), value(shape), grad(shape) {}

  void zero_grad() { grad.fill(0.0F); }
};

/// Base layer. forward() caches whatever backward() needs; backward()
/// accumulates parameter gradients and returns the input gradient.
class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends pointers to this module's parameters (default: none).
  virtual void collect_params(std::vector<Parameter*>& params);

  virtual std::string name() const = 0;
};

/// Runs children in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Adds a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> module);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Parameter*>& params) override;
  std::string name() const override { return "sequential"; }

  std::size_t size() const { return children_.size(); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

/// Grouped 2-D convolution with bias (covers dense, depthwise, pointwise,
/// and FuSeConv's 1-D branches).
class Conv2d : public Module {
 public:
  Conv2d(std::string layer_name, std::int64_t in_c, std::int64_t out_c,
         std::int64_t kernel_h, std::int64_t kernel_w,
         const nn::Conv2dParams& params, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Parameter*>& params) override;
  std::string name() const override { return name_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::string name_;
  nn::Conv2dParams params_;
  Parameter weight_;  // [out_c, in_c/groups, kh, kw]
  Parameter bias_;    // [out_c]
  Tensor cached_input_;
};

/// Fully connected with bias on [N, F] inputs.
class Linear : public Module {
 public:
  Linear(std::string layer_name, std::int64_t in_f, std::int64_t out_f,
         util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Parameter*>& params) override;
  std::string name() const override { return name_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::string name_;
  Parameter weight_;  // [out_f, in_f]
  Parameter bias_;    // [out_f]
  Tensor cached_input_;
};

/// Elementwise activation layer.
class ActivationLayer : public Module {
 public:
  explicit ActivationLayer(Activation act) : act_(act) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override {
    return nn::activation_name(act_);
  }

 private:
  Activation act_;
  Tensor cached_input_;
};

/// Inverted dropout: training mode zeroes each element with probability p
/// and scales survivors by 1/(1-p) so eval needs no rescaling; eval mode
/// is the identity. The mask is drawn from the module's own deterministic
/// RNG stream.
class Dropout : public Module {
 public:
  Dropout(double drop_probability, std::uint64_t seed);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "dropout"; }

  void set_training(bool training) { training_ = training; }

 private:
  double p_;
  bool training_ = true;
  util::Rng rng_;
  Tensor mask_;  // scaled keep-mask from the last forward
};

/// Batch normalization over [N, C, H, W] (per-channel statistics).
/// Training mode normalizes with batch statistics and updates running
/// estimates; eval mode uses the running estimates (no backward needed).
class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::string layer_name, std::int64_t channels,
              double momentum = 0.1, double eps = 1e-5);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Parameter*>& params) override;
  std::string name() const override { return name_; }

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::string name_;
  double momentum_;
  double eps_;
  bool training_ = true;
  Parameter gamma_;  // [C]
  Parameter beta_;   // [C]
  Tensor running_mean_;
  Tensor running_var_;
  // Cached for backward (training mode).
  Tensor cached_normalized_;  // x_hat
  Tensor cached_inv_std_;     // [C]
};

/// Residual block: output = body(input) + input (shapes must match).
class ResidualBlock : public Module {
 public:
  explicit ResidualBlock(std::unique_ptr<Module> body);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Parameter*>& params) override;
  std::string name() const override { return "residual"; }

  Module& body() { return *body_; }

 private:
  std::unique_ptr<Module> body_;
};

/// [N, C, H, W] -> [N, C, 1, 1] mean over the spatial dims.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "gap"; }

 private:
  Shape cached_shape_;
};

/// [N, C, 1, 1] -> [N, C].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }

 private:
  Shape cached_shape_;
};

}  // namespace fuse::train
