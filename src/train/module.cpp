#include "train/module.hpp"

#include <cmath>

#include "nn/kernels.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"

namespace fuse::train {

void Module::collect_params(std::vector<Parameter*>& params) {
  (void)params;
}

Sequential& Sequential::add(std::unique_ptr<Module> module) {
  FUSE_CHECK(module != nullptr) << "null module";
  children_.push_back(std::move(module));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor current = input;
  for (auto& child : children_) {
    current = child->forward(current);
  }
  return current;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

void Sequential::collect_params(std::vector<Parameter*>& params) {
  for (auto& child : children_) {
    child->collect_params(params);
  }
}

Conv2d::Conv2d(std::string layer_name, std::int64_t in_c, std::int64_t out_c,
               std::int64_t kernel_h, std::int64_t kernel_w,
               const nn::Conv2dParams& params, util::Rng& rng)
    : name_(std::move(layer_name)),
      params_(params),
      weight_(name_ + "/w",
              Shape{out_c, in_c / params.groups, kernel_h, kernel_w}),
      bias_(name_ + "/b", Shape{out_c}) {
  // He-uniform over the fan-in of one output value.
  const double fan_in = static_cast<double>(in_c / params.groups) *
                        static_cast<double>(kernel_h) *
                        static_cast<double>(kernel_w);
  const float bound = static_cast<float>(std::sqrt(6.0 / fan_in));
  weight_.value.fill_uniform(rng, -bound, bound);
  bias_.value.fill(0.0F);
}

Tensor Conv2d::forward(const Tensor& input) {
  cached_input_ = input;
  return nn::conv2d(input, weight_.value, &bias_.value, params_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  FUSE_CHECK(input.num_elements() > 0) << name_ << ": backward before forward";

  if (nn::kernel_backend() == nn::KernelBackend::kFast) {
    // Bit-exact with the loops below: the fast path partitions grad_input
    // over images and the weight/bias gradients over output channels,
    // preserving each accumulator's reference visiting order.
    return nn::kernels::conv2d_backward_fast(input, weight_.value,
                                             grad_output, params_,
                                             &weight_.grad, &bias_.grad);
  }

  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_c = input.shape().dim(1);
  const std::int64_t in_h = input.shape().dim(2);
  const std::int64_t in_w = input.shape().dim(3);
  const std::int64_t out_c = grad_output.shape().dim(1);
  const std::int64_t out_h = grad_output.shape().dim(2);
  const std::int64_t out_w = grad_output.shape().dim(3);
  const std::int64_t kernel_h = weight_.value.shape().dim(2);
  const std::int64_t kernel_w = weight_.value.shape().dim(3);
  const std::int64_t group_in = in_c / params_.groups;
  const std::int64_t group_out = out_c / params_.groups;

  Tensor grad_input(input.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      const std::int64_t group = oc / group_out;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const float go = grad_output.at(n, oc, oy, ox);
          if (go == 0.0F) {
            continue;
          }
          bias_.grad.at(oc) += go;
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            const std::int64_t c = group * group_in + ic;
            for (std::int64_t ky = 0; ky < kernel_h; ++ky) {
              const std::int64_t iy = oy * params_.stride_h -
                                      params_.pad_h + ky * params_.dilation_h;
              if (iy < 0 || iy >= in_h) {
                continue;
              }
              for (std::int64_t kx = 0; kx < kernel_w; ++kx) {
                const std::int64_t ix = ox * params_.stride_w -
                                        params_.pad_w +
                                        kx * params_.dilation_w;
                if (ix < 0 || ix >= in_w) {
                  continue;
                }
                weight_.grad.at(oc, ic, ky, kx) +=
                    go * input.at(n, c, iy, ix);
                grad_input.at(n, c, iy, ix) +=
                    go * weight_.value.at(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2d::collect_params(std::vector<Parameter*>& params) {
  params.push_back(&weight_);
  params.push_back(&bias_);
}

Linear::Linear(std::string layer_name, std::int64_t in_f, std::int64_t out_f,
               util::Rng& rng)
    : name_(std::move(layer_name)),
      weight_(name_ + "/w", Shape{out_f, in_f}),
      bias_(name_ + "/b", Shape{out_f}) {
  const float bound =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_f)));
  weight_.value.fill_uniform(rng, -bound, bound);
  bias_.value.fill(0.0F);
}

Tensor Linear::forward(const Tensor& input) {
  cached_input_ = input;
  return nn::linear(input, weight_.value, &bias_.value);
}

Tensor Linear::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  if (nn::kernel_backend() == nn::KernelBackend::kFast) {
    return nn::kernels::linear_backward_fast(input, weight_.value,
                                             grad_output, &weight_.grad,
                                             &bias_.grad);
  }
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t in_f = input.shape().dim(1);
  const std::int64_t out_f = grad_output.shape().dim(1);

  Tensor grad_input(input.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float go = grad_output.at(n, o);
      if (go == 0.0F) {
        continue;
      }
      bias_.grad.at(o) += go;
      for (std::int64_t i = 0; i < in_f; ++i) {
        weight_.grad.at(o, i) += go * input.at(n, i);
        grad_input.at(n, i) += go * weight_.value.at(o, i);
      }
    }
  }
  return grad_input;
}

void Linear::collect_params(std::vector<Parameter*>& params) {
  params.push_back(&weight_);
  params.push_back(&bias_);
}

Tensor ActivationLayer::forward(const Tensor& input) {
  cached_input_ = input;
  return nn::apply_activation(input, act_);
}

Tensor ActivationLayer::backward(const Tensor& grad_output) {
  FUSE_CHECK(grad_output.shape() == cached_input_.shape())
      << "activation backward shape mismatch";
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.num_elements(); ++i) {
    grad[i] *= nn::activation_grad(cached_input_[i], act_);
  }
  return grad;
}

Dropout::Dropout(double drop_probability, std::uint64_t seed)
    : p_(drop_probability), rng_(seed) {
  FUSE_CHECK(p_ >= 0.0 && p_ < 1.0)
      << "dropout probability must be in [0, 1), got " << p_;
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || p_ == 0.0) {
    mask_ = Tensor();
    return input;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    const bool keep = rng_.uniform() >= p_;
    mask_[i] = keep ? keep_scale : 0.0F;
    out[i] = input[i] * mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.num_elements() == 0) {
    return grad_output;  // eval mode / p == 0: identity
  }
  FUSE_CHECK(grad_output.shape() == mask_.shape())
      << "dropout backward shape mismatch";
  Tensor grad(grad_output.shape());
  for (std::int64_t i = 0; i < grad.num_elements(); ++i) {
    grad[i] = grad_output[i] * mask_[i];
  }
  return grad;
}

BatchNorm2d::BatchNorm2d(std::string layer_name, std::int64_t channels,
                         double momentum, double eps)
    : name_(std::move(layer_name)),
      momentum_(momentum),
      eps_(eps),
      gamma_(name_ + "/gamma", Shape{channels}),
      beta_(name_ + "/beta", Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}) {
  FUSE_CHECK(channels > 0 && momentum > 0.0 && momentum <= 1.0 && eps > 0.0)
      << "bad BatchNorm2d config for " << name_;
  gamma_.value.fill(1.0F);
  running_var_.fill(1.0F);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  FUSE_CHECK(input.shape().rank() == 4 &&
             input.shape().dim(1) == gamma_.value.num_elements())
      << name_ << ": expected NCHW with C=" << gamma_.value.num_elements()
      << ", got " << input.shape().to_string();
  const std::int64_t batch = input.shape().dim(0);
  const std::int64_t channels = input.shape().dim(1);
  const std::int64_t spatial = input.shape().dim(2) * input.shape().dim(3);
  const std::int64_t count = batch * spatial;

  Tensor out(input.shape());
  cached_normalized_ = Tensor(input.shape());
  cached_inv_std_ = Tensor(Shape{channels});

  for (std::int64_t c = 0; c < channels; ++c) {
    double mean = 0.0;
    double var = 0.0;
    if (training_) {
      for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t hw = 0; hw < spatial; ++hw) {
          mean += input[(n * channels + c) * spatial + hw];
        }
      }
      mean /= static_cast<double>(count);
      for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t hw = 0; hw < spatial; ++hw) {
          const double d =
              input[(n * channels + c) * spatial + hw] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * running_mean_[c] + momentum_ * mean);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * running_var_[c] + momentum_ * var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_inv_std_[c] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        const std::int64_t index = (n * channels + c) * spatial + hw;
        const float x_hat =
            (input[index] - static_cast<float>(mean)) * inv_std;
        cached_normalized_[index] = x_hat;
        out[index] = g * x_hat + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  FUSE_CHECK(training_) << name_ << ": backward requires training mode";
  FUSE_CHECK(grad_output.shape() == cached_normalized_.shape())
      << name_ << ": backward shape mismatch";
  const std::int64_t batch = grad_output.shape().dim(0);
  const std::int64_t channels = grad_output.shape().dim(1);
  const std::int64_t spatial =
      grad_output.shape().dim(2) * grad_output.shape().dim(3);
  const double count = static_cast<double>(batch * spatial);

  Tensor grad_input(grad_output.shape());
  for (std::int64_t c = 0; c < channels; ++c) {
    // Accumulate the per-channel reductions the batchnorm gradient needs.
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        const std::int64_t index = (n * channels + c) * spatial + hw;
        sum_dy += grad_output[index];
        sum_dy_xhat += static_cast<double>(grad_output[index]) *
                       static_cast<double>(cached_normalized_[index]);
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const double g_inv_std = static_cast<double>(gamma_.value[c]) *
                             static_cast<double>(cached_inv_std_[c]);
    const double mean_dy = sum_dy / count;
    const double mean_dy_xhat = sum_dy_xhat / count;
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        const std::int64_t index = (n * channels + c) * spatial + hw;
        grad_input[index] = static_cast<float>(
            g_inv_std *
            (static_cast<double>(grad_output[index]) - mean_dy -
             static_cast<double>(cached_normalized_[index]) *
                 mean_dy_xhat));
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_params(std::vector<Parameter*>& params) {
  params.push_back(&gamma_);
  params.push_back(&beta_);
}

ResidualBlock::ResidualBlock(std::unique_ptr<Module> body)
    : body_(std::move(body)) {
  FUSE_CHECK(body_ != nullptr) << "residual block needs a body";
}

Tensor ResidualBlock::forward(const Tensor& input) {
  const Tensor branch = body_->forward(input);
  FUSE_CHECK(branch.shape() == input.shape())
      << "residual body must preserve shape: " << input.shape().to_string()
      << " -> " << branch.shape().to_string();
  return nn::add(branch, input);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  const Tensor grad_branch = body_->backward(grad_output);
  return nn::add(grad_branch, grad_output);
}

void ResidualBlock::collect_params(std::vector<Parameter*>& params) {
  body_->collect_params(params);
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  return nn::global_avg_pool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const std::int64_t batch = cached_shape_.dim(0);
  const std::int64_t channels = cached_shape_.dim(1);
  const std::int64_t spatial = cached_shape_.dim(2) * cached_shape_.dim(3);
  Tensor grad_input(cached_shape_);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float g = grad_output.at(n, c, 0, 0) /
                      static_cast<float>(spatial);
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        grad_input[(n * channels + c) * spatial + hw] = g;
      }
    }
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  const std::int64_t batch = input.shape().dim(0);
  return input.reshaped(
      Shape{batch, input.num_elements() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

}  // namespace fuse::train
