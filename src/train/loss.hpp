// Softmax cross-entropy loss.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fuse::train {

/// Loss value and the gradient with respect to the logits.
struct LossResult {
  double loss = 0.0;              // mean over the batch
  tensor::Tensor grad_logits;     // [N, classes]
  std::int64_t correct = 0;       // argmax == label count
};

/// logits [N, classes], labels[n] in [0, classes).
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace fuse::train
