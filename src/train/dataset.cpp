#include "train/dataset.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fuse::train {

using tensor::Shape;
using tensor::Tensor;

std::string synthetic_task_name(SyntheticTask task) {
  switch (task) {
    case SyntheticTask::kOrientedTextures:
      return "textures";
    case SyntheticTask::kBlobScale:
      return "blobs";
  }
  return "?";
}

Example make_blob_example(const DatasetConfig& config, std::int64_t label,
                          util::Rng& rng) {
  FUSE_CHECK(label >= 0 && label < config.num_classes)
      << "label out of range";
  // Class k has Gaussian blobs of radius r_k; positions are random, so
  // only the scale carries the label.
  const double radius =
      1.0 + 0.8 * static_cast<double>(label);
  const std::int64_t blobs = 3;

  Example ex;
  ex.label = label;
  ex.image = tensor::Tensor(
      Shape{config.channels, config.height, config.width});
  for (std::int64_t b = 0; b < blobs; ++b) {
    const double cy = rng.uniform(radius, config.height - radius);
    const double cx = rng.uniform(radius, config.width - radius);
    const double amplitude = rng.uniform(0.8, 1.2);
    for (std::int64_t c = 0; c < config.channels; ++c) {
      const double gain = 0.7 + 0.3 * static_cast<double>(c % 2);
      for (std::int64_t y = 0; y < config.height; ++y) {
        for (std::int64_t x = 0; x < config.width; ++x) {
          const double dy = static_cast<double>(y) - cy;
          const double dx = static_cast<double>(x) - cx;
          ex.image.at(c, y, x) += static_cast<float>(
              gain * amplitude *
              std::exp(-(dx * dx + dy * dy) / (2.0 * radius * radius)));
        }
      }
    }
  }
  for (std::int64_t i = 0; i < ex.image.num_elements(); ++i) {
    ex.image[i] +=
        static_cast<float>(rng.normal(0.0, config.noise_stddev));
  }
  return ex;
}

Example make_texture_example(const DatasetConfig& config, std::int64_t label,
                             util::Rng& rng) {
  FUSE_CHECK(label >= 0 && label < config.num_classes)
      << "label out of range";
  if (config.task == SyntheticTask::kBlobScale) {
    return make_blob_example(config, label, rng);
  }
  constexpr double kPi = 3.14159265358979323846;

  const double theta =
      static_cast<double>(label) * kPi /
          static_cast<double>(config.num_classes) +
      rng.normal(0.0, 0.03);  // small orientation jitter within the class
  const double frequency = rng.uniform(0.55, 0.95);  // radians per pixel
  const double phase = rng.uniform(0.0, 2.0 * kPi);
  const double dx = std::cos(theta) * frequency;
  const double dy = std::sin(theta) * frequency;

  Example ex;
  ex.label = label;
  ex.image = Tensor(Shape{config.channels, config.height, config.width});
  for (std::int64_t c = 0; c < config.channels; ++c) {
    // Each channel gets its own phase offset and gain so channels carry
    // correlated but not identical information.
    const double channel_phase = phase + static_cast<double>(c) * 0.7;
    const double gain = 0.8 + 0.2 * static_cast<double>(c % 2);
    for (std::int64_t y = 0; y < config.height; ++y) {
      for (std::int64_t x = 0; x < config.width; ++x) {
        const double value =
            gain * std::sin(dx * static_cast<double>(x) +
                            dy * static_cast<double>(y) + channel_phase) +
            rng.normal(0.0, config.noise_stddev);
        ex.image.at(c, y, x) = static_cast<float>(value);
      }
    }
  }
  return ex;
}

TextureDataset::TextureDataset(DatasetConfig config, std::int64_t size,
                               std::uint64_t seed)
    : config_(config) {
  FUSE_CHECK(size > 0) << "dataset size must be positive";
  util::Rng rng(seed);
  examples_.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    const std::int64_t label = i % config_.num_classes;  // balanced classes
    examples_.push_back(make_texture_example(config_, label, rng));
  }
}

const Example& TextureDataset::example(std::int64_t index) const {
  FUSE_CHECK(index >= 0 && index < size()) << "example index out of range";
  return examples_[static_cast<std::size_t>(index)];
}

void TextureDataset::batch(std::int64_t first, std::int64_t count,
                           Tensor* images,
                           std::vector<std::int64_t>* labels) const {
  FUSE_CHECK(images != nullptr && labels != nullptr) << "null outputs";
  FUSE_CHECK(first >= 0 && count > 0 && first + count <= size())
      << "batch [" << first << ", " << first + count
      << ") out of range for dataset of " << size();
  *images = Tensor(Shape{count, config_.channels, config_.height,
                         config_.width});
  labels->resize(static_cast<std::size_t>(count));
  const std::int64_t per_image =
      config_.channels * config_.height * config_.width;
  for (std::int64_t n = 0; n < count; ++n) {
    const Example& ex = example(first + n);
    for (std::int64_t i = 0; i < per_image; ++i) {
      (*images)[n * per_image + i] = ex.image[i];
    }
    (*labels)[static_cast<std::size_t>(n)] = ex.label;
  }
}

}  // namespace fuse::train
