#include "train/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fuse::train {

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  FUSE_CHECK(lr > 0.0) << "learning rate must be positive";
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    tensor::Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < p.value.num_elements(); ++j) {
      const float g =
          p.grad[j] + static_cast<float>(weight_decay_) * p.value[j];
      v[j] = static_cast<float>(momentum_) * v[j] + g;
      p.value[j] -= static_cast<float>(lr_) * v[j];
    }
  }
}

RmsProp::RmsProp(std::vector<Parameter*> params, double lr, double alpha,
                 double momentum, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      alpha_(alpha),
      momentum_(momentum),
      eps_(eps),
      weight_decay_(weight_decay) {
  FUSE_CHECK(lr > 0.0 && alpha > 0.0 && alpha < 1.0 && eps > 0.0)
      << "bad RMSprop hyperparameters";
  square_avg_.reserve(params_.size());
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    square_avg_.emplace_back(p->value.shape());
    velocity_.emplace_back(p->value.shape());
  }
}

void RmsProp::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    tensor::Tensor& sq = square_avg_[i];
    tensor::Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < p.value.num_elements(); ++j) {
      const float g =
          p.grad[j] + static_cast<float>(weight_decay_) * p.value[j];
      sq[j] = static_cast<float>(alpha_) * sq[j] +
              (1.0F - static_cast<float>(alpha_)) * g * g;
      const float update =
          g / (std::sqrt(sq[j]) + static_cast<float>(eps_));
      v[j] = static_cast<float>(momentum_) * v[j] +
             static_cast<float>(lr_) * update;
      p.value[j] -= v[j];
    }
  }
}

}  // namespace fuse::train
