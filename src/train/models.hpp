// Tiny trainable networks for the accuracy study: a MobileNet-V1-style
// stack of separable blocks where each depthwise layer can be kept or
// swapped for a FuSeConv module (Full or Half) — a miniature of the paper's
// drop-in replacement experiment.
#pragma once

#include <memory>

#include "core/transform.hpp"
#include "train/dataset.hpp"
#include "train/module.hpp"

namespace fuse::train {

struct TinyNetConfig {
  std::int64_t in_channels = 3;
  std::int64_t in_size = 16;      // square input
  std::int64_t num_classes = 4;
  std::int64_t stem_channels = 8;
  // Three separable blocks: (out_c, stride).
  std::int64_t block_channels[3] = {16, 16, 32};
  std::int64_t block_strides[3] = {2, 1, 2};
  std::int64_t kernel = 3;
};

/// Builds the tiny network with each depthwise slot in the given mode
/// (kBaseline keeps depthwise, kFull/kHalf swap in FuSeConv).
std::unique_ptr<Sequential> build_tiny_net(const TinyNetConfig& config,
                                           core::FuseMode mode,
                                           util::Rng& rng);

/// A miniature MobileNet-V2: stem conv + BN, two inverted-residual blocks
/// (1x1 expand + BN + ReLU6, depthwise-or-FuSe + BN + ReLU6, linear 1x1
/// project + BN, skip connection when shapes allow), global pool,
/// classifier. The structurally faithful counterpart of the paper's V2
/// study at laptop scale.
std::unique_ptr<Sequential> build_tiny_inverted_net(
    const TinyNetConfig& config, core::FuseMode mode, util::Rng& rng);

}  // namespace fuse::train
