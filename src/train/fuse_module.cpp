#include "train/fuse_module.hpp"

#include "util/check.hpp"

namespace fuse::train {

using core::FuseVariant;

FuseConvModule::FuseConvModule(std::string layer_name,
                               core::FuseConvSpec spec, util::Rng& rng)
    : name_(std::move(layer_name)), spec_(spec) {
  spec_.validate();
  const std::int64_t branch_c = spec_.branch_channels();

  nn::Conv2dParams row_params;
  row_params.stride_h = spec_.stride;
  row_params.stride_w = spec_.stride;
  row_params.pad_h = 0;
  row_params.pad_w = spec_.pad;
  row_params.groups = branch_c;
  row_ = std::make_unique<Conv2d>(name_ + "/row", branch_c, branch_c,
                                  /*kernel_h=*/1, /*kernel_w=*/spec_.kernel,
                                  row_params, rng);

  nn::Conv2dParams col_params;
  col_params.stride_h = spec_.stride;
  col_params.stride_w = spec_.stride;
  col_params.pad_h = spec_.pad;
  col_params.pad_w = 0;
  col_params.groups = branch_c;
  col_ = std::make_unique<Conv2d>(name_ + "/col", branch_c, branch_c,
                                  /*kernel_h=*/spec_.kernel, /*kernel_w=*/1,
                                  col_params, rng);
}

Tensor FuseConvModule::forward(const Tensor& input) {
  FUSE_CHECK(input.shape().rank() == 4 &&
             input.shape().dim(1) == spec_.channels)
      << name_ << ": expected NCHW with C=" << spec_.channels << ", got "
      << input.shape().to_string();
  cached_input_shape_ = input.shape();
  const std::int64_t branch_c = spec_.branch_channels();

  const Tensor row_in = spec_.variant == FuseVariant::kFull
                            ? input
                            : core::slice_channels(input, 0, branch_c);
  const Tensor col_in =
      spec_.variant == FuseVariant::kFull
          ? input
          : core::slice_channels(input, branch_c, branch_c);
  return nn::concat_channels(row_->forward(row_in), col_->forward(col_in));
}

Tensor FuseConvModule::backward(const Tensor& grad_output) {
  const std::int64_t branch_c = spec_.branch_channels();
  FUSE_CHECK(grad_output.shape().dim(1) == 2 * branch_c)
      << name_ << ": grad channels " << grad_output.shape().dim(1)
      << " != " << 2 * branch_c;

  const Tensor grad_row_out =
      core::slice_channels(grad_output, 0, branch_c);
  const Tensor grad_col_out =
      core::slice_channels(grad_output, branch_c, branch_c);
  const Tensor grad_row_in = row_->backward(grad_row_out);
  const Tensor grad_col_in = col_->backward(grad_col_out);

  Tensor grad_input(cached_input_shape_);
  if (spec_.variant == FuseVariant::kFull) {
    // Both branches consumed the full input: gradients sum.
    for (std::int64_t i = 0; i < grad_input.num_elements(); ++i) {
      grad_input[i] = grad_row_in[i] + grad_col_in[i];
    }
  } else {
    // Half: each branch consumed a disjoint channel slice.
    const std::int64_t batch = cached_input_shape_.dim(0);
    const std::int64_t spatial =
        cached_input_shape_.dim(2) * cached_input_shape_.dim(3);
    const std::int64_t channels = cached_input_shape_.dim(1);
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t c = 0; c < branch_c; ++c) {
        for (std::int64_t hw = 0; hw < spatial; ++hw) {
          grad_input[(n * channels + c) * spatial + hw] =
              grad_row_in[(n * branch_c + c) * spatial + hw];
          grad_input[(n * channels + branch_c + c) * spatial + hw] =
              grad_col_in[(n * branch_c + c) * spatial + hw];
        }
      }
    }
  }
  return grad_input;
}

void FuseConvModule::collect_params(std::vector<Parameter*>& params) {
  row_->collect_params(params);
  col_->collect_params(params);
}

}  // namespace fuse::train
