#include "train/models.hpp"

#include "train/fuse_module.hpp"
#include "util/check.hpp"

namespace fuse::train {

using core::FuseConvSpec;
using core::FuseMode;

std::unique_ptr<Sequential> build_tiny_net(const TinyNetConfig& config,
                                           FuseMode mode, util::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  std::int64_t c = config.in_channels;
  std::int64_t size = config.in_size;

  // Stem: dense 3x3.
  {
    nn::Conv2dParams p;
    p.pad_h = 1;
    p.pad_w = 1;
    net->add(std::make_unique<Conv2d>("stem", c, config.stem_channels, 3, 3,
                                      p, rng));
    net->add(std::make_unique<ActivationLayer>(Activation::kRelu));
    c = config.stem_channels;
  }

  for (int i = 0; i < 3; ++i) {
    const std::int64_t out_c = config.block_channels[i];
    const std::int64_t stride = config.block_strides[i];
    const std::string prefix = "block" + std::to_string(i);

    if (mode == FuseMode::kBaseline) {
      nn::Conv2dParams dw;
      dw.stride_h = stride;
      dw.stride_w = stride;
      dw.pad_h = config.kernel / 2;
      dw.pad_w = config.kernel / 2;
      dw.groups = c;
      net->add(std::make_unique<Conv2d>(prefix + "/dw", c, c, config.kernel,
                                        config.kernel, dw, rng));
    } else {
      FuseConvSpec spec;
      spec.channels = c;
      spec.in_h = size;
      spec.in_w = size;
      spec.kernel = config.kernel;
      spec.stride = stride;
      spec.pad = config.kernel / 2;
      spec.variant = core::fuse_mode_variant(mode);
      net->add(std::make_unique<FuseConvModule>(prefix + "/fuse", spec, rng));
      c = spec.out_channels();
    }
    net->add(std::make_unique<ActivationLayer>(Activation::kRelu));
    size = (size + stride - 1) / stride;  // 'same' padding geometry

    nn::Conv2dParams pw;
    net->add(std::make_unique<Conv2d>(prefix + "/pw", c, out_c, 1, 1, pw,
                                      rng));
    net->add(std::make_unique<ActivationLayer>(Activation::kRelu));
    c = out_c;
  }

  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>("classifier", c, config.num_classes,
                                    rng));
  return net;
}

namespace {

/// The depthwise-or-FuSe middle stage of an inverted-residual block,
/// followed by BN + ReLU6. Returns the resulting channel count (doubles
/// for FuSe-Full).
std::int64_t add_spatial_stage(Sequential& body, const std::string& prefix,
                               std::int64_t channels, std::int64_t size,
                               std::int64_t kernel, std::int64_t stride,
                               FuseMode mode, util::Rng& rng) {
  std::int64_t out_c = channels;
  if (mode == FuseMode::kBaseline) {
    nn::Conv2dParams dw;
    dw.stride_h = stride;
    dw.stride_w = stride;
    dw.pad_h = kernel / 2;
    dw.pad_w = kernel / 2;
    dw.groups = channels;
    body.add(std::make_unique<Conv2d>(prefix + "/dw", channels, channels,
                                      kernel, kernel, dw, rng));
  } else {
    FuseConvSpec spec;
    spec.channels = channels;
    spec.in_h = size;
    spec.in_w = size;
    spec.kernel = kernel;
    spec.stride = stride;
    spec.pad = kernel / 2;
    spec.variant = core::fuse_mode_variant(mode);
    body.add(std::make_unique<FuseConvModule>(prefix + "/fuse", spec, rng));
    out_c = spec.out_channels();
  }
  body.add(std::make_unique<BatchNorm2d>(prefix + "/bn2", out_c));
  body.add(std::make_unique<ActivationLayer>(Activation::kRelu6));
  return out_c;
}

/// Appends one inverted-residual block; returns the new spatial size.
std::int64_t add_inverted_block(Sequential& net, const std::string& prefix,
                                std::int64_t& channels, std::int64_t size,
                                std::int64_t out_c, std::int64_t stride,
                                FuseMode mode, util::Rng& rng) {
  const std::int64_t expand_c = channels * 2;
  const bool has_skip = (stride == 1 && channels == out_c);

  auto body = std::make_unique<Sequential>();
  nn::Conv2dParams pw;
  body->add(std::make_unique<Conv2d>(prefix + "/expand", channels, expand_c,
                                     1, 1, pw, rng));
  body->add(std::make_unique<BatchNorm2d>(prefix + "/bn1", expand_c));
  body->add(std::make_unique<ActivationLayer>(Activation::kRelu6));

  const std::int64_t mid_c =
      add_spatial_stage(*body, prefix, expand_c, size, 3, stride, mode, rng);

  body->add(std::make_unique<Conv2d>(prefix + "/project", mid_c, out_c, 1,
                                     1, pw, rng));
  body->add(std::make_unique<BatchNorm2d>(prefix + "/bn3", out_c));

  if (has_skip) {
    net.add(std::make_unique<ResidualBlock>(std::move(body)));
  } else {
    net.add(std::move(body));
  }
  channels = out_c;
  return (size + stride - 1) / stride;
}

}  // namespace

std::unique_ptr<Sequential> build_tiny_inverted_net(
    const TinyNetConfig& config, FuseMode mode, util::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  std::int64_t c = config.in_channels;
  std::int64_t size = config.in_size;

  nn::Conv2dParams stem;
  stem.pad_h = 1;
  stem.pad_w = 1;
  stem.stride_h = 2;
  stem.stride_w = 2;
  net->add(std::make_unique<Conv2d>("stem", c, config.stem_channels, 3, 3,
                                    stem, rng));
  net->add(std::make_unique<BatchNorm2d>("stem/bn", config.stem_channels));
  net->add(std::make_unique<ActivationLayer>(Activation::kRelu6));
  c = config.stem_channels;
  size = (size + 1) / 2;

  size = add_inverted_block(*net, "block0", c, size,
                            config.block_channels[0], /*stride=*/1, mode,
                            rng);
  size = add_inverted_block(*net, "block1", c, size,
                            config.block_channels[0], /*stride=*/1, mode,
                            rng);  // same width: exercises the skip path

  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>("classifier", c, config.num_classes,
                                    rng));
  return net;
}

}  // namespace fuse::train
