// Trainable FuSeConv block (the drop-in module the paper swaps for each
// depthwise layer): 1xK row-conv branch + Kx1 col-conv branch over channel
// slices, outputs concatenated. D = 1 (Full) or 2 (Half), exactly matching
// core::FuseConvStage semantics — tests assert the forward pass is
// identical.
#pragma once

#include <memory>

#include "core/fuseconv.hpp"
#include "train/module.hpp"

namespace fuse::train {

class FuseConvModule : public Module {
 public:
  FuseConvModule(std::string layer_name, core::FuseConvSpec spec,
                 util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<Parameter*>& params) override;
  std::string name() const override { return name_; }

  const core::FuseConvSpec& spec() const { return spec_; }
  Conv2d& row_branch() { return *row_; }
  Conv2d& col_branch() { return *col_; }

 private:
  std::string name_;
  core::FuseConvSpec spec_;
  std::unique_ptr<Conv2d> row_;  // 1xK grouped conv on C/D channels
  std::unique_ptr<Conv2d> col_;  // Kx1 grouped conv on C/D channels
  Shape cached_input_shape_;
};

}  // namespace fuse::train
