// Optimizers. RMSprop matches the paper's training setup (§V-A2: rmsprop
// with momentum 0.9, exponential LR decay); SGD is kept for tests.
#pragma once

#include <vector>

#include "train/module.hpp"

namespace fuse::train {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) {
      p->zero_grad();
    }
  }

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// RMSprop with momentum (the paper's optimizer).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Parameter*> params, double lr, double alpha = 0.9,
          double momentum = 0.9, double eps = 1e-3,
          double weight_decay = 0.0);

  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double alpha_;
  double momentum_;
  double eps_;
  double weight_decay_;
  std::vector<tensor::Tensor> square_avg_;
  std::vector<tensor::Tensor> velocity_;
};

}  // namespace fuse::train
