// Backend dispatch for the cycle-accurate simulator (see sim.hpp).
//
// The engines themselves live in sim_reference.cpp (per-cycle PE sweep,
// the oracle) and sim_fast.cpp (closed-form wavefront intervals,
// fold-parallel). This file owns what is common to both: the process-wide
// backend/pool state (mirroring nn/kernels.cpp), the public entry points
// that route to an engine, plan simulation, and heatmap rendering.
#include "systolic/sim.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace fuse::systolic {

using tensor::Shape;
using tensor::Tensor;

namespace {

// ---------------------------------------------------------------------------
// Backend + pool state (the nn/kernels.cpp pattern)
// ---------------------------------------------------------------------------

SimBackend backend_from_env() {
  const char* env = std::getenv("FUSE_SIM_BACKEND");
  if (env == nullptr || env[0] == '\0') {
    return SimBackend::kFast;
  }
  SimBackend backend;
  FUSE_CHECK(parse_sim_backend(env, &backend))
      << "FUSE_SIM_BACKEND must be 'fast' or 'reference', got '" << env
      << "'";
  return backend;
}

std::atomic<SimBackend>& backend_state() {
  static std::atomic<SimBackend> state{backend_from_env()};
  return state;
}

int threads_from_env() {
  const char* env = std::getenv("FUSE_SIM_THREADS");
  if (env == nullptr || env[0] == '\0') {
    return util::ThreadPool::hardware_threads();
  }
  const int threads = std::atoi(env);
  FUSE_CHECK(threads >= 1)
      << "FUSE_SIM_THREADS must be >= 1, got '" << env << "'";
  return threads;
}

struct PoolState {
  int threads = threads_from_env();
  std::unique_ptr<util::ThreadPool> pool;
};

PoolState& pool_state() {
  static PoolState state;
  return state;
}

// ---------------------------------------------------------------------------
// Telemetry (docs/observability.md catalog, "sim.*")
// ---------------------------------------------------------------------------

void count_dispatch(SimBackend backend) {
  static util::Counter& fast = util::metrics().counter("sim.dispatch.fast");
  static util::Counter& reference =
      util::metrics().counter("sim.dispatch.reference");
  (backend == SimBackend::kFast ? fast : reference).add();
}

}  // namespace

SimBackend sim_backend() { return backend_state().load(); }

void set_sim_backend(SimBackend backend) { backend_state().store(backend); }

bool parse_sim_backend(const std::string& name, SimBackend* out) {
  if (name == "fast") {
    *out = SimBackend::kFast;
    return true;
  }
  if (name == "reference" || name == "ref") {
    *out = SimBackend::kReference;
    return true;
  }
  return false;
}

const char* sim_backend_name(SimBackend backend) {
  return backend == SimBackend::kFast ? "fast" : "reference";
}

int sim_threads() { return pool_state().threads; }

void set_sim_threads(int threads) {
  FUSE_CHECK(threads >= 1) << "sim threads must be >= 1, got " << threads;
  PoolState& state = pool_state();
  state.threads = threads;
  // N total threads = N - 1 workers + the calling thread participating in
  // parallel_for; ThreadPool(0) runs fully inline.
  state.pool = std::make_unique<util::ThreadPool>(threads - 1);
}

util::ThreadPool& sim_pool() {
  PoolState& state = pool_state();
  if (!state.pool) {
    state.pool = std::make_unique<util::ThreadPool>(state.threads - 1);
  }
  return *state.pool;
}

SystolicArraySim::SystolicArraySim(ArrayConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  // The cycle-accurate sims model the fully pipelined array (one register
  // stage per PE). Transparent configs change the skew/drain geometry the
  // sims hard-code, so the analytic model is the only oracle for them.
  FUSE_CHECK(cfg_.pipelining == Pipelining::kPipelined)
      << "SystolicArraySim models fully pipelined arrays only; got "
      << pipelining_name(cfg_.pipelining);
}

SimResult SystolicArraySim::matmul(const Tensor& a, const Tensor& b) {
  switch (cfg_.dataflow) {
    case Dataflow::kOutputStationary:
      return matmul_os(a, b);
    case Dataflow::kWeightStationary:
      return matmul_ws(a, b);
    case Dataflow::kInputStationary:
      return matmul_is(a, b);
  }
  FUSE_CHECK(false) << "unknown dataflow";
  return {};
}

SimResult SystolicArraySim::matmul_os(const Tensor& a, const Tensor& b) {
  const SimBackend backend = sim_backend();
  count_dispatch(backend);
  return backend == SimBackend::kFast ? matmul_os_fast(a, b)
                                      : matmul_os_reference(a, b);
}

SimResult SystolicArraySim::matmul_ws(const Tensor& a, const Tensor& b) {
  const SimBackend backend = sim_backend();
  count_dispatch(backend);
  return backend == SimBackend::kFast ? matmul_ws_fast(a, b)
                                      : matmul_ws_reference(a, b);
}

SimResult SystolicArraySim::matmul_is(const Tensor& a, const Tensor& b) {
  const SimBackend backend = sim_backend();
  count_dispatch(backend);
  return backend == SimBackend::kFast ? matmul_is_fast(a, b)
                                      : matmul_is_reference(a, b);
}

SimResult SystolicArraySim::conv1d_broadcast(const Tensor& lines,
                                             const Tensor& kernels) {
  const SimBackend backend = sim_backend();
  count_dispatch(backend);
  return backend == SimBackend::kFast
             ? conv1d_broadcast_fast(lines, kernels)
             : conv1d_broadcast_reference(lines, kernels);
}

SimResult SystolicArraySim::run_plan(const MappingPlan& plan) {
  SimResult total;
  // Scaled busy counts are summed in exact integers (the per-call tensors
  // hold integer-valued floats) and converted once at the end.
  std::vector<std::uint64_t> busy(
      static_cast<std::size_t>(cfg_.rows * cfg_.cols), 0);
  for (const PrimitiveOp& op : plan.ops) {
    // Operand values are irrelevant to the measured cost (busy cycles are
    // a function of tile geometry only), so zero tensors suffice; one
    // repeat is simulated and the counters scaled.
    SimResult unit;
    switch (op.kind) {
      case PrimitiveKind::kMatmulTile:
      case PrimitiveKind::kIm2colTile:
      case PrimitiveKind::kChannelwiseTile:
        unit = matmul(Tensor(Shape{op.m, op.k}), Tensor(Shape{op.k, op.n}));
        break;
      case PrimitiveKind::kFuse1DLine:
        if (op.broadcast) {
          unit = conv1d_broadcast(
              Tensor(Shape{op.lines, op.line_out + op.taps - 1}),
              Tensor(Shape{op.lines, op.taps}));
        } else {
          unit = matmul(Tensor(Shape{op.line_out, op.taps}),
                        Tensor(Shape{op.taps, 1}));
        }
        break;
    }
    const std::uint64_t repeats = static_cast<std::uint64_t>(op.repeats);
    total.cycles += unit.cycles * repeats;
    total.folds += unit.folds * repeats;
    total.mac_ops += unit.mac_ops * repeats;
    for (std::size_t i = 0; i < busy.size(); ++i) {
      busy[i] += static_cast<std::uint64_t>(
                     unit.pe_busy[static_cast<std::int64_t>(i)]) *
                 repeats;
    }
  }
  total.pe_busy = Tensor(Shape{cfg_.rows, cfg_.cols});
  for (std::size_t i = 0; i < busy.size(); ++i) {
    total.pe_busy[static_cast<std::int64_t>(i)] =
        static_cast<float>(busy[i]);
  }
  return total;
}

std::string render_pe_heatmap(const Tensor& pe_busy) {
  FUSE_CHECK(pe_busy.shape().rank() == 2)
      << "pe_busy must be [rows, cols], got " << pe_busy.shape().to_string();
  const float peak = pe_busy.abs_max();
  std::string out;
  const std::int64_t rows = pe_busy.shape().dim(0);
  const std::int64_t cols = pe_busy.shape().dim(1);
  out.reserve(static_cast<std::size_t>(rows * (cols + 1)));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const float v = pe_busy.at(r, c);
      if (v <= 0.0F) {
        out.push_back('.');
      } else {
        const int level =
            1 + static_cast<int>(8.0F * v / peak);  // 1..9
        out.push_back(static_cast<char>('0' + std::min(level, 9)));
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace fuse::systolic
