#include "systolic/mapping.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/telemetry.hpp"

namespace fuse::systolic {

using nn::LayerDesc;
using nn::OpKind;

std::string primitive_kind_name(PrimitiveKind kind) {
  switch (kind) {
    case PrimitiveKind::kMatmulTile:
      return "matmul";
    case PrimitiveKind::kIm2colTile:
      return "im2col";
    case PrimitiveKind::kChannelwiseTile:
      return "channelwise";
    case PrimitiveKind::kFuse1DLine:
      return "fuse1d";
  }
  return "?";
}

LatencyEstimate PrimitiveOp::total() const {
  FUSE_CHECK(repeats >= 1) << "primitive op with repeats=" << repeats;
  const std::uint64_t r = static_cast<std::uint64_t>(repeats);
  LatencyEstimate est;
  est.pe_count = unit.pe_count;
  est.cycles = unit.cycles * r;
  est.folds = unit.folds * r;
  est.mac_ops = unit.mac_ops * r;
  return est;
}

LatencyEstimate MappingPlan::total_latency() const {
  LatencyEstimate est;
  est.pe_count = pe_count;
  for (const PrimitiveOp& op : ops) {
    est += op.total();
  }
  return est;
}

std::string MappingPlan::to_string() const {
  std::ostringstream out;
  for (const PrimitiveOp& op : ops) {
    const LatencyEstimate tot = op.total();
    out << primitive_kind_name(op.kind);
    switch (op.kind) {
      case PrimitiveKind::kMatmulTile:
      case PrimitiveKind::kChannelwiseTile:
        out << " m=" << op.m << " k=" << op.k << " n=" << op.n;
        break;
      case PrimitiveKind::kIm2colTile:
        out << " m=" << op.m << " k=" << op.k << " n=" << op.n << " taps="
            << op.taps_h << "x" << op.taps_w;
        break;
      case PrimitiveKind::kFuse1DLine:
        out << " lines=" << op.lines << " out=" << op.line_out;
        if (op.line_keep != op.line_out) {
          out << " keep=" << op.line_keep;
        }
        out << " taps=" << op.taps
            << (op.broadcast ? " broadcast" : " no-broadcast");
        break;
    }
    if (op.repeats != 1) {
      out << " x" << op.repeats;
    }
    out << ": " << tot.cycles << " cycles, " << tot.folds << " folds, "
        << tot.mac_ops << " macs\n";
  }
  return out.str();
}

namespace {

PrimitiveOp matmul_shaped(PrimitiveKind kind, std::int64_t m, std::int64_t k,
                          std::int64_t n, std::int64_t repeats,
                          const ArrayConfig& cfg) {
  PrimitiveOp op;
  op.kind = kind;
  op.m = m;
  op.k = k;
  op.n = n;
  op.repeats = repeats;
  op.unit = matmul_latency(m, k, n, cfg);
  return op;
}

/// Dense width the shift-register flow must compute along a strided line
/// (ArrayConfig::strided_fuse_dense_compute); `keep` outputs survive.
std::int64_t fuse_dense_width(std::int64_t keep, std::int64_t in,
                              std::int64_t pad, std::int64_t taps,
                              std::int64_t stride, const ArrayConfig& cfg) {
  if (cfg.strided_fuse_dense_compute && stride > 1) {
    return in + 2 * pad - taps + 1;
  }
  return keep;
}

PrimitiveOp fuse_lines(std::int64_t lines, std::int64_t line_out,
                       std::int64_t line_keep, std::int64_t taps,
                       const ArrayConfig& cfg) {
  PrimitiveOp op;
  op.kind = PrimitiveKind::kFuse1DLine;
  op.lines = lines;
  op.line_out = line_out;
  op.line_keep = line_keep;
  op.taps = taps;
  op.broadcast = cfg.broadcast_links;
  if (cfg.broadcast_links) {
    op.unit = fuse1d_latency(lines, line_out, taps, cfg);
  } else {
    // Without the per-row bus each line degrades to a serialized
    // single-column matmul (the ablation that motivates the links).
    op.unit = matmul_latency(line_out, taps, /*n=*/1, cfg);
    op.repeats = lines;
  }
  return op;
}

void check_grouped(const LayerDesc& layer) {
  FUSE_CHECK(layer.groups > 0 && layer.in_c % layer.groups == 0 &&
             layer.out_c % layer.groups == 0)
      << "grouped conv channels not divisible by groups for layer "
      << layer.name << " (in_c=" << layer.in_c << ", out_c=" << layer.out_c
      << ", groups=" << layer.groups << ")";
}

/// Shared by lower() and lower_batched(): `m_scale` multiplies the
/// output-position dimension (1 for single-image inference).
/// Per-kind primitive-op counters ("mapping.ops.<kind>" — the lowered
/// instruction mix) plus plan and array-pass totals.
void record_plan_metrics(const MappingPlan& plan) {
  static util::Counter& plans = util::metrics().counter("mapping.plans");
  static util::Counter& matmul =
      util::metrics().counter("mapping.ops.matmul");
  static util::Counter& im2col =
      util::metrics().counter("mapping.ops.im2col");
  static util::Counter& channelwise =
      util::metrics().counter("mapping.ops.channelwise");
  static util::Counter& fuse1d =
      util::metrics().counter("mapping.ops.fuse1d");
  static util::Counter& passes =
      util::metrics().counter("mapping.array_passes");
  plans.add();
  for (const PrimitiveOp& op : plan.ops) {
    switch (op.kind) {
      case PrimitiveKind::kMatmulTile:
        matmul.add();
        break;
      case PrimitiveKind::kIm2colTile:
        im2col.add();
        break;
      case PrimitiveKind::kChannelwiseTile:
        channelwise.add();
        break;
      case PrimitiveKind::kFuse1DLine:
        fuse1d.add();
        break;
    }
    passes.add(static_cast<std::uint64_t>(op.repeats));
  }
}

MappingPlan lower_impl(const LayerDesc& layer, const ArrayConfig& cfg,
                       std::int64_t m_scale, bool allow_channelwise) {
  cfg.validate();
  MappingPlan plan;
  plan.pe_count = cfg.pe_count();
  const std::int64_t positions = m_scale * layer.out_h * layer.out_w;
  switch (layer.kind) {
    case OpKind::kStandardConv:
      if (allow_channelwise &&
          cfg.standard_conv_mapping == StandardConvMapping::kChannelwise) {
        // One matmul per kernel tap (Fig. 3(b)); the adder tree reduces
        // partials, so the taps are pure repeats.
        plan.ops.push_back(matmul_shaped(
            PrimitiveKind::kChannelwiseTile, positions, layer.in_c,
            layer.out_c, /*repeats=*/layer.kernel_h * layer.kernel_w, cfg));
      } else {
        PrimitiveOp op = matmul_shaped(
            PrimitiveKind::kIm2colTile, positions,
            layer.kernel_h * layer.kernel_w * layer.in_c, layer.out_c,
            /*repeats=*/1, cfg);
        op.taps_h = layer.kernel_h;
        op.taps_w = layer.kernel_w;
        plan.ops.push_back(op);
      }
      break;
    case OpKind::kGroupedConv: {
      check_grouped(layer);
      // Each group is an independent im2col matmul over its own channels.
      PrimitiveOp op = matmul_shaped(
          PrimitiveKind::kIm2colTile, positions,
          layer.kernel_h * layer.kernel_w * (layer.in_c / layer.groups),
          layer.out_c / layer.groups, /*repeats=*/layer.groups, cfg);
      op.taps_h = layer.kernel_h;
      op.taps_w = layer.kernel_w;
      plan.ops.push_back(op);
      break;
    }
    case OpKind::kDepthwiseConv: {
      // One single-column matmul per channel — the §III-B pathology.
      // Different channels read different inputs, so the idle columns
      // cannot be shared and the channels serialize. Rectangular kernels
      // keep their window as taps_h x taps_w.
      PrimitiveOp op = matmul_shaped(
          PrimitiveKind::kIm2colTile, positions,
          layer.kernel_h * layer.kernel_w, /*n=*/1,
          /*repeats=*/layer.out_c, cfg);
      op.taps_h = layer.kernel_h;
      op.taps_w = layer.kernel_w;
      plan.ops.push_back(op);
      break;
    }
    case OpKind::kPointwiseConv:
      plan.ops.push_back(matmul_shaped(PrimitiveKind::kMatmulTile, positions,
                                       layer.in_c, layer.out_c,
                                       /*repeats=*/1, cfg));
      break;
    case OpKind::kFuseRowConv:
      // One 1-D convolution per (channel, output row): strided rows are
      // whole lines and ARE skipped; along the convolved axis a strided
      // layer computes the dense width and keeps every stride-th output.
      plan.ops.push_back(fuse_lines(
          m_scale * layer.out_c * layer.out_h,
          fuse_dense_width(layer.out_w, layer.in_w, layer.pad_w,
                           layer.kernel_w, layer.stride_w, cfg),
          layer.out_w, layer.kernel_w, cfg));
      break;
    case OpKind::kFuseColConv:
      plan.ops.push_back(fuse_lines(
          m_scale * layer.out_c * layer.out_w,
          fuse_dense_width(layer.out_h, layer.in_h, layer.pad_h,
                           layer.kernel_h, layer.stride_h, cfg),
          layer.out_h, layer.kernel_h, cfg));
      break;
    case OpKind::kFullyConnected:
      // m_scale is the batch here: it fills otherwise-idle array rows.
      plan.ops.push_back(matmul_shaped(PrimitiveKind::kMatmulTile, m_scale,
                                       layer.in_c, layer.out_c,
                                       /*repeats=*/1, cfg));
      break;
    case OpKind::kAvgPool:
    case OpKind::kMaxPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kActivation:
    case OpKind::kElementwiseAdd:
      break;  // zero array cycles: the plan stays empty
  }
  record_plan_metrics(plan);
  return plan;
}

}  // namespace

MappingPlan lower(const LayerDesc& layer, const ArrayConfig& cfg) {
  return lower_impl(layer, cfg, /*m_scale=*/1, /*allow_channelwise=*/true);
}

MappingPlan lower_batched(const LayerDesc& layer, const ArrayConfig& cfg,
                          std::int64_t batch) {
  FUSE_CHECK(batch >= 1) << "batch must be >= 1";
  return lower_impl(layer, cfg, /*m_scale=*/batch,
                    /*allow_channelwise=*/false);
}

TrafficEstimate plan_traffic(const MappingPlan& plan, const ArrayConfig& cfg,
                             const MemoryConfig& mem) {
  TrafficEstimate traffic;
  for (const PrimitiveOp& op : plan.ops) {
    const std::uint64_t repeats = static_cast<std::uint64_t>(op.repeats);
    switch (op.kind) {
      case PrimitiveKind::kMatmulTile:
      case PrimitiveKind::kIm2colTile: {
        const TrafficEstimate per = matmul_traffic(op.m, op.k, op.n, cfg, mem);
        traffic.input_bytes += per.input_bytes * repeats;
        traffic.weight_bytes += per.weight_bytes * repeats;
        traffic.output_bytes += per.output_bytes * repeats;
        break;
      }
      case PrimitiveKind::kChannelwiseTile: {
        // Per-tap operand streams scale with the repeats, but the adder
        // tree reduces partials on-chip: the output leaves once.
        const TrafficEstimate per = matmul_traffic(op.m, op.k, op.n, cfg, mem);
        traffic.input_bytes += per.input_bytes * repeats;
        traffic.weight_bytes += per.weight_bytes * repeats;
        traffic.output_bytes += per.output_bytes;
        break;
      }
      case PrimitiveKind::kFuse1DLine:
        // Window reads fold over the KEPT outputs: dense positions a
        // strided layer computes and discards shift through the array
        // without extra DRAM reads. Same traffic with or without
        // broadcast links — the ablation varies compute only.
        traffic += fuse1d_traffic(op.lines, op.line_keep, op.taps, cfg, mem);
        break;
    }
  }
  return traffic;
}

}  // namespace fuse::systolic
