// The array-mapping IR: every layer is lowered to an ordered list of
// primitive array operations before anything computes cycles, simulates,
// executes, or traces it.
//
//   LayerDesc --lower()--> MappingPlan --fold/simulate/execute/trace
//
// The paper's central claim — FuSeConv fills both dimensions of the array
// while depthwise convolution occupies one column (§III-B vs §IV-C) — is
// encoded exactly once, here, as the choice of primitive and its dims.
// The analytic model (sched/latency.cpp), the PE-grid simulator
// (sim.hpp run_plan), the layer executor (sched/execute.cpp), and the
// fold tracer (trace.hpp plan_trace) all consume the same plan, so a new
// dataflow or mapping variant is added in one place and every consumer
// follows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "systolic/config.hpp"
#include "systolic/cycle_model.hpp"
#include "systolic/memory.hpp"

namespace fuse::systolic {

/// The four ways a layer's work lands on the array.
enum class PrimitiveKind {
  /// Dense [m, k] x [k, n] matmul on the configured dataflow.
  kMatmulTile,
  /// Matmul whose A operand is a lowered im2col patch matrix; taps_h/taps_w
  /// record the kernel window (rectangular kernels supported). Depthwise
  /// convolution is the degenerate n = 1 case repeated per channel.
  kIm2colTile,
  /// Channel-wise standard-conv mapping (paper Fig. 3(b)): one
  /// [m, k] x [k, n] matmul per kernel tap (`repeats` taps), partials
  /// reduced by the accelerator's adder tree so the output leaves once.
  kChannelwiseTile,
  /// FuSe 1-D convolution lines. With `broadcast` each array row convolves
  /// one line under the per-row weight bus (paper Fig. 7); without it each
  /// line degrades to a serialized [line_out, taps] x [taps, 1] matmul.
  kFuse1DLine,
};

std::string primitive_kind_name(PrimitiveKind kind);

/// One primitive array op. `repeats` counts back-to-back executions of the
/// identical primitive (depthwise channels, conv groups, channel-wise
/// taps, broadcast-less lines); `unit` is the cost of ONE repeat, computed
/// from the cycle-model formulas at lower() time.
struct PrimitiveOp {
  PrimitiveKind kind = PrimitiveKind::kMatmulTile;

  // Matmul-shaped dims (kMatmulTile / kIm2colTile / kChannelwiseTile).
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;
  // Kernel window behind an im2col depth (k == taps_h * taps_w * channels).
  std::int64_t taps_h = 1;
  std::int64_t taps_w = 1;

  // 1-D line dims (kFuse1DLine). `line_out` is the width actually computed
  // (the dense width under strided_fuse_dense_compute); `line_keep` the
  // outputs retained after stride discard.
  std::int64_t lines = 0;
  std::int64_t line_out = 0;
  std::int64_t line_keep = 0;
  std::int64_t taps = 0;
  bool broadcast = false;

  std::int64_t repeats = 1;
  LatencyEstimate unit;

  /// `unit` scaled by `repeats` (every repeat is an identical array pass,
  /// so cycles, folds, and MACs all scale linearly).
  LatencyEstimate total() const;
};

/// The lowered form of one layer: primitives run back-to-back on the
/// array. Glue ops (pool/activation/add) lower to an empty plan — they
/// cost zero array cycles in the paper's methodology.
struct MappingPlan {
  std::vector<PrimitiveOp> ops;
  std::int64_t pe_count = 0;

  /// Fold of the per-primitive costs; equals sched::layer_latency.
  LatencyEstimate total_latency() const;

  /// Human-readable one-line-per-op dump (pinned by golden snapshots in
  /// tests/test_mapping.cpp).
  std::string to_string() const;
};

/// Lowers one layer (batch 1) onto the array. Checks geometry: grouped
/// convolutions must have channel counts divisible by `groups`.
MappingPlan lower(const nn::LayerDesc& layer, const ArrayConfig& cfg);

/// Batched lowering: the batch stacks along the output-position dimension
/// for the conv family and fills array rows (m = batch) for FC layers.
/// Standard convolutions always lower to im2col here — the channel-wise
/// mapping offers no batched variant in this model.
MappingPlan lower_batched(const nn::LayerDesc& layer, const ArrayConfig& cfg,
                          std::int64_t batch);

/// DRAM traffic of a lowered plan (the roofline extension's input).
/// Matmul-shaped primitives re-stream operands once per fold
/// (memory.hpp's rule) and scale with `repeats`; a kChannelwiseTile's
/// output leaves once across all taps (adder-tree reduction); kFuse1DLine
/// reads each line's window per column-fold over the *kept* outputs.
TrafficEstimate plan_traffic(const MappingPlan& plan, const ArrayConfig& cfg,
                             const MemoryConfig& mem);

/// One fold tile of a primitive: `a0`/`rows` index the array-row dim,
/// `b0`/`cols` the array-column dim.
struct FoldTile {
  std::int64_t a0 = 0;
  std::int64_t rows = 0;
  std::int64_t b0 = 0;
  std::int64_t cols = 0;
};

/// The canonical fold enumeration shared by the cycle model, the
/// simulator, and the tracer: row-major over ceil(a/rows) x ceil(b/cols)
/// tiles, edge tiles shortened. Every consumer walking folds walks THIS
/// order, which is what makes their cycle counts comparable fold by fold.
template <typename Fn>
void for_each_fold_tile(std::int64_t a, std::int64_t b,
                        const ArrayConfig& cfg, Fn&& fn) {
  for (std::int64_t a0 = 0; a0 < a; a0 += cfg.rows) {
    const std::int64_t rows = std::min(cfg.rows, a - a0);
    for (std::int64_t b0 = 0; b0 < b; b0 += cfg.cols) {
      fn(FoldTile{a0, rows, b0, std::min(cfg.cols, b - b0)});
    }
  }
}

}  // namespace fuse::systolic
