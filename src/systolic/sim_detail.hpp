// Internals shared by the simulator's two engines (sim_reference.cpp /
// sim_fast.cpp): exact integer per-PE busy accounting and the common
// operand validation. Not installed API — include only from sim*.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "systolic/config.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace fuse::systolic::detail {

/// Exact per-PE busy-cycle counts for one simulated call. float
/// accumulation (+= 1.0F per live cycle) silently loses counts past 2^24
/// on large layers; both engines count in uint64 and convert to the
/// float tensor once at the end.
class BusyGrid {
 public:
  explicit BusyGrid(const ArrayConfig& cfg)
      : rows_(cfg.rows),
        cols_(cfg.cols),
        counts_(static_cast<std::size_t>(cfg.rows * cfg.cols), 0) {}

  void add(std::int64_t i, std::int64_t j, std::uint64_t n) {
    counts_[static_cast<std::size_t>(i * cols_ + j)] += n;
  }

  /// Adds `n` to every PE of the [0, used_rows) x [0, used_cols) tile —
  /// the per-fold busy pattern of every dataflow (each live PE of a fold
  /// performs the same number of MACs).
  void add_tile(std::int64_t used_rows, std::int64_t used_cols,
                std::uint64_t n) {
    for (std::int64_t i = 0; i < used_rows; ++i) {
      for (std::int64_t j = 0; j < used_cols; ++j) {
        counts_[static_cast<std::size_t>(i * cols_ + j)] += n;
      }
    }
  }

  tensor::Tensor to_tensor() const {
    tensor::Tensor out(tensor::Shape{rows_, cols_});
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      out[static_cast<std::int64_t>(i)] = static_cast<float>(counts_[i]);
    }
    return out;
  }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<std::uint64_t> counts_;
};

/// Validates rank-2 [M, T] x [T, N] matmul operands; returns nothing,
/// throws fuse::util::Error with `op` in the message on mismatch.
inline void check_matmul_operands(const tensor::Tensor& a,
                                  const tensor::Tensor& b, const char* op) {
  FUSE_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2)
      << op << " expects rank-2 operands";
  FUSE_CHECK(a.shape().dim(1) == b.shape().dim(0))
      << op << " inner dims differ: " << a.shape().to_string() << " x "
      << b.shape().to_string();
}

/// Validates conv1d_broadcast operands: lines [L, W], kernels [L, K],
/// W >= K, and the array must have the broadcast bus.
inline void check_conv1d_operands(const tensor::Tensor& lines,
                                  const tensor::Tensor& kernels,
                                  const ArrayConfig& cfg) {
  FUSE_CHECK(cfg.broadcast_links)
      << "conv1d_broadcast requires an array with row broadcast links";
  FUSE_CHECK(lines.shape().rank() == 2 && kernels.shape().rank() == 2)
      << "conv1d_broadcast expects lines [L, W] and kernels [L, K]";
  FUSE_CHECK(lines.shape().dim(0) == kernels.shape().dim(0))
      << "line/kernel count mismatch: " << lines.shape().to_string()
      << " vs " << kernels.shape().to_string();
  FUSE_CHECK(lines.shape().dim(1) >= kernels.shape().dim(1))
      << "line shorter than kernel: W=" << lines.shape().dim(1)
      << " K=" << kernels.shape().dim(1);
}

}  // namespace fuse::systolic::detail
