// Cycle-level functional simulator of the systolic array.
//
// Unlike the closed-form model in cycle_model.hpp, this steps a real grid
// of PEs cycle by cycle: operands enter skewed at the array edges, move one
// PE per cycle, each PE performs one MAC per cycle, and outputs are drained
// down the columns. It therefore produces both the numeric result and the
// exact cycle count, and the tests assert that
//   (1) results match the fuse::nn reference operators, and
//   (2) cycle counts match cycle_model.hpp exactly
// for both the classic output-stationary dataflow and the paper's proposed
// row-broadcast dataflow (Fig. 5/7).
#pragma once

#include <cstdint>

#include "systolic/config.hpp"
#include "systolic/mapping.hpp"
#include "tensor/tensor.hpp"

namespace fuse::systolic {

/// Output and measured cost of one simulated operator.
struct SimResult {
  tensor::Tensor output;
  std::uint64_t cycles = 0;
  std::uint64_t folds = 0;
  std::uint64_t mac_ops = 0;  // MACs with a live operand (not pipeline zeros)

  /// Per-PE busy-cycle counts over the whole call, shape [rows, cols] of
  /// the physical array. sum == mac_ops. Renders the utilization pathology
  /// directly: a depthwise im2col matmul lights up one column; the
  /// broadcast dataflow lights up the full grid (cf. paper Fig. 2(c) vs
  /// Fig. 7).
  tensor::Tensor pe_busy;
};

/// ASCII heatmap of a busy-count grid: '.' for idle, '1'..'9' scaled to
/// the maximum count. One text row per array row.
std::string render_pe_heatmap(const tensor::Tensor& pe_busy);

/// A software model of the PE grid. Stateless between calls; each call
/// tiles its operands over the array and simulates every fold.
class SystolicArraySim {
 public:
  explicit SystolicArraySim(ArrayConfig cfg);

  const ArrayConfig& config() const { return cfg_; }

  /// Matmul a [M, T] x b [T, N] -> [M, N] on the configured dataflow.
  SimResult matmul(const tensor::Tensor& a, const tensor::Tensor& b);

  /// Output-stationary matmul: A streams in from the left edge
  /// (row-skewed), B from the top edge (column-skewed); each PE
  /// accumulates its output in place and the result is shifted out down
  /// the columns (paper Fig. 1(d)).
  SimResult matmul_os(const tensor::Tensor& a, const tensor::Tensor& b);

  /// Weight-stationary matmul (TPU-style): each fold preloads a
  /// rows x cols tile of B into the PEs, then streams the M rows of A
  /// through from the left while partial sums cascade down the columns
  /// into accumulators (which also sum across reduction folds).
  SimResult matmul_ws(const tensor::Tensor& a, const tensor::Tensor& b);

  /// Input-stationary matmul: symmetric to WS with A's tiles pinned in the
  /// PEs and B's columns streaming.
  SimResult matmul_is(const tensor::Tensor& a, const tensor::Tensor& b);

  /// The proposed FuSeConv dataflow: `lines` [L, W] independent 1-D signals
  /// convolved ('valid', stride 1) with per-line `kernels` [L, K] ->
  /// [L, W-K+1]. Each array row holds one line; at compute cycle k the
  /// row's broadcast bus carries kernels[l][k] to all PEs while the input
  /// window slides leftward through the row (paper Fig. 7).
  /// Requires config().broadcast_links.
  SimResult conv1d_broadcast(const tensor::Tensor& lines,
                             const tensor::Tensor& kernels);

  /// Simulates a lowered MappingPlan with synthetic (zero) operands: every
  /// primitive runs through the PE grid and the measured cycles, folds,
  /// MACs, and per-PE busy counts are returned; the numeric output is
  /// discarded (SimResult::output stays empty). Identical repeats are
  /// simulated once and scaled — every repeat is the same array pass.
  /// This is the simulator leg of the analytic == simulated == plan-folded
  /// differential property (tests/test_mapping.cpp); the cycle counts
  /// match the analytic model when cfg.overlap_fold_drain is off (the
  /// simulator always pays each fold's drain).
  SimResult run_plan(const MappingPlan& plan);

 private:
  ArrayConfig cfg_;
};

}  // namespace fuse::systolic
