// Cycle-accurate functional simulator of the systolic array.
//
// Unlike the closed-form model in cycle_model.hpp, this models a real grid
// of PEs: operands enter skewed at the array edges, move one PE per cycle,
// each PE performs one MAC per cycle, and outputs are drained down the
// columns. It therefore produces both the numeric result and the exact
// cycle count, and the tests assert that
//   (1) results match the fuse::nn reference operators, and
//   (2) cycle counts match cycle_model.hpp exactly
// for both the classic output-stationary dataflow and the paper's proposed
// row-broadcast dataflow (Fig. 5/7).
//
// Two engines implement the model (docs/simulator.md):
//   * reference — the original per-cycle PE sweep (sim_reference.cpp):
//     every PE of every fold is stepped every cycle, registers and all.
//     This is the oracle; it is O((R + C + T) * R * C) per fold.
//   * fast — the wavefront interval engine (sim_fast.cpp): PE (i, j) is
//     live exactly while t - i - j is inside the reduction window, so its
//     accumulator is a straight dot product over its depth-length operand
//     stream. Operand panels are packed once per fold, the per-PE dot
//     products vectorize over array columns, and independent fold tiles
//     run in parallel on a process-wide util::ThreadPool. O(R * C * T)
//     per fold, no bubble work.
// Both engines perform the identical floating-point operation sequence
// per output element, so their results are BIT-EXACT (memcmp on output
// and pe_busy, equal cycle/fold/MAC counters) for every dataflow, for the
// broadcast path, and for any thread count. tools/check.sh and
// tests/test_systolic_sim.cpp enforce this.
//
// Backend selection mirrors the kernel backend (nn/kernels.hpp): default
// fast; FUSE_SIM_BACKEND=reference (or the tools' --sim-backend flag)
// pins the oracle, FUSE_SIM_THREADS / --sim-threads size the fold pool.
#pragma once

#include <cstdint>
#include <string>

#include "systolic/config.hpp"
#include "systolic/mapping.hpp"
#include "tensor/tensor.hpp"

namespace fuse::util {
class ThreadPool;
}

namespace fuse::systolic {

/// Which engine SystolicArraySim's public entry points dispatch to.
enum class SimBackend {
  kReference,  // per-cycle PE sweep (the oracle)
  kFast,       // closed-form wavefront intervals, fold-parallel
};

/// Current backend. Initialized from FUSE_SIM_BACKEND (default fast).
SimBackend sim_backend();

/// Overrides the backend for the whole process. Not safe to call while a
/// simulation is executing on the pool.
void set_sim_backend(SimBackend backend);

/// Parses "fast" / "reference" (also "ref"). Returns false on anything
/// else.
bool parse_sim_backend(const std::string& name, SimBackend* out);

const char* sim_backend_name(SimBackend backend);

/// Total threads the fast engine's fold parallel_for uses (workers + the
/// calling thread, so 1 means fully serial). Initialized from
/// FUSE_SIM_THREADS (default: hardware concurrency).
int sim_threads();

/// Resizes the fold pool to `threads` total threads (>= 1). Results are
/// bit-exact for every value. Not safe to call mid-simulation.
void set_sim_threads(int threads);

/// The process-wide pool the fast engine partitions fold tiles over.
util::ThreadPool& sim_pool();

/// Output and measured cost of one simulated operator.
struct SimResult {
  tensor::Tensor output;
  std::uint64_t cycles = 0;
  std::uint64_t folds = 0;
  std::uint64_t mac_ops = 0;  // MACs with a live operand (not pipeline zeros)

  /// Per-PE busy-cycle counts over the whole call, shape [rows, cols] of
  /// the physical array. Accumulated as exact integer counts and
  /// converted to float once at the end; sum == mac_ops. Renders the
  /// utilization pathology directly: a depthwise im2col matmul lights up
  /// one column; the broadcast dataflow lights up the full grid (cf.
  /// paper Fig. 2(c) vs Fig. 7).
  tensor::Tensor pe_busy;
};

/// ASCII heatmap of a busy-count grid: '.' for idle, '1'..'9' scaled to
/// the maximum count. One text row per array row.
std::string render_pe_heatmap(const tensor::Tensor& pe_busy);

/// A software model of the PE grid. Stateless between calls; each call
/// tiles its operands over the array and simulates every fold. The
/// un-suffixed entry points dispatch on sim_backend(); the *_reference /
/// *_fast methods pin an engine (tests and bench_sim use them directly).
class SystolicArraySim {
 public:
  explicit SystolicArraySim(ArrayConfig cfg);

  const ArrayConfig& config() const { return cfg_; }

  /// Matmul a [M, T] x b [T, N] -> [M, N] on the configured dataflow.
  SimResult matmul(const tensor::Tensor& a, const tensor::Tensor& b);

  /// Output-stationary matmul: A streams in from the left edge
  /// (row-skewed), B from the top edge (column-skewed); each PE
  /// accumulates its output in place and the result is shifted out down
  /// the columns (paper Fig. 1(d)).
  SimResult matmul_os(const tensor::Tensor& a, const tensor::Tensor& b);

  /// Weight-stationary matmul (TPU-style): each fold preloads a
  /// rows x cols tile of B into the PEs, then streams the M rows of A
  /// through from the left while partial sums cascade down the columns
  /// into accumulators (which also sum across reduction folds).
  SimResult matmul_ws(const tensor::Tensor& a, const tensor::Tensor& b);

  /// Input-stationary matmul: symmetric to WS with A's tiles pinned in the
  /// PEs and B's columns streaming.
  SimResult matmul_is(const tensor::Tensor& a, const tensor::Tensor& b);

  /// The proposed FuSeConv dataflow: `lines` [L, W] independent 1-D signals
  /// convolved ('valid', stride 1) with per-line `kernels` [L, K] ->
  /// [L, W-K+1]. Each array row holds one line; at compute cycle k the
  /// row's broadcast bus carries kernels[l][k] to all PEs while the input
  /// window slides leftward through the row (paper Fig. 7).
  /// Requires config().broadcast_links.
  SimResult conv1d_broadcast(const tensor::Tensor& lines,
                             const tensor::Tensor& kernels);

  /// Simulates a lowered MappingPlan with synthetic (zero) operands: every
  /// primitive runs through the PE grid and the measured cycles, folds,
  /// MACs, and per-PE busy counts are returned; the numeric output is
  /// discarded (SimResult::output stays empty). Identical repeats are
  /// simulated once and scaled — every repeat is the same array pass.
  /// This is the simulator leg of the analytic == simulated == plan-folded
  /// differential property (tests/test_mapping.cpp); the cycle counts
  /// match the analytic model when cfg.overlap_fold_drain is off (the
  /// simulator always pays each fold's drain). Routes its primitive
  /// passes through the backend dispatch.
  SimResult run_plan(const MappingPlan& plan);

  // Engine-pinned entry points (bypass the dispatch).
  SimResult matmul_os_reference(const tensor::Tensor& a,
                                const tensor::Tensor& b);
  SimResult matmul_ws_reference(const tensor::Tensor& a,
                                const tensor::Tensor& b);
  SimResult matmul_is_reference(const tensor::Tensor& a,
                                const tensor::Tensor& b);
  SimResult conv1d_broadcast_reference(const tensor::Tensor& lines,
                                       const tensor::Tensor& kernels);
  SimResult matmul_os_fast(const tensor::Tensor& a, const tensor::Tensor& b);
  SimResult matmul_ws_fast(const tensor::Tensor& a, const tensor::Tensor& b);
  SimResult matmul_is_fast(const tensor::Tensor& a, const tensor::Tensor& b);
  SimResult conv1d_broadcast_fast(const tensor::Tensor& lines,
                                  const tensor::Tensor& kernels);

 private:
  ArrayConfig cfg_;
};

}  // namespace fuse::systolic
