#include "systolic/memory.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fuse::systolic {

namespace {

std::uint64_t ceil_div(std::int64_t a, std::int64_t b) {
  return static_cast<std::uint64_t>((a + b - 1) / b);
}

}  // namespace

std::uint64_t TrafficEstimate::memory_cycles(const MemoryConfig& mem) const {
  mem.validate();
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(total_bytes()) /
                mem.dram_bytes_per_cycle));
}

TrafficEstimate& TrafficEstimate::operator+=(const TrafficEstimate& other) {
  input_bytes += other.input_bytes;
  weight_bytes += other.weight_bytes;
  output_bytes += other.output_bytes;
  return *this;
}

TrafficEstimate matmul_traffic(std::int64_t m, std::int64_t t,
                               std::int64_t n, const ArrayConfig& cfg,
                               const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FUSE_CHECK(m > 0 && t > 0 && n > 0) << "matmul_traffic dims";
  const std::uint64_t col_folds = ceil_div(n, cfg.cols);
  const std::uint64_t row_folds = ceil_div(m, cfg.rows);
  const std::uint64_t dtype =
      static_cast<std::uint64_t>(mem.dtype_bytes);
  TrafficEstimate traffic;
  traffic.input_bytes =
      static_cast<std::uint64_t>(m * t) * col_folds * dtype;
  traffic.weight_bytes =
      static_cast<std::uint64_t>(t * n) * row_folds * dtype;
  traffic.output_bytes = static_cast<std::uint64_t>(m * n) * dtype;
  return traffic;
}

TrafficEstimate conv_im2col_traffic(std::int64_t out_h, std::int64_t out_w,
                                    std::int64_t k_h, std::int64_t k_w,
                                    std::int64_t in_c, std::int64_t out_c,
                                    const ArrayConfig& cfg,
                                    const MemoryConfig& mem) {
  return matmul_traffic(out_h * out_w, k_h * k_w * in_c, out_c, cfg, mem);
}

TrafficEstimate depthwise_im2col_traffic(std::int64_t channels,
                                         std::int64_t out_h,
                                         std::int64_t out_w, std::int64_t k,
                                         const ArrayConfig& cfg,
                                         const MemoryConfig& mem) {
  FUSE_CHECK(channels > 0) << "depthwise_im2col_traffic channels";
  const TrafficEstimate per_channel =
      matmul_traffic(out_h * out_w, k * k, /*n=*/1, cfg, mem);
  TrafficEstimate traffic;
  traffic.input_bytes =
      per_channel.input_bytes * static_cast<std::uint64_t>(channels);
  traffic.weight_bytes =
      per_channel.weight_bytes * static_cast<std::uint64_t>(channels);
  traffic.output_bytes =
      per_channel.output_bytes * static_cast<std::uint64_t>(channels);
  return traffic;
}

TrafficEstimate fuse1d_traffic(std::int64_t lines, std::int64_t line_out,
                               std::int64_t k, const ArrayConfig& cfg,
                               const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FUSE_CHECK(lines > 0 && line_out > 0 && k > 0) << "fuse1d_traffic dims";
  const std::uint64_t dtype =
      static_cast<std::uint64_t>(mem.dtype_bytes);
  TrafficEstimate traffic;
  // Each column-fold of a line reads its window: used_cols + k - 1 values.
  // Summed over the ceil(line_out / cols) folds the used_cols telescope to
  // line_out, so the whole loop collapses to closed form.
  const std::uint64_t col_folds = ceil_div(line_out, cfg.cols);
  traffic.input_bytes =
      static_cast<std::uint64_t>(lines) *
      (static_cast<std::uint64_t>(line_out) +
       col_folds * static_cast<std::uint64_t>(k - 1)) *
      dtype;
  // The k broadcast weights are re-fetched per wave.
  traffic.weight_bytes = static_cast<std::uint64_t>(lines) *
                         static_cast<std::uint64_t>(k) * col_folds * dtype;
  traffic.output_bytes = static_cast<std::uint64_t>(lines) *
                         static_cast<std::uint64_t>(line_out) * dtype;
  return traffic;
}

TrafficEstimate fully_connected_traffic(std::int64_t in_f,
                                        std::int64_t out_f,
                                        const ArrayConfig& cfg,
                                        const MemoryConfig& mem) {
  return matmul_traffic(/*m=*/1, in_f, out_f, cfg, mem);
}

}  // namespace fuse::systolic
