// Analytic cycle model (SCALE-Sim methodology, §V-A3 of the paper).
//
// Performance is assumed limited only by operations on the array: we add up
// the cycles to load values into the array (wavefront skew), compute in the
// MACs, systolically communicate partials, and flush outputs. Main memory
// and buffers are assumed never to stall the array.
//
// The primitive is one output-stationary *fold*: an R x Cc output tile
// (R <= rows, Cc <= cols) with reduction depth T costs
//
//   cycles(R, Cc, T) = (R - 1) + (Cc - 1)   // skew to fill the wavefront
//                    + T                    // one MAC per PE per cycle
//                    + R                    // drain partials down columns
//
// The cycle-level simulator in sim.hpp implements the same dataflow with a
// real PE grid and is asserted in tests to match these counts exactly.
//
// On a transparent array (ArrayConfig::pipelining != kPipelined) the skew
// and drain terms shrink to ceil((R-1)/p) / ceil(R/p) for transparency p —
// see ArrayConfig::skew_cycles / drain_cycles; the compute term T and the
// WS/IS preload (row-load bandwidth) are unchanged. The pipelined default
// reproduces the formulas above exactly.
#pragma once

#include <cstdint>

#include "systolic/config.hpp"

namespace fuse::systolic {

/// Aggregated cost of running one operator on the array.
struct LatencyEstimate {
  std::uint64_t cycles = 0;
  std::uint64_t folds = 0;    // number of array passes
  std::uint64_t mac_ops = 0;  // useful multiply-accumulates performed
  std::int64_t pe_count = 0;  // PEs in the array used for utilization

  /// Fraction of PE-cycles doing useful MACs, in [0, 1].
  double utilization() const {
    if (cycles == 0 || pe_count == 0) {
      return 0.0;
    }
    return static_cast<double>(mac_ops) /
           (static_cast<double>(cycles) * static_cast<double>(pe_count));
  }

  /// Accumulates another operator's cost (operators run back-to-back).
  LatencyEstimate& operator+=(const LatencyEstimate& other);
};

/// Cycles for a single output-stationary fold (exposed for tests).
std::uint64_t fold_cycles(std::int64_t used_rows, std::int64_t used_cols,
                          std::int64_t depth);

/// Same, honouring cfg's pipelining mode (equal to the above when
/// pipelined).
std::uint64_t fold_cycles(std::int64_t used_rows, std::int64_t used_cols,
                          std::int64_t depth, const ArrayConfig& cfg);

/// Dense matmul [M, T] x [T, N] on the configured dataflow (dispatches to
/// one of the three models below).
LatencyEstimate matmul_latency(std::int64_t m, std::int64_t t,
                               std::int64_t n, const ArrayConfig& cfg);

/// Output stationary (the paper's dataflow, Fig. 1(d)): ceil(M/rows) x
/// ceil(N/cols) folds; per fold (R-1)+(Cc-1)+T skew+compute plus an R-cycle
/// drain (hidden by the next fold when overlap_fold_drain).
LatencyEstimate matmul_latency_os(std::int64_t m, std::int64_t t,
                                  std::int64_t n, const ArrayConfig& cfg);

/// Weight stationary (TPU-style): the [T, N] weight matrix is tiled into
/// ceil(T/rows) x ceil(N/cols) folds. Each fold preloads its T_u x N_u
/// weight tile (T_u cycles) and streams all M activation rows through;
/// partial sums cascade down and accumulate in per-column accumulators
/// across reduction folds. Per fold: T_u preload + (M + T_u + N_u - 2)
/// streaming; with overlap_fold_drain the preload of fold k+1 hides behind
/// fold k's streaming (double-buffered weight registers), so only the
/// first fold pays it.
LatencyEstimate matmul_latency_ws(std::int64_t m, std::int64_t t,
                                  std::int64_t n, const ArrayConfig& cfg);

/// Input stationary: symmetric to WS with the [M, T] activation matrix
/// pinned in the array (M_u x T_u tiles) and weight columns streaming.
/// Per fold: M_u preload + (N + M_u + T_u - 2) streaming.
LatencyEstimate matmul_latency_is(std::int64_t m, std::int64_t t,
                                  std::int64_t n, const ArrayConfig& cfg);

/// Standard convolution lowered with im2col:
/// M = out_h*out_w positions, T = k_h*k_w*in_c taps, N = out_c filters.
LatencyEstimate conv_im2col_latency(std::int64_t out_h, std::int64_t out_w,
                                    std::int64_t k_h, std::int64_t k_w,
                                    std::int64_t in_c, std::int64_t out_c,
                                    const ArrayConfig& cfg);

/// Depthwise convolution lowered with im2col. Each channel is an
/// independent [positions, k*k] x [k*k, 1] matmul: the lowered filter has a
/// single column, and because each channel needs different input data the
/// remaining columns of the array cannot be shared (paper §III-B) — so the
/// channels serialize, each using one column.
LatencyEstimate depthwise_im2col_latency(std::int64_t channels,
                                         std::int64_t out_h,
                                         std::int64_t out_w, std::int64_t k,
                                         const ArrayConfig& cfg);

/// Alternative standard-conv mapping (paper Fig. 3(b)): channel-wise dot
/// products, one [positions, in_c] x [in_c, out_c] matmul per kernel tap,
/// partials reduced by the accelerator's adder tree. Not applicable to
/// depthwise convolution (no computation spans channels).
LatencyEstimate conv_channelwise_latency(std::int64_t out_h,
                                         std::int64_t out_w, std::int64_t k_h,
                                         std::int64_t k_w, std::int64_t in_c,
                                         std::int64_t out_c,
                                         const ArrayConfig& cfg);

/// FuSeConv's 1-D convolution stage on the proposed broadcast dataflow
/// (paper §IV-C). `lines` independent 1-D convolutions (channels x rows for
/// the row branch, channels x cols for the column branch), each producing
/// `line_out` outputs from a kernel of `k` taps. Each array row holds one
/// line; the per-row broadcast bus delivers one weight per cycle to all
/// PEs, so a wave of R lines x Cc outputs costs
///   (Cc - 1) + k + R
/// (input skew along the row, k broadcast MAC cycles, drain).
/// Requires cfg.broadcast_links; without the links the 1-D convolutions
/// degrade to the depthwise-style single-column mapping
/// (fuse1d_no_broadcast_latency).
LatencyEstimate fuse1d_latency(std::int64_t lines, std::int64_t line_out,
                               std::int64_t k, const ArrayConfig& cfg);

/// Fallback cost of the 1-D convolutions on a baseline array without
/// broadcast links: each line is a [line_out, k] x [k, 1] matmul using one
/// column, lines serialized. Used by the ablation that motivates the links.
LatencyEstimate fuse1d_no_broadcast_latency(std::int64_t lines,
                                            std::int64_t line_out,
                                            std::int64_t k,
                                            const ArrayConfig& cfg);

/// Fully connected layer: [1, in_f] x [in_f, out_f] matmul (single row of
/// the array; this is why FC layers are cheap but low-utilization).
LatencyEstimate fully_connected_latency(std::int64_t in_f,
                                        std::int64_t out_f,
                                        const ArrayConfig& cfg);

}  // namespace fuse::systolic
