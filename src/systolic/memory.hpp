// DRAM-traffic / roofline extension.
//
// The paper's methodology assumes performance is limited only by operations
// on the array (§V-A3) — main memory and buffers never stall it. This
// module quantifies when that assumption holds: it counts the DRAM traffic
// each mapping generates (operands are re-streamed once per fold that
// consumes them; outputs leave once), converts it to cycles under a
// bandwidth, and combines with the compute cycles as a roofline
// max(compute, memory). bench_ablation_memory sweeps the bandwidth and
// reports where the FuSe speedup starts to erode.
#pragma once

#include <cstdint>

#include "systolic/config.hpp"
#include "systolic/cycle_model.hpp"

namespace fuse::systolic {

/// Off-array memory system. Default: FP16 operands, 16 bytes/cycle of DRAM
/// bandwidth (e.g. 64-bit LPDDR4-class channel at ~2x the array clock),
/// and an 8 MiB on-chip SRAM shared by fold staging and activation
/// buffers (the network-level scheduler in sched/netplan.hpp plans
/// liveness-based allocations against this capacity).
struct MemoryConfig {
  double dram_bytes_per_cycle = 16.0;
  std::int64_t dtype_bytes = 2;  // FP16, as in the paper's setup
  std::int64_t sram_bytes = 8 * 1024 * 1024;

  void validate() const {
    FUSE_CHECK(dram_bytes_per_cycle > 0.0 && dtype_bytes > 0)
        << "bad memory config";
    FUSE_CHECK(sram_bytes > 0) << "bad memory config: sram_bytes";
  }
};

/// DRAM bytes moved by one operator.
struct TrafficEstimate {
  std::uint64_t input_bytes = 0;
  std::uint64_t weight_bytes = 0;
  std::uint64_t output_bytes = 0;

  std::uint64_t total_bytes() const {
    return input_bytes + weight_bytes + output_bytes;
  }

  /// Cycles to move the traffic at the configured bandwidth.
  std::uint64_t memory_cycles(const MemoryConfig& mem) const;

  TrafficEstimate& operator+=(const TrafficEstimate& other);
};

/// Roofline combination of compute and memory cost. With double-buffered
/// SRAM, transfers overlap compute, so the operator takes the max.
struct RooflineLatency {
  std::uint64_t compute_cycles = 0;
  std::uint64_t memory_cycles = 0;

  std::uint64_t bound_cycles() const {
    return compute_cycles > memory_cycles ? compute_cycles : memory_cycles;
  }
  bool memory_bound() const { return memory_cycles > compute_cycles; }
};

// --- traffic per mapping ------------------------------------------------------
// Re-streaming rule: in an output-stationary fold grid, the A operand is
// read once per column-fold and B once per row-fold; outputs leave once.

/// Dense matmul [M, T] x [T, N].
TrafficEstimate matmul_traffic(std::int64_t m, std::int64_t t,
                               std::int64_t n, const ArrayConfig& cfg,
                               const MemoryConfig& mem);

/// Standard conv via im2col: the lowered patch matrix is what streams, so
/// input traffic is inflated by ~K^2 relative to the raw feature map —
/// the transformation's hidden bandwidth cost (§III-B).
TrafficEstimate conv_im2col_traffic(std::int64_t out_h, std::int64_t out_w,
                                    std::int64_t k_h, std::int64_t k_w,
                                    std::int64_t in_c, std::int64_t out_c,
                                    const ArrayConfig& cfg,
                                    const MemoryConfig& mem);

/// Depthwise conv, channel-serialized single-column mapping.
TrafficEstimate depthwise_im2col_traffic(std::int64_t channels,
                                         std::int64_t out_h,
                                         std::int64_t out_w, std::int64_t k,
                                         const ArrayConfig& cfg,
                                         const MemoryConfig& mem);

/// FuSeConv 1-D stage on the broadcast dataflow: each wave re-reads its
/// input window (line_out + k - 1 values per line per column-fold) and the
/// k broadcast weights; no im2col inflation.
TrafficEstimate fuse1d_traffic(std::int64_t lines, std::int64_t line_out,
                               std::int64_t k, const ArrayConfig& cfg,
                               const MemoryConfig& mem);

/// Fully connected [1, in] x [in, out].
TrafficEstimate fully_connected_traffic(std::int64_t in_f,
                                        std::int64_t out_f,
                                        const ArrayConfig& cfg,
                                        const MemoryConfig& mem);

}  // namespace fuse::systolic
