// Fold-level execution trace (SCALE-Sim's signature output, at tile
// granularity): one record per array pass with its geometry, cycle
// interval, and per-operand SRAM footprint. Also derives the double-buffer
// SRAM capacity needed to keep the array compute-bound (the next fold's
// operands must be staged while the current fold runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "systolic/config.hpp"
#include "systolic/mapping.hpp"
#include "systolic/memory.hpp"

namespace fuse::systolic {

/// One array pass.
struct FoldRecord {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  // exclusive
  std::int64_t used_rows = 0;
  std::int64_t used_cols = 0;
  std::int64_t depth = 0;  // MACs per PE in this fold

  /// SRAM bytes the fold's operands occupy while it runs.
  std::uint64_t input_bytes = 0;
  std::uint64_t weight_bytes = 0;
  std::uint64_t output_bytes = 0;
};

/// Trace of one operator.
struct FoldTrace {
  std::vector<FoldRecord> folds;
  std::uint64_t total_cycles = 0;

  /// Peak per-fold SRAM footprint; with double buffering the required
  /// capacity is twice this (current + staged fold).
  std::uint64_t peak_fold_bytes() const;
  std::uint64_t double_buffer_bytes() const { return 2 * peak_fold_bytes(); }
};

/// Trace of an output-stationary matmul [M, T] x [T, N] (the same fold
/// walk as matmul_latency_os; cycle totals match it exactly).
FoldTrace matmul_trace(std::int64_t m, std::int64_t t, std::int64_t n,
                       const ArrayConfig& cfg, const MemoryConfig& mem);

/// Trace of a FuSe 1-D stage on the broadcast dataflow (matches
/// fuse1d_latency).
FoldTrace fuse1d_trace(std::int64_t lines, std::int64_t line_out,
                       std::int64_t k, const ArrayConfig& cfg,
                       const MemoryConfig& mem);

/// Trace of a whole lowered layer: every primitive op expanded over its
/// repeats (each repeat is a full array pass — e.g. one per depthwise
/// channel), concatenated on one cycle axis. On the output-stationary
/// dataflow total_cycles matches plan.total_latency().cycles exactly.
FoldTrace plan_trace(const MappingPlan& plan, const ArrayConfig& cfg,
                     const MemoryConfig& mem);

/// Writes one CSV row per fold.
void write_fold_trace_csv(const FoldTrace& trace, const std::string& path);

}  // namespace fuse::systolic
