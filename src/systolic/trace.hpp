// Fold-level execution trace (SCALE-Sim's signature output, at tile
// granularity): one record per array pass with its geometry, cycle
// interval, and per-operand SRAM footprint. Also derives the double-buffer
// SRAM capacity needed to keep the array compute-bound (the next fold's
// operands must be staged while the current fold runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "systolic/config.hpp"
#include "systolic/mapping.hpp"
#include "systolic/memory.hpp"
#include "util/trace_sink.hpp"

namespace fuse::systolic {

/// One array pass.
struct FoldRecord {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  // exclusive
  std::int64_t used_rows = 0;
  std::int64_t used_cols = 0;
  std::int64_t depth = 0;  // MACs per PE in this fold

  /// SRAM bytes the fold's operands occupy while it runs.
  std::uint64_t input_bytes = 0;
  std::uint64_t weight_bytes = 0;
  std::uint64_t output_bytes = 0;
};

/// Trace of one operator.
struct FoldTrace {
  std::vector<FoldRecord> folds;
  std::uint64_t total_cycles = 0;

  /// Peak per-fold SRAM footprint; with double buffering the required
  /// capacity is twice this (current + staged fold).
  std::uint64_t peak_fold_bytes() const;
  std::uint64_t double_buffer_bytes() const { return 2 * peak_fold_bytes(); }
};

/// Trace of an output-stationary matmul [M, T] x [T, N] (the same fold
/// walk as matmul_latency_os; cycle totals match it exactly).
FoldTrace matmul_trace(std::int64_t m, std::int64_t t, std::int64_t n,
                       const ArrayConfig& cfg, const MemoryConfig& mem);

/// Trace of a FuSe 1-D stage on the broadcast dataflow (matches
/// fuse1d_latency).
FoldTrace fuse1d_trace(std::int64_t lines, std::int64_t line_out,
                       std::int64_t k, const ArrayConfig& cfg,
                       const MemoryConfig& mem);

/// Trace of a whole lowered layer: every primitive op expanded over its
/// repeats (each repeat is a full array pass — e.g. one per depthwise
/// channel), concatenated on one cycle axis. On the output-stationary
/// dataflow total_cycles matches plan.total_latency().cycles exactly.
FoldTrace plan_trace(const MappingPlan& plan, const ArrayConfig& cfg,
                     const MemoryConfig& mem);

/// Peak per-fold SRAM footprint of a lowered plan, computed directly from
/// the fold-tile geometry (no FoldTrace materialization — the network
/// scheduler calls this per layer to size double-buffer staging).
/// Equals plan_trace(plan, cfg, mem).peak_fold_bytes(); zero for empty
/// (glue) plans.
std::uint64_t plan_peak_fold_bytes(const MappingPlan& plan,
                                   const ArrayConfig& cfg,
                                   const MemoryConfig& mem);

/// Writes one CSV row per fold.
void write_fold_trace_csv(const FoldTrace& trace, const std::string& path);

// --- Perfetto / chrome://tracing export --------------------------------------
// The fold timeline rendered as Chrome trace_event JSON with CYCLES as the
// timestamp unit (one viewer "us" == one array cycle): an "X" span per
// fold and, per operand, a "C" counter series tracking the SRAM bytes the
// running fold occupies. Whole networks concatenate layer traces on one
// cycle axis via `cycle_offset` (examples/profile_network.cpp).

/// Track ids used by the exporters: spans land on kFoldTrack, SRAM counter
/// series on kSramTrack (counters get their own track so stacked area
/// charts do not overlay the spans).
inline constexpr int kLayerTrack = 0;
inline constexpr int kFoldTrack = 1;
inline constexpr int kSramTrack = 2;

/// Appends `trace`'s folds to `sink`, shifted by `cycle_offset`: one
/// complete span named `name` per fold (args: rows/cols/depth), plus SRAM
/// counter samples at every fold boundary when `sram_counters`. Returns
/// the cycle cursor after the trace (offset + total_cycles).
std::uint64_t append_fold_trace_events(util::TraceSink& sink,
                                       const FoldTrace& trace,
                                       const std::string& name,
                                       std::uint64_t cycle_offset,
                                       bool sram_counters = true);

/// One-call export of a single operator's FoldTrace (the JSON twin of
/// write_fold_trace_csv): trace + metadata, ready for ui.perfetto.dev.
void write_fold_trace_json(const FoldTrace& trace, const std::string& path,
                           const std::string& name = "fold");

}  // namespace fuse::systolic
