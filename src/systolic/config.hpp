// Systolic array configuration.
#pragma once

#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace fuse::systolic {

/// Supported dataflows. The paper evaluates output-stationary only (§V-A3)
/// and notes input/weight stationary as the other standard choices (§II-C);
/// this repo implements all three so the FuSe result can be checked for
/// robustness across dataflows (bench_ablation_dataflow).
enum class Dataflow {
  kOutputStationary,  // outputs accumulate in place (Fig. 1(d))
  kWeightStationary,  // weights preloaded, activations stream (TPU-style)
  kInputStationary,   // activations preloaded, weights stream
};

/// "OS" / "WS" / "IS".
inline std::string dataflow_name(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kOutputStationary:
      return "OS";
    case Dataflow::kWeightStationary:
      return "WS";
    case Dataflow::kInputStationary:
      return "IS";
  }
  return "?";
}

/// How standard (dense) convolutions map onto the array — the paper's
/// Fig. 3: (a) im2col with input reuse across filters, or (b) channel-wise
/// dot products, one matmul per kernel tap with adder-tree reduction.
/// Depthwise convolution benefits from neither (no filter reuse, no
/// channel span), which is §III's point.
enum class StandardConvMapping {
  kIm2col,
  kChannelwise,
};

/// Inter-PE pipelining mode (ArrayFlex-style configurable transparency).
/// The classic array registers every hop: operands move one PE per cycle,
/// so wavefront skew and drain cost one cycle per PE traversed. A
/// transparent array chains groups of 2 or 4 PEs combinationally: values
/// cross a whole group per cycle, dividing the skew/drain terms — at the
/// price of a longer critical path, i.e. a lower clock
/// (ArrayConfig::effective_freq_mhz). MAC throughput (one per PE per
/// cycle) and weight preload bandwidth (one row per cycle) are unchanged.
enum class Pipelining {
  kPipelined,     // register every hop (the paper's array; default)
  kTransparent2,  // combinational groups of 2 PEs
  kTransparent4,  // combinational groups of 4 PEs
};

/// "pipelined" / "transparent2" / "transparent4".
inline std::string pipelining_name(Pipelining mode) {
  switch (mode) {
    case Pipelining::kPipelined:
      return "pipelined";
    case Pipelining::kTransparent2:
      return "transparent2";
    case Pipelining::kTransparent4:
      return "transparent4";
  }
  return "?";
}

/// Parses "pipelined" / "transparent2" / "transparent4" (also
/// "trans2"/"trans4"). Returns false on anything else.
inline bool parse_pipelining(const std::string& name, Pipelining* out) {
  if (name == "pipelined" || name == "pipe") {
    *out = Pipelining::kPipelined;
    return true;
  }
  if (name == "transparent2" || name == "trans2") {
    *out = Pipelining::kTransparent2;
    return true;
  }
  if (name == "transparent4" || name == "trans4") {
    *out = Pipelining::kTransparent4;
    return true;
  }
  return false;
}

/// PE datapath width. Cycle counts are datapath-independent (one MAC per
/// PE per cycle either way); the width moves silicon area/power
/// (hw/area_power.cpp) and the operand byte volume when the memory
/// system's dtype matches (MemoryConfig::dtype_bytes — the design-space
/// explorer pairs them).
enum class Datapath {
  kInt8,
  kFp16,  // the paper's setup; default
  kFp32,
};

/// "int8" / "fp16" / "fp32".
inline std::string datapath_name(Datapath dp) {
  switch (dp) {
    case Datapath::kInt8:
      return "int8";
    case Datapath::kFp16:
      return "fp16";
    case Datapath::kFp32:
      return "fp32";
  }
  return "?";
}

/// Parses "int8" / "fp16" / "fp32". Returns false on anything else.
inline bool parse_datapath(const std::string& name, Datapath* out) {
  if (name == "int8") {
    *out = Datapath::kInt8;
    return true;
  }
  if (name == "fp16") {
    *out = Datapath::kFp16;
    return true;
  }
  if (name == "fp32") {
    *out = Datapath::kFp32;
    return true;
  }
  return false;
}

/// Operand bytes of a datapath (1 / 2 / 4).
inline std::int64_t datapath_bytes(Datapath dp) {
  switch (dp) {
    case Datapath::kInt8:
      return 1;
    case Datapath::kFp16:
      return 2;
    case Datapath::kFp32:
      return 4;
  }
  return 2;
}

/// A rows x cols grid of MAC PEs. `broadcast_links` enables the paper's
/// proposed per-row weight-broadcast bus (Fig. 5); without it FuSeConv's
/// 1-D convolutions cannot be mapped row-parallel and fall back to the
/// depthwise-style single-column mapping.
struct ArrayConfig {
  std::int64_t rows = 64;
  std::int64_t cols = 64;
  Dataflow dataflow = Dataflow::kOutputStationary;
  StandardConvMapping standard_conv_mapping = StandardConvMapping::kIm2col;
  bool broadcast_links = true;
  Pipelining pipelining = Pipelining::kPipelined;
  Datapath datapath = Datapath::kFp16;

  /// When true (default), the drain of each fold overlaps the fill of the
  /// next fold of the same operator (double-buffered accumulators), so only
  /// the last fold pays the drain. When false every fold pays skew +
  /// compute + drain, which is exactly what the cycle-level simulator
  /// measures; tests cross-check the two in that mode.
  bool overlap_fold_drain = true;

  /// Strided FuSe 1-D convolutions on the broadcast dataflow: the
  /// shift-register input flow only aligns neighbouring PEs' windows for
  /// stride 1 (PE c needs x[c*s + k]; its right neighbour's previous value
  /// is x[c*s + s + k - 1], equal only when s = 1). When true (default,
  /// honest) a strided layer computes the DENSE output along the convolved
  /// axis and discards the skipped positions; whole lines along the other
  /// axis are still skipped. When false, edge feeders are assumed to do
  /// strided addressing (extra hardware the paper does not propose) and
  /// only needed outputs are computed.
  bool strided_fuse_dense_compute = true;
  double freq_mhz = 700.0;  // used only to convert cycles to wall time

  std::int64_t pe_count() const { return rows * cols; }

  /// PEs per combinational group: 1 (pipelined), 2, or 4.
  std::int64_t transparency() const {
    switch (pipelining) {
      case Pipelining::kPipelined:
        return 1;
      case Pipelining::kTransparent2:
        return 2;
      case Pipelining::kTransparent4:
        return 4;
    }
    return 1;
  }

  /// Cycles for a wavefront to skew across `span` PEs along one axis:
  /// (span - 1) hops, one cycle per `transparency()`-sized group. At the
  /// default pipelined mode this is exactly the (R-1) / (C-1) fill terms
  /// of docs/latency_model.md.
  std::int64_t skew_cycles(std::int64_t span) const {
    const std::int64_t p = transparency();
    return (span - 1 + p - 1) / p;
  }

  /// Cycles to drain `span` accumulator rows out of the array: span hops
  /// (the last row's result crosses the whole used height), again one
  /// cycle per transparent group. Pipelined mode: exactly `span`.
  std::int64_t drain_cycles(std::int64_t span) const {
    const std::int64_t p = transparency();
    return (span + p - 1) / p;
  }

  /// Operand bytes of the configured datapath (1 / 2 / 4).
  std::int64_t datapath_bytes() const {
    return systolic::datapath_bytes(datapath);
  }

  /// Achievable clock after the transparency critical-path derate:
  /// chaining 2 (4) PEs combinationally lengthens the cycle by ~25%
  /// (~75%), the ArrayFlex-style tradeoff the design-space explorer
  /// weighs against the saved skew/drain cycles. Pipelined mode runs at
  /// `freq_mhz` unchanged.
  double effective_freq_mhz() const {
    switch (pipelining) {
      case Pipelining::kPipelined:
        return freq_mhz;
      case Pipelining::kTransparent2:
        return freq_mhz / 1.25;
      case Pipelining::kTransparent4:
        return freq_mhz / 1.75;
    }
    return freq_mhz;
  }

  void validate() const {
    FUSE_CHECK(rows > 0 && cols > 0)
        << "array must have positive dimensions, got " << rows << "x" << cols;
    FUSE_CHECK(freq_mhz > 0.0) << "frequency must be positive";
  }

  std::string to_string() const {
    std::string s = std::to_string(rows) + "x" + std::to_string(cols) +
                    (broadcast_links ? " (+broadcast)" : "");
    if (pipelining != Pipelining::kPipelined) {
      s += " " + pipelining_name(pipelining);
    }
    if (datapath != Datapath::kFp16) {
      s += " " + datapath_name(datapath);
    }
    return s;
  }
};

/// Square array shorthand.
inline ArrayConfig square_array(std::int64_t size,
                                bool broadcast_links = true) {
  ArrayConfig cfg;
  cfg.rows = size;
  cfg.cols = size;
  cfg.broadcast_links = broadcast_links;
  return cfg;
}

}  // namespace fuse::systolic
