// Systolic array configuration.
#pragma once

#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace fuse::systolic {

/// Supported dataflows. The paper evaluates output-stationary only (§V-A3)
/// and notes input/weight stationary as the other standard choices (§II-C);
/// this repo implements all three so the FuSe result can be checked for
/// robustness across dataflows (bench_ablation_dataflow).
enum class Dataflow {
  kOutputStationary,  // outputs accumulate in place (Fig. 1(d))
  kWeightStationary,  // weights preloaded, activations stream (TPU-style)
  kInputStationary,   // activations preloaded, weights stream
};

/// "OS" / "WS" / "IS".
inline std::string dataflow_name(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kOutputStationary:
      return "OS";
    case Dataflow::kWeightStationary:
      return "WS";
    case Dataflow::kInputStationary:
      return "IS";
  }
  return "?";
}

/// How standard (dense) convolutions map onto the array — the paper's
/// Fig. 3: (a) im2col with input reuse across filters, or (b) channel-wise
/// dot products, one matmul per kernel tap with adder-tree reduction.
/// Depthwise convolution benefits from neither (no filter reuse, no
/// channel span), which is §III's point.
enum class StandardConvMapping {
  kIm2col,
  kChannelwise,
};

/// A rows x cols grid of MAC PEs. `broadcast_links` enables the paper's
/// proposed per-row weight-broadcast bus (Fig. 5); without it FuSeConv's
/// 1-D convolutions cannot be mapped row-parallel and fall back to the
/// depthwise-style single-column mapping.
struct ArrayConfig {
  std::int64_t rows = 64;
  std::int64_t cols = 64;
  Dataflow dataflow = Dataflow::kOutputStationary;
  StandardConvMapping standard_conv_mapping = StandardConvMapping::kIm2col;
  bool broadcast_links = true;

  /// When true (default), the drain of each fold overlaps the fill of the
  /// next fold of the same operator (double-buffered accumulators), so only
  /// the last fold pays the drain. When false every fold pays skew +
  /// compute + drain, which is exactly what the cycle-level simulator
  /// measures; tests cross-check the two in that mode.
  bool overlap_fold_drain = true;

  /// Strided FuSe 1-D convolutions on the broadcast dataflow: the
  /// shift-register input flow only aligns neighbouring PEs' windows for
  /// stride 1 (PE c needs x[c*s + k]; its right neighbour's previous value
  /// is x[c*s + s + k - 1], equal only when s = 1). When true (default,
  /// honest) a strided layer computes the DENSE output along the convolved
  /// axis and discards the skipped positions; whole lines along the other
  /// axis are still skipped. When false, edge feeders are assumed to do
  /// strided addressing (extra hardware the paper does not propose) and
  /// only needed outputs are computed.
  bool strided_fuse_dense_compute = true;
  double freq_mhz = 700.0;  // used only to convert cycles to wall time

  std::int64_t pe_count() const { return rows * cols; }

  void validate() const {
    FUSE_CHECK(rows > 0 && cols > 0)
        << "array must have positive dimensions, got " << rows << "x" << cols;
    FUSE_CHECK(freq_mhz > 0.0) << "frequency must be positive";
  }

  std::string to_string() const {
    return std::to_string(rows) + "x" + std::to_string(cols) +
           (broadcast_links ? " (+broadcast)" : "");
  }
};

/// Square array shorthand.
inline ArrayConfig square_array(std::int64_t size,
                                bool broadcast_links = true) {
  ArrayConfig cfg;
  cfg.rows = size;
  cfg.cols = size;
  cfg.broadcast_links = broadcast_links;
  return cfg;
}

}  // namespace fuse::systolic
