#include "systolic/trace.hpp"

#include "util/check.hpp"
#include "util/csv.hpp"

namespace fuse::systolic {

std::uint64_t FoldTrace::peak_fold_bytes() const {
  std::uint64_t peak = 0;
  for (const FoldRecord& fold : folds) {
    peak = std::max(peak, fold.input_bytes + fold.weight_bytes +
                              fold.output_bytes);
  }
  return peak;
}

namespace {

/// Appends one output-stationary matmul pass [M, T] x [T, N] to `trace`,
/// advancing `cursor`. Each pass pays its own final drain under
/// overlap_fold_drain — the same accounting as matmul_latency_os per
/// operator, so repeated passes sum to the analytic repeats * unit.
void append_matmul_walk(std::int64_t m, std::int64_t t, std::int64_t n,
                        const ArrayConfig& cfg, const MemoryConfig& mem,
                        FoldTrace& trace, std::uint64_t& cursor) {
  const std::uint64_t dtype = static_cast<std::uint64_t>(mem.dtype_bytes);
  std::int64_t last_rows = 0;
  for_each_fold_tile(m, n, cfg, [&](const FoldTile& tile) {
    FoldRecord fold;
    fold.used_rows = tile.rows;
    fold.used_cols = tile.cols;
    fold.depth = t;
    fold.input_bytes = static_cast<std::uint64_t>(tile.rows * t) * dtype;
    fold.weight_bytes = static_cast<std::uint64_t>(t * tile.cols) * dtype;
    fold.output_bytes =
        static_cast<std::uint64_t>(tile.rows * tile.cols) * dtype;
    std::uint64_t cycles = static_cast<std::uint64_t>(
        cfg.skew_cycles(tile.rows) + cfg.skew_cycles(tile.cols) + t);
    if (!cfg.overlap_fold_drain) {
      cycles += static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
    }
    last_rows = tile.rows;
    fold.start_cycle = cursor;
    fold.end_cycle = cursor + cycles;
    cursor = fold.end_cycle;
    trace.folds.push_back(fold);
  });
  if (cfg.overlap_fold_drain) {
    cursor += static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
  }
}

/// Appends one broadcast-dataflow FuSe pass (`lines` 1-D signals, k taps)
/// to `trace`, advancing `cursor`; mirrors fuse1d_latency.
void append_fuse1d_walk(std::int64_t lines, std::int64_t line_out,
                        std::int64_t k, const ArrayConfig& cfg,
                        const MemoryConfig& mem, FoldTrace& trace,
                        std::uint64_t& cursor) {
  const std::uint64_t dtype = static_cast<std::uint64_t>(mem.dtype_bytes);
  std::int64_t last_rows = 0;
  for_each_fold_tile(lines, line_out, cfg, [&](const FoldTile& tile) {
    FoldRecord fold;
    fold.used_rows = tile.rows;
    fold.used_cols = tile.cols;
    fold.depth = k;
    fold.input_bytes =
        static_cast<std::uint64_t>(tile.rows * (tile.cols + k - 1)) * dtype;
    fold.weight_bytes = static_cast<std::uint64_t>(tile.rows * k) * dtype;
    fold.output_bytes =
        static_cast<std::uint64_t>(tile.rows * tile.cols) * dtype;
    std::uint64_t cycles =
        static_cast<std::uint64_t>(cfg.skew_cycles(tile.cols) + k);
    if (!cfg.overlap_fold_drain) {
      cycles += static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
    }
    last_rows = tile.rows;
    fold.start_cycle = cursor;
    fold.end_cycle = cursor + cycles;
    cursor = fold.end_cycle;
    trace.folds.push_back(fold);
  });
  if (cfg.overlap_fold_drain) {
    cursor += static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
  }
}

}  // namespace

FoldTrace matmul_trace(std::int64_t m, std::int64_t t, std::int64_t n,
                       const ArrayConfig& cfg, const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FUSE_CHECK(m > 0 && t > 0 && n > 0) << "matmul_trace dims";
  FoldTrace trace;
  std::uint64_t cursor = 0;
  append_matmul_walk(m, t, n, cfg, mem, trace, cursor);
  trace.total_cycles = cursor;
  return trace;
}

FoldTrace fuse1d_trace(std::int64_t lines, std::int64_t line_out,
                       std::int64_t k, const ArrayConfig& cfg,
                       const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FUSE_CHECK(cfg.broadcast_links)
      << "fuse1d_trace models the broadcast dataflow";
  FUSE_CHECK(lines > 0 && line_out > 0 && k > 0) << "fuse1d_trace dims";
  FoldTrace trace;
  std::uint64_t cursor = 0;
  append_fuse1d_walk(lines, line_out, k, cfg, mem, trace, cursor);
  trace.total_cycles = cursor;
  return trace;
}

FoldTrace plan_trace(const MappingPlan& plan, const ArrayConfig& cfg,
                     const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FoldTrace trace;
  std::uint64_t cursor = 0;
  for (const PrimitiveOp& op : plan.ops) {
    for (std::int64_t r = 0; r < op.repeats; ++r) {
      switch (op.kind) {
        case PrimitiveKind::kMatmulTile:
        case PrimitiveKind::kIm2colTile:
        case PrimitiveKind::kChannelwiseTile:
          append_matmul_walk(op.m, op.k, op.n, cfg, mem, trace, cursor);
          break;
        case PrimitiveKind::kFuse1DLine:
          if (op.broadcast) {
            append_fuse1d_walk(op.lines, op.line_out, op.taps, cfg, mem,
                               trace, cursor);
          } else {
            append_matmul_walk(op.line_out, op.taps, /*n=*/1, cfg, mem,
                               trace, cursor);
          }
          break;
      }
    }
  }
  trace.total_cycles = cursor;
  return trace;
}

std::uint64_t plan_peak_fold_bytes(const MappingPlan& plan,
                                   const ArrayConfig& cfg,
                                   const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  const std::uint64_t dtype = static_cast<std::uint64_t>(mem.dtype_bytes);
  std::uint64_t peak = 0;
  for (const PrimitiveOp& op : plan.ops) {
    // The largest fold of a row-major tiling is the first one: every
    // interior tile is full-sized and edge tiles are strictly smaller, so
    // the peak is the full tile clamped to the operand dims.
    std::uint64_t bytes = 0;
    if (op.kind == PrimitiveKind::kFuse1DLine && op.broadcast) {
      const std::int64_t rows = std::min(op.lines, cfg.rows);
      const std::int64_t cols = std::min(op.line_out, cfg.cols);
      bytes = static_cast<std::uint64_t>(rows * (cols + op.taps - 1) +
                                         rows * op.taps + rows * cols) *
              dtype;
    } else {
      const bool serialized_line =
          op.kind == PrimitiveKind::kFuse1DLine;  // no-broadcast fallback
      const std::int64_t m = serialized_line ? op.line_out : op.m;
      const std::int64_t t = serialized_line ? op.taps : op.k;
      const std::int64_t n = serialized_line ? 1 : op.n;
      const std::int64_t rows = std::min(m, cfg.rows);
      const std::int64_t cols = std::min(n, cfg.cols);
      bytes = static_cast<std::uint64_t>(rows * t + t * cols + rows * cols) *
              dtype;
    }
    peak = std::max(peak, bytes);
  }
  return peak;
}

std::uint64_t append_fold_trace_events(util::TraceSink& sink,
                                       const FoldTrace& trace,
                                       const std::string& name,
                                       std::uint64_t cycle_offset,
                                       bool sram_counters) {
  for (const FoldRecord& fold : trace.folds) {
    const std::uint64_t ts = cycle_offset + fold.start_cycle;
    sink.complete_event(
        name, "fold", ts, fold.end_cycle - fold.start_cycle, kFoldTrack,
        {util::trace_num("rows", static_cast<std::uint64_t>(fold.used_rows)),
         util::trace_num("cols", static_cast<std::uint64_t>(fold.used_cols)),
         util::trace_num("depth", static_cast<std::uint64_t>(fold.depth))});
    if (sram_counters) {
      sink.counter_event("sram_bytes", ts, kSramTrack,
                         {{"input", fold.input_bytes},
                          {"weight", fold.weight_bytes},
                          {"output", fold.output_bytes}});
    }
  }
  // Drop the counter series back to zero once the trace's folds are done,
  // so gaps between layers read as empty SRAM rather than a stale level.
  if (sram_counters && !trace.folds.empty()) {
    sink.counter_event("sram_bytes",
                       cycle_offset + trace.folds.back().end_cycle,
                       kSramTrack,
                       {{"input", 0}, {"weight", 0}, {"output", 0}});
  }
  return cycle_offset + trace.total_cycles;
}

void write_fold_trace_json(const FoldTrace& trace, const std::string& path,
                           const std::string& name) {
  util::TraceSink sink;
  sink.process_name("fuseconv fold trace (ts unit = array cycles)");
  sink.thread_name(kFoldTrack, "folds");
  sink.thread_name(kSramTrack, "sram footprint");
  append_fold_trace_events(sink, trace, name, /*cycle_offset=*/0);
  sink.write_json_file(path);
}

void write_fold_trace_csv(const FoldTrace& trace, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_header({"fold", "start_cycle", "end_cycle", "rows", "cols",
                    "depth", "input_bytes", "weight_bytes",
                    "output_bytes"});
  for (std::size_t i = 0; i < trace.folds.size(); ++i) {
    const FoldRecord& fold = trace.folds[i];
    csv.write_row({std::to_string(i), std::to_string(fold.start_cycle),
                   std::to_string(fold.end_cycle),
                   std::to_string(fold.used_rows),
                   std::to_string(fold.used_cols),
                   std::to_string(fold.depth),
                   std::to_string(fold.input_bytes),
                   std::to_string(fold.weight_bytes),
                   std::to_string(fold.output_bytes)});
  }
}

}  // namespace fuse::systolic
