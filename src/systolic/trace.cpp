#include "systolic/trace.hpp"

#include "util/check.hpp"
#include "util/csv.hpp"

namespace fuse::systolic {

std::uint64_t FoldTrace::peak_fold_bytes() const {
  std::uint64_t peak = 0;
  for (const FoldRecord& fold : folds) {
    peak = std::max(peak, fold.input_bytes + fold.weight_bytes +
                              fold.output_bytes);
  }
  return peak;
}

FoldTrace matmul_trace(std::int64_t m, std::int64_t t, std::int64_t n,
                       const ArrayConfig& cfg, const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FUSE_CHECK(m > 0 && t > 0 && n > 0) << "matmul_trace dims";
  const std::uint64_t dtype = static_cast<std::uint64_t>(mem.dtype_bytes);

  FoldTrace trace;
  std::uint64_t cursor = 0;
  std::int64_t last_rows = 0;
  for (std::int64_t row0 = 0; row0 < m; row0 += cfg.rows) {
    const std::int64_t used_rows = std::min(cfg.rows, m - row0);
    for (std::int64_t col0 = 0; col0 < n; col0 += cfg.cols) {
      const std::int64_t used_cols = std::min(cfg.cols, n - col0);
      FoldRecord fold;
      fold.used_rows = used_rows;
      fold.used_cols = used_cols;
      fold.depth = t;
      fold.input_bytes =
          static_cast<std::uint64_t>(used_rows * t) * dtype;
      fold.weight_bytes =
          static_cast<std::uint64_t>(t * used_cols) * dtype;
      fold.output_bytes =
          static_cast<std::uint64_t>(used_rows * used_cols) * dtype;
      std::uint64_t cycles = static_cast<std::uint64_t>(
          (used_rows - 1) + (used_cols - 1) + t);
      if (!cfg.overlap_fold_drain) {
        cycles += static_cast<std::uint64_t>(used_rows);
      }
      last_rows = used_rows;
      fold.start_cycle = cursor;
      fold.end_cycle = cursor + cycles;
      cursor = fold.end_cycle;
      trace.folds.push_back(fold);
    }
  }
  if (cfg.overlap_fold_drain) {
    cursor += static_cast<std::uint64_t>(last_rows);
  }
  trace.total_cycles = cursor;
  return trace;
}

FoldTrace fuse1d_trace(std::int64_t lines, std::int64_t line_out,
                       std::int64_t k, const ArrayConfig& cfg,
                       const MemoryConfig& mem) {
  cfg.validate();
  mem.validate();
  FUSE_CHECK(cfg.broadcast_links)
      << "fuse1d_trace models the broadcast dataflow";
  FUSE_CHECK(lines > 0 && line_out > 0 && k > 0) << "fuse1d_trace dims";
  const std::uint64_t dtype = static_cast<std::uint64_t>(mem.dtype_bytes);

  FoldTrace trace;
  std::uint64_t cursor = 0;
  std::int64_t last_rows = 0;
  for (std::int64_t line0 = 0; line0 < lines; line0 += cfg.rows) {
    const std::int64_t used_rows = std::min(cfg.rows, lines - line0);
    for (std::int64_t out0 = 0; out0 < line_out; out0 += cfg.cols) {
      const std::int64_t used_cols = std::min(cfg.cols, line_out - out0);
      FoldRecord fold;
      fold.used_rows = used_rows;
      fold.used_cols = used_cols;
      fold.depth = k;
      fold.input_bytes = static_cast<std::uint64_t>(
                             used_rows * (used_cols + k - 1)) *
                         dtype;
      fold.weight_bytes = static_cast<std::uint64_t>(used_rows * k) * dtype;
      fold.output_bytes =
          static_cast<std::uint64_t>(used_rows * used_cols) * dtype;
      std::uint64_t cycles =
          static_cast<std::uint64_t>((used_cols - 1) + k);
      if (!cfg.overlap_fold_drain) {
        cycles += static_cast<std::uint64_t>(used_rows);
      }
      last_rows = used_rows;
      fold.start_cycle = cursor;
      fold.end_cycle = cursor + cycles;
      cursor = fold.end_cycle;
      trace.folds.push_back(fold);
    }
  }
  if (cfg.overlap_fold_drain) {
    cursor += static_cast<std::uint64_t>(last_rows);
  }
  trace.total_cycles = cursor;
  return trace;
}

void write_fold_trace_csv(const FoldTrace& trace, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_header({"fold", "start_cycle", "end_cycle", "rows", "cols",
                    "depth", "input_bytes", "weight_bytes",
                    "output_bytes"});
  for (std::size_t i = 0; i < trace.folds.size(); ++i) {
    const FoldRecord& fold = trace.folds[i];
    csv.write_row({std::to_string(i), std::to_string(fold.start_cycle),
                   std::to_string(fold.end_cycle),
                   std::to_string(fold.used_rows),
                   std::to_string(fold.used_cols),
                   std::to_string(fold.depth),
                   std::to_string(fold.input_bytes),
                   std::to_string(fold.weight_bytes),
                   std::to_string(fold.output_bytes)});
  }
}

}  // namespace fuse::systolic
