// The reference simulation engine: the original per-cycle PE sweep.
//
// Every PE of every fold is stepped every cycle — double-buffered operand
// registers, skew bubbles and all. This is deliberately the most literal
// rendering of the hardware and serves as the oracle the fast engine
// (sim_fast.cpp) is proven bit-exact against; keep it simple, not fast.
// The only concessions to speed are the unchecked tensor accessors in the
// edge feeders (the checked at() overloads are out-of-line calls, which
// dominates a per-PE-per-cycle loop) and exact integer busy counting
// (detail::BusyGrid).
#include <vector>

#include "systolic/sim.hpp"
#include "systolic/sim_detail.hpp"
#include "util/check.hpp"

namespace fuse::systolic {

using tensor::Shape;
using tensor::Tensor;

SimResult SystolicArraySim::matmul_os_reference(const Tensor& a,
                                                const Tensor& b) {
  detail::check_matmul_operands(a, b, "sim matmul");
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t depth = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);

  SimResult result;
  result.output = Tensor(Shape{m, n});
  detail::BusyGrid busy(cfg_);

  for_each_fold_tile(m, n, cfg_, [&](const FoldTile& tile) {
    {
      const std::int64_t row0 = tile.a0;
      const std::int64_t used_rows = tile.rows;
      const std::int64_t col0 = tile.b0;
      const std::int64_t used_cols = tile.cols;
      result.folds += 1;

      // Per-PE state. reg_* hold the operand a PE exposes to its neighbor
      // next cycle; double-buffered so the update is simultaneous.
      const auto idx = [&](std::int64_t i, std::int64_t j) {
        return static_cast<std::size_t>(i * used_cols + j);
      };
      std::vector<double> acc(idx(used_rows - 1, used_cols - 1) + 1, 0.0);
      std::vector<float> a_reg(acc.size(), 0.0F);
      std::vector<float> b_reg(acc.size(), 0.0F);
      std::vector<float> a_next(acc.size(), 0.0F);
      std::vector<float> b_next(acc.size(), 0.0F);

      // Edge feeders: row i of the fold receives A[row0+i][t - i] at cycle
      // t; column j receives B[t - j][col0+j]. Outside the valid window the
      // feeder emits zero (the pipeline bubble of the skewed wavefront).
      const auto feed_a = [&](std::int64_t i, std::int64_t t) -> float {
        const std::int64_t k = t - i;
        return (k >= 0 && k < depth) ? a.at_unchecked(row0 + i, k) : 0.0F;
      };
      const auto feed_b = [&](std::int64_t j, std::int64_t t) -> float {
        const std::int64_t k = t - j;
        return (k >= 0 && k < depth) ? b.at_unchecked(k, col0 + j) : 0.0F;
      };

      const std::int64_t compute_cycles =
          (used_rows - 1) + (used_cols - 1) + depth;
      for (std::int64_t t = 0; t < compute_cycles; ++t) {
        for (std::int64_t i = 0; i < used_rows; ++i) {
          for (std::int64_t j = 0; j < used_cols; ++j) {
            const float a_in =
                (j == 0) ? feed_a(i, t) : a_reg[idx(i, j - 1)];
            const float b_in =
                (i == 0) ? feed_b(j, t) : b_reg[idx(i - 1, j)];
            acc[idx(i, j)] +=
                static_cast<double>(a_in) * static_cast<double>(b_in);
            // PE (i,j) holds live operands exactly while t - i - j is
            // inside the reduction window; everything else is the skew
            // bubble. This makes mac_ops == R*Cc*depth per fold.
            const std::int64_t k = t - i - j;
            if (k >= 0 && k < depth) {
              result.mac_ops += 1;
              busy.add(i, j, 1);
            }
            a_next[idx(i, j)] = a_in;
            b_next[idx(i, j)] = b_in;
          }
        }
        a_reg.swap(a_next);
        b_reg.swap(b_next);
      }

      // Drain: accumulators shift down their column one PE per cycle and
      // exit at the bottom edge — used_rows cycles.
      for (std::int64_t d = 0; d < used_rows; ++d) {
        const std::int64_t i = used_rows - 1 - d;  // row exiting this cycle
        for (std::int64_t j = 0; j < used_cols; ++j) {
          result.output.at_unchecked(row0 + i, col0 + j) =
              static_cast<float>(acc[idx(i, j)]);
        }
      }

      result.cycles += static_cast<std::uint64_t>(compute_cycles) +
                       static_cast<std::uint64_t>(used_rows);
    }
  });
  result.pe_busy = busy.to_tensor();
  return result;
}

SimResult SystolicArraySim::matmul_ws_reference(const Tensor& a,
                                                const Tensor& b) {
  detail::check_matmul_operands(a, b, "sim matmul_ws");
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t depth = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);

  SimResult result;
  result.output = Tensor(Shape{m, n});
  detail::BusyGrid busy(cfg_);
  // Off-array accumulators: partial sums from successive reduction folds
  // of the same output tile are summed here (read-modify-write, free as in
  // the analytic model).
  std::vector<double> acc(static_cast<std::size_t>(m * n), 0.0);

  // Weight tiles: reduction depth over the array rows, N over the columns
  // (the same grid matmul_latency_ws walks).
  for_each_fold_tile(depth, n, cfg_, [&](const FoldTile& tile) {
    {
      const std::int64_t t0 = tile.a0;
      const std::int64_t used_t = tile.rows;
      const std::int64_t col0 = tile.b0;
      const std::int64_t used_n = tile.cols;
      result.folds += 1;

      const auto idx = [&](std::int64_t i, std::int64_t j) {
        return static_cast<std::size_t>(i * used_n + j);
      };
      // Preload the weight tile, one row per cycle.
      std::vector<float> w(idx(used_t - 1, used_n - 1) + 1, 0.0F);
      for (std::int64_t i = 0; i < used_t; ++i) {
        for (std::int64_t j = 0; j < used_n; ++j) {
          w[idx(i, j)] = b.at_unchecked(t0 + i, col0 + j);
        }
      }
      result.cycles += static_cast<std::uint64_t>(used_t);

      // Stream the M activation rows; partial sums cascade downward.
      std::vector<float> a_reg(w.size(), 0.0F);
      std::vector<float> a_next(w.size(), 0.0F);
      std::vector<double> ps_reg(w.size(), 0.0);
      std::vector<double> ps_next(w.size(), 0.0);
      const std::int64_t stream_cycles = m + used_t + used_n - 2;
      for (std::int64_t s = 0; s < stream_cycles; ++s) {
        for (std::int64_t i = 0; i < used_t; ++i) {
          for (std::int64_t j = 0; j < used_n; ++j) {
            const std::int64_t row_index = s - i - j;  // activation row at
                                                       // this PE this cycle
            float a_in = 0.0F;
            if (j == 0) {
              const std::int64_t feeder_row = s - i;
              a_in = (feeder_row >= 0 && feeder_row < m)
                         ? a.at_unchecked(feeder_row, t0 + i)
                         : 0.0F;
            } else {
              a_in = a_reg[idx(i, j - 1)];
            }
            const double ps_in = (i == 0) ? 0.0 : ps_reg[idx(i - 1, j)];
            const double ps_out =
                ps_in + static_cast<double>(w[idx(i, j)]) *
                            static_cast<double>(a_in);
            if (row_index >= 0 && row_index < m) {
              result.mac_ops += 1;
              busy.add(i, j, 1);
            }
            a_next[idx(i, j)] = a_in;
            ps_next[idx(i, j)] = ps_out;
            // Bottom row: the cascaded sum for activation row `exit_row`
            // leaves the array into the accumulators.
            if (i == used_t - 1) {
              const std::int64_t exit_row = s - (used_t - 1) - j;
              if (exit_row >= 0 && exit_row < m) {
                acc[static_cast<std::size_t>(exit_row * n + col0 + j)] +=
                    ps_out;
              }
            }
          }
        }
        a_reg.swap(a_next);
        ps_reg.swap(ps_next);
      }
      result.cycles += static_cast<std::uint64_t>(stream_cycles);
    }
  });
  for (std::int64_t i = 0; i < m * n; ++i) {
    result.output[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]);
  }
  result.pe_busy = busy.to_tensor();
  return result;
}

SimResult SystolicArraySim::matmul_is_reference(const Tensor& a,
                                                const Tensor& b) {
  detail::check_matmul_operands(a, b, "sim matmul_is");
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t depth = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);

  SimResult result;
  result.output = Tensor(Shape{m, n});
  detail::BusyGrid busy(cfg_);
  std::vector<double> acc(static_cast<std::size_t>(m * n), 0.0);

  // Activation tiles: M over the array rows, reduction depth over columns
  // (the same grid matmul_latency_is walks).
  for_each_fold_tile(m, depth, cfg_, [&](const FoldTile& tile) {
    {
      const std::int64_t row0 = tile.a0;
      const std::int64_t used_m = tile.rows;
      const std::int64_t t0 = tile.b0;
      const std::int64_t used_t = tile.cols;
      result.folds += 1;

      const auto idx = [&](std::int64_t i, std::int64_t j) {
        return static_cast<std::size_t>(i * used_t + j);
      };
      // Preload the activation tile, one row per cycle.
      std::vector<float> pinned(idx(used_m - 1, used_t - 1) + 1, 0.0F);
      for (std::int64_t i = 0; i < used_m; ++i) {
        for (std::int64_t j = 0; j < used_t; ++j) {
          pinned[idx(i, j)] = a.at_unchecked(row0 + i, t0 + j);
        }
      }
      result.cycles += static_cast<std::uint64_t>(used_m);

      // Stream B's columns down the array; partial sums cascade rightward.
      std::vector<float> b_reg(pinned.size(), 0.0F);
      std::vector<float> b_next(pinned.size(), 0.0F);
      std::vector<double> ps_reg(pinned.size(), 0.0);
      std::vector<double> ps_next(pinned.size(), 0.0);
      const std::int64_t stream_cycles = n + used_m + used_t - 2;
      for (std::int64_t s = 0; s < stream_cycles; ++s) {
        for (std::int64_t i = 0; i < used_m; ++i) {
          for (std::int64_t j = 0; j < used_t; ++j) {
            const std::int64_t out_col = s - i - j;  // output column here
            float b_in = 0.0F;
            if (i == 0) {
              const std::int64_t feeder_col = s - j;
              b_in = (feeder_col >= 0 && feeder_col < n)
                         ? b.at_unchecked(t0 + j, feeder_col)
                         : 0.0F;
            } else {
              b_in = b_reg[idx(i - 1, j)];
            }
            const double ps_in = (j == 0) ? 0.0 : ps_reg[idx(i, j - 1)];
            const double ps_out =
                ps_in + static_cast<double>(pinned[idx(i, j)]) *
                            static_cast<double>(b_in);
            if (out_col >= 0 && out_col < n) {
              result.mac_ops += 1;
              busy.add(i, j, 1);
            }
            b_next[idx(i, j)] = b_in;
            ps_next[idx(i, j)] = ps_out;
            if (j == used_t - 1) {
              const std::int64_t exit_col = s - (used_t - 1) - i;
              if (exit_col >= 0 && exit_col < n) {
                acc[static_cast<std::size_t>((row0 + i) * n + exit_col)] +=
                    ps_out;
              }
            }
          }
        }
        b_reg.swap(b_next);
        ps_reg.swap(ps_next);
      }
      result.cycles += static_cast<std::uint64_t>(stream_cycles);
    }
  });
  for (std::int64_t i = 0; i < m * n; ++i) {
    result.output[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]);
  }
  result.pe_busy = busy.to_tensor();
  return result;
}

SimResult SystolicArraySim::conv1d_broadcast_reference(
    const Tensor& lines, const Tensor& kernels) {
  detail::check_conv1d_operands(lines, kernels, cfg_);
  const std::int64_t num_lines = lines.shape().dim(0);
  const std::int64_t width = lines.shape().dim(1);
  const std::int64_t taps = kernels.shape().dim(1);
  const std::int64_t out_w = width - taps + 1;

  SimResult result;
  result.output = Tensor(Shape{num_lines, out_w});
  detail::BusyGrid busy(cfg_);

  for_each_fold_tile(num_lines, out_w, cfg_, [&](const FoldTile& tile) {
    {
      const std::int64_t line0 = tile.a0;
      const std::int64_t used_rows = tile.rows;
      const std::int64_t out0 = tile.b0;
      const std::int64_t used_cols = tile.cols;
      result.folds += 1;

      const auto idx = [&](std::int64_t r, std::int64_t c) {
        return static_cast<std::size_t>(r * used_cols + c);
      };
      std::vector<double> acc(idx(used_rows - 1, used_cols - 1) + 1, 0.0);
      std::vector<float> window(acc.size(), 0.0F);

      // One leftward shift of every row's input window; the right edge
      // injects lines[line][out0 + inject].
      const auto shift_in = [&](std::int64_t inject) {
        for (std::int64_t r = 0; r < used_rows; ++r) {
          for (std::int64_t c = 0; c + 1 < used_cols; ++c) {
            window[idx(r, c)] = window[idx(r, c + 1)];
          }
          window[idx(r, used_cols - 1)] =
              lines.at_unchecked(line0 + r, out0 + inject);
        }
      };

      // Phase 1 — prefill: (used_cols - 1) cycles stream the first window
      // values through the row so PE c holds lines[.][out0 + c] when the
      // first weight is broadcast.
      for (std::int64_t p = 0; p + 1 < used_cols; ++p) {
        shift_in(p);
      }

      // Phase 2 — compute: at cycle k the row bus broadcasts
      // kernels[line][k]; the window advances one step first so PE c sees
      // lines[.][out0 + c + k].
      for (std::int64_t k = 0; k < taps; ++k) {
        shift_in(used_cols - 1 + k);
        for (std::int64_t r = 0; r < used_rows; ++r) {
          const float weight = kernels.at_unchecked(line0 + r, k);
          for (std::int64_t c = 0; c < used_cols; ++c) {
            acc[idx(r, c)] += static_cast<double>(weight) *
                              static_cast<double>(window[idx(r, c)]);
            result.mac_ops += 1;
            busy.add(r, c, 1);
          }
        }
      }

      // Phase 3 — drain down the columns, used_rows cycles.
      for (std::int64_t r = 0; r < used_rows; ++r) {
        for (std::int64_t c = 0; c < used_cols; ++c) {
          result.output.at_unchecked(line0 + r, out0 + c) =
              static_cast<float>(acc[idx(r, c)]);
        }
      }

      result.cycles += static_cast<std::uint64_t>((used_cols - 1) + taps +
                                                  used_rows);
    }
  });
  result.pe_busy = busy.to_tensor();
  return result;
}

}  // namespace fuse::systolic
