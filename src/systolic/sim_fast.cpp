// The fast simulation engine: closed-form wavefront intervals.
//
// The reference engine steps every PE every cycle, bubbles included. But
// the skewed wavefront is closed-form: PE (i, j) holds live operands
// exactly while t - i - j is inside the reduction window, and outside it
// both operand registers hold the pipeline zero. So each PE's accumulator
// is a straight dot product over its depth-length operand stream, and the
// whole per-cycle sweep collapses to O(R * C * depth) per fold.
//
// Bit-exactness contract (asserted by tests/test_systolic_sim.cpp and the
// check.sh equality stage): every output element accumulates the IDENTICAL
// floating-point operation sequence as the reference engine —
//   * OS: acc(i,j) = sum over ascending k of (double)a * (double)b. The
//     reference additionally adds the bubble product 0.0F * 0.0F once per
//     bubble cycle, but every such add is a bitwise no-op: an IEEE sum is
//     -0.0 only when BOTH operands are -0.0, and the accumulator starts
//     at +0.0, so it can never become -0.0 — and x + 0.0 == x exactly for
//     every other x. Dropping the bubble adds changes nothing.
//   * WS/IS: the partial-sum cascade starts from a literal 0.0 and every
//     link is live for a valid exit row/column, so the per-fold
//     contribution is the clean ascending-index sum — no bubble terms.
//     Contributions from successive reduction folds land on the off-array
//     accumulator in ascending-fold order; the fast engine parallelizes
//     only across output-tile folds (disjoint accumulator regions) and
//     keeps reduction folds serial-ascending within each task.
//   * conv1d_broadcast: acc = sum over ascending tap of
//     (double)weight * (double)window; folds write disjoint outputs, so
//     every fold runs in parallel.
// Counters (cycles / folds / mac_ops) and the pe_busy grid are closed-form
// per fold and accumulated serially from the fold list in enumeration
// order, so they are deterministic for any thread count.
#include <algorithm>
#include <vector>

#include "systolic/sim.hpp"
#include "systolic/sim_detail.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace fuse::systolic {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Counts fold tasks dispatched onto the sim pool (one increment per fold
/// executed inside a parallel region; docs/observability.md "sim.*").
util::Counter& fold_parallel_counter() {
  static util::Counter& counter =
      util::metrics().counter("sim.fold_parallel");
  return counter;
}

std::vector<FoldTile> collect_fold_tiles(std::int64_t a, std::int64_t b,
                                         const ArrayConfig& cfg) {
  std::vector<FoldTile> tiles;
  for_each_fold_tile(a, b, cfg,
                     [&](const FoldTile& tile) { tiles.push_back(tile); });
  return tiles;
}

}  // namespace

SimResult SystolicArraySim::matmul_os_fast(const Tensor& a, const Tensor& b) {
  detail::check_matmul_operands(a, b, "sim matmul");
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t depth = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);

  SimResult result;
  result.output = Tensor(Shape{m, n});
  detail::BusyGrid busy(cfg_);

  const std::vector<FoldTile> tiles = collect_fold_tiles(m, n, cfg_);
  for (const FoldTile& tile : tiles) {
    result.folds += 1;
    const std::int64_t compute_cycles =
        (tile.rows - 1) + (tile.cols - 1) + depth;
    result.cycles += static_cast<std::uint64_t>(compute_cycles + tile.rows);
    result.mac_ops += static_cast<std::uint64_t>(tile.rows * tile.cols) *
                      static_cast<std::uint64_t>(depth);
    busy.add_tile(tile.rows, tile.cols, static_cast<std::uint64_t>(depth));
  }

  const float* a_data = a.data();
  const float* b_data = b.data();
  float* out = result.output.data();
  fold_parallel_counter().add(tiles.size());
  sim_pool().parallel_for(
      static_cast<std::int64_t>(tiles.size()), [&](std::int64_t fi) {
        const FoldTile& tile = tiles[static_cast<std::size_t>(fi)];
        // Pack the B column panel once: b_panel[k][j] = b[k][col0 + j],
        // contiguous so the per-PE dot products vectorize over columns.
        std::vector<float> b_panel(
            static_cast<std::size_t>(depth * tile.cols));
        for (std::int64_t k = 0; k < depth; ++k) {
          const float* src = b_data + k * n + tile.b0;
          std::copy(src, src + tile.cols,
                    b_panel.begin() + static_cast<std::size_t>(k * tile.cols));
        }
        std::vector<double> acc(static_cast<std::size_t>(tile.cols));
        for (std::int64_t i = 0; i < tile.rows; ++i) {
          std::fill(acc.begin(), acc.end(), 0.0);
          const float* a_row = a_data + (tile.a0 + i) * depth;
          for (std::int64_t k = 0; k < depth; ++k) {
            const double a_val = static_cast<double>(a_row[k]);
            const float* b_row =
                b_panel.data() + static_cast<std::size_t>(k * tile.cols);
            for (std::int64_t j = 0; j < tile.cols; ++j) {
              acc[static_cast<std::size_t>(j)] +=
                  a_val * static_cast<double>(b_row[j]);
            }
          }
          float* out_row = out + (tile.a0 + i) * n + tile.b0;
          for (std::int64_t j = 0; j < tile.cols; ++j) {
            out_row[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
          }
        }
      });
  result.pe_busy = busy.to_tensor();
  return result;
}

SimResult SystolicArraySim::matmul_ws_fast(const Tensor& a, const Tensor& b) {
  detail::check_matmul_operands(a, b, "sim matmul_ws");
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t depth = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);

  SimResult result;
  result.output = Tensor(Shape{m, n});
  detail::BusyGrid busy(cfg_);

  // Weight tiles: reduction depth over array rows, N over columns — the
  // enumeration is row-major (t0 outer, col0 inner), so tile (ti, ci)
  // lives at index ti * col_groups + ci.
  const std::vector<FoldTile> tiles = collect_fold_tiles(depth, n, cfg_);
  const std::int64_t t_groups = (depth + cfg_.rows - 1) / cfg_.rows;
  const std::int64_t col_groups = (n + cfg_.cols - 1) / cfg_.cols;
  FUSE_DCHECK(static_cast<std::int64_t>(tiles.size()) ==
              t_groups * col_groups);
  for (const FoldTile& tile : tiles) {
    result.folds += 1;
    result.cycles += static_cast<std::uint64_t>(
        tile.rows + (m + tile.rows + tile.cols - 2));
    result.mac_ops += static_cast<std::uint64_t>(m) *
                      static_cast<std::uint64_t>(tile.rows * tile.cols);
    busy.add_tile(tile.rows, tile.cols, static_cast<std::uint64_t>(m));
  }

  // Off-array accumulators, shared across reduction folds. Parallel tasks
  // own disjoint column ranges; within a task the reduction folds run
  // serial-ascending so every element sees the reference's add order.
  std::vector<double> acc(static_cast<std::size_t>(m * n), 0.0);
  const float* a_data = a.data();
  const float* b_data = b.data();
  fold_parallel_counter().add(tiles.size());
  sim_pool().parallel_for(col_groups, [&](std::int64_t ci) {
    std::vector<float> w_panel;
    std::vector<double> sum;
    for (std::int64_t ti = 0; ti < t_groups; ++ti) {
      const FoldTile& tile =
          tiles[static_cast<std::size_t>(ti * col_groups + ci)];
      const std::int64_t t0 = tile.a0;
      const std::int64_t used_t = tile.rows;
      const std::int64_t col0 = tile.b0;
      const std::int64_t used_n = tile.cols;
      // Pack the preloaded weight tile: w_panel[i][j] = b[t0+i][col0+j].
      w_panel.assign(static_cast<std::size_t>(used_t * used_n), 0.0F);
      for (std::int64_t i = 0; i < used_t; ++i) {
        const float* src = b_data + (t0 + i) * n + col0;
        std::copy(src, src + used_n,
                  w_panel.begin() + static_cast<std::size_t>(i * used_n));
      }
      sum.assign(static_cast<std::size_t>(used_n), 0.0);
      for (std::int64_t r = 0; r < m; ++r) {
        std::fill(sum.begin(), sum.end(), 0.0);
        // The activation stream of row r: a[r][t0 + i], contiguous.
        const float* a_row = a_data + r * depth + t0;
        for (std::int64_t i = 0; i < used_t; ++i) {
          const double a_val = static_cast<double>(a_row[i]);
          const float* w_row =
              w_panel.data() + static_cast<std::size_t>(i * used_n);
          for (std::int64_t j = 0; j < used_n; ++j) {
            sum[static_cast<std::size_t>(j)] +=
                static_cast<double>(w_row[j]) * a_val;
          }
        }
        double* acc_row = acc.data() + r * n + col0;
        for (std::int64_t j = 0; j < used_n; ++j) {
          acc_row[j] += sum[static_cast<std::size_t>(j)];
        }
      }
    }
  });
  for (std::int64_t i = 0; i < m * n; ++i) {
    result.output[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]);
  }
  result.pe_busy = busy.to_tensor();
  return result;
}

SimResult SystolicArraySim::matmul_is_fast(const Tensor& a, const Tensor& b) {
  detail::check_matmul_operands(a, b, "sim matmul_is");
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t depth = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);

  SimResult result;
  result.output = Tensor(Shape{m, n});
  detail::BusyGrid busy(cfg_);

  // Activation tiles: M over array rows, reduction depth over columns —
  // row-major (row0 outer, t0 inner): tile (ri, ti) at ri * t_groups + ti.
  const std::vector<FoldTile> tiles = collect_fold_tiles(m, depth, cfg_);
  const std::int64_t row_groups = (m + cfg_.rows - 1) / cfg_.rows;
  const std::int64_t t_groups = (depth + cfg_.cols - 1) / cfg_.cols;
  FUSE_DCHECK(static_cast<std::int64_t>(tiles.size()) ==
              row_groups * t_groups);
  for (const FoldTile& tile : tiles) {
    result.folds += 1;
    result.cycles += static_cast<std::uint64_t>(
        tile.rows + (n + tile.rows + tile.cols - 2));
    result.mac_ops += static_cast<std::uint64_t>(n) *
                      static_cast<std::uint64_t>(tile.rows * tile.cols);
    busy.add_tile(tile.rows, tile.cols, static_cast<std::uint64_t>(n));
  }

  // Parallel tasks own disjoint output-row ranges; reduction folds run
  // serial-ascending within each task (same argument as WS).
  std::vector<double> acc(static_cast<std::size_t>(m * n), 0.0);
  const float* a_data = a.data();
  const float* b_data = b.data();
  fold_parallel_counter().add(tiles.size());
  sim_pool().parallel_for(row_groups, [&](std::int64_t ri) {
    std::vector<double> sum(static_cast<std::size_t>(n));
    for (std::int64_t ti = 0; ti < t_groups; ++ti) {
      const FoldTile& tile =
          tiles[static_cast<std::size_t>(ri * t_groups + ti)];
      const std::int64_t row0 = tile.a0;
      const std::int64_t used_m = tile.rows;
      const std::int64_t t0 = tile.b0;
      const std::int64_t used_t = tile.cols;
      for (std::int64_t i = 0; i < used_m; ++i) {
        std::fill(sum.begin(), sum.end(), 0.0);
        // The pinned activations of array row i: a[row0+i][t0 + j].
        const float* a_row = a_data + (row0 + i) * depth + t0;
        for (std::int64_t j = 0; j < used_t; ++j) {
          const double pin = static_cast<double>(a_row[j]);
          const float* b_row = b_data + (t0 + j) * n;  // already contiguous
          for (std::int64_t c = 0; c < n; ++c) {
            sum[static_cast<std::size_t>(c)] +=
                pin * static_cast<double>(b_row[c]);
          }
        }
        double* acc_row = acc.data() + (row0 + i) * n;
        for (std::int64_t c = 0; c < n; ++c) {
          acc_row[c] += sum[static_cast<std::size_t>(c)];
        }
      }
    }
  });
  for (std::int64_t i = 0; i < m * n; ++i) {
    result.output[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]);
  }
  result.pe_busy = busy.to_tensor();
  return result;
}

SimResult SystolicArraySim::conv1d_broadcast_fast(const Tensor& lines,
                                                  const Tensor& kernels) {
  detail::check_conv1d_operands(lines, kernels, cfg_);
  const std::int64_t num_lines = lines.shape().dim(0);
  const std::int64_t width = lines.shape().dim(1);
  const std::int64_t taps = kernels.shape().dim(1);
  const std::int64_t out_w = width - taps + 1;

  SimResult result;
  result.output = Tensor(Shape{num_lines, out_w});
  detail::BusyGrid busy(cfg_);

  const std::vector<FoldTile> tiles =
      collect_fold_tiles(num_lines, out_w, cfg_);
  for (const FoldTile& tile : tiles) {
    result.folds += 1;
    result.cycles += static_cast<std::uint64_t>((tile.cols - 1) + taps +
                                                tile.rows);
    result.mac_ops += static_cast<std::uint64_t>(tile.rows * tile.cols) *
                      static_cast<std::uint64_t>(taps);
    busy.add_tile(tile.rows, tile.cols, static_cast<std::uint64_t>(taps));
  }

  // Every fold writes a disjoint output tile — fully parallel.
  const float* line_data = lines.data();
  const float* kern_data = kernels.data();
  float* out = result.output.data();
  fold_parallel_counter().add(tiles.size());
  sim_pool().parallel_for(
      static_cast<std::int64_t>(tiles.size()), [&](std::int64_t fi) {
        const FoldTile& tile = tiles[static_cast<std::size_t>(fi)];
        std::vector<double> sum(static_cast<std::size_t>(tile.cols));
        for (std::int64_t r = 0; r < tile.rows; ++r) {
          const std::int64_t line = tile.a0 + r;
          const float* window = line_data + line * width + tile.b0;
          const float* kern = kern_data + line * taps;
          std::fill(sum.begin(), sum.end(), 0.0);
          for (std::int64_t k = 0; k < taps; ++k) {
            const double weight = static_cast<double>(kern[k]);
            for (std::int64_t c = 0; c < tile.cols; ++c) {
              sum[static_cast<std::size_t>(c)] +=
                  weight * static_cast<double>(window[c + k]);
            }
          }
          float* out_row = out + line * out_w + tile.b0;
          for (std::int64_t c = 0; c < tile.cols; ++c) {
            out_row[c] = static_cast<float>(sum[static_cast<std::size_t>(c)]);
          }
        }
      });
  result.pe_busy = busy.to_tensor();
  return result;
}

}  // namespace fuse::systolic
