#include "systolic/cycle_model.hpp"

#include "systolic/mapping.hpp"
#include "util/check.hpp"

namespace fuse::systolic {

LatencyEstimate& LatencyEstimate::operator+=(const LatencyEstimate& other) {
  cycles += other.cycles;
  folds += other.folds;
  mac_ops += other.mac_ops;
  if (pe_count == 0) {
    pe_count = other.pe_count;
  }
  FUSE_CHECK(other.pe_count == 0 || other.pe_count == pe_count)
      << "accumulating latencies from different array sizes";
  return *this;
}

std::uint64_t fold_cycles(std::int64_t used_rows, std::int64_t used_cols,
                          std::int64_t depth) {
  FUSE_CHECK(used_rows > 0 && used_cols > 0 && depth > 0)
      << "fold_cycles(" << used_rows << ", " << used_cols << ", " << depth
      << ")";
  return static_cast<std::uint64_t>((used_rows - 1) + (used_cols - 1) +
                                    depth + used_rows);
}

std::uint64_t fold_cycles(std::int64_t used_rows, std::int64_t used_cols,
                          std::int64_t depth, const ArrayConfig& cfg) {
  FUSE_CHECK(used_rows > 0 && used_cols > 0 && depth > 0)
      << "fold_cycles(" << used_rows << ", " << used_cols << ", " << depth
      << ")";
  return static_cast<std::uint64_t>(cfg.skew_cycles(used_rows) +
                                    cfg.skew_cycles(used_cols) + depth +
                                    cfg.drain_cycles(used_rows));
}

LatencyEstimate matmul_latency(std::int64_t m, std::int64_t t,
                               std::int64_t n, const ArrayConfig& cfg) {
  switch (cfg.dataflow) {
    case Dataflow::kOutputStationary:
      return matmul_latency_os(m, t, n, cfg);
    case Dataflow::kWeightStationary:
      return matmul_latency_ws(m, t, n, cfg);
    case Dataflow::kInputStationary:
      return matmul_latency_is(m, t, n, cfg);
  }
  FUSE_CHECK(false) << "unknown dataflow";
  return {};
}

LatencyEstimate matmul_latency_os(std::int64_t m, std::int64_t t,
                                  std::int64_t n, const ArrayConfig& cfg) {
  cfg.validate();
  FUSE_CHECK(m > 0 && t > 0 && n > 0)
      << "matmul_latency(" << m << ", " << t << ", " << n << ")";
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  std::int64_t last_rows = 0;
  for_each_fold_tile(m, n, cfg, [&](const FoldTile& tile) {
    if (cfg.overlap_fold_drain) {
      // Drain overlaps the next fold's fill; only the last fold pays it.
      est.cycles += static_cast<std::uint64_t>(cfg.skew_cycles(tile.rows) +
                                               cfg.skew_cycles(tile.cols) + t);
      last_rows = tile.rows;
    } else {
      est.cycles += fold_cycles(tile.rows, tile.cols, t, cfg);
    }
    est.folds += 1;
    est.mac_ops += static_cast<std::uint64_t>(tile.rows) *
                   static_cast<std::uint64_t>(tile.cols) *
                   static_cast<std::uint64_t>(t);
  });
  if (cfg.overlap_fold_drain) {
    est.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
  }
  return est;
}

LatencyEstimate matmul_latency_ws(std::int64_t m, std::int64_t t,
                                  std::int64_t n, const ArrayConfig& cfg) {
  cfg.validate();
  FUSE_CHECK(m > 0 && t > 0 && n > 0)
      << "matmul_latency_ws(" << m << ", " << t << ", " << n << ")";
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  bool first_fold = true;
  // Weight tiles: reduction depth over the array rows, N over the columns.
  for_each_fold_tile(t, n, cfg, [&](const FoldTile& tile) {
    const std::int64_t used_t = tile.rows;
    const std::int64_t used_n = tile.cols;
    // Preload hides behind the previous fold's streaming when weights
    // are double-buffered. Preload is row-load-bandwidth bound (one row
    // per cycle), so transparency does not shorten it.
    if (first_fold || !cfg.overlap_fold_drain) {
      est.cycles += static_cast<std::uint64_t>(used_t);
    }
    first_fold = false;
    est.cycles += static_cast<std::uint64_t>(m + cfg.skew_cycles(used_t) +
                                             cfg.skew_cycles(used_n));
    est.folds += 1;
    est.mac_ops += static_cast<std::uint64_t>(m) *
                   static_cast<std::uint64_t>(used_t) *
                   static_cast<std::uint64_t>(used_n);
  });
  return est;
}

LatencyEstimate matmul_latency_is(std::int64_t m, std::int64_t t,
                                  std::int64_t n, const ArrayConfig& cfg) {
  cfg.validate();
  FUSE_CHECK(m > 0 && t > 0 && n > 0)
      << "matmul_latency_is(" << m << ", " << t << ", " << n << ")";
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  bool first_fold = true;
  // Activation tiles: M over the array rows, reduction depth over columns.
  for_each_fold_tile(m, t, cfg, [&](const FoldTile& tile) {
    const std::int64_t used_m = tile.rows;
    const std::int64_t used_t = tile.cols;
    if (first_fold || !cfg.overlap_fold_drain) {
      est.cycles += static_cast<std::uint64_t>(used_m);
    }
    first_fold = false;
    est.cycles += static_cast<std::uint64_t>(n + cfg.skew_cycles(used_m) +
                                             cfg.skew_cycles(used_t));
    est.folds += 1;
    est.mac_ops += static_cast<std::uint64_t>(n) *
                   static_cast<std::uint64_t>(used_m) *
                   static_cast<std::uint64_t>(used_t);
  });
  return est;
}

LatencyEstimate conv_im2col_latency(std::int64_t out_h, std::int64_t out_w,
                                    std::int64_t k_h, std::int64_t k_w,
                                    std::int64_t in_c, std::int64_t out_c,
                                    const ArrayConfig& cfg) {
  return matmul_latency(out_h * out_w, k_h * k_w * in_c, out_c, cfg);
}

LatencyEstimate depthwise_im2col_latency(std::int64_t channels,
                                         std::int64_t out_h,
                                         std::int64_t out_w, std::int64_t k,
                                         const ArrayConfig& cfg) {
  FUSE_CHECK(channels > 0) << "depthwise needs channels > 0";
  // One single-column matmul per channel; different channels read different
  // inputs, so the idle columns cannot be given to other channels (§III-B).
  const LatencyEstimate per_channel =
      matmul_latency(out_h * out_w, k * k, /*n=*/1, cfg);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.cycles = per_channel.cycles * static_cast<std::uint64_t>(channels);
  est.folds = per_channel.folds * static_cast<std::uint64_t>(channels);
  est.mac_ops = per_channel.mac_ops * static_cast<std::uint64_t>(channels);
  return est;
}

LatencyEstimate conv_channelwise_latency(std::int64_t out_h,
                                         std::int64_t out_w, std::int64_t k_h,
                                         std::int64_t k_w, std::int64_t in_c,
                                         std::int64_t out_c,
                                         const ArrayConfig& cfg) {
  // One [positions, in_c] x [in_c, out_c] matmul per kernel tap; the adder
  // tree reduction is folded into the drain already counted per fold.
  const LatencyEstimate per_tap =
      matmul_latency(out_h * out_w, in_c, out_c, cfg);
  const std::uint64_t taps =
      static_cast<std::uint64_t>(k_h) * static_cast<std::uint64_t>(k_w);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.cycles = per_tap.cycles * taps;
  est.folds = per_tap.folds * taps;
  est.mac_ops = per_tap.mac_ops * taps;
  return est;
}

LatencyEstimate fuse1d_latency(std::int64_t lines, std::int64_t line_out,
                               std::int64_t k, const ArrayConfig& cfg) {
  cfg.validate();
  FUSE_CHECK(cfg.broadcast_links)
      << "fuse1d_latency models the proposed broadcast dataflow; "
         "use fuse1d_no_broadcast_latency for a baseline array";
  FUSE_CHECK(lines > 0 && line_out > 0 && k > 0)
      << "fuse1d_latency(" << lines << ", " << line_out << ", " << k << ")";
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  std::int64_t last_rows = 0;
  for_each_fold_tile(lines, line_out, cfg, [&](const FoldTile& tile) {
    // Input skew along the row + k broadcast MAC cycles (+ drain, unless
    // it overlaps the next wave's fill).
    est.cycles += static_cast<std::uint64_t>(cfg.skew_cycles(tile.cols) + k);
    if (cfg.overlap_fold_drain) {
      last_rows = tile.rows;
    } else {
      est.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(tile.rows));
    }
    est.folds += 1;
    est.mac_ops += static_cast<std::uint64_t>(tile.rows) *
                   static_cast<std::uint64_t>(tile.cols) *
                   static_cast<std::uint64_t>(k);
  });
  if (cfg.overlap_fold_drain) {
    est.cycles += static_cast<std::uint64_t>(cfg.drain_cycles(last_rows));
  }
  return est;
}

LatencyEstimate fuse1d_no_broadcast_latency(std::int64_t lines,
                                            std::int64_t line_out,
                                            std::int64_t k,
                                            const ArrayConfig& cfg) {
  FUSE_CHECK(lines > 0) << "fuse1d needs lines > 0";
  const LatencyEstimate per_line = matmul_latency(line_out, k, /*n=*/1, cfg);
  LatencyEstimate est;
  est.pe_count = cfg.pe_count();
  est.cycles = per_line.cycles * static_cast<std::uint64_t>(lines);
  est.folds = per_line.folds * static_cast<std::uint64_t>(lines);
  est.mac_ops = per_line.mac_ops * static_cast<std::uint64_t>(lines);
  return est;
}

LatencyEstimate fully_connected_latency(std::int64_t in_f,
                                        std::int64_t out_f,
                                        const ArrayConfig& cfg) {
  return matmul_latency(/*m=*/1, in_f, out_f, cfg);
}

}  // namespace fuse::systolic
