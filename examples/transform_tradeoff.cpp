// transform_tradeoff: the design-space view behind the paper's 50%
// variants. Sweeps the fraction of depthwise blocks replaced (greedy, by
// latency savings) from 0% to 100% and prints the MACs/params/speedup
// frontier — the "sensitive design trade-off between operations/latency
// and accuracy" the paper points at.
//
// Usage: transform_tradeoff [--net=v2] [--variant=half] [--size=64]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "sched/latency.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas");
  flags.add_string("variant", "half", "full|half");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.parse(argc, argv);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const core::FuseMode mode = flags.get_string("variant") == "full"
                                  ? core::FuseMode::kFull
                                  : core::FuseMode::kHalf;
  const auto cfg = systolic::square_array(flags.get_int("size"));

  const int slots = nets::num_fuse_slots(id);
  const auto savings = sched::slot_savings(id, mode, cfg);
  std::vector<int> order(savings.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return savings[static_cast<std::size_t>(a)] >
           savings[static_cast<std::size_t>(b)];
  });

  const auto baseline = nets::build_network(id);
  const std::uint64_t base_cycles =
      sched::network_latency(baseline, cfg).total_cycles;

  std::printf(
      "FuSe-%s replacement frontier for %s on %s (greedy by latency "
      "savings)\n\n",
      mode == core::FuseMode::kFull ? "Full" : "Half",
      nets::network_name(id).c_str(), cfg.to_string().c_str());

  util::TablePrinter table({"Replaced", "Fraction", "MACs (M)",
                            "Params (M)", "Speedup"});
  std::vector<core::FuseMode> modes =
      core::uniform_modes(slots, core::FuseMode::kBaseline);
  for (int replaced = 0; replaced <= slots; ++replaced) {
    if (replaced > 0) {
      modes[static_cast<std::size_t>(
          order[static_cast<std::size_t>(replaced - 1)])] = mode;
    }
    const auto model = nets::build_network(id, modes);
    const std::uint64_t cycles =
        sched::network_latency(model, cfg).total_cycles;
    table.add_row(
        {std::to_string(replaced) + "/" + std::to_string(slots),
         util::fixed(100.0 * replaced / slots, 0) + "%",
         util::fixed(static_cast<double>(model.total_macs()) / 1e6, 0),
         util::fixed(static_cast<double>(model.total_params()) / 1e6, 2),
         util::fixed(static_cast<double>(base_cycles) /
                         static_cast<double>(cycles),
                     2) + "x"});
  }
  table.print(std::cout);
  std::printf(
      "\nthe paper's Full-50%%/Half-50%% rows are the %d/%d point of this "
      "frontier.\n",
      (slots + 1) / 2, slots);
  return 0;
}
