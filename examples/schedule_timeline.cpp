// schedule_timeline: an ASCII Gantt chart of the array's occupancy for one
// network — the fastest way to *see* the paper's story. Run it for a
// baseline and you watch depthwise layers own the machine at ~0.2%
// utilization; run the FuSe variant and the same chart compresses ~7x with
// pointwise layers doing honest work.
//
// With --sched-mode=fused the chart shows the fused NetworkPlan instead:
// every legal depthwise/FuSe -> pointwise group collapses into one
// "producer+consumer" bar spanning the interleaved region (the end
// timestamp is FUSE_CHECKed against the analytic total).
//
// Usage: schedule_timeline [--net=v2] [--variant=baseline] [--size=64]
//        [--top=12] [--csv=] [--sched-mode=per-layer]
//        [--trace-json=] [--stats-json=] [--profile-json=]
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "sched/netplan.hpp"
#include "sched/timeline.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace fuse;

namespace {

core::NetworkVariant parse_variant(const std::string& name) {
  if (name == "baseline") return core::NetworkVariant::kBaseline;
  if (name == "full") return core::NetworkVariant::kFuseFull;
  if (name == "half") return core::NetworkVariant::kFuseHalf;
  FUSE_CHECK(false) << "unknown --variant '" << name << "'";
  return core::NetworkVariant::kBaseline;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas");
  flags.add_string("variant", "baseline", "baseline|full|half");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_int("top", 12, "show the N longest-running layers (0=all)");
  flags.add_string("csv", "", "write the full timeline CSV to this path");
  flags.add_string("sched-mode",
                   sched::sched_mode_name(sched::sched_mode()),
                   "network schedule: per-layer or fused");
  bench::add_telemetry_flags(flags);
  flags.parse(argc, argv);
  // Silent: writes --trace-json/--stats-json/--profile-json on exit
  // without touching stdout.
  bench::TelemetryScope telemetry(flags);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const auto variant = parse_variant(flags.get_string("variant"));
  const auto cfg = systolic::square_array(flags.get_int("size"));
  sched::SchedMode mode;
  FUSE_CHECK(sched::parse_sched_mode(flags.get_string("sched-mode"), &mode))
      << "--sched-mode must be 'per-layer' or 'fused', got '"
      << flags.get_string("sched-mode") << "'";

  const sched::VariantBuild build = sched::build_variant(id, variant, cfg);
  const sched::NetworkPlan plan =
      sched::plan_network(build.model, cfg, systolic::MemoryConfig{}, mode);
  const sched::Timeline timeline = sched::plan_timeline(plan, build.model);
  FUSE_CHECK(timeline.total_cycles == plan.total_cycles)
      << "timeline end diverged from the schedule total";

  std::printf("%s %s on %s — array occupancy (%s schedule",
              build.model.name.c_str(),
              core::network_variant_name(variant).c_str(),
              cfg.to_string().c_str(), sched::sched_mode_name(mode));
  if (mode == sched::SchedMode::kFused) {
    std::printf(", %zu fused groups", plan.fused_pairs.size());
  }
  std::printf(")\n\n");

  const std::int64_t top = flags.get_int("top");
  if (top > 0 && static_cast<std::size_t>(top) < timeline.entries.size()) {
    // Show only the longest-running layers, in execution order.
    sched::Timeline trimmed;
    trimmed.total_cycles = timeline.total_cycles;
    std::vector<sched::TimelineEntry> sorted = timeline.entries;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.duration() > b.duration();
              });
    sorted.resize(static_cast<std::size_t>(top));
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.start_cycle < b.start_cycle;
              });
    trimmed.entries = std::move(sorted);
    std::printf("%s", sched::ascii_gantt(trimmed).c_str());
    std::printf("(showing the %lld longest of %zu layers; bars scale to "
                "the FULL network runtime)\n",
                static_cast<long long>(top), timeline.entries.size());
  } else {
    std::printf("%s", sched::ascii_gantt(timeline).c_str());
  }

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty()) {
    sched::write_timeline_csv(timeline, csv_path);
    std::printf("\nwrote %s\n", csv_path.c_str());
  }
  return 0;
}
