// int8_inference: FuSeConv on TPUv1-class arithmetic. Quantizes a FuSeConv
// stage to INT8 (affine activations, symmetric weights, INT32
// accumulation) and compares against the FP32 and FP16 forward passes —
// the deployment datatypes a systolic array actually runs.
//
// Usage: int8_inference [--channels=16] [--hw=16] [--variant=half]
//        [--kernel-backend=fast] [--kernel-isa=auto] [--kernel-threads=N]
#include <cstdio>

#include "core/fuseconv.hpp"
#include "nn/kernels.hpp"
#include "tensor/half.hpp"
#include "tensor/quantize.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("channels", 16, "input channels");
  flags.add_int("hw", 16, "square feature-map size");
  flags.add_string("variant", "half", "full|half");
  flags.add_string("kernel-backend", nn::kernel_backend_name(nn::kernel_backend()),
                   "functional kernel backend: fast or reference");
  flags.add_string("kernel-isa", nn::kernel_isa_name(nn::kernel_isa()),
                   "fast-kernel instruction set: scalar, avx2, or auto");
  flags.add_int("kernel-threads", nn::kernel_threads(),
                "total threads for the fast kernels");
  flags.parse(argc, argv);

  nn::KernelBackend backend;
  FUSE_CHECK(nn::parse_kernel_backend(flags.get_string("kernel-backend"),
                                      &backend))
      << "--kernel-backend must be 'fast' or 'reference'";
  nn::set_kernel_backend(backend);
  nn::KernelIsa isa;
  FUSE_CHECK(nn::parse_kernel_isa(flags.get_string("kernel-isa"), &isa))
      << "--kernel-isa must be 'scalar', 'avx2', or 'auto'";
  nn::set_kernel_isa(isa);
  if (flags.get_int("kernel-threads") != nn::kernel_threads()) {
    nn::set_kernel_threads(static_cast<int>(flags.get_int("kernel-threads")));
  }

  core::FuseConvSpec spec;
  spec.channels = flags.get_int("channels");
  spec.in_h = flags.get_int("hw");
  spec.in_w = flags.get_int("hw");
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = flags.get_string("variant") == "full"
                     ? core::FuseVariant::kFull
                     : core::FuseVariant::kHalf;

  util::Rng rng(11);
  const core::FuseConvStage stage(spec, rng);
  tensor::Tensor input(
      tensor::Shape{1, spec.channels, spec.in_h, spec.in_w});
  input.fill_uniform(rng, -1.0F, 1.0F);

  // FP32 reference.
  const tensor::Tensor fp32 = stage.forward(input);

  // FP16 (the paper's precision): quantize weights + input through
  // binary16 and run the same forward.
  core::FuseConvStage fp16_stage(spec);
  fp16_stage.row_weights() = tensor::quantize_half(stage.row_weights());
  fp16_stage.col_weights() = tensor::quantize_half(stage.col_weights());
  const tensor::Tensor fp16 =
      fp16_stage.forward(tensor::quantize_half(input));

  // INT8 (TPUv1-class): affine activations, symmetric weights, INT32
  // accumulation.
  const tensor::Tensor int8 = core::fuseconv_forward_int8(stage, input);

  const float scale = fp32.abs_max();
  std::printf(
      "FuSeConv-%s %lldch %lldx%lld K=3 — numeric deviation from FP32 "
      "(output range +-%.2f):\n"
      "  FP16 : max |diff| = %.2e (%.4f%% of range)\n"
      "  INT8 : max |diff| = %.2e (%.4f%% of range)\n\n"
      "both precisions preserve the operator's output to well under a "
      "percent of its\nrange — the drop-in replacement survives deployment "
      "datatypes.\n",
      core::fuse_variant_name(spec.variant).c_str(),
      static_cast<long long>(spec.channels),
      static_cast<long long>(spec.in_h),
      static_cast<long long>(spec.in_w), scale,
      tensor::max_abs_diff(fp16, fp32),
      100.0F * tensor::max_abs_diff(fp16, fp32) / scale,
      tensor::max_abs_diff(int8, fp32),
      100.0F * tensor::max_abs_diff(int8, fp32) / scale);
  return 0;
}
