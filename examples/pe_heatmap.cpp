// pe_heatmap: per-PE busy-cycle heatmaps from the cycle-level simulator —
// the paper's Fig. 2(c) vs Fig. 7 contrast, rendered from an actual run.
// A depthwise channel's im2col matmul lights up ONE column of the array;
// the same work as FuSeConv 1-D convolutions on the broadcast dataflow
// lights up the whole grid.
//
// Usage: pe_heatmap [--size=16] [--channels=16] [--hw=16]
//                   [--sim-backend=fast|reference] [--sim-threads=N]
#include <cstdio>

#include "bench_common.hpp"
#include "systolic/sim.hpp"
#include "tensor/im2col.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 16, "systolic array size (SxS)");
  flags.add_int("channels", 16, "depthwise channels");
  flags.add_int("hw", 16, "square feature-map size");
  bench::add_sim_flags(flags);
  flags.parse(argc, argv);
  bench::apply_sim_flags(flags);

  const std::int64_t size = flags.get_int("size");
  const std::int64_t channels = flags.get_int("channels");
  const std::int64_t hw = flags.get_int("hw");
  const std::int64_t k = 3;

  util::Rng rng(3);
  systolic::SystolicArraySim sim(systolic::square_array(size));

  // Depthwise: per-channel [positions, K^2] x [K^2, 1] matmuls. All
  // channels accumulate into one heatmap.
  tensor::Tensor plane(tensor::Shape{hw, hw});
  plane.fill_uniform(rng, -1.0F, 1.0F);
  const tensor::Tensor patches =
      tensor::im2col_plane(plane, k, k, 1, 1, 1, 1);
  tensor::Tensor filter(tensor::Shape{k * k, 1});
  filter.fill_uniform(rng, -1.0F, 1.0F);
  tensor::Tensor dw_busy(tensor::Shape{size, size});
  std::uint64_t dw_cycles = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const systolic::SimResult r = sim.matmul(patches, filter);
    dw_cycles += r.cycles;
    for (std::int64_t i = 0; i < dw_busy.num_elements(); ++i) {
      dw_busy[i] += r.pe_busy[i];
    }
  }

  // FuSeConv: the same channels as 1-D row convolutions on the broadcast
  // dataflow (one line per channel-row, padded for 'same' output).
  tensor::Tensor lines(tensor::Shape{channels * hw, hw + 2});
  lines.fill_uniform(rng, -1.0F, 1.0F);
  tensor::Tensor kernels(tensor::Shape{channels * hw, k});
  kernels.fill_uniform(rng, -1.0F, 1.0F);
  const systolic::SimResult fuse = sim.conv1d_broadcast(lines, kernels);

  std::printf(
      "Per-PE busy cycles on a %lldx%lld array ('.'=idle, 1-9 scaled to "
      "peak)\n\n",
      static_cast<long long>(size), static_cast<long long>(size));
  std::printf("depthwise %lld ch %lldx%lld K=%lld (im2col, single column "
              "per channel) — %llu cycles:\n%s\n",
              static_cast<long long>(channels), static_cast<long long>(hw),
              static_cast<long long>(hw), static_cast<long long>(k),
              static_cast<unsigned long long>(dw_cycles),
              systolic::render_pe_heatmap(dw_busy).c_str());
  std::printf("FuSeConv row branch, same channels (broadcast dataflow) — "
              "%llu cycles:\n%s\n",
              static_cast<unsigned long long>(fuse.cycles),
              systolic::render_pe_heatmap(fuse.pe_busy).c_str());
  std::printf("speedup (measured on the PE grid): %.1fx\n",
              static_cast<double>(dw_cycles) /
                  static_cast<double>(fuse.cycles));
  return 0;
}
