// serve_demo: replay a canned request trace through the serving engine
// and read the telemetry it leaves behind.
//
// The trace mixes two tenants — MobileNet-V1/FuSe-Full@32 (batch-hint
// free) and MobileNet-V2/FuSe-Full@32 (hint 4) — arriving a few hundred
// kilocycles apart against a deliberately small admission bound, so one
// replay exercises every path: batches coalescing under the deadline
// window, early closes at the cap, load shedding, and multi-array
// placement. Everything is virtual-cycle-domain, so the whole printout
// is byte-identical on any machine and at any --workers count.
//
// Output: the engine config, a per-request scheduling table (admission ->
// batch -> array -> completion), the aggregate stats block (p50/p90/p99),
// and the serve.* metrics as JSON straight from the process-wide
// registry (empty when the build pins FUSE_TELEMETRY=OFF — the stats
// block above it is computed engine-side and survives).
//
// Usage: serve_demo [--size=64] [--requests=24] [--window=500000]
//        [--max-batch=4] [--capacity=12] [--arrays=2]
//        [--shed=reject-newest] [--stats-json=] [--trace-json=]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/model_pool.hpp"
#include "serve/request.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_int("requests", 24, "trace length");
  flags.add_int("window", 500000, "batch window (cycles)");
  flags.add_int("max-batch", 4, "batch size cap");
  flags.add_int("capacity", 12, "admission bound (in-system requests)");
  flags.add_int("arrays", 2, "independent virtual arrays");
  flags.add_string("shed", "reject-newest",
                   "reject-newest|reject-oldest load shedding");
  bench::add_telemetry_flags(flags);
  flags.parse(argc, argv);
  bench::TelemetryScope telemetry(flags);

  serve::ServeConfig config;
  config.batch_window = static_cast<std::uint64_t>(flags.get_int("window"));
  config.max_batch = static_cast<int>(flags.get_int("max-batch"));
  config.queue_capacity = static_cast<int>(flags.get_int("capacity"));
  config.num_arrays = static_cast<int>(flags.get_int("arrays"));
  FUSE_CHECK(serve::parse_shed_policy(flags.get_string("shed"), &config.shed))
      << "unknown --shed policy '" << flags.get_string("shed") << "'";

  const auto cfg = systolic::square_array(flags.get_int("size"));
  serve::ModelPool pool(cfg, {});
  const serve::ShapeKey tenant_v1{nets::NetworkId::kMobileNetV1,
                                  core::NetworkVariant::kFuseFull, 32, -1};
  const serve::ShapeKey tenant_v2{nets::NetworkId::kMobileNetV2,
                                  core::NetworkVariant::kFuseFull, 32, -1};

  std::printf(
      "serve_demo: %lld requests, %s array, window=%llu cycles, cap=%d,\n"
      "capacity=%d, %d arrays, shed=%s\n"
      "tenants: %s (service b1 = %s cycles), %s (hint 4, service b1 = %s "
      "cycles)\n\n",
      static_cast<long long>(flags.get_int("requests")),
      cfg.to_string().c_str(),
      static_cast<unsigned long long>(config.batch_window),
      config.max_batch, config.queue_capacity, config.num_arrays,
      serve::shed_policy_name(config.shed),
      serve::shape_key_name(tenant_v1).c_str(),
      util::with_commas(pool.service_cycles(tenant_v1, 1)).c_str(),
      serve::shape_key_name(tenant_v2).c_str(),
      util::with_commas(pool.service_cycles(tenant_v2, 1)).c_str());

  // The canned trace: V1 twice as popular as V2; V2 carries a batch
  // hint of 4 (its clients cap their own coalescing).
  const std::vector<serve::TraceShape> shapes = {
      serve::TraceShape{tenant_v1, 0, 2},
      serve::TraceShape{tenant_v2, 4, 1},
  };
  const auto trace = serve::make_open_loop_trace(
      flags.get_int("requests"), 100000, shapes, 0xcafef00dULL);

  serve::ServeEngine engine(config, &pool);
  serve::replay_trace(engine, trace);
  engine.drain();

  util::TablePrinter table({"Req", "Tenant", "Status", "Arrival", "Batch",
                            "Size", "Array", "Completed", "Latency"});
  for (std::uint64_t id = 0; id < engine.num_requests(); ++id) {
    const serve::ResponseRecord r = engine.response(id);
    const bool done = r.status == serve::RequestStatus::kCompleted;
    table.add_row(
        {std::to_string(r.id), serve::shape_key_name(r.key),
         serve::request_status_name(r.status),
         util::with_commas(r.arrival_cycle),
         done ? std::to_string(r.batch_id) : "-",
         done ? std::to_string(r.batch_size) : "-",
         done ? std::to_string(r.array_index) : "-",
         done ? util::with_commas(r.completion_cycle) : "-",
         done ? util::with_commas(r.latency_cycles()) : "-"});
  }
  table.print(std::cout);

  const serve::ServeStats stats = engine.stats();
  std::printf(
      "\nstats: %llu submitted, %llu admitted, %llu rejected, %llu "
      "completed in %llu batches (mean size %.2f)\n"
      "latency cycles: p50 %s  p90 %s  p99 %s\n"
      "throughput: %.2f requests/Mcycle over a %s-cycle makespan\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.batches),
      stats.mean_batch_size,
      util::with_commas(static_cast<std::uint64_t>(
          stats.p50_latency_cycles)).c_str(),
      util::with_commas(static_cast<std::uint64_t>(
          stats.p90_latency_cycles)).c_str(),
      util::with_commas(static_cast<std::uint64_t>(
          stats.p99_latency_cycles)).c_str(),
      stats.throughput_per_mcycle,
      util::with_commas(stats.makespan_cycles).c_str());

  // The same story as seen by the process-wide metrics registry
  // (docs/observability.md catalogs the serve.* names). Empty when the
  // build compiled telemetry out.
  std::printf("\nmetrics registry:\n");
  util::metrics().write_json(std::cout);
  std::printf("\n");
  return 0;
}
