// dse_explore: the configurable-array design-space explorer. Sweeps the
// full ArrayConfig axis grid (array shape at the 4096-PE budget,
// broadcast links, inter-PE pipelining, datapath width, SRAM capacity)
// over the five paper networks x {baseline, FuSe-Full, FuSe-Half},
// scoring every candidate with the plan-free closed-form evaluator and
// printing the Pareto frontier over {latency, area, power}.
//
// This is the generalization of examples/operator_search (which explores
// the OPERATOR axis on a fixed array) and bench/bench_pareto (which
// explores square sizes on fixed axes): here the array itself is the
// design variable. Every number printed is deterministic — the frontier
// is byte-identical at any --threads value.
//
// Usage: dse_explore [--threads=N] [--no-cache] [--csv]
//   --csv writes dse_explore.csv: the full 180-point table with a
//   `frontier` 0/1 column (docs/design_space.md describes the schema).
#include <cstdio>
#include <iostream>

#include "dse/explore.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("threads", -1, "worker threads (-1 = hardware)");
  flags.add_bool("no-cache", false, "disable per-layer cost memoization");
  flags.add_bool("csv", false, "also write dse_explore.csv");
  flags.parse(argc, argv);

  const dse::DseAxes axes;
  const std::vector<nets::NetworkModel> workload =
      dse::default_dse_workload();

  std::printf(
      "Design-space exploration: %zu-model workload, fused schedule, "
      "closed-form evaluator\n\n",
      workload.size());

  dse::ExploreOptions options;
  options.threads = static_cast<int>(flags.get_int("threads"));
  options.use_cache = !flags.get_bool("no-cache");
  const dse::ExploreResult result = dse::explore(axes, workload, options);

  util::TablePrinter table({"Config", "Latency (ms)", "Area (mm^2)",
                            "Power (W)", "Bound cycles"});
  for (const dse::ParetoEntry& entry : result.front.entries()) {
    const dse::DesignPoint& point = result.points[entry.id];
    table.add_row({point.label(), util::fixed(entry.obj.latency_ms, 3),
                   util::fixed(entry.obj.area_mm2, 2),
                   util::fixed(entry.obj.power_w, 2),
                   std::to_string(result.bound_cycles[entry.id])});
  }
  table.print(std::cout);

  std::printf(
      "\nPareto frontier over {latency, area, power}: %zu of %zu "
      "configurations survive;\n%llu dominated points pruned. Latency is "
      "the workload's roofline bound at each\nconfiguration's post-derate "
      "clock — transparent modes trade clock for skew/drain\ncycles, "
      "narrower datapaths trade silicon for operand bandwidth.\n",
      result.front.entries().size(), result.points.size(),
      static_cast<unsigned long long>(result.front.pruned()));
  // Memo statistics are scheduling-dependent (racing misses both count),
  // so they stay on a comment line like the sweep footers.
  std::printf("# eval memo hit rate: %.1f%%\n", result.memo_hit_pct);

  if (flags.get_bool("csv")) {
    dse::write_explore_csv(result, "dse_explore.csv");
    std::printf("wrote dse_explore.csv\n");
  }
  return 0;
}
