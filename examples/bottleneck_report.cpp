// bottleneck_report: the cycle-attribution engine as a console
// instrument — "explain every cycle" for any zoo network x variant.
//
// Three tables over one attributed schedule (sched/attribution.hpp):
//   1. by operator class — where the network's cycles go, split into the
//      MAC-streaming compute windows vs wavefront fill/drain overhead
//      (the paper's Fig. 8(c) axis, with the waste made visible);
//   2. roofline scheduling units — which layers (or fused groups under
//      --sched-mode=fused) are memory-bound and how many DRAM stall
//      cycles each adds on top of its compute time;
//   3. the top-N layers by cycles with PE occupancy and roofline points
//      (operational intensity in MACs/byte, attained cycles/MAC).
//
// Every number comes from the exact decomposition FUSE_CHECKed against
// the analytic latency — the tables always sum back to the totals the
// other tools report. --json additionally writes the full report
// (per-layer, per-unit, per-segment) as machine-readable JSON.
//
// Usage: bottleneck_report [--net=v2] [--variant=fuse_full] [--size=64]
//        [--sched-mode=per-layer] [--top=10] [--json=]
#include <cstdio>
#include <iostream>

#include "sched/attribution.hpp"
#include "sched/netplan.hpp"
#include "sched/report.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace fuse;

namespace {

core::NetworkVariant parse_variant(const std::string& name) {
  if (name == "baseline") return core::NetworkVariant::kBaseline;
  if (name == "full" || name == "fuse_full") {
    return core::NetworkVariant::kFuseFull;
  }
  if (name == "half" || name == "fuse_half") {
    return core::NetworkVariant::kFuseHalf;
  }
  if (name == "full50" || name == "fuse_full50") {
    return core::NetworkVariant::kFuseFull50;
  }
  if (name == "half50" || name == "fuse_half50") {
    return core::NetworkVariant::kFuseHalf50;
  }
  FUSE_CHECK(false) << "unknown --variant '" << name
                    << "' (baseline|fuse_full|fuse_half|fuse_full50|"
                       "fuse_half50)";
  return core::NetworkVariant::kBaseline;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas|resnet50");
  flags.add_string("variant", "fuse_full",
                   "baseline|fuse_full|fuse_half|fuse_full50|fuse_half50");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_string("sched-mode",
                   sched::sched_mode_name(sched::sched_mode()),
                   "network schedule: per-layer or fused");
  flags.add_int("top", 10, "layer rows to show, by cycles (0=all)");
  flags.add_string("json", "", "write the full attribution report here");
  flags.parse(argc, argv);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const core::NetworkVariant variant =
      parse_variant(flags.get_string("variant"));
  FUSE_CHECK(id != nets::NetworkId::kResNet50 ||
             variant == core::NetworkVariant::kBaseline)
      << "ResNet-50 has no depthwise layers; only --variant=baseline";
  const auto cfg = systolic::square_array(flags.get_int("size"));
  const systolic::MemoryConfig mem;
  sched::SchedMode mode;
  FUSE_CHECK(sched::parse_sched_mode(flags.get_string("sched-mode"), &mode))
      << "--sched-mode must be 'per-layer' or 'fused', got '"
      << flags.get_string("sched-mode") << "'";
  const std::int64_t top = flags.get_int("top");
  FUSE_CHECK(top >= 0) << "--top must be >= 0";

  const sched::VariantBuild build = sched::build_variant(id, variant, cfg);
  const sched::NetworkPlan plan =
      sched::plan_network(build.model, cfg, mem, mode);
  const sched::AttributionReport report =
      sched::attribute_network(plan, build.model);

  std::printf(
      "%s %s on %s array — %s schedule\n"
      "every cycle attributed, identities FUSE_CHECKed against the "
      "analytic model\n\n",
      build.model.name.c_str(),
      core::network_variant_name(variant).c_str(), cfg.to_string().c_str(),
      sched::sched_mode_name(mode));

  std::printf("Cycles by operator class (compute = MAC-streaming windows, "
              "fill/drain = wavefront overhead):\n");
  sched::attribution_class_table(report).print(std::cout);

  std::printf("\nRoofline scheduling units%s:\n",
              mode == sched::SchedMode::kFused
                  ? " (fused groups charged as one unit)"
                  : "");
  sched::attribution_unit_table(report).print(std::cout);

  std::printf("\nTop %lld layers by cycles:\n",
              static_cast<long long>(top));
  sched::attribution_layer_table(report, static_cast<std::size_t>(top))
      .print(std::cout);

  const std::uint64_t pe_idle =
      report.pe_idle_geometry + report.pe_idle_fill_drain;
  std::printf(
      "\nsummary: %s cycles (+%s DRAM stall -> %s bound)\n"
      "         PE-cycles: %s busy / %s idle-geometry / %s "
      "idle-fill-drain (occupancy %s%%)\n",
      util::with_commas(report.total_cycles).c_str(),
      util::with_commas(report.total_dram_stall).c_str(),
      util::with_commas(report.bound_cycles).c_str(),
      util::format_count(report.pe_busy).c_str(),
      util::format_count(report.pe_idle_geometry).c_str(),
      util::format_count(report.pe_idle_fill_drain).c_str(),
      util::fixed(100.0 * report.occupancy(), 2).c_str());
  FUSE_CHECK(report.pe_busy + pe_idle == report.pe_total)
      << "summary does not cover all PE-cycles";

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    sched::write_attribution_json_file(json_path, report);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
