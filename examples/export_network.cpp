// export_network: lower any zoo network/variant and save it in the text
// model format (nets/serialize.hpp) — the artifact a downstream deployment
// flow would consume. Also demonstrates the load path and fold-level
// tracing of the heaviest layer.
//
// Usage: export_network [--net=v2] [--variant=half] [--size=64]
//        [--out=network.fusenet] [--trace-csv=]
#include <algorithm>
#include <cstdio>

#include "nets/serialize.hpp"
#include "sched/latency.hpp"
#include "systolic/mapping.hpp"
#include "systolic/trace.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace fuse;

namespace {

core::NetworkVariant parse_variant(const std::string& name) {
  if (name == "baseline") return core::NetworkVariant::kBaseline;
  if (name == "full") return core::NetworkVariant::kFuseFull;
  if (name == "half") return core::NetworkVariant::kFuseHalf;
  if (name == "full50") return core::NetworkVariant::kFuseFull50;
  if (name == "half50") return core::NetworkVariant::kFuseHalf50;
  FUSE_CHECK(false) << "unknown --variant '" << name << "'";
  return core::NetworkVariant::kBaseline;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas");
  flags.add_string("variant", "half",
                   "baseline|full|half|full50|half50");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_string("out", "network.fusenet", "output model file");
  flags.add_string("trace-csv", "",
                   "also write a fold trace of the heaviest layer here");
  flags.parse(argc, argv);

  const auto cfg = systolic::square_array(flags.get_int("size"));
  const sched::VariantBuild build = sched::build_variant(
      nets::parse_network_flag(flags.get_string("net")),
      parse_variant(flags.get_string("variant")), cfg);

  const std::string path = flags.get_string("out");
  nets::save_network(build.model, path);
  const nets::NetworkModel loaded = nets::load_network(path);
  FUSE_CHECK(loaded.total_macs() == build.model.total_macs())
      << "round-trip mismatch";
  std::printf("wrote %s: %zu layers, %s MACs, %s params (round-trip "
              "verified)\n",
              path.c_str(), loaded.layers.size(),
              util::with_commas(loaded.total_macs()).c_str(),
              util::with_commas(loaded.total_params()).c_str());

  const std::string trace_path = flags.get_string("trace-csv");
  if (!trace_path.empty()) {
    // Fold trace of the heaviest latency-bearing layer.
    const sched::NetworkLatency lat =
        sched::network_latency(build.model, cfg);
    std::size_t heaviest = 0;
    for (std::size_t i = 0; i < lat.per_layer.size(); ++i) {
      if (lat.per_layer[i].cycles > lat.per_layer[heaviest].cycles) {
        heaviest = i;
      }
    }
    const nn::LayerDesc& layer = build.model.layers[heaviest];
    const systolic::MemoryConfig mem;
    // Same lowering the latency model folds over; every repeat (e.g. each
    // depthwise channel) appears as its own run of folds.
    const systolic::FoldTrace trace =
        systolic::plan_trace(systolic::lower(layer, cfg), cfg, mem);
    systolic::write_fold_trace_csv(trace, trace_path);
    std::printf(
        "wrote %s: %zu folds of layer '%s' (%s cycles, peak fold %s, "
        "double-buffer SRAM %s)\n",
        trace_path.c_str(), trace.folds.size(), layer.name.c_str(),
        util::with_commas(trace.total_cycles).c_str(),
        util::format_bytes(trace.peak_fold_bytes()).c_str(),
        util::format_bytes(trace.double_buffer_bytes()).c_str());
  }
  return 0;
}
