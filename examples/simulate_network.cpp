// simulate_network: an entire small CNN inferred ON the simulated systolic
// array — every conv/FC layer executes on the PE grid (via
// sched::execute_layer_on_array) with real weights; activations and
// pooling run host-side, as in a real accelerator. Runs both the
// depthwise-separable network and its FuSe-Half drop-in twin (sharing the
// pointwise/FC weights), checks the logits against the pure fuse::nn
// forward pass, and reports measured end-to-end cycles.
//
// Usage: simulate_network [--size=16] [--hw=16] [--channels=8]
//                         [--sim-backend=fast|reference] [--sim-threads=N]
//                         [--trace-json=] [--stats-json=] [--profile-json=]
#include <cstdio>

#include "bench_common.hpp"
#include "core/fuseconv.hpp"
#include "nn/ops.hpp"
#include "sched/execute.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace fuse;
using tensor::Shape;
using tensor::Tensor;

namespace {

Tensor relu(const Tensor& t) {
  return nn::apply_activation(t, nn::Activation::kRelu);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("size", 16, "systolic array size (SxS)");
  flags.add_int("hw", 16, "input feature-map size");
  flags.add_int("channels", 8, "stem channels");
  bench::add_sim_flags(flags);
  bench::add_telemetry_flags(flags);
  flags.parse(argc, argv);
  bench::apply_sim_flags(flags);
  // Silent: writes --trace-json/--stats-json/--profile-json on exit
  // without touching stdout.
  bench::TelemetryScope telemetry(flags);

  auto cfg = systolic::square_array(flags.get_int("size"));
  cfg.overlap_fold_drain = false;  // what the PE-grid simulator measures
  const std::int64_t hw = flags.get_int("hw");
  const std::int64_t c = flags.get_int("channels");
  const std::int64_t classes = 4;

  util::Rng rng(5);
  Tensor input(Shape{1, 3, hw, hw});
  input.fill_uniform(rng, -1.0F, 1.0F);

  // Shared weights.
  Tensor stem_w(Shape{c, 3, 3, 3});
  stem_w.fill_uniform(rng, -0.4F, 0.4F);
  Tensor dw_w(Shape{c, 1, 3, 3});
  dw_w.fill_uniform(rng, -0.4F, 0.4F);
  Tensor pw_w(Shape{2 * c, c, 1, 1});
  pw_w.fill_uniform(rng, -0.4F, 0.4F);
  Tensor fc_w(Shape{classes, 2 * c});
  fc_w.fill_uniform(rng, -0.4F, 0.4F);
  core::FuseConvSpec spec;
  spec.channels = c;
  spec.in_h = hw;
  spec.in_w = hw;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kHalf;
  const core::FuseConvStage fuse_stage(spec, rng);

  const nn::LayerDesc stem = nn::make_conv("stem", 3, hw, hw, c, 3, 1, 1);
  const nn::LayerDesc dw = nn::make_depthwise("dw", c, hw, hw, 3, 1, 1);
  const nn::LayerDesc pw = nn::make_pointwise("pw", c, hw, hw, 2 * c);
  const nn::LayerDesc fc =
      nn::make_fully_connected("fc", 2 * c, classes, /*bias=*/false);
  const nn::LayerDesc fuse_row =
      nn::make_fuse_row("fuse/row", c / 2, hw, hw, 3, 1, 1);
  const nn::LayerDesc fuse_col =
      nn::make_fuse_col("fuse/col", c / 2, hw, hw, 3, 1, 1);

  const auto run_network = [&](bool use_fuse) {
    std::uint64_t cycles = 0;
    auto step = [&](const nn::LayerDesc& layer, const Tensor& in,
                    const Tensor& w) {
      const sched::LayerExecution exec =
          sched::execute_layer_on_array(layer, in, w, cfg);
      cycles += exec.cycles;
      return exec.output;
    };
    Tensor x = relu(step(stem, input, stem_w));
    if (use_fuse) {
      const Tensor row_out = step(
          fuse_row, core::slice_channels(x, 0, c / 2),
          fuse_stage.row_weights());
      const Tensor col_out = step(
          fuse_col, core::slice_channels(x, c / 2, c / 2),
          fuse_stage.col_weights());
      x = relu(nn::concat_channels(row_out, col_out));
    } else {
      x = relu(step(dw, x, dw_w));
    }
    x = relu(step(pw, x, pw_w));
    x = nn::global_avg_pool(x);
    x = step(fc, x, fc_w);
    return std::pair<Tensor, std::uint64_t>(x, cycles);
  };

  const auto [base_logits, base_cycles] = run_network(false);
  const auto [fuse_logits, fuse_cycles] = run_network(true);

  // Reference forward with pure fuse::nn operators (baseline network).
  nn::Conv2dParams stem_p;
  stem_p.pad_h = 1;
  stem_p.pad_w = 1;
  nn::Conv2dParams dw_p = stem_p;
  dw_p.groups = c;
  Tensor ref = relu(nn::conv2d(input, stem_w, nullptr, stem_p));
  ref = relu(nn::conv2d(ref, dw_w, nullptr, dw_p));
  ref = relu(nn::conv2d(ref, pw_w, nullptr, {}));
  ref = nn::global_avg_pool(ref);
  const Tensor ref_logits =
      nn::linear(ref.reshaped(Shape{1, 2 * c}), fc_w, nullptr);

  float max_diff = 0.0F;
  for (std::int64_t i = 0; i < classes; ++i) {
    max_diff = std::max(max_diff, std::abs(base_logits[i] - ref_logits[i]));
  }

  std::printf(
      "whole-network inference on the simulated %s array:\n\n"
      "  baseline (conv-dw-pw-fc) : %llu cycles, logits match host "
      "reference (max |diff| %.2e)\n"
      "  FuSe-Half twin           : %llu cycles\n"
      "  measured speedup         : %.2fx\n\n"
      "every MAC of both networks was executed by the PE grid, cycle by "
      "cycle.\n",
      cfg.to_string().c_str(),
      static_cast<unsigned long long>(base_cycles), max_diff,
      static_cast<unsigned long long>(fuse_cycles),
      static_cast<double>(base_cycles) / static_cast<double>(fuse_cycles));
  (void)fuse_logits;
  return max_diff < 1e-3F ? 0 : 1;
}
