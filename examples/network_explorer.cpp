// network_explorer: per-layer inspection of any zoo network / variant on
// any array size — the tool you reach for to understand where the cycles
// go.
//
// Usage: network_explorer [--net=v2] [--variant=baseline] [--size=64]
//        [--top=0]
//   --net      v1|v2|v3s|v3l|mnas|resnet50
//   --variant  baseline|full|half|full50|half50
//   --top      show only the N most expensive layers (0 = all)
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "sched/latency.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

core::NetworkVariant parse_variant(const std::string& name) {
  if (name == "baseline") return core::NetworkVariant::kBaseline;
  if (name == "full") return core::NetworkVariant::kFuseFull;
  if (name == "half") return core::NetworkVariant::kFuseHalf;
  if (name == "full50") return core::NetworkVariant::kFuseFull50;
  if (name == "half50") return core::NetworkVariant::kFuseHalf50;
  FUSE_CHECK(false) << "unknown --variant '" << name
                    << "' (baseline|full|half|full50|half50)";
  return core::NetworkVariant::kBaseline;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas|resnet50");
  flags.add_string("variant", "baseline",
                   "baseline|full|half|full50|half50");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_int("top", 0, "show only the N most expensive layers (0=all)");
  flags.parse(argc, argv);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const core::NetworkVariant variant =
      parse_variant(flags.get_string("variant"));
  const auto cfg = systolic::square_array(flags.get_int("size"));
  FUSE_CHECK(id != nets::NetworkId::kResNet50 ||
             variant == core::NetworkVariant::kBaseline)
      << "ResNet-50 has no depthwise layers; only --variant=baseline";

  const sched::VariantBuild build = sched::build_variant(id, variant, cfg);
  const sched::NetworkLatency lat = sched::network_latency(build.model, cfg);

  std::printf("%s %s on %s — %s MACs, %s params, %s cycles\n\n",
              build.model.name.c_str(),
              core::network_variant_name(variant).c_str(),
              cfg.to_string().c_str(),
              util::with_commas(build.model.total_macs()).c_str(),
              util::with_commas(build.model.total_params()).c_str(),
              util::with_commas(lat.total_cycles).c_str());

  // Rank layers by cycles if --top given.
  std::vector<std::size_t> order(build.model.layers.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  const std::int64_t top = flags.get_int("top");
  if (top > 0) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return lat.per_layer[a].cycles > lat.per_layer[b].cycles;
    });
    order.resize(std::min<std::size_t>(order.size(),
                                       static_cast<std::size_t>(top)));
  }

  util::TablePrinter table({"Layer", "Kind", "Geometry", "MACs", "Cycles",
                            "% of total", "Util"});
  for (std::size_t i : order) {
    const nn::LayerDesc& layer = build.model.layers[i];
    const auto& est = lat.per_layer[i];
    if (top == 0 && !layer.counts_for_latency() && layer.macs() == 0) {
      continue;  // hide glue ops in the full listing
    }
    table.add_row(
        {layer.name, nn::op_kind_name(layer.kind),
         std::to_string(layer.in_c) + "x" + std::to_string(layer.in_h) +
             "x" + std::to_string(layer.in_w) + " -> " +
             std::to_string(layer.out_c) + "x" + std::to_string(layer.out_h) +
             "x" + std::to_string(layer.out_w),
         util::with_commas(layer.macs()), util::with_commas(est.cycles),
         util::fixed(100.0 * static_cast<double>(est.cycles) /
                         static_cast<double>(lat.total_cycles),
                     1) + "%",
         util::fixed(100.0 * est.utilization(), 1) + "%"});
  }
  table.print(std::cout);
  return 0;
}
