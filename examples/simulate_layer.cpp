// simulate_layer: run a real FuSeConv row branch through the cycle-level
// PE-grid simulator and cross-check it against (a) the functional
// reference and (b) the analytic cycle model — the repo's verification
// triangle, on display.
//
// Usage: simulate_layer [--channels=8] [--hw=16] [--kernel=3] [--size=16]
//                       [--sim-backend=fast|reference] [--sim-threads=N]
//                       [--trace-json=] [--stats-json=] [--profile-json=]
#include <cstdio>

#include "bench_common.hpp"
#include "core/fuseconv.hpp"
#include "nn/ops.hpp"
#include "sched/latency.hpp"
#include "systolic/sim.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace fuse;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_int("channels", 8, "channels of the replaced depthwise layer");
  flags.add_int("hw", 16, "square feature-map size");
  flags.add_int("kernel", 3, "1-D kernel taps");
  flags.add_int("size", 16, "systolic array size (SxS)");
  bench::add_sim_flags(flags);
  bench::add_telemetry_flags(flags);
  flags.parse(argc, argv);
  bench::apply_sim_flags(flags);
  // Silent: writes --trace-json/--stats-json/--profile-json on exit
  // without touching stdout.
  bench::TelemetryScope telemetry(flags);

  const std::int64_t channels = flags.get_int("channels");
  const std::int64_t hw = flags.get_int("hw");
  const std::int64_t kernel = flags.get_int("kernel");

  core::FuseConvSpec spec;
  spec.channels = channels;
  spec.in_h = hw;
  spec.in_w = hw;
  spec.kernel = kernel;
  spec.stride = 1;
  spec.pad = kernel / 2;
  spec.variant = core::FuseVariant::kFull;
  util::Rng rng(7);
  const core::FuseConvStage stage(spec, rng);

  tensor::Tensor input(tensor::Shape{1, channels, hw, hw});
  input.fill_uniform(rng, -1.0F, 1.0F);
  const tensor::Tensor reference = stage.forward(input);

  // Lay out the row branch as Fig. 6 does: one padded line per
  // (channel, row), each with its channel's 1-D kernel.
  const std::int64_t lines = channels * hw;
  const std::int64_t padded_w = hw + 2 * spec.pad;
  tensor::Tensor line_data(tensor::Shape{lines, padded_w});
  tensor::Tensor kernels(tensor::Shape{lines, kernel});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < hw; ++y) {
      const std::int64_t l = c * hw + y;
      for (std::int64_t x = 0; x < hw; ++x) {
        line_data.at(l, x + spec.pad) = input.at(0, c, y, x);
      }
      for (std::int64_t k = 0; k < kernel; ++k) {
        kernels.at(l, k) = stage.row_weights().at(c, 0, 0, k);
      }
    }
  }

  auto cfg = systolic::square_array(flags.get_int("size"));
  cfg.overlap_fold_drain = false;  // what the cycle-level sim measures
  systolic::SystolicArraySim sim(cfg);
  const systolic::SimResult result =
      sim.conv1d_broadcast(line_data, kernels);

  // (a) functional agreement with the reference forward pass.
  float max_diff = 0.0F;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < hw; ++y) {
      for (std::int64_t x = 0; x < hw; ++x) {
        const float simulated = result.output.at(c * hw + y, x);
        const float expected = reference.at(0, c, y, x);
        max_diff = std::max(max_diff, std::abs(simulated - expected));
      }
    }
  }

  // (b) temporal agreement with the analytic model.
  const auto lowered =
      core::lower_fuse_stage("fuse", spec, nn::Activation::kNone);
  const auto analytic = sched::layer_latency(lowered[0], cfg);

  std::printf(
      "FuSeConv row branch: %lld channels x %lldx%lld, K=%lld on %s\n\n"
      "  PE-grid simulator : %llu cycles over %llu waves, %llu MACs\n"
      "  analytic model    : %llu cycles (match: %s)\n"
      "  vs reference fwd  : max |diff| = %.2e (match: %s)\n"
      "  array utilization : %.1f%%\n",
      static_cast<long long>(channels), static_cast<long long>(hw),
      static_cast<long long>(hw), static_cast<long long>(kernel),
      cfg.to_string().c_str(),
      static_cast<unsigned long long>(result.cycles),
      static_cast<unsigned long long>(result.folds),
      static_cast<unsigned long long>(result.mac_ops),
      static_cast<unsigned long long>(analytic.cycles),
      result.cycles == analytic.cycles ? "yes" : "NO",
      max_diff, max_diff < 1e-4F ? "yes" : "NO",
      100.0 * static_cast<double>(result.mac_ops) /
          (static_cast<double>(result.cycles) *
           static_cast<double>(cfg.pe_count())));
  return 0;
}
