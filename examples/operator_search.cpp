// operator_search: the paper's concluding NOS proposal, running. For a
// chosen network and parameter budget, searches the per-slot operator
// space {depthwise, FuSe-Full, FuSe-Half} for the latency-optimal
// assignment (exact knapsack DP) and compares it against Table I's uniform
// variants.
//
// Usage: operator_search [--net=v3s] [--size=64] [--budget=1.05]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dse/pareto.hpp"
#include "nos/search.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fuse;

namespace {

/// Accumulates each printed assignment as a {latency, capacity} point so
/// the footer can name the Pareto-optimal ones. Dominance comes from
/// dse/pareto.hpp — the same logic the design-space explorer uses.
/// Objectives are minimized, so latency enters as 1/speedup and capacity
/// (params, the accuracy proxy — more is better) enters negated on the
/// second axis; the third axis is unused (all zero, so it never decides
/// dominance).
struct AssignmentSet {
  std::vector<std::string> names;
  std::vector<dse::Objectives> objectives;

  void add(const std::string& name, double speedup, double params_ratio) {
    names.push_back(name);
    dse::Objectives obj;
    obj.latency_ms = 1.0 / speedup;
    obj.area_mm2 = -params_ratio;
    obj.power_w = 0.0;
    objectives.push_back(obj);
  }

  std::string frontier_names() const {
    std::string out;
    for (std::size_t idx : dse::pareto_frontier(objectives)) {
      if (!out.empty()) {
        out += ", ";
      }
      out += names[idx];
    }
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v3s", "network: v1|v2|v3s|v3l|mnas");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_double("budget", 1.05, "max params ratio vs baseline");
  flags.parse(argc, argv);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const auto cfg = systolic::square_array(flags.get_int("size"));

  std::printf("Neural Operator Search on %s (%s array)\n\n",
              nets::network_name(id).c_str(), cfg.to_string().c_str());

  // Uniform variants for context.
  AssignmentSet assignments;
  util::TablePrinter table(
      {"Assignment", "Params ratio", "Speedup", "Per-slot modes"});
  for (core::NetworkVariant variant :
       {core::NetworkVariant::kBaseline, core::NetworkVariant::kFuseFull,
        core::NetworkVariant::kFuseHalf}) {
    const sched::VariantBuild build = sched::build_variant(id, variant, cfg);
    const double base_params = static_cast<double>(
        sched::build_variant(id, core::NetworkVariant::kBaseline, cfg)
            .model.total_params());
    const double params_ratio =
        static_cast<double>(build.model.total_params()) / base_params;
    const double speedup = sched::speedup_vs_baseline(id, variant, cfg);
    assignments.add(core::network_variant_name(variant), speedup,
                    params_ratio);
    table.add_row({core::network_variant_name(variant),
                   util::fixed(params_ratio, 3),
                   util::fixed(speedup, 2) + "x", "uniform"});
  }

  // Direction 1: minimize latency under a parameter budget.
  {
    nos::NosConfig config;
    config.max_params_ratio = flags.get_double("budget");
    const nos::NosResult result = nos::search_operators(id, cfg, config);
    const std::string name = "NOS min-latency @ " +
                             util::fixed(config.max_params_ratio, 2) +
                             "x params";
    assignments.add(name, result.speedup, result.params_ratio);
    table.add_row({name, util::fixed(result.params_ratio, 3),
                   util::fixed(result.speedup, 2) + "x",
                   result.modes_string()});
  }

  // Direction 2: maximize capacity (params, the accuracy proxy) under a
  // latency budget — the deployment-shaped question. The interesting band
  // lies between the all-Half latency (cheapest) and the all-Full latency:
  // inside it the search must mix operators per slot.
  const double half_latency_ratio =
      1.0 / sched::speedup_vs_baseline(
                id, core::NetworkVariant::kFuseHalf, cfg);
  const double full_latency_ratio =
      1.0 / sched::speedup_vs_baseline(
                id, core::NetworkVariant::kFuseFull, cfg);
  for (double blend : {1.0, 0.66, 0.33}) {
    const double cycles_ratio =
        half_latency_ratio +
        blend * (full_latency_ratio - half_latency_ratio);
    nos::NosLatencyBudgetConfig config;
    config.max_cycles_ratio = cycles_ratio;
    const nos::NosResult result = nos::search_capacity(id, cfg, config);
    const std::string name =
        "NOS max-capacity @ " + util::fixed(cycles_ratio, 2) + "x latency";
    assignments.add(name, result.speedup, result.params_ratio);
    table.add_row({name, util::fixed(result.params_ratio, 3),
                   util::fixed(result.speedup, 2) + "x",
                   result.modes_string()});
  }
  table.print(std::cout);
  std::printf("\nPareto-optimal over {latency, capacity}: %s\n",
              assignments.frontier_names().c_str());
  std::printf(
      "\nper-slot letters: B = keep depthwise, F = FuSe-Full (D=1), "
      "H = FuSe-Half (D=2)\nThe capacity search spends its latency budget "
      "on Full operators where they are\ncheap (small feature maps) and "
      "falls back to Half where latency is precious —\nexactly the "
      "operator-level design space the paper's NOS proposal points at.\n");
  return 0;
}
