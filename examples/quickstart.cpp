// Quickstart: the FuSeConv API in one page.
//
//  1. Build a FuSeConv stage that drop-in replaces a 3x3 depthwise layer.
//  2. Run a forward pass and check the output shape.
//  3. Estimate systolic-array latency of the replaced vs replacing layer.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/fuseconv.hpp"
#include "nn/layer.hpp"
#include "sched/latency.hpp"
#include "systolic/config.hpp"
#include "util/rng.hpp"

using namespace fuse;

int main() {
  // A depthwise 3x3 layer on 32 channels of a 56x56 feature map — the kind
  // of layer MobileNet is made of.
  const std::int64_t channels = 32, hw = 56, kernel = 3;

  // 1. Describe the FuSeConv replacement (Half variant, D = 2).
  core::FuseConvSpec spec;
  spec.channels = channels;
  spec.in_h = hw;
  spec.in_w = hw;
  spec.kernel = kernel;
  spec.stride = 1;
  spec.pad = kernel / 2;
  spec.variant = core::FuseVariant::kHalf;

  util::Rng rng(42);
  const core::FuseConvStage stage(spec, rng);

  // 2. Forward pass: same input -> same output geometry as the depthwise
  // layer it replaces.
  tensor::Tensor input(tensor::Shape{1, channels, hw, hw});
  input.fill_uniform(rng, -1.0F, 1.0F);
  const tensor::Tensor output = stage.forward(input);
  std::printf("input  %s\noutput %s  (drop-in: same N/C/H/W)\n",
              input.shape().to_string().c_str(),
              output.shape().to_string().c_str());

  // 3. Latency on a 64x64 output-stationary array with broadcast links.
  const auto cfg = systolic::square_array(64);
  const nn::LayerDesc dw =
      nn::make_depthwise("dw3x3", channels, hw, hw, kernel, 1, kernel / 2);
  const auto fuse_layers = core::lower_fuse_stage(
      "fuse", spec, nn::Activation::kNone);

  const auto dw_cost = sched::layer_latency(dw, cfg);
  std::uint64_t fuse_cycles = 0;
  for (const auto& layer : fuse_layers) {
    fuse_cycles += sched::layer_latency(layer, cfg).cycles;
  }

  std::printf(
      "\non a 64x64 systolic array (output stationary):\n"
      "  depthwise 3x3 : %llu cycles (utilization %.1f%%)\n"
      "  FuSeConv-Half : %llu cycles\n"
      "  speedup       : %.1fx — same operator interface, systolic "
      "mapping\n",
      static_cast<unsigned long long>(dw_cost.cycles),
      100.0 * dw_cost.utilization(),
      static_cast<unsigned long long>(fuse_cycles),
      static_cast<double>(dw_cost.cycles) /
          static_cast<double>(fuse_cycles));
  return 0;
}
