// profile_network: the full per-layer execution timeline of any zoo
// network x variant, exported as Perfetto / chrome://tracing JSON.
//
// Every latency-bearing layer is lowered to its MappingPlan, expanded to a
// FoldTrace (systolic::plan_trace), and concatenated on one cycle axis:
// a span per layer on the "layers" track, a span per fold on the "folds"
// track, and per-operand SRAM-footprint counter series ("ph":"C"). The
// timestamp unit is ARRAY CYCLES (one viewer microsecond == one cycle),
// so the trace's end timestamp equals the analytic network latency — the
// program checks that identity, and that the summed per-layer PE
// occupancy matches the MappingPlan-derived utilization, before writing.
//
// With --sched-mode=fused the trace shows the fused NetworkPlan instead:
// one span per ScheduleSegment (fused groups alternate producer/consumer
// stripes on the layer track), DRAM prefetch spans on a "loads" track
// overlapping the PREVIOUS segment's compute (the double-buffering the
// fused schedule models), and an SRAM-occupancy counter stepping through
// each segment's planned residency. The end timestamp is FUSE_CHECKed
// against the fused schedule's analytic total exactly as the per-layer
// path checks network_latency.
//
// With --attribution-json=<path> the program additionally runs the
// bottleneck-attribution engine (sched/attribution.hpp) over the same
// schedule, writes the per-layer / per-unit decomposition as JSON, and
// adds an "attribution" counter track to the trace: at each segment
// boundary the attributed compute vs fill/drain cycles of the segment,
// so the viewer shows WHERE the array's time goes, not just when layers
// run.
//
// Usage: profile_network [--net=v2] [--variant=fuse_full] [--size=64]
//        [--trace-json=profile.json] [--stats-json=] [--fold-events=true]
//        [--sched-mode=per-layer] [--attribution-json=]
//   --net      v1|v2|v3s|v3l|mnas|resnet50 (mobilenet_v2-style long
//              names accepted)
//   --variant  baseline|fuse_full|fuse_half|fuse_full50|fuse_half50
//              (short forms full|half|full50|half50 accepted)
//   --fold-events=false drops the per-fold spans + SRAM counters (layer
//              spans only) for small files on fold-heavy baselines.
#include <algorithm>
#include <cstdio>

#include "sched/attribution.hpp"
#include "sched/latency.hpp"
#include "sched/netplan.hpp"
#include "systolic/mapping.hpp"
#include "systolic/trace.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"

using namespace fuse;

namespace {

core::NetworkVariant parse_variant(const std::string& name) {
  if (name == "baseline") return core::NetworkVariant::kBaseline;
  if (name == "full" || name == "fuse_full") {
    return core::NetworkVariant::kFuseFull;
  }
  if (name == "half" || name == "fuse_half") {
    return core::NetworkVariant::kFuseHalf;
  }
  if (name == "full50" || name == "fuse_full50") {
    return core::NetworkVariant::kFuseFull50;
  }
  if (name == "half50" || name == "fuse_half50") {
    return core::NetworkVariant::kFuseHalf50;
  }
  FUSE_CHECK(false) << "unknown --variant '" << name
                    << "' (baseline|fuse_full|fuse_half|fuse_full50|"
                       "fuse_half50)";
  return core::NetworkVariant::kBaseline;
}

// DRAM prefetch spans land on their own track below the SRAM counters.
constexpr int kLoadTrack = 3;
// Attributed-category counters (compute vs fill/drain per segment).
constexpr int kAttributionTrack = 4;

/// Emits the attribution counter series: at each schedule segment's start,
/// the segment's attributed compute and fill/drain cycle counts (stepped
/// series; a closing zero sample at the end). Works for both modes — the
/// per-layer schedule has one segment per on-array layer.
void export_attribution_track(util::TraceSink& sink,
                              const sched::NetworkPlan& plan,
                              const sched::AttributionReport& report) {
  for (std::size_t s = 0; s < plan.segments.size(); ++s) {
    const sched::SegmentAttribution& sa = report.segments[s];
    sink.counter_event("attribution", plan.segments[s].start_cycle,
                       kAttributionTrack,
                       {{"compute", sa.split.compute},
                        {"fill_drain", sa.split.fill_drain}});
  }
  if (!plan.segments.empty()) {
    sink.counter_event("attribution", plan.total_cycles, kAttributionTrack,
                       {{"compute", 0}, {"fill_drain", 0}});
  }
}

/// Exports the fused NetworkPlan: one span per schedule segment, prefetch
/// spans overlapping the previous segment's compute, and the planned SRAM
/// residency as a counter series. Returns the trace's end timestamp.
std::uint64_t export_fused_schedule(util::TraceSink& sink,
                                    const sched::NetworkPlan& plan,
                                    const nets::NetworkModel& model,
                                    bool fold_events) {
  std::uint64_t end = 0;
  for (const sched::ScheduleSegment& seg : plan.segments) {
    const nn::LayerDesc& layer = model.layers[seg.layer_index];
    const sched::FusedPair* pair = plan.pair_of(seg.layer_index);
    sink.complete_event(
        layer.name, seg.fused ? "fused-segment" : "segment",
        seg.start_cycle, seg.duration(), systolic::kLayerTrack,
        {util::trace_str("kind", nn::op_kind_name(layer.kind)),
         util::trace_num("folds", seg.folds),
         util::trace_num("fused",
                         static_cast<std::uint64_t>(seg.fused ? 1 : 0)),
         util::trace_num("sram_bytes", seg.sram_bytes)});
    if (fold_events) {
      sink.counter_event("sram_planned", seg.start_cycle,
                         systolic::kSramTrack,
                         {{"resident+staging", seg.sram_bytes}});
      // Operand bytes this segment streams from DRAM (weights always; the
      // input too unless it is a fused consumer reading SRAM), spread over
      // the layer's segments by fold share. The prefetch overlaps the
      // previous segment's compute — that overlap IS the double-buffering
      // the roofline max() models.
      const systolic::TrafficEstimate& traffic =
          plan.layer_traffic[seg.layer_index];
      std::uint64_t stream_bytes = traffic.weight_bytes;
      const bool fused_consumer =
          pair != nullptr && pair->consumer == seg.layer_index;
      if (!fused_consumer) {
        stream_bytes += traffic.input_bytes;
      }
      const std::uint64_t layer_folds =
          plan.layer_latency[seg.layer_index].folds;
      if (layer_folds > 0 && stream_bytes > 0) {
        systolic::TrafficEstimate slice;
        slice.input_bytes = stream_bytes * seg.folds / layer_folds;
        const std::uint64_t load_cycles = slice.memory_cycles(plan.mem);
        const std::uint64_t dur =
            std::min<std::uint64_t>(load_cycles, seg.start_cycle);
        if (dur > 0) {
          sink.complete_event(
              layer.name + " prefetch", "load", seg.start_cycle - dur,
              dur, kLoadTrack,
              {util::trace_num("bytes", slice.input_bytes),
               util::trace_num(
                   "from_sram",
                   static_cast<std::uint64_t>(fused_consumer ? 1 : 0))});
        }
      }
    }
    end = std::max(end, seg.end_cycle);
  }
  if (fold_events && !plan.segments.empty()) {
    sink.counter_event("sram_planned", end, systolic::kSramTrack,
                       {{"resident+staging", 0}});
  }
  return end;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("net", "v2", "network: v1|v2|v3s|v3l|mnas|resnet50");
  flags.add_string("variant", "fuse_full",
                   "baseline|fuse_full|fuse_half|fuse_full50|fuse_half50");
  flags.add_int("size", 64, "systolic array size (SxS)");
  flags.add_string("trace-json", "profile.json",
                   "trace-event output path (open in ui.perfetto.dev)");
  flags.add_string("stats-json", "",
                   "also dump the metrics registry as JSON here");
  flags.add_string("attribution-json", "",
                   "write the cycle-attribution report here and add an "
                   "'attribution' counter track to the trace");
  flags.add_bool("fold-events", true,
                 "emit per-fold spans and SRAM counter series");
  flags.add_string("sched-mode",
                   sched::sched_mode_name(sched::sched_mode()),
                   "network schedule: per-layer or fused");
  flags.parse(argc, argv);

  const nets::NetworkId id = nets::parse_network_flag(flags.get_string("net"));
  const core::NetworkVariant variant =
      parse_variant(flags.get_string("variant"));
  const auto cfg = systolic::square_array(flags.get_int("size"));
  FUSE_CHECK(id != nets::NetworkId::kResNet50 ||
             variant == core::NetworkVariant::kBaseline)
      << "ResNet-50 has no depthwise layers; only --variant=baseline";
  const bool fold_events = flags.get_bool("fold-events");
  const systolic::MemoryConfig mem;
  sched::SchedMode mode;
  FUSE_CHECK(sched::parse_sched_mode(flags.get_string("sched-mode"), &mode))
      << "--sched-mode must be 'per-layer' or 'fused', got '"
      << flags.get_string("sched-mode") << "'";

  const sched::VariantBuild build = sched::build_variant(id, variant, cfg);

  if (mode == sched::SchedMode::kFused) {
    const sched::NetworkPlan plan =
        sched::plan_network(build.model, cfg, mem, mode);
    util::TraceSink sink;
    sink.process_name(build.model.name + " " +
                      core::network_variant_name(variant) + " on " +
                      cfg.to_string() +
                      " (fused schedule; ts unit = array cycles)");
    sink.thread_name(systolic::kLayerTrack, "schedule segments");
    if (fold_events) {
      sink.thread_name(systolic::kSramTrack, "sram occupancy");
      sink.thread_name(kLoadTrack, "dram loads");
    }
    const std::uint64_t end =
        export_fused_schedule(sink, plan, build.model, fold_events);
    // The schedule IS the analytic model: reordering whole folds
    // preserves the total exactly.
    FUSE_CHECK(end == plan.total_cycles)
        << "fused trace end " << end << " != schedule total "
        << plan.total_cycles;
    const std::string attribution_path =
        flags.get_string("attribution-json");
    std::uint64_t attribution_stall = 0;
    if (!attribution_path.empty()) {
      const sched::AttributionReport report =
          sched::attribute_network(plan, build.model);
      sink.thread_name(kAttributionTrack, "attribution");
      export_attribution_track(sink, plan, report);
      sched::write_attribution_json_file(attribution_path, report);
      attribution_stall = report.total_dram_stall;
    }
    const std::string trace_path = flags.get_string("trace-json");
    sink.write_json_file(trace_path);
    std::printf(
        "%s %s on %s array — fused schedule\n"
        "  segments    : %zu (%zu fused groups)\n"
        "  total       : %s cycles (= per-layer total, verified)\n"
        "  sram        : %s high water of %s configured\n"
        "wrote %s: %zu trace events — open in ui.perfetto.dev\n",
        build.model.name.c_str(),
        core::network_variant_name(variant).c_str(),
        cfg.to_string().c_str(), plan.segments.size(),
        plan.fused_pairs.size(),
        util::with_commas(plan.total_cycles).c_str(),
        util::format_bytes(plan.sram_high_water).c_str(),
        util::format_bytes(
            static_cast<std::uint64_t>(plan.mem.sram_bytes))
            .c_str(),
        trace_path.c_str(), sink.event_count());
    if (!attribution_path.empty()) {
      std::printf("wrote %s (cycle attribution; %s DRAM stall cycles on "
                  "top of compute)\n",
                  attribution_path.c_str(),
                  util::with_commas(attribution_stall).c_str());
    }
    const std::string stats_path = flags.get_string("stats-json");
    if (!stats_path.empty()) {
      util::metrics().write_json_file(stats_path);
      std::printf("wrote %s (metrics registry%s)\n", stats_path.c_str(),
                  util::telemetry_enabled() ? "" : " — FUSE_TELEMETRY off");
    }
    return 0;
  }

  const sched::NetworkLatency analytic =
      sched::network_latency(build.model, cfg);

  util::TraceSink sink;
  sink.process_name(build.model.name + " " +
                    core::network_variant_name(variant) + " on " +
                    cfg.to_string() + " (ts unit = array cycles)");
  sink.thread_name(systolic::kLayerTrack, "layers");
  if (fold_events) {
    sink.thread_name(systolic::kFoldTrack, "folds");
    sink.thread_name(systolic::kSramTrack, "sram footprint");
  }

  std::uint64_t cursor = 0;
  std::uint64_t pe_cycles_busy = 0;
  std::uint64_t pe_cycles_total = 0;
  std::uint64_t peak_fold_bytes = 0;
  std::size_t on_array_layers = 0;
  for (const nn::LayerDesc& layer : build.model.layers) {
    const systolic::MappingPlan plan = systolic::lower(layer, cfg);
    if (plan.ops.empty()) {
      continue;  // glue op: zero array cycles in the paper's methodology
    }
    ++on_array_layers;
    const systolic::FoldTrace trace = systolic::plan_trace(plan, cfg, mem);
    const systolic::LatencyEstimate est = plan.total_latency();
    FUSE_CHECK(trace.total_cycles == est.cycles)
        << "fold trace of '" << layer.name
        << "' diverges from its analytic latency";
    const std::uint64_t layer_pe_total =
        est.cycles * static_cast<std::uint64_t>(cfg.pe_count());
    sink.complete_event(
        layer.name, "layer", cursor, trace.total_cycles,
        systolic::kLayerTrack,
        {util::trace_str("kind", nn::op_kind_name(layer.kind)),
         util::trace_num("macs", est.mac_ops),
         util::trace_num("folds", est.folds),
         util::trace_num("pe_cycles_busy", est.mac_ops),
         util::trace_num("pe_cycles_total", layer_pe_total),
         util::trace_num("utilization", est.utilization())});
    if (fold_events) {
      append_fold_trace_events(sink, trace, layer.name, cursor);
    }
    cursor += trace.total_cycles;
    pe_cycles_busy += est.mac_ops;
    pe_cycles_total += layer_pe_total;
    peak_fold_bytes = std::max(peak_fold_bytes, trace.peak_fold_bytes());
  }

  // The timeline IS the analytic model: same plans, same fold walk.
  FUSE_CHECK(cursor == analytic.total_cycles)
      << "trace timeline " << cursor << " != analytic network latency "
      << analytic.total_cycles;

  const std::string attribution_path = flags.get_string("attribution-json");
  std::uint64_t attribution_stall = 0;
  if (!attribution_path.empty()) {
    // The per-layer NetworkPlan schedules the same lowered plans
    // back-to-back, so its segments line up with the trace's layer spans
    // (plan.total_cycles == analytic total, FUSE_CHECKed in
    // attribute_network).
    const sched::NetworkPlan plan = sched::plan_network(
        build.model, cfg, mem, sched::SchedMode::kPerLayer);
    const sched::AttributionReport report =
        sched::attribute_network(plan, build.model);
    sink.thread_name(kAttributionTrack, "attribution");
    export_attribution_track(sink, plan, report);
    sched::write_attribution_json_file(attribution_path, report);
    attribution_stall = report.total_dram_stall;
  }

  const std::string trace_path = flags.get_string("trace-json");
  sink.write_json_file(trace_path);

  std::printf(
      "%s %s on %s array\n"
      "  layers      : %zu on-array, %zu glue (zero-cycle)\n"
      "  total       : %s cycles (= analytic network_latency, verified)\n"
      "  PE occupancy: %s%% (%s busy / %s total PE-cycles)\n"
      "  peak fold   : %s SRAM (%s double-buffered)\n"
      "wrote %s: %zu trace events — open in ui.perfetto.dev\n",
      build.model.name.c_str(),
      core::network_variant_name(variant).c_str(), cfg.to_string().c_str(),
      on_array_layers, build.model.layers.size() - on_array_layers,
      util::with_commas(cursor).c_str(),
      util::fixed(100.0 * static_cast<double>(pe_cycles_busy) /
                      static_cast<double>(pe_cycles_total),
                  2)
          .c_str(),
      util::format_count(pe_cycles_busy).c_str(),
      util::format_count(pe_cycles_total).c_str(),
      util::format_bytes(peak_fold_bytes).c_str(),
      util::format_bytes(2 * peak_fold_bytes).c_str(), trace_path.c_str(),
      sink.event_count());

  if (!attribution_path.empty()) {
    std::printf("wrote %s (cycle attribution; %s DRAM stall cycles on "
                "top of compute)\n",
                attribution_path.c_str(),
                util::with_commas(attribution_stall).c_str());
  }

  const std::string stats_path = flags.get_string("stats-json");
  if (!stats_path.empty()) {
    util::metrics().write_json_file(stats_path);
    std::printf("wrote %s (metrics registry%s)\n", stats_path.c_str(),
                util::telemetry_enabled() ? "" : " — FUSE_TELEMETRY off");
  }
  return 0;
}
