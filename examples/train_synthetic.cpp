// train_synthetic: watch the drop-in replacement learn. Trains a tiny
// depthwise-separable network and its FuSe variant on the synthetic
// oriented-texture task with per-epoch logging — the miniature of the
// paper's ImageNet study (see DESIGN.md for the substitution rationale).
//
// Usage: train_synthetic [--mode=full] [--epochs=8] [--seed=1]
//        [--train=256] [--eval=128] [--kernel-backend=fast]
//        [--kernel-isa=auto] [--kernel-threads=N]
#include <cstdio>

#include "nn/kernels.hpp"
#include "train/models.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace fuse;
using namespace fuse::train;

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("mode", "full", "baseline|full|half");
  flags.add_int("epochs", 8, "training epochs");
  flags.add_int("seed", 1, "weight init seed");
  flags.add_int("train", 256, "training examples");
  flags.add_int("eval", 128, "eval examples");
  flags.add_string("kernel-backend", nn::kernel_backend_name(nn::kernel_backend()),
                   "functional kernel backend: fast or reference");
  flags.add_string("kernel-isa", nn::kernel_isa_name(nn::kernel_isa()),
                   "fast-kernel instruction set: scalar, avx2, or auto");
  flags.add_int("kernel-threads", nn::kernel_threads(),
                "total threads for the fast kernels");
  flags.parse(argc, argv);

  nn::KernelBackend backend;
  FUSE_CHECK(nn::parse_kernel_backend(flags.get_string("kernel-backend"),
                                      &backend))
      << "--kernel-backend must be 'fast' or 'reference'";
  nn::set_kernel_backend(backend);
  nn::KernelIsa isa;
  FUSE_CHECK(nn::parse_kernel_isa(flags.get_string("kernel-isa"), &isa))
      << "--kernel-isa must be 'scalar', 'avx2', or 'auto'";
  nn::set_kernel_isa(isa);
  if (flags.get_int("kernel-threads") != nn::kernel_threads()) {
    nn::set_kernel_threads(static_cast<int>(flags.get_int("kernel-threads")));
  }

  const std::string mode_name = flags.get_string("mode");
  core::FuseMode mode = core::FuseMode::kBaseline;
  if (mode_name == "full") {
    mode = core::FuseMode::kFull;
  } else if (mode_name == "half") {
    mode = core::FuseMode::kHalf;
  } else {
    FUSE_CHECK(mode_name == "baseline")
        << "unknown --mode '" << mode_name << "' (baseline|full|half)";
  }

  DatasetConfig dc;
  const TextureDataset train_data(dc, flags.get_int("train"), 1);
  const TextureDataset eval_data(dc, flags.get_int("eval"), 2);

  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  auto net = build_tiny_net(TinyNetConfig{}, mode, rng);
  std::vector<Parameter*> params;
  net->collect_params(params);
  std::size_t total_params = 0;
  for (const Parameter* p : params) {
    total_params += static_cast<std::size_t>(p->value.num_elements());
  }

  std::printf(
      "training tiny net (%s depthwise blocks), %zu parameters,\n"
      "%lld-way oriented-texture task, RMSprop (the paper's optimizer)\n\n",
      mode_name.c_str(), total_params,
      static_cast<long long>(dc.num_classes));

  TrainConfig tc;
  tc.epochs = flags.get_int("epochs");
  tc.batch_size = 16;
  tc.lr = 0.01;
  tc.verbose = true;
  const TrainResult result = train_model(*net, train_data, eval_data, tc);

  std::printf("\nfinal eval accuracy: %.1f%% (chance: %.1f%%)\n",
              100.0 * result.final_eval_accuracy,
              100.0 / static_cast<double>(dc.num_classes));
  return 0;
}
