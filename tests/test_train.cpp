// Tests for the training substrate: finite-difference gradient checks for
// every layer, loss correctness, optimizer behaviour, dataset properties,
// and a short end-to-end training run.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "train/dataset.hpp"
#include "train/fuse_module.hpp"
#include "train/loss.hpp"
#include "train/models.hpp"
#include "train/module.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"
#include "tensor/half.hpp"
#include "util/check.hpp"

namespace fuse::train {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

/// Scalar objective: sum of module output (so dL/dout = 1 everywhere).
double objective(Module& module, const Tensor& input) {
  return module.forward(input).sum();
}

/// Checks analytic parameter and input gradients against central finite
/// differences for the given module/input.
void check_gradients(Module& module, const Tensor& input,
                     float tolerance = 2e-2F) {
  // Analytic gradients.
  std::vector<Parameter*> params;
  module.collect_params(params);
  for (Parameter* p : params) {
    p->zero_grad();
  }
  const Tensor out = module.forward(input);
  Tensor ones(out.shape());
  ones.fill(1.0F);
  const Tensor grad_input = module.backward(ones);

  const float eps = 1e-2F;
  // Parameter gradients (sample a few entries of each parameter).
  for (Parameter* p : params) {
    const std::int64_t n = p->value.num_elements();
    for (std::int64_t j = 0; j < n; j += std::max<std::int64_t>(1, n / 7)) {
      const float saved = p->value[j];
      p->value[j] = saved + eps;
      const double up = objective(module, input);
      p->value[j] = saved - eps;
      const double down = objective(module, input);
      p->value[j] = saved;
      const float numeric = static_cast<float>((up - down) / (2.0 * eps));
      EXPECT_NEAR(p->grad[j], numeric, tolerance)
          << p->name << "[" << j << "]";
    }
  }
  // Input gradients.
  Tensor perturbed = input;
  const std::int64_t n = input.num_elements();
  for (std::int64_t j = 0; j < n; j += std::max<std::int64_t>(1, n / 7)) {
    const float saved = perturbed[j];
    perturbed[j] = saved + eps;
    const double up = objective(module, perturbed);
    perturbed[j] = saved - eps;
    const double down = objective(module, perturbed);
    perturbed[j] = saved;
    const float numeric = static_cast<float>((up - down) / (2.0 * eps));
    EXPECT_NEAR(grad_input[j], numeric, tolerance) << "input[" << j << "]";
  }
}

// --- gradient checks ----------------------------------------------------------

TEST(Gradients, DenseConv) {
  util::Rng rng(1);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  Conv2d conv("c", 2, 3, 3, 3, p, rng);
  check_gradients(conv, random_tensor(Shape{2, 2, 5, 5}, 2));
}

TEST(Gradients, StridedConv) {
  util::Rng rng(3);
  nn::Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 2;
  p.pad_h = 1;
  p.pad_w = 1;
  Conv2d conv("c", 2, 2, 3, 3, p, rng);
  check_gradients(conv, random_tensor(Shape{1, 2, 6, 6}, 4));
}

TEST(Gradients, DepthwiseConv) {
  util::Rng rng(5);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = 3;
  Conv2d conv("dw", 3, 3, 3, 3, p, rng);
  check_gradients(conv, random_tensor(Shape{1, 3, 5, 5}, 6));
}

TEST(Gradients, AsymmetricKernelConv) {
  // The 1xK kernels of FuSeConv's row branch.
  util::Rng rng(7);
  nn::Conv2dParams p;
  p.pad_w = 1;
  p.groups = 2;
  Conv2d conv("row", 2, 2, 1, 3, p, rng);
  check_gradients(conv, random_tensor(Shape{1, 2, 4, 6}, 8));
}

TEST(Gradients, Linear) {
  util::Rng rng(9);
  Linear fc("fc", 6, 4, rng);
  check_gradients(fc, random_tensor(Shape{3, 6}, 10));
}

TEST(Gradients, ReluLayer) {
  ActivationLayer act(Activation::kRelu);
  // Keep values away from the kink at 0.
  Tensor input = random_tensor(Shape{2, 2, 3, 3}, 11);
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    if (std::fabs(input[i]) < 0.1F) {
      input[i] = 0.5F;
    }
  }
  check_gradients(act, input);
}

TEST(Gradients, GlobalAvgPool) {
  GlobalAvgPool pool;
  check_gradients(pool, random_tensor(Shape{2, 3, 4, 4}, 12));
}

TEST(Gradients, FuseModuleFull) {
  util::Rng rng(13);
  core::FuseConvSpec spec;
  spec.channels = 2;
  spec.in_h = 5;
  spec.in_w = 5;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kFull;
  FuseConvModule fuse("fuse", spec, rng);
  check_gradients(fuse, random_tensor(Shape{1, 2, 5, 5}, 14));
}

TEST(Gradients, FuseModuleHalf) {
  util::Rng rng(15);
  core::FuseConvSpec spec;
  spec.channels = 4;
  spec.in_h = 5;
  spec.in_w = 5;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kHalf;
  FuseConvModule fuse("fuse", spec, rng);
  check_gradients(fuse, random_tensor(Shape{1, 4, 5, 5}, 16));
}

TEST(Gradients, SequentialChainsBackprop) {
  util::Rng rng(17);
  Sequential net;
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  net.add(std::make_unique<Conv2d>("c", 2, 3, 3, 3, p, rng));
  net.add(std::make_unique<GlobalAvgPool>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Linear>("fc", 3, 2, rng));
  check_gradients(net, random_tensor(Shape{1, 2, 4, 4}, 18));
}

// --- FuseConvModule semantics ---------------------------------------------------

TEST(FuseModule, ForwardMatchesCoreStage) {
  util::Rng rng(19);
  core::FuseConvSpec spec;
  spec.channels = 4;
  spec.in_h = 6;
  spec.in_w = 6;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kHalf;
  FuseConvModule module("fuse", spec, rng);

  // Copy the module's weights into a core stage (which has no bias) and
  // zero the module's biases so they compute the same function.
  core::FuseConvStage stage(spec);
  stage.row_weights() = module.row_branch().weight().value;
  stage.col_weights() = module.col_branch().weight().value;
  module.row_branch().bias().value.fill(0.0F);
  module.col_branch().bias().value.fill(0.0F);

  const Tensor input = random_tensor(Shape{2, 4, 6, 6}, 20);
  EXPECT_TRUE(tensor::allclose(module.forward(input), stage.forward(input),
                               1e-5F, 1e-6F));
}

// --- loss ------------------------------------------------------------------------

TEST(Loss, UniformLogitsGiveLogClasses) {
  Tensor logits(Shape{1, 4});
  const LossResult r = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(Loss, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits(Shape{1, 3}, {10.0F, -5.0F, -5.0F});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-4);
  EXPECT_EQ(r.correct, 1);
}

TEST(Loss, GradientSumsToZeroPerSample) {
  const Tensor logits = random_tensor(Shape{3, 5}, 21);
  const LossResult r = softmax_cross_entropy(logits, {0, 4, 2});
  for (std::int64_t n = 0; n < 3; ++n) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 5; ++c) {
      sum += r.grad_logits.at(n, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Tensor logits = random_tensor(Shape{2, 3}, 22);
  const std::vector<std::int64_t> labels = {1, 2};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3F;
  for (std::int64_t j = 0; j < logits.num_elements(); ++j) {
    const float saved = logits[j];
    logits[j] = saved + eps;
    const double up = softmax_cross_entropy(logits, labels).loss;
    logits[j] = saved - eps;
    const double down = softmax_cross_entropy(logits, labels).loss;
    logits[j] = saved;
    EXPECT_NEAR(r.grad_logits[j], (up - down) / (2 * eps), 1e-3) << j;
  }
}

TEST(Loss, BadLabelThrows) {
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), util::Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), util::Error);
}

// --- optimizers --------------------------------------------------------------------

TEST(Optimizers, SgdStepsDownhill) {
  Parameter p("p", Shape{1});
  p.value[0] = 1.0F;
  p.grad[0] = 2.0F;
  Sgd sgd({&p}, /*lr=*/0.1);
  sgd.step();
  EXPECT_NEAR(p.value[0], 0.8F, 1e-6F);
}

TEST(Optimizers, SgdMomentumAccumulates) {
  Parameter p("p", Shape{1});
  p.grad[0] = 1.0F;
  Sgd sgd({&p}, /*lr=*/0.1, /*momentum=*/0.9);
  sgd.step();          // v=1, x = -0.1
  sgd.step();          // v=1.9, x = -0.29
  EXPECT_NEAR(p.value[0], -0.29F, 1e-5F);
}

TEST(Optimizers, ZeroGradClears) {
  Parameter p("p", Shape{2});
  p.grad.fill(3.0F);
  Sgd sgd({&p}, 0.1);
  sgd.zero_grad();
  EXPECT_EQ(p.grad[0], 0.0F);
}

TEST(Optimizers, RmsPropNormalizesStepSize) {
  // Two parameters with very different gradient magnitudes should move by
  // comparable amounts (that's the point of RMSprop).
  Parameter a("a", Shape{1});
  Parameter b("b", Shape{1});
  a.grad[0] = 100.0F;
  b.grad[0] = 0.01F;
  RmsProp rms({&a, &b}, /*lr=*/0.01, /*alpha=*/0.9, /*momentum=*/0.0);
  rms.step();
  const float move_a = std::fabs(a.value[0]);
  const float move_b = std::fabs(b.value[0]);
  EXPECT_LT(move_a / move_b, 10.0F);
}

TEST(Optimizers, MinimizesQuadraticBowl) {
  // f(x) = x^2; gradient 2x. Both optimizers should converge near 0.
  for (bool use_rms : {false, true}) {
    Parameter p("p", Shape{1});
    p.value[0] = 5.0F;
    std::unique_ptr<Optimizer> opt;
    if (use_rms) {
      opt = std::make_unique<RmsProp>(std::vector<Parameter*>{&p}, 0.05,
                                      0.9, 0.5);
    } else {
      opt = std::make_unique<Sgd>(std::vector<Parameter*>{&p}, 0.1, 0.5);
    }
    for (int i = 0; i < 200; ++i) {
      opt->zero_grad();
      p.grad[0] = 2.0F * p.value[0];
      opt->step();
    }
    EXPECT_NEAR(p.value[0], 0.0F, 0.05F) << (use_rms ? "rmsprop" : "sgd");
  }
}

// --- dataset ------------------------------------------------------------------------

TEST(Dataset, DeterministicForSeed) {
  const DatasetConfig cfg;
  TextureDataset a(cfg, 16, 42);
  TextureDataset b(cfg, 16, 42);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(tensor::allclose(a.example(i).image, b.example(i).image));
    EXPECT_EQ(a.example(i).label, b.example(i).label);
  }
}

TEST(Dataset, BalancedClasses) {
  const DatasetConfig cfg;
  TextureDataset data(cfg, 40, 7);
  std::vector<int> counts(static_cast<std::size_t>(cfg.num_classes), 0);
  for (std::int64_t i = 0; i < data.size(); ++i) {
    ++counts[static_cast<std::size_t>(data.example(i).label)];
  }
  for (int c : counts) {
    EXPECT_EQ(c, 10);
  }
}

TEST(Dataset, BatchStacksExamples) {
  const DatasetConfig cfg;
  TextureDataset data(cfg, 8, 3);
  Tensor images;
  std::vector<std::int64_t> labels;
  data.batch(2, 4, &images, &labels);
  EXPECT_EQ(images.shape(),
            (Shape{4, cfg.channels, cfg.height, cfg.width}));
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], data.example(2).label);
  EXPECT_FLOAT_EQ(images[0], data.example(2).image[0]);
}

TEST(Dataset, BatchOutOfRangeThrows) {
  TextureDataset data(DatasetConfig{}, 8, 3);
  Tensor images;
  std::vector<std::int64_t> labels;
  EXPECT_THROW(data.batch(6, 4, &images, &labels), util::Error);
}

TEST(Dataset, ClassesAreLinearlySeparableByOrientation) {
  // Images of different classes should decorrelate: the mean absolute
  // pixel correlation between class-0 and class-1 gratings is lower than
  // within class 0 (sanity that labels carry signal).
  DatasetConfig cfg;
  cfg.noise_stddev = 0.0;
  util::Rng rng(9);
  const Example a1 = make_texture_example(cfg, 0, rng);
  const Example b = make_texture_example(cfg, 1, rng);
  EXPECT_EQ(a1.label, 0);
  EXPECT_EQ(b.label, 1);
  EXPECT_GT(a1.image.abs_max(), 0.5F);
}

// --- end-to-end training -------------------------------------------------------------

TEST(Training, LossDecreasesOnTinyProblem) {
  DatasetConfig dc;
  dc.height = 12;
  dc.width = 12;
  TextureDataset train_data(dc, 64, 1);
  TextureDataset eval_data(dc, 32, 2);

  util::Rng rng(3);
  TinyNetConfig nc;
  nc.in_size = 12;
  nc.stem_channels = 6;
  nc.block_channels[0] = 8;
  nc.block_channels[1] = 8;
  nc.block_channels[2] = 12;
  auto net = build_tiny_net(nc, core::FuseMode::kBaseline, rng);

  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.lr = 0.01;
  const TrainResult result = train_model(*net, train_data, eval_data, tc);
  ASSERT_EQ(result.history.size(), 4u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
  // 4 classes -> chance is 0.25; even a short run should beat it solidly.
  EXPECT_GT(result.final_eval_accuracy, 0.4);
}

TEST(Training, FuseVariantsTrainToo) {
  DatasetConfig dc;
  dc.height = 12;
  dc.width = 12;
  TextureDataset train_data(dc, 48, 4);
  TextureDataset eval_data(dc, 24, 5);

  for (core::FuseMode mode : {core::FuseMode::kFull, core::FuseMode::kHalf}) {
    util::Rng rng(6);
    TinyNetConfig nc;
    nc.in_size = 12;
    nc.stem_channels = 6;
    nc.block_channels[0] = 8;
    nc.block_channels[1] = 8;
    nc.block_channels[2] = 12;
    auto net = build_tiny_net(nc, mode, rng);
    TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 16;
    const TrainResult result =
        train_model(*net, train_data, eval_data, tc);
    EXPECT_LT(result.history.back().train_loss,
              result.history.front().train_loss)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(Training, EvaluateIsDeterministic) {
  DatasetConfig dc;
  dc.height = 8;
  dc.width = 8;
  TextureDataset data(dc, 16, 7);
  util::Rng rng(8);
  TinyNetConfig nc;
  nc.in_size = 8;
  nc.stem_channels = 4;
  nc.block_channels[0] = 4;
  nc.block_channels[1] = 4;
  nc.block_channels[2] = 8;
  auto net = build_tiny_net(nc, core::FuseMode::kBaseline, rng);
  EXPECT_DOUBLE_EQ(evaluate(*net, data), evaluate(*net, data));
}


TEST(Training, Fp16ModeKeepsWeightsRepresentable) {
  DatasetConfig dc;
  dc.height = 8;
  dc.width = 8;
  TextureDataset train_data(dc, 32, 9);
  TextureDataset eval_data(dc, 16, 10);
  util::Rng rng(11);
  TinyNetConfig nc;
  nc.in_size = 8;
  nc.stem_channels = 4;
  nc.block_channels[0] = 4;
  nc.block_channels[1] = 4;
  nc.block_channels[2] = 8;
  auto net = build_tiny_net(nc, core::FuseMode::kBaseline, rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.fp16 = true;
  const TrainResult result = train_model(*net, train_data, eval_data, tc);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss + 0.5);
  // Every weight must be exactly representable in binary16.
  std::vector<Parameter*> params;
  net->collect_params(params);
  for (const Parameter* p : params) {
    for (std::int64_t j = 0; j < p->value.num_elements(); ++j) {
      EXPECT_EQ(p->value[j], tensor::quantize_half(p->value[j]))
          << p->name << "[" << j << "]";
    }
  }
}

TEST(Training, EmaEvaluationReported) {
  DatasetConfig dc;
  dc.height = 8;
  dc.width = 8;
  TextureDataset train_data(dc, 32, 12);
  TextureDataset eval_data(dc, 16, 13);
  util::Rng rng(14);
  TinyNetConfig nc;
  nc.in_size = 8;
  nc.stem_channels = 4;
  nc.block_channels[0] = 4;
  nc.block_channels[1] = 4;
  nc.block_channels[2] = 8;
  auto net = build_tiny_net(nc, core::FuseMode::kHalf, rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.ema_decay = 0.99;
  const TrainResult result = train_model(*net, train_data, eval_data, tc);
  // EMA accuracy is reported and is a valid accuracy.
  EXPECT_GE(result.final_eval_accuracy_ema, 0.0);
  EXPECT_LE(result.final_eval_accuracy_ema, 1.0);
  // Raw weights must be restored after the EMA evaluation: evaluating
  // again reproduces the recorded final accuracy.
  EXPECT_DOUBLE_EQ(evaluate(*net, eval_data), result.final_eval_accuracy);
}

TEST(Training, EmaDisabledMirrorsRawAccuracy) {
  DatasetConfig dc;
  dc.height = 8;
  dc.width = 8;
  TextureDataset train_data(dc, 16, 15);
  TextureDataset eval_data(dc, 16, 16);
  util::Rng rng(17);
  TinyNetConfig nc;
  nc.in_size = 8;
  nc.stem_channels = 4;
  nc.block_channels[0] = 4;
  nc.block_channels[1] = 4;
  nc.block_channels[2] = 8;
  auto net = build_tiny_net(nc, core::FuseMode::kBaseline, rng);
  TrainConfig tc;
  tc.epochs = 1;
  const TrainResult result = train_model(*net, train_data, eval_data, tc);
  EXPECT_DOUBLE_EQ(result.final_eval_accuracy,
                   result.final_eval_accuracy_ema);
}


TEST(Dataset, BlobTaskGeneratesScaledBlobs) {
  DatasetConfig cfg;
  cfg.task = SyntheticTask::kBlobScale;
  cfg.noise_stddev = 0.0;
  util::Rng rng(21);
  const Example small = make_blob_example(cfg, 0, rng);
  const Example large = make_blob_example(cfg, cfg.num_classes - 1, rng);
  // Larger-radius blobs put more total mass into the image.
  EXPECT_GT(large.image.sum(), 2.0 * small.image.sum());
  EXPECT_EQ(small.label, 0);
}

TEST(Dataset, TaskDispatchesThroughGenericGenerator) {
  DatasetConfig cfg;
  cfg.task = SyntheticTask::kBlobScale;
  TextureDataset data(cfg, 8, 5);
  EXPECT_EQ(data.size(), 8);
  EXPECT_EQ(synthetic_task_name(cfg.task), "blobs");
  EXPECT_EQ(synthetic_task_name(SyntheticTask::kOrientedTextures),
            "textures");
}

TEST(Training, BlobTaskIsLearnable) {
  DatasetConfig dc;
  dc.task = SyntheticTask::kBlobScale;
  dc.height = 12;
  dc.width = 12;
  dc.num_classes = 3;
  TextureDataset train_data(dc, 60, 22);
  TextureDataset eval_data(dc, 30, 23);
  util::Rng rng(24);
  TinyNetConfig nc;
  nc.in_size = 12;
  nc.num_classes = 3;
  nc.stem_channels = 6;
  nc.block_channels[0] = 8;
  nc.block_channels[1] = 8;
  nc.block_channels[2] = 12;
  auto net = build_tiny_net(nc, core::FuseMode::kHalf, rng);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 15;
  const TrainResult result = train_model(*net, train_data, eval_data, tc);
  EXPECT_GT(result.final_eval_accuracy, 0.45);  // chance = 1/3
}


// --- BatchNorm2d / ResidualBlock -------------------------------------------------

TEST(BatchNorm, NormalizesToZeroMeanUnitVarInTraining) {
  BatchNorm2d bn("bn", 2);
  Tensor input = random_tensor(Shape{4, 2, 3, 3}, 30);
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    input[i] = input[i] * 3.0F + 5.0F;  // shifted, scaled data
  }
  const Tensor out = bn.forward(input);
  // Per channel: mean ~0, var ~1 (gamma=1, beta=0 initially).
  const std::int64_t spatial = 9;
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        mean += out[(n * 2 + c) * spatial + hw];
      }
    }
    mean /= 36.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t hw = 0; hw < spatial; ++hw) {
        const double d = out[(n * 2 + c) * spatial + hw] - mean;
        var += d * d;
      }
    }
    var /= 36.0;
    EXPECT_NEAR(mean, 0.0, 1e-4) << c;
    EXPECT_NEAR(var, 1.0, 1e-2) << c;
  }
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  BatchNorm2d bn("bn", 1, /*momentum=*/1.0);  // running stats = last batch
  Tensor input = random_tensor(Shape{8, 1, 4, 4}, 31);
  bn.forward(input);  // training pass records stats
  bn.set_training(false);
  // Evaluating the SAME data with running stats reproduces the training
  // normalization (up to the biased/unbiased variance convention).
  const Tensor eval_out = bn.forward(input);
  bn.set_training(true);
  const Tensor train_out = bn.forward(input);
  EXPECT_LT(tensor::max_abs_diff(eval_out, train_out), 1e-3F);
}

TEST(BatchNorm, GradientsMatchFiniteDifference) {
  BatchNorm2d bn("bn", 2);
  // Scale gamma/beta away from the trivial point.
  bn.gamma().value[0] = 1.3F;
  bn.gamma().value[1] = 0.7F;
  bn.beta().value[0] = -0.2F;
  check_gradients(bn, random_tensor(Shape{3, 2, 3, 3}, 32), 5e-2F);
}

TEST(BatchNorm, WrongChannelCountThrows) {
  BatchNorm2d bn("bn", 3);
  EXPECT_THROW(bn.forward(Tensor(Shape{1, 2, 4, 4})), util::Error);
}

TEST(ResidualBlock, ForwardAddsSkip) {
  // Body = activation(none) is identity: residual doubles the input.
  auto body = std::make_unique<ActivationLayer>(Activation::kNone);
  ResidualBlock block(std::move(body));
  const Tensor input = random_tensor(Shape{1, 2, 3, 3}, 33);
  const Tensor out = block.forward(input);
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    EXPECT_FLOAT_EQ(out[i], 2.0F * input[i]);
  }
}

TEST(ResidualBlock, GradientsMatchFiniteDifference) {
  util::Rng rng(34);
  auto body = std::make_unique<Sequential>();
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  body->add(std::make_unique<Conv2d>("c", 2, 2, 3, 3, p, rng));
  ResidualBlock block(std::move(body));
  check_gradients(block, random_tensor(Shape{1, 2, 4, 4}, 35));
}

TEST(ResidualBlock, ShapeChangingBodyThrows) {
  util::Rng rng(36);
  auto body = std::make_unique<Conv2d>("c", 2, 4, 1, 1, nn::Conv2dParams{},
                                       rng);
  ResidualBlock block(std::move(body));
  EXPECT_THROW(block.forward(Tensor(Shape{1, 2, 3, 3})), util::Error);
}


TEST(TinyInvertedNet, BuildsAndTrainsForAllModes) {
  DatasetConfig dc;
  dc.height = 12;
  dc.width = 12;
  TextureDataset train_data(dc, 48, 40);
  TextureDataset eval_data(dc, 24, 41);
  for (core::FuseMode mode :
       {core::FuseMode::kBaseline, core::FuseMode::kFull,
        core::FuseMode::kHalf}) {
    util::Rng rng(42);
    TinyNetConfig nc;
    nc.in_size = 12;
    nc.stem_channels = 8;
    nc.block_channels[0] = 8;
    auto net = build_tiny_inverted_net(nc, mode, rng);
    std::vector<Parameter*> params;
    net->collect_params(params);
    EXPECT_GT(params.size(), 10u);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 16;
    tc.lr = 0.005;
    const TrainResult result =
        train_model(*net, train_data, eval_data, tc);
    EXPECT_LT(result.history.back().train_loss,
              result.history.front().train_loss + 0.2)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(TinyInvertedNet, ResidualPathPreservesShapes) {
  util::Rng rng(43);
  TinyNetConfig nc;
  nc.in_size = 16;
  nc.stem_channels = 8;
  nc.block_channels[0] = 8;
  for (core::FuseMode mode : {core::FuseMode::kBaseline,
                              core::FuseMode::kFull}) {
    auto net = build_tiny_inverted_net(nc, mode, rng);
    Tensor input = random_tensor(Shape{2, 3, 16, 16}, 44);
    const Tensor out = net->forward(input);
    EXPECT_EQ(out.shape(), (Shape{2, nc.num_classes}));
  }
}


TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5, 1);
  drop.set_training(false);
  const Tensor input = random_tensor(Shape{2, 3, 4, 4}, 50);
  EXPECT_TRUE(tensor::allclose(drop.forward(input), input));
}

TEST(Dropout, TrainingZeroesAboutPFractionAndRescales) {
  Dropout drop(0.25, 2);
  Tensor input(Shape{10000});
  input.fill(1.0F);
  const Tensor out = drop.forward(input);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < out.num_elements(); ++i) {
    if (out[i] == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(out[i], 1.0F / 0.75F, 1e-5F);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.02);
  // Expectation preserved: mean(out) ~ mean(in).
  EXPECT_NEAR(out.sum() / 10000.0, 1.0, 0.03);
}

TEST(Dropout, BackwardUsesTheSameMask) {
  Dropout drop(0.5, 3);
  const Tensor input = random_tensor(Shape{64}, 51);
  const Tensor out = drop.forward(input);
  Tensor ones(Shape{64});
  ones.fill(1.0F);
  const Tensor grad = drop.backward(ones);
  for (std::int64_t i = 0; i < 64; ++i) {
    if (out[i] == 0.0F) {
      EXPECT_EQ(grad[i], 0.0F) << i;
    } else {
      EXPECT_NEAR(grad[i], 2.0F, 1e-5F) << i;  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0, 1), util::Error);
  EXPECT_THROW(Dropout(-0.1, 1), util::Error);
}

}  // namespace
}  // namespace fuse::train
