// Tests for the sched report builders (Table-I rows, layer-wise speedups,
// scaling sweeps) and the squeeze-excite functional composite.
#include <gtest/gtest.h>

#include "nn/ops.hpp"
#include "sched/report.hpp"
#include "util/rng.hpp"

namespace fuse::sched {
namespace {

using core::NetworkVariant;
using nets::NetworkId;

TEST(Table1Builder, SpeedupsConsistentWithDirectComputation) {
  const ArrayConfig cfg = systolic::square_array(32);  // off-headline size
  const auto rows = table1_rows(cfg);
  for (const Table1Row& row : rows) {
    const double direct = speedup_vs_baseline(row.network, row.variant, cfg);
    EXPECT_NEAR(row.speedup, direct, 1e-9)
        << nets::network_name(row.network) << " "
        << core::network_variant_name(row.variant);
  }
}

TEST(Table1Builder, CyclesDecreaseExactlyWhereSpeedupSaysSo) {
  const ArrayConfig cfg = systolic::square_array(64);
  const auto rows = table1_rows(cfg);
  std::uint64_t baseline_cycles = 0;
  for (const Table1Row& row : rows) {
    if (row.variant == NetworkVariant::kBaseline) {
      baseline_cycles = row.cycles;
    } else {
      EXPECT_NEAR(static_cast<double>(baseline_cycles) /
                      static_cast<double>(row.cycles),
                  row.speedup, 1e-9);
    }
  }
}

TEST(Table1Builder, ParamsIndependentOfArraySize) {
  // MACs/params are properties of the network; only the 50% variants may
  // differ across arrays (slot selection depends on per-slot savings).
  const auto rows32 = table1_rows(systolic::square_array(32));
  const auto rows64 = table1_rows(systolic::square_array(64));
  ASSERT_EQ(rows32.size(), rows64.size());
  for (std::size_t i = 0; i < rows32.size(); ++i) {
    if (rows32[i].variant == NetworkVariant::kFuseFull50 ||
        rows32[i].variant == NetworkVariant::kFuseHalf50) {
      continue;
    }
    EXPECT_EQ(rows32[i].macs, rows64[i].macs);
    EXPECT_EQ(rows32[i].params, rows64[i].params);
  }
}

TEST(LayerwiseBuilder, WorksForEveryNetworkAndMode) {
  const ArrayConfig cfg = systolic::square_array(64);
  for (NetworkId id : nets::paper_networks()) {
    for (core::FuseMode mode :
         {core::FuseMode::kFull, core::FuseMode::kHalf}) {
      const auto slots = layerwise_speedup(id, mode, cfg);
      EXPECT_EQ(static_cast<int>(slots.size()), nets::num_fuse_slots(id))
          << nets::network_name(id);
      for (const SlotSpeedup& s : slots) {
        EXPECT_GT(s.baseline_cycles, s.fused_cycles) << s.name;
      }
    }
  }
}

TEST(ScalingBuilder, MatchesPerSizeSpeedups) {
  const auto points = scaling_sweep(
      NetworkId::kMobileNetV3Small, NetworkVariant::kFuseFull, {16, 64});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].speedup,
              speedup_vs_baseline(NetworkId::kMobileNetV3Small,
                                  NetworkVariant::kFuseFull,
                                  systolic::square_array(16)),
              1e-9);
  EXPECT_EQ(points[1].array_size, 64);
}

}  // namespace
}  // namespace fuse::sched

namespace fuse::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SqueezeExcite, GatesAreBoundedAndApplied) {
  util::Rng rng(70);
  Tensor input(Shape{2, 4, 3, 3});
  input.fill_uniform(rng, -1.0F, 1.0F);
  Tensor reduce_w(Shape{2, 4});
  reduce_w.fill_uniform(rng, -1.0F, 1.0F);
  Tensor reduce_b(Shape{2});
  Tensor expand_w(Shape{4, 2});
  expand_w.fill_uniform(rng, -1.0F, 1.0F);
  Tensor expand_b(Shape{4});

  const Tensor out =
      squeeze_excite(input, reduce_w, reduce_b, expand_w, expand_b);
  EXPECT_EQ(out.shape(), input.shape());
  // Hard-sigmoid gates are in [0, 1]: |out| <= |in| elementwise.
  for (std::int64_t i = 0; i < input.num_elements(); ++i) {
    EXPECT_LE(std::abs(out[i]), std::abs(input[i]) + 1e-6F) << i;
  }
}

TEST(SqueezeExcite, SaturatedGateIsIdentity) {
  // Large positive expand bias -> hard-sigmoid saturates at 1 -> identity.
  Tensor input(Shape{1, 3, 2, 2});
  input.fill_iota();
  Tensor reduce_w(Shape{1, 3});
  Tensor reduce_b(Shape{1});
  Tensor expand_w(Shape{3, 1});
  Tensor expand_b(Shape{3});
  expand_b.fill(10.0F);
  const Tensor out =
      squeeze_excite(input, reduce_w, reduce_b, expand_w, expand_b);
  EXPECT_TRUE(tensor::allclose(out, input));
}

TEST(SqueezeExcite, PerSampleGating) {
  // Two samples with different magnitudes get different gates.
  util::Rng rng(71);
  Tensor input(Shape{2, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) {
    input[i] = 0.1F;         // sample 0: small
    input[8 + i] = 3.0F;     // sample 1: large
  }
  Tensor reduce_w(Shape{1, 2});
  reduce_w.fill(1.0F);
  Tensor reduce_b(Shape{1});
  Tensor expand_w(Shape{2, 1});
  expand_w.fill(1.0F);
  Tensor expand_b(Shape{2});
  const Tensor out =
      squeeze_excite(input, reduce_w, reduce_b, expand_w, expand_b);
  const float gate0 = out[0] / input[0];
  const float gate1 = out[8] / input[8];
  EXPECT_GT(gate1, gate0);
}

TEST(SqueezeExcite, ShapeMismatchThrows) {
  Tensor input(Shape{1, 3, 2, 2});
  Tensor reduce_w(Shape{1, 4});  // wrong C
  Tensor reduce_b(Shape{1});
  Tensor expand_w(Shape{3, 1});
  Tensor expand_b(Shape{3});
  EXPECT_THROW(
      squeeze_excite(input, reduce_w, reduce_b, expand_w, expand_b),
      util::Error);
}

}  // namespace
}  // namespace fuse::nn
