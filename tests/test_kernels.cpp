// Differential tests for the fast kernel backend (nn/kernels.hpp): the
// fast kernels must be BIT-EXACT with the reference operators across a
// grid of geometries (stride/pad/dilation/groups x every operator kind),
// bit-exact across thread counts, and produce an identical training
// trajectory. "Bit-exact" is tested literally — memcmp over the output
// buffers — which is the documented ULP bound (0) of docs/kernels.md.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "nn/quantized.hpp"
#include "tensor/quantize.hpp"
#include "train/loss.hpp"
#include "train/module.hpp"
#include "train/optimizer.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace fuse::nn {
namespace {

using tensor::QuantizedTensor;
using tensor::Shape;
using tensor::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0F,
                     float hi = 1.0F) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, lo, hi);
  return t;
}

/// Restores backend + thread-count state on scope exit so tests compose.
struct BackendGuard {
  KernelBackend saved_backend = kernel_backend();
  int saved_threads = kernel_threads();
  ~BackendGuard() {
    set_kernel_backend(saved_backend);
    set_kernel_threads(saved_threads);
  }
};

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.num_elements()) *
                         sizeof(float)) == 0;
}

/// One conv geometry of the differential grid.
struct ConvCase {
  const char* name;
  std::int64_t batch, in_c, out_c, h, w, kh, kw;
  Conv2dParams params;
};

std::vector<ConvCase> conv_grid() {
  std::vector<ConvCase> cases;
  // Dense convolutions across stride/pad/dilation.
  cases.push_back({"dense_3x3", 2, 3, 8, 9, 11, 3, 3, {1, 1, 1, 1, 1, 1, 1}});
  cases.push_back({"dense_3x3_s2", 1, 4, 6, 13, 9, 3, 3,
                   {2, 2, 1, 1, 1, 1, 1}});
  cases.push_back({"dense_5x5_dilated", 1, 3, 5, 17, 15, 5, 5,
                   {1, 1, 4, 4, 2, 2, 1}});
  cases.push_back({"dense_asym", 1, 2, 7, 10, 14, 1, 5,
                   {1, 2, 0, 2, 1, 1, 1}});
  cases.push_back({"pointwise", 2, 6, 10, 7, 7, 1, 1, {1, 1, 0, 0, 1, 1, 1}});
  cases.push_back({"nopad", 1, 3, 4, 8, 8, 3, 3, {1, 1, 0, 0, 1, 1, 1}});
  // Grouped (non-depthwise).
  cases.push_back({"grouped_2", 1, 8, 12, 9, 9, 3, 3,
                   {1, 1, 1, 1, 1, 1, 2}});
  cases.push_back({"grouped_4_s2", 2, 8, 8, 11, 11, 3, 3,
                   {2, 2, 1, 1, 1, 1, 4}});
  // Depthwise 3x3 / 5x5 (the shape-specialized kernels).
  cases.push_back({"depthwise_3x3", 2, 6, 6, 12, 12, 3, 3,
                   {1, 1, 1, 1, 1, 1, 6}});
  cases.push_back({"depthwise_3x3_s2", 1, 5, 5, 13, 11, 3, 3,
                   {2, 2, 1, 1, 1, 1, 5}});
  cases.push_back({"depthwise_5x5", 1, 4, 4, 15, 15, 5, 5,
                   {1, 1, 2, 2, 1, 1, 4}});
  cases.push_back({"depthwise_dilated", 1, 3, 3, 16, 16, 3, 3,
                   {1, 1, 2, 2, 2, 2, 3}});
  cases.push_back({"depthwise_1x1", 1, 4, 4, 6, 6, 1, 1,
                   {1, 1, 0, 0, 1, 1, 4}});
  // FuSe row (1xK) and col (Kx1) branches.
  cases.push_back({"fuse_row_3", 2, 5, 5, 10, 12, 1, 3,
                   {1, 1, 0, 1, 1, 1, 5}});
  cases.push_back({"fuse_row_5_s2", 1, 4, 4, 9, 17, 1, 5,
                   {2, 2, 0, 2, 1, 1, 4}});
  cases.push_back({"fuse_col_3", 2, 5, 5, 12, 10, 3, 1,
                   {1, 1, 1, 0, 1, 1, 5}});
  cases.push_back({"fuse_col_5_s2", 1, 4, 4, 17, 9, 5, 1,
                   {2, 2, 2, 0, 1, 1, 4}});
  cases.push_back({"fuse_row_pad_bigger_than_line", 1, 2, 2, 5, 3, 1, 3,
                   {1, 1, 0, 2, 1, 1, 2}});
  return cases;
}

TEST(KernelsDifferential, ConvGridBitExact) {
  BackendGuard guard;
  for (const ConvCase& c : conv_grid()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 11);
    const Tensor weight = random_tensor(
        Shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw}, 12);
    const Tensor bias = random_tensor(Shape{c.out_c}, 13);
    const Tensor ref = conv2d_reference(input, weight, &bias, c.params);
    const Tensor fast = kernels::conv2d_fast(input, weight, &bias, c.params);
    EXPECT_TRUE(bit_equal(ref, fast)) << c.name;
    // No-bias path too (the accumulator seed differs).
    EXPECT_TRUE(bit_equal(conv2d_reference(input, weight, nullptr, c.params),
                          kernels::conv2d_fast(input, weight, nullptr,
                                               c.params)))
        << c.name << " (no bias)";
    // And through the public dispatcher under each backend.
    set_kernel_backend(KernelBackend::kReference);
    const Tensor via_ref = conv2d(input, weight, &bias, c.params);
    set_kernel_backend(KernelBackend::kFast);
    const Tensor via_fast = conv2d(input, weight, &bias, c.params);
    EXPECT_TRUE(bit_equal(via_ref, via_fast)) << c.name << " (dispatch)";
  }
}

TEST(KernelsDifferential, MatmulBitExact) {
  for (const auto& [m, k, n] :
       std::vector<std::tuple<int, int, int>>{{1, 1, 1},
                                              {3, 5, 7},
                                              {8, 8, 8},
                                              {17, 33, 9},
                                              {64, 48, 96},
                                              {196, 576, 96}}) {
    const Tensor a = random_tensor(Shape{m, k}, 21);
    const Tensor b = random_tensor(Shape{k, n}, 22);
    EXPECT_TRUE(bit_equal(matmul_reference(a, b), kernels::matmul_fast(a, b)))
        << m << "x" << k << "x" << n;
  }
}

TEST(KernelsDifferential, MatmulWithZeroRowsBitExact) {
  // matmul_reference skips a_ik == 0 entries (im2col padding rows); the
  // fast kernel multiplies them. IEEE +-0 addition makes both identical.
  Tensor a = random_tensor(Shape{9, 12}, 23);
  for (std::int64_t i = 0; i < a.num_elements(); i += 3) {
    a[i] = 0.0F;
  }
  const Tensor b = random_tensor(Shape{12, 20}, 24);
  EXPECT_TRUE(bit_equal(matmul_reference(a, b), kernels::matmul_fast(a, b)));
}

TEST(KernelsDifferential, LinearBitExact) {
  for (const auto& [batch, in_f, out_f] :
       std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {1, 9, 5}, {3, 17, 31}, {8, 1280, 1000}}) {
    const Tensor input = random_tensor(Shape{batch, in_f}, 31);
    const Tensor weight = random_tensor(Shape{out_f, in_f}, 32);
    const Tensor bias = random_tensor(Shape{out_f}, 33);
    EXPECT_TRUE(bit_equal(linear_reference(input, weight, &bias),
                          kernels::linear_fast(input, weight, &bias)))
        << batch << "x" << in_f << "x" << out_f;
    EXPECT_TRUE(bit_equal(linear_reference(input, weight, nullptr),
                          kernels::linear_fast(input, weight, nullptr)))
        << batch << "x" << in_f << "x" << out_f << " (no bias)";
  }
}

TEST(KernelsDifferential, Int8OperatorsExact) {
  for (const ConvCase& c : conv_grid()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 41, -2.0F, 3.0F);
    const Tensor weight = random_tensor(
        Shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw}, 42);
    const QuantizedTensor q_in = tensor::quantize_calibrated(input);
    const QuantizedTensor q_w =
        tensor::quantize_calibrated(weight, /*symmetric=*/true);
    EXPECT_TRUE(bit_equal(conv2d_int8_reference(q_in, q_w, c.params),
                          kernels::conv2d_int8_fast(q_in, q_w, c.params)))
        << c.name;
  }
  const Tensor input = random_tensor(Shape{3, 40}, 43, -2.0F, 2.0F);
  const Tensor weight = random_tensor(Shape{50, 40}, 44);
  const QuantizedTensor q_in = tensor::quantize_calibrated(input);
  const QuantizedTensor q_w =
      tensor::quantize_calibrated(weight, /*symmetric=*/true);
  EXPECT_TRUE(bit_equal(linear_int8_reference(q_in, q_w),
                        kernels::linear_int8_fast(q_in, q_w)));
}

TEST(KernelsDifferential, BackwardBitExact) {
  for (const ConvCase& c : conv_grid()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 51);
    const Shape w_shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw};
    const Tensor weight = random_tensor(w_shape, 52);
    const Tensor probe = conv2d_reference(input, weight, nullptr, c.params);
    Tensor grad_out = random_tensor(probe.shape(), 53);
    // Exercise the go == 0 skip branches as well.
    for (std::int64_t i = 0; i < grad_out.num_elements(); i += 5) {
      grad_out[i] = 0.0F;
    }

    // Reference gradients (the loops in train/module.cpp, restated
    // through the reference backend of the module itself).
    BackendGuard guard;
    util::Rng rng(54);
    train::Conv2d ref_layer("k", c.in_c, c.out_c, c.kh, c.kw, c.params, rng);
    util::Rng rng2(54);
    train::Conv2d fast_layer("k", c.in_c, c.out_c, c.kh, c.kw, c.params,
                             rng2);
    set_kernel_backend(KernelBackend::kReference);
    (void)ref_layer.forward(input);
    const Tensor gi_ref = ref_layer.backward(grad_out);
    set_kernel_backend(KernelBackend::kFast);
    (void)fast_layer.forward(input);
    const Tensor gi_fast = fast_layer.backward(grad_out);
    EXPECT_TRUE(bit_equal(gi_ref, gi_fast)) << c.name << " grad_input";

    std::vector<train::Parameter*> ref_params;
    std::vector<train::Parameter*> fast_params;
    ref_layer.collect_params(ref_params);
    fast_layer.collect_params(fast_params);
    ASSERT_EQ(ref_params.size(), fast_params.size());
    for (std::size_t i = 0; i < ref_params.size(); ++i) {
      EXPECT_TRUE(bit_equal(ref_params[i]->grad, fast_params[i]->grad))
          << c.name << " " << ref_params[i]->name;
    }
  }
}

TEST(KernelsDeterminism, BitExactAcrossThreadCounts) {
  BackendGuard guard;
  const Tensor input = random_tensor(Shape{2, 16, 23, 19}, 61);
  const Tensor weight = random_tensor(Shape{24, 16, 3, 3}, 62);
  const Tensor bias = random_tensor(Shape{24}, 63);
  const Conv2dParams params{2, 2, 1, 1, 1, 1, 1};
  const Tensor a = random_tensor(Shape{150, 70}, 64);
  const Tensor b = random_tensor(Shape{70, 90}, 65);
  const Tensor lin_in = random_tensor(Shape{5, 200}, 66);
  const Tensor lin_w = random_tensor(Shape{130, 200}, 67);
  const Tensor dw_w = random_tensor(Shape{16, 1, 3, 3}, 68);
  const Conv2dParams dw_params{1, 1, 1, 1, 1, 1, 16};

  set_kernel_threads(1);
  const Tensor conv1 = kernels::conv2d_fast(input, weight, &bias, params);
  const Tensor mm1 = kernels::matmul_fast(a, b);
  const Tensor lin1 = kernels::linear_fast(lin_in, lin_w, nullptr);
  const Tensor dw1 = kernels::conv2d_fast(input, dw_w, nullptr, dw_params);
  for (int threads : {2, 3, 5}) {
    set_kernel_threads(threads);
    EXPECT_TRUE(bit_equal(
        conv1, kernels::conv2d_fast(input, weight, &bias, params)))
        << threads << " threads (conv)";
    EXPECT_TRUE(bit_equal(mm1, kernels::matmul_fast(a, b)))
        << threads << " threads (matmul)";
    EXPECT_TRUE(bit_equal(lin1, kernels::linear_fast(lin_in, lin_w, nullptr)))
        << threads << " threads (linear)";
    EXPECT_TRUE(bit_equal(
        dw1, kernels::conv2d_fast(input, dw_w, nullptr, dw_params)))
        << threads << " threads (depthwise)";
  }
}

/// Runs a few SGD steps of a small conv net and returns the loss
/// trajectory and final parameter tensors.
std::pair<std::vector<double>, std::vector<Tensor>> train_steps(
    KernelBackend backend) {
  BackendGuard guard;
  set_kernel_backend(backend);
  util::Rng rng(71);
  train::Sequential model;
  model.add(std::make_unique<train::Conv2d>(
      "c1", 2, 4, 3, 3, Conv2dParams{1, 1, 1, 1, 1, 1, 1}, rng));
  model.add(std::make_unique<train::ActivationLayer>(Activation::kRelu));
  model.add(std::make_unique<train::Flatten>());
  model.add(std::make_unique<train::Linear>("fc", 4 * 6 * 6, 3, rng));

  std::vector<train::Parameter*> params;
  model.collect_params(params);
  train::Sgd sgd(params, /*lr=*/0.05, /*momentum=*/0.9);

  const Tensor inputs = random_tensor(Shape{4, 2, 6, 6}, 72);
  std::vector<std::int64_t> labels = {0, 2, 1, 0};
  std::vector<double> losses;
  for (int step = 0; step < 5; ++step) {
    for (train::Parameter* p : params) {
      p->zero_grad();
    }
    const Tensor logits = model.forward(inputs);
    const train::LossResult loss = train::softmax_cross_entropy(
        logits, labels);
    losses.push_back(loss.loss);
    model.backward(loss.grad_logits);
    sgd.step();
  }
  std::vector<Tensor> final_params;
  final_params.reserve(params.size());
  for (train::Parameter* p : params) {
    final_params.push_back(p->value);
  }
  return {losses, final_params};
}

TEST(KernelsTrainParity, LossTrajectoryIdentical) {
  const auto [ref_losses, ref_params] =
      train_steps(KernelBackend::kReference);
  const auto [fast_losses, fast_params] = train_steps(KernelBackend::kFast);
  ASSERT_EQ(ref_losses.size(), fast_losses.size());
  for (std::size_t i = 0; i < ref_losses.size(); ++i) {
    EXPECT_EQ(ref_losses[i], fast_losses[i]) << "step " << i;
  }
  ASSERT_EQ(ref_params.size(), fast_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_TRUE(bit_equal(ref_params[i], fast_params[i])) << "param " << i;
  }
}

TEST(KernelsBackend, ParseAndName) {
  KernelBackend backend = KernelBackend::kReference;
  EXPECT_TRUE(parse_kernel_backend("fast", &backend));
  EXPECT_EQ(backend, KernelBackend::kFast);
  EXPECT_TRUE(parse_kernel_backend("reference", &backend));
  EXPECT_EQ(backend, KernelBackend::kReference);
  EXPECT_TRUE(parse_kernel_backend("ref", &backend));
  EXPECT_EQ(backend, KernelBackend::kReference);
  EXPECT_FALSE(parse_kernel_backend("warp-speed", &backend));
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kFast), "fast");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kReference), "reference");
}

TEST(KernelsTelemetry, DispatchCountersAdvance) {
  BackendGuard guard;
  const Tensor a = random_tensor(Shape{4, 4}, 81);
  const Tensor b = random_tensor(Shape{4, 4}, 82);
  util::Counter& fast_count =
      util::metrics().counter("kernels.dispatch.fast");
  util::Counter& ref_count =
      util::metrics().counter("kernels.dispatch.reference");
  const std::uint64_t fast_before = fast_count.value();
  const std::uint64_t ref_before = ref_count.value();
  set_kernel_backend(KernelBackend::kFast);
  (void)matmul(a, b);
  set_kernel_backend(KernelBackend::kReference);
  (void)matmul(a, b);
#if FUSE_TELEMETRY
  EXPECT_EQ(fast_count.value(), fast_before + 1);
  EXPECT_EQ(ref_count.value(), ref_before + 1);
#else
  (void)fast_before;
  (void)ref_before;
#endif
}

TEST(KernelsHelpers, FlattenFiltersMatchesIm2colOrder) {
  const Tensor weight = random_tensor(Shape{3, 2, 2, 2}, 91);
  const Tensor flat = kernels::flatten_filters(weight);
  ASSERT_EQ(flat.shape(), (Shape{8, 3}));
  for (std::int64_t oc = 0; oc < 3; ++oc) {
    std::int64_t t = 0;
    for (std::int64_t ic = 0; ic < 2; ++ic) {
      for (std::int64_t ky = 0; ky < 2; ++ky) {
        for (std::int64_t kx = 0; kx < 2; ++kx) {
          EXPECT_EQ(flat.at(t, oc), weight.at(oc, ic, ky, kx));
          ++t;
        }
      }
    }
  }
  const Tensor mat = random_tensor(Shape{3, 5}, 92);
  const Tensor t = kernels::transpose_2d(mat);
  ASSERT_EQ(t.shape(), (Shape{5, 3}));
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(t.at(c, r), mat.at(r, c));
    }
  }
}

}  // namespace
}  // namespace fuse::nn
