// Differential tests for the fast kernel backend (nn/kernels.hpp).
//
// The contract is ISA-dependent (docs/kernels.md):
//   * scalar ISA — BIT-EXACT with the reference operators across a grid
//     of geometries (memcmp over the output buffers), bit-exact across
//     thread counts, identical training trajectory.
//   * avx2 ISA — float outputs ULP-BOUNDED against the reference (the
//     derived tolerance in util/ulp.hpp), int8 outputs and backward
//     passes still bit-exact, and bit-exact across thread counts at the
//     fixed ISA.
// The forced-ISA grid below runs every operator under each ISA the
// machine supports; on hardware without AVX2 the avx2 leg is skipped
// with a logged note (never a failure), so the suite passes everywhere.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "nn/quantized.hpp"
#include "tensor/quantize.hpp"
#include "train/loss.hpp"
#include "train/module.hpp"
#include "train/optimizer.hpp"
#include "util/check.hpp"
#include "util/cpu_features.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "util/ulp.hpp"

namespace fuse::nn {
namespace {

using tensor::QuantizedTensor;
using tensor::Shape;
using tensor::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0F,
                     float hi = 1.0F) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, lo, hi);
  return t;
}

/// Restores backend + ISA + thread-count state on scope exit so tests
/// compose.
struct BackendGuard {
  KernelBackend saved_backend = kernel_backend();
  KernelIsa saved_isa = kernel_isa();
  int saved_threads = kernel_threads();
  ~BackendGuard() {
    set_kernel_backend(saved_backend);
    set_kernel_isa(saved_isa);
    set_kernel_threads(saved_threads);
  }
};

/// The ISAs this machine can execute. When AVX2 is unavailable the grid
/// degrades to scalar-only with a note — a skip, not a failure.
std::vector<KernelIsa> available_isas() {
  std::vector<KernelIsa> isas{KernelIsa::kScalar};
  if (kernel_isa_available(KernelIsa::kAvx2)) {
    isas.push_back(KernelIsa::kAvx2);
  } else {
    static bool logged = false;
    if (!logged) {
      logged = true;
      std::printf(
          "note: avx2 kernels unavailable on this machine (cpu: %s); "
          "forced-ISA coverage runs scalar only\n",
          util::cpu_features().to_string().c_str());
    }
  }
  return isas;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.num_elements()) *
                         sizeof(float)) == 0;
}

/// ISA-aware comparison: scalar must be bit-exact; avx2 must land within
/// the documented tolerance for a length-k reduction of magnitude-bounded
/// operands. Reports the worst element on failure.
void expect_isa_close(const Tensor& ref, const Tensor& got, KernelIsa isa,
                      std::int64_t k, double magnitude,
                      const std::string& label) {
  ASSERT_EQ(ref.shape(), got.shape()) << label;
  if (isa == KernelIsa::kScalar) {
    EXPECT_TRUE(bit_equal(ref, got)) << label << " (scalar is bit-exact)";
    return;
  }
  const util::UlpTolerance tol = util::kernel_float_tolerance(k, magnitude);
  for (std::int64_t i = 0; i < ref.num_elements(); ++i) {
    if (!util::ulp_within(ref[i], got[i], tol)) {
      ADD_FAILURE() << label << " element " << i << ": ref=" << ref[i]
                    << " got=" << got[i]
                    << " ulp=" << util::ulp_distance(ref[i], got[i])
                    << " (max_ulps=" << tol.max_ulps
                    << ", abs_tol=" << tol.abs_tol << ", k=" << k << ")";
      return;
    }
  }
}

/// One conv geometry of the differential grid.
struct ConvCase {
  const char* name;
  std::int64_t batch, in_c, out_c, h, w, kh, kw;
  Conv2dParams params;
};

/// Reduction length of one output element (taps + the bias add).
std::int64_t conv_k(const ConvCase& c) {
  return (c.in_c / c.params.groups) * c.kh * c.kw + 1;
}

std::vector<ConvCase> conv_grid() {
  std::vector<ConvCase> cases;
  // Dense convolutions across stride/pad/dilation.
  cases.push_back({"dense_3x3", 2, 3, 8, 9, 11, 3, 3, {1, 1, 1, 1, 1, 1, 1}});
  cases.push_back({"dense_3x3_s2", 1, 4, 6, 13, 9, 3, 3,
                   {2, 2, 1, 1, 1, 1, 1}});
  cases.push_back({"dense_5x5_dilated", 1, 3, 5, 17, 15, 5, 5,
                   {1, 1, 4, 4, 2, 2, 1}});
  cases.push_back({"dense_asym", 1, 2, 7, 10, 14, 1, 5,
                   {1, 2, 0, 2, 1, 1, 1}});
  cases.push_back({"pointwise", 2, 6, 10, 7, 7, 1, 1, {1, 1, 0, 0, 1, 1, 1}});
  cases.push_back({"nopad", 1, 3, 4, 8, 8, 3, 3, {1, 1, 0, 0, 1, 1, 1}});
  // Grouped (non-depthwise).
  cases.push_back({"grouped_2", 1, 8, 12, 9, 9, 3, 3,
                   {1, 1, 1, 1, 1, 1, 2}});
  cases.push_back({"grouped_4_s2", 2, 8, 8, 11, 11, 3, 3,
                   {2, 2, 1, 1, 1, 1, 4}});
  // Depthwise 3x3 / 5x5 (the shape-specialized kernels).
  cases.push_back({"depthwise_3x3", 2, 6, 6, 12, 12, 3, 3,
                   {1, 1, 1, 1, 1, 1, 6}});
  cases.push_back({"depthwise_3x3_s2", 1, 5, 5, 13, 11, 3, 3,
                   {2, 2, 1, 1, 1, 1, 5}});
  cases.push_back({"depthwise_5x5", 1, 4, 4, 15, 15, 5, 5,
                   {1, 1, 2, 2, 1, 1, 4}});
  cases.push_back({"depthwise_dilated", 1, 3, 3, 16, 16, 3, 3,
                   {1, 1, 2, 2, 2, 2, 3}});
  cases.push_back({"depthwise_1x1", 1, 4, 4, 6, 6, 1, 1,
                   {1, 1, 0, 0, 1, 1, 4}});
  // FuSe row (1xK) and col (Kx1) branches.
  cases.push_back({"fuse_row_3", 2, 5, 5, 10, 12, 1, 3,
                   {1, 1, 0, 1, 1, 1, 5}});
  cases.push_back({"fuse_row_5_s2", 1, 4, 4, 9, 17, 1, 5,
                   {2, 2, 0, 2, 1, 1, 4}});
  cases.push_back({"fuse_col_3", 2, 5, 5, 12, 10, 3, 1,
                   {1, 1, 1, 0, 1, 1, 5}});
  cases.push_back({"fuse_col_5_s2", 1, 4, 4, 17, 9, 5, 1,
                   {2, 2, 2, 0, 1, 1, 4}});
  cases.push_back({"fuse_row_pad_bigger_than_line", 1, 2, 2, 5, 3, 1, 3,
                   {1, 1, 0, 2, 1, 1, 2}});
  return cases;
}

/// Tail / edge shapes: channel counts and widths that are NOT multiples
/// of the 8-lane vector width (1, 3, 7, 9, 17), kernel-sized inputs
/// (single-position outputs), and stride-2 odd geometries — the shapes
/// where a lane-count bug in the vector kernels would hide.
std::vector<ConvCase> tail_grid() {
  std::vector<ConvCase> cases;
  // Output widths straddling the vector width (interior narrower than,
  // equal to, and just past one vector).
  cases.push_back({"tail_dw_w1", 1, 3, 3, 5, 1, 3, 3, {1, 1, 1, 1, 1, 1, 3}});
  cases.push_back({"tail_dw_w3", 1, 7, 7, 6, 3, 3, 3, {1, 1, 1, 1, 1, 1, 7}});
  cases.push_back({"tail_dw_w7", 1, 9, 9, 7, 7, 3, 3, {1, 1, 1, 1, 1, 1, 9}});
  cases.push_back({"tail_dw_w9", 1, 17, 17, 5, 9, 3, 3,
                   {1, 1, 1, 1, 1, 1, 17}});
  cases.push_back({"tail_dw_w17", 2, 1, 1, 4, 17, 3, 3,
                   {1, 1, 1, 1, 1, 1, 1}});
  cases.push_back({"tail_fuse_row_w9", 1, 3, 3, 4, 9, 1, 5,
                   {1, 1, 0, 2, 1, 1, 3}});
  cases.push_back({"tail_fuse_row_w17", 1, 7, 7, 3, 17, 1, 3,
                   {1, 1, 0, 1, 1, 1, 7}});
  cases.push_back({"tail_fuse_col_w7", 1, 3, 3, 9, 7, 5, 1,
                   {1, 1, 2, 0, 1, 1, 3}});
  cases.push_back({"tail_fuse_col_w9", 1, 9, 9, 7, 9, 3, 1,
                   {1, 1, 1, 0, 1, 1, 9}});
  // Kernel-sized inputs: the whole output is one position (pure edge).
  cases.push_back({"tail_kernel_sized_dense", 1, 2, 3, 3, 3, 3, 3,
                   {1, 1, 0, 0, 1, 1, 1}});
  cases.push_back({"tail_kernel_sized_dw", 1, 4, 4, 5, 5, 5, 5,
                   {1, 1, 0, 0, 1, 1, 4}});
  // Stride-2 over odd extents (interior bounds land mid-vector; the
  // channelwise kernels fall back to scalar here — that fallback is
  // exactly what this exercises).
  cases.push_back({"tail_s2_odd_dense", 1, 3, 5, 7, 9, 3, 3,
                   {2, 2, 1, 1, 1, 1, 1}});
  cases.push_back({"tail_s2_odd_dw", 1, 7, 7, 9, 7, 3, 3,
                   {2, 2, 1, 1, 1, 1, 7}});
  // Output-channel tails for the GEMM path (panels of width < 8, == 8+1).
  cases.push_back({"tail_out_c1", 1, 3, 1, 6, 10, 3, 3,
                   {1, 1, 1, 1, 1, 1, 1}});
  cases.push_back({"tail_out_c7", 1, 3, 7, 6, 10, 3, 3,
                   {1, 1, 1, 1, 1, 1, 1}});
  cases.push_back({"tail_out_c9", 1, 4, 9, 6, 11, 3, 3,
                   {1, 1, 1, 1, 1, 1, 1}});
  cases.push_back({"tail_out_c17", 1, 4, 17, 5, 11, 3, 3,
                   {1, 1, 1, 1, 1, 1, 1}});
  return cases;
}

std::vector<ConvCase> all_conv_cases() {
  std::vector<ConvCase> cases = conv_grid();
  const std::vector<ConvCase> tails = tail_grid();
  cases.insert(cases.end(), tails.begin(), tails.end());
  return cases;
}

// ---------------------------------------------------------------------------
// Scalar-ISA bit-exactness (the original fast-vs-reference contract)
// ---------------------------------------------------------------------------

TEST(KernelsDifferential, ConvGridBitExact) {
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  for (const ConvCase& c : all_conv_cases()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 11);
    const Tensor weight = random_tensor(
        Shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw}, 12);
    const Tensor bias = random_tensor(Shape{c.out_c}, 13);
    const Tensor ref = conv2d_reference(input, weight, &bias, c.params);
    const Tensor fast = kernels::conv2d_fast(input, weight, &bias, c.params);
    EXPECT_TRUE(bit_equal(ref, fast)) << c.name;
    // No-bias path too (the accumulator seed differs).
    EXPECT_TRUE(bit_equal(conv2d_reference(input, weight, nullptr, c.params),
                          kernels::conv2d_fast(input, weight, nullptr,
                                               c.params)))
        << c.name << " (no bias)";
    // And through the public dispatcher under each backend.
    set_kernel_backend(KernelBackend::kReference);
    const Tensor via_ref = conv2d(input, weight, &bias, c.params);
    set_kernel_backend(KernelBackend::kFast);
    const Tensor via_fast = conv2d(input, weight, &bias, c.params);
    EXPECT_TRUE(bit_equal(via_ref, via_fast)) << c.name << " (dispatch)";
  }
}

TEST(KernelsDifferential, MatmulBitExact) {
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  for (const auto& [m, k, n] :
       std::vector<std::tuple<int, int, int>>{{1, 1, 1},
                                              {3, 5, 7},
                                              {8, 8, 8},
                                              {17, 33, 9},
                                              {64, 48, 96},
                                              {196, 576, 96}}) {
    const Tensor a = random_tensor(Shape{m, k}, 21);
    const Tensor b = random_tensor(Shape{k, n}, 22);
    EXPECT_TRUE(bit_equal(matmul_reference(a, b), kernels::matmul_fast(a, b)))
        << m << "x" << k << "x" << n;
  }
}

TEST(KernelsDifferential, MatmulWithZeroRowsBitExact) {
  // matmul_reference skips a_ik == 0 entries (im2col padding rows); the
  // fast kernel multiplies them. IEEE +-0 addition makes both identical.
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  Tensor a = random_tensor(Shape{9, 12}, 23);
  for (std::int64_t i = 0; i < a.num_elements(); i += 3) {
    a[i] = 0.0F;
  }
  const Tensor b = random_tensor(Shape{12, 20}, 24);
  EXPECT_TRUE(bit_equal(matmul_reference(a, b), kernels::matmul_fast(a, b)));
}

TEST(KernelsDifferential, LinearBitExact) {
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  for (const auto& [batch, in_f, out_f] :
       std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {1, 9, 5}, {3, 17, 31}, {8, 1280, 1000}}) {
    const Tensor input = random_tensor(Shape{batch, in_f}, 31);
    const Tensor weight = random_tensor(Shape{out_f, in_f}, 32);
    const Tensor bias = random_tensor(Shape{out_f}, 33);
    EXPECT_TRUE(bit_equal(linear_reference(input, weight, &bias),
                          kernels::linear_fast(input, weight, &bias)))
        << batch << "x" << in_f << "x" << out_f;
    EXPECT_TRUE(bit_equal(linear_reference(input, weight, nullptr),
                          kernels::linear_fast(input, weight, nullptr)))
        << batch << "x" << in_f << "x" << out_f << " (no bias)";
  }
}

// ---------------------------------------------------------------------------
// Forced-ISA differential grid (every op x every available ISA)
// ---------------------------------------------------------------------------

TEST(KernelsForcedIsa, ConvGridDifferential) {
  BackendGuard guard;
  for (const ConvCase& c : all_conv_cases()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 111);
    const Tensor weight = random_tensor(
        Shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw}, 112);
    const Tensor bias = random_tensor(Shape{c.out_c}, 113);
    // The reference oracle is ISA-independent; compute it once per case.
    const Tensor ref = conv2d_reference(input, weight, &bias, c.params);
    const Tensor ref_nb = conv2d_reference(input, weight, nullptr, c.params);
    const std::int64_t k = conv_k(c);
    // Operands are uniform in [-1, 1], so the absolute-product sum is at
    // most taps + |bias| <= k.
    const double magnitude = static_cast<double>(k);
    for (KernelIsa isa : available_isas()) {
      set_kernel_isa(isa);
      const std::string label =
          std::string(c.name) + " [" + kernel_isa_name(isa) + "]";
      expect_isa_close(ref,
                       kernels::conv2d_fast(input, weight, &bias, c.params),
                       isa, k, magnitude, label);
      expect_isa_close(
          ref_nb, kernels::conv2d_fast(input, weight, nullptr, c.params),
          isa, k, magnitude, label + " (no bias)");
    }
  }
}

TEST(KernelsForcedIsa, MatmulDifferential) {
  BackendGuard guard;
  for (const auto& [m, k, n] :
       std::vector<std::tuple<int, int, int>>{{1, 1, 1},
                                              {1, 7, 9},
                                              {3, 17, 7},
                                              {5, 3, 1},
                                              {9, 9, 17},
                                              {17, 33, 9},
                                              {64, 48, 96}}) {
    const Tensor a = random_tensor(Shape{m, k}, 121);
    const Tensor b = random_tensor(Shape{k, n}, 122);
    const Tensor ref = matmul_reference(a, b);
    for (KernelIsa isa : available_isas()) {
      set_kernel_isa(isa);
      expect_isa_close(ref, kernels::matmul_fast(a, b), isa, k,
                       static_cast<double>(k),
                       std::string("matmul ") + std::to_string(m) + "x" +
                           std::to_string(k) + "x" + std::to_string(n) +
                           " [" + kernel_isa_name(isa) + "]");
    }
  }
}

TEST(KernelsForcedIsa, LinearDifferential) {
  BackendGuard guard;
  for (const auto& [batch, in_f, out_f] :
       std::vector<std::tuple<int, int, int>>{{1, 1, 1},
                                              {2, 7, 9},
                                              {3, 17, 33},
                                              {9, 40, 17},
                                              {8, 256, 100}}) {
    const Tensor input = random_tensor(Shape{batch, in_f}, 131);
    const Tensor weight = random_tensor(Shape{out_f, in_f}, 132);
    const Tensor bias = random_tensor(Shape{out_f}, 133);
    const Tensor ref = linear_reference(input, weight, &bias);
    const Tensor ref_nb = linear_reference(input, weight, nullptr);
    const std::int64_t k = in_f + 1;
    for (KernelIsa isa : available_isas()) {
      set_kernel_isa(isa);
      const std::string label = std::string("linear ") +
                                std::to_string(batch) + "x" +
                                std::to_string(in_f) + "x" +
                                std::to_string(out_f) + " [" +
                                kernel_isa_name(isa) + "]";
      expect_isa_close(ref, kernels::linear_fast(input, weight, &bias), isa,
                       k, static_cast<double>(k), label);
      expect_isa_close(ref_nb, kernels::linear_fast(input, weight, nullptr),
                       isa, k, static_cast<double>(k), label + " (no bias)");
    }
  }
}

TEST(KernelsForcedIsa, Int8OperatorsBitExactUnderEveryIsa) {
  // int32 accumulation is order-insensitive: the int8 kernels must stay
  // bit-identical to the reference under EVERY ISA, vectorized or not.
  BackendGuard guard;
  for (const ConvCase& c : all_conv_cases()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 41, -2.0F, 3.0F);
    const Tensor weight = random_tensor(
        Shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw}, 42);
    const QuantizedTensor q_in = tensor::quantize_calibrated(input);
    const QuantizedTensor q_w =
        tensor::quantize_calibrated(weight, /*symmetric=*/true);
    const Tensor ref = conv2d_int8_reference(q_in, q_w, c.params);
    for (KernelIsa isa : available_isas()) {
      set_kernel_isa(isa);
      EXPECT_TRUE(bit_equal(ref, kernels::conv2d_int8_fast(q_in, q_w,
                                                           c.params)))
          << c.name << " [" << kernel_isa_name(isa) << "]";
    }
  }
  // Linear int8, including in_f tails around the 16-byte vector step.
  for (const auto& [batch, in_f, out_f] :
       std::vector<std::tuple<int, int, int>>{
           {1, 1, 1}, {2, 7, 9}, {2, 15, 5}, {2, 16, 5}, {2, 17, 5},
           {3, 40, 50}}) {
    const Tensor input =
        random_tensor(Shape{batch, in_f}, 43, -2.0F, 2.0F);
    const Tensor weight = random_tensor(Shape{out_f, in_f}, 44);
    const QuantizedTensor q_in = tensor::quantize_calibrated(input);
    const QuantizedTensor q_w =
        tensor::quantize_calibrated(weight, /*symmetric=*/true);
    const Tensor ref = linear_int8_reference(q_in, q_w);
    for (KernelIsa isa : available_isas()) {
      set_kernel_isa(isa);
      EXPECT_TRUE(bit_equal(ref, kernels::linear_int8_fast(q_in, q_w)))
          << batch << "x" << in_f << "x" << out_f << " ["
          << kernel_isa_name(isa) << "]";
    }
  }
}

TEST(KernelsForcedIsa, BackwardIsaIndependent) {
  // The backward passes are scalar-only by design: forcing the ISA must
  // not change a single gradient bit.
  BackendGuard guard;
  const ConvCase c{"backward_probe", 2, 4, 6, 9, 11, 3, 3,
                   {1, 1, 1, 1, 1, 1, 1}};
  const Tensor input = random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 141);
  const Tensor grad_seed = random_tensor(Shape{c.out_c}, 142);
  std::vector<Tensor> grads_per_isa;
  for (KernelIsa isa : available_isas()) {
    set_kernel_isa(isa);
    util::Rng rng(143);
    train::Conv2d layer("k", c.in_c, c.out_c, c.kh, c.kw, c.params, rng);
    const Tensor out = layer.forward(input);
    Tensor grad_out(out.shape());
    for (std::int64_t i = 0; i < grad_out.num_elements(); ++i) {
      grad_out[i] = grad_seed[i % grad_seed.num_elements()];
    }
    Tensor gi = layer.backward(grad_out);
    std::vector<train::Parameter*> params;
    layer.collect_params(params);
    grads_per_isa.push_back(std::move(gi));
    for (train::Parameter* p : params) {
      grads_per_isa.push_back(p->grad);
    }
  }
  const std::size_t per_isa = grads_per_isa.size() / available_isas().size();
  for (std::size_t i = per_isa; i < grads_per_isa.size(); ++i) {
    EXPECT_TRUE(bit_equal(grads_per_isa[i % per_isa], grads_per_isa[i]))
        << "gradient " << i % per_isa << " differs across ISAs";
  }
}

TEST(KernelsForcedIsa, ThreadDeterminismPerIsa) {
  // At a FIXED ISA, results are bit-exact across thread counts — the
  // task decomposition never changes an element's accumulation order.
  BackendGuard guard;
  const Tensor input = random_tensor(Shape{2, 16, 23, 19}, 151);
  const Tensor weight = random_tensor(Shape{24, 16, 3, 3}, 152);
  const Tensor bias = random_tensor(Shape{24}, 153);
  const Conv2dParams params{1, 1, 1, 1, 1, 1, 1};
  const Tensor a = random_tensor(Shape{150, 70}, 154);
  const Tensor b = random_tensor(Shape{70, 90}, 155);
  const Tensor lin_in = random_tensor(Shape{5, 200}, 156);
  const Tensor lin_w = random_tensor(Shape{130, 200}, 157);
  const Tensor dw_w = random_tensor(Shape{16, 1, 3, 3}, 158);
  const Conv2dParams dw_params{1, 1, 1, 1, 1, 1, 16};
  const Tensor row_w = random_tensor(Shape{16, 1, 1, 5}, 159);
  const Conv2dParams row_params{1, 1, 0, 2, 1, 1, 16};
  const Tensor col_w = random_tensor(Shape{16, 1, 5, 1}, 160);
  const Conv2dParams col_params{1, 1, 2, 0, 1, 1, 16};

  for (KernelIsa isa : available_isas()) {
    set_kernel_isa(isa);
    set_kernel_threads(1);
    const Tensor conv1 = kernels::conv2d_fast(input, weight, &bias, params);
    const Tensor mm1 = kernels::matmul_fast(a, b);
    const Tensor lin1 = kernels::linear_fast(lin_in, lin_w, nullptr);
    const Tensor dw1 = kernels::conv2d_fast(input, dw_w, nullptr, dw_params);
    const Tensor row1 =
        kernels::conv2d_fast(input, row_w, nullptr, row_params);
    const Tensor col1 =
        kernels::conv2d_fast(input, col_w, nullptr, col_params);
    for (int threads : {2, 4}) {
      set_kernel_threads(threads);
      const std::string label = std::string(kernel_isa_name(isa)) + ", " +
                                std::to_string(threads) + " threads";
      EXPECT_TRUE(bit_equal(
          conv1, kernels::conv2d_fast(input, weight, &bias, params)))
          << label << " (conv)";
      EXPECT_TRUE(bit_equal(mm1, kernels::matmul_fast(a, b)))
          << label << " (matmul)";
      EXPECT_TRUE(
          bit_equal(lin1, kernels::linear_fast(lin_in, lin_w, nullptr)))
          << label << " (linear)";
      EXPECT_TRUE(bit_equal(
          dw1, kernels::conv2d_fast(input, dw_w, nullptr, dw_params)))
          << label << " (depthwise)";
      EXPECT_TRUE(bit_equal(
          row1, kernels::conv2d_fast(input, row_w, nullptr, row_params)))
          << label << " (fuse_row)";
      EXPECT_TRUE(bit_equal(
          col1, kernels::conv2d_fast(input, col_w, nullptr, col_params)))
          << label << " (fuse_col)";
    }
  }
}

// ---------------------------------------------------------------------------
// Original int8 / backward / determinism / training-parity suites
// (pinned to the scalar ISA, where the bit-exact contract holds)
// ---------------------------------------------------------------------------

TEST(KernelsDifferential, BackwardBitExact) {
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  for (const ConvCase& c : conv_grid()) {
    const Tensor input =
        random_tensor(Shape{c.batch, c.in_c, c.h, c.w}, 51);
    const Shape w_shape{c.out_c, c.in_c / c.params.groups, c.kh, c.kw};
    const Tensor weight = random_tensor(w_shape, 52);
    const Tensor probe = conv2d_reference(input, weight, nullptr, c.params);
    Tensor grad_out = random_tensor(probe.shape(), 53);
    // Exercise the go == 0 skip branches as well.
    for (std::int64_t i = 0; i < grad_out.num_elements(); i += 5) {
      grad_out[i] = 0.0F;
    }

    // Reference gradients (the loops in train/module.cpp, restated
    // through the reference backend of the module itself).
    util::Rng rng(54);
    train::Conv2d ref_layer("k", c.in_c, c.out_c, c.kh, c.kw, c.params, rng);
    util::Rng rng2(54);
    train::Conv2d fast_layer("k", c.in_c, c.out_c, c.kh, c.kw, c.params,
                             rng2);
    set_kernel_backend(KernelBackend::kReference);
    (void)ref_layer.forward(input);
    const Tensor gi_ref = ref_layer.backward(grad_out);
    set_kernel_backend(KernelBackend::kFast);
    (void)fast_layer.forward(input);
    const Tensor gi_fast = fast_layer.backward(grad_out);
    EXPECT_TRUE(bit_equal(gi_ref, gi_fast)) << c.name << " grad_input";

    std::vector<train::Parameter*> ref_params;
    std::vector<train::Parameter*> fast_params;
    ref_layer.collect_params(ref_params);
    fast_layer.collect_params(fast_params);
    ASSERT_EQ(ref_params.size(), fast_params.size());
    for (std::size_t i = 0; i < ref_params.size(); ++i) {
      EXPECT_TRUE(bit_equal(ref_params[i]->grad, fast_params[i]->grad))
          << c.name << " " << ref_params[i]->name;
    }
  }
}

TEST(KernelsDeterminism, BitExactAcrossThreadCounts) {
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  const Tensor input = random_tensor(Shape{2, 16, 23, 19}, 61);
  const Tensor weight = random_tensor(Shape{24, 16, 3, 3}, 62);
  const Tensor bias = random_tensor(Shape{24}, 63);
  const Conv2dParams params{2, 2, 1, 1, 1, 1, 1};
  const Tensor a = random_tensor(Shape{150, 70}, 64);
  const Tensor b = random_tensor(Shape{70, 90}, 65);
  const Tensor lin_in = random_tensor(Shape{5, 200}, 66);
  const Tensor lin_w = random_tensor(Shape{130, 200}, 67);
  const Tensor dw_w = random_tensor(Shape{16, 1, 3, 3}, 68);
  const Conv2dParams dw_params{1, 1, 1, 1, 1, 1, 16};

  set_kernel_threads(1);
  const Tensor conv1 = kernels::conv2d_fast(input, weight, &bias, params);
  const Tensor mm1 = kernels::matmul_fast(a, b);
  const Tensor lin1 = kernels::linear_fast(lin_in, lin_w, nullptr);
  const Tensor dw1 = kernels::conv2d_fast(input, dw_w, nullptr, dw_params);
  for (int threads : {2, 3, 5}) {
    set_kernel_threads(threads);
    EXPECT_TRUE(bit_equal(
        conv1, kernels::conv2d_fast(input, weight, &bias, params)))
        << threads << " threads (conv)";
    EXPECT_TRUE(bit_equal(mm1, kernels::matmul_fast(a, b)))
        << threads << " threads (matmul)";
    EXPECT_TRUE(bit_equal(lin1, kernels::linear_fast(lin_in, lin_w, nullptr)))
        << threads << " threads (linear)";
    EXPECT_TRUE(bit_equal(
        dw1, kernels::conv2d_fast(input, dw_w, nullptr, dw_params)))
        << threads << " threads (depthwise)";
  }
}

/// Runs a few SGD steps of a small conv net and returns the loss
/// trajectory and final parameter tensors.
std::pair<std::vector<double>, std::vector<Tensor>> train_steps(
    KernelBackend backend) {
  BackendGuard guard;
  set_kernel_backend(backend);
  set_kernel_isa(KernelIsa::kScalar);
  util::Rng rng(71);
  train::Sequential model;
  model.add(std::make_unique<train::Conv2d>(
      "c1", 2, 4, 3, 3, Conv2dParams{1, 1, 1, 1, 1, 1, 1}, rng));
  model.add(std::make_unique<train::ActivationLayer>(Activation::kRelu));
  model.add(std::make_unique<train::Flatten>());
  model.add(std::make_unique<train::Linear>("fc", 4 * 6 * 6, 3, rng));

  std::vector<train::Parameter*> params;
  model.collect_params(params);
  train::Sgd sgd(params, /*lr=*/0.05, /*momentum=*/0.9);

  const Tensor inputs = random_tensor(Shape{4, 2, 6, 6}, 72);
  std::vector<std::int64_t> labels = {0, 2, 1, 0};
  std::vector<double> losses;
  for (int step = 0; step < 5; ++step) {
    for (train::Parameter* p : params) {
      p->zero_grad();
    }
    const Tensor logits = model.forward(inputs);
    const train::LossResult loss = train::softmax_cross_entropy(
        logits, labels);
    losses.push_back(loss.loss);
    model.backward(loss.grad_logits);
    sgd.step();
  }
  std::vector<Tensor> final_params;
  final_params.reserve(params.size());
  for (train::Parameter* p : params) {
    final_params.push_back(p->value);
  }
  return {losses, final_params};
}

TEST(KernelsTrainParity, LossTrajectoryIdentical) {
  const auto [ref_losses, ref_params] =
      train_steps(KernelBackend::kReference);
  const auto [fast_losses, fast_params] = train_steps(KernelBackend::kFast);
  ASSERT_EQ(ref_losses.size(), fast_losses.size());
  for (std::size_t i = 0; i < ref_losses.size(); ++i) {
    EXPECT_EQ(ref_losses[i], fast_losses[i]) << "step " << i;
  }
  ASSERT_EQ(ref_params.size(), fast_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_TRUE(bit_equal(ref_params[i], fast_params[i])) << "param " << i;
  }
}

// ---------------------------------------------------------------------------
// Selection plumbing (backend + ISA parse / name / availability)
// ---------------------------------------------------------------------------

TEST(KernelsBackend, ParseAndName) {
  KernelBackend backend = KernelBackend::kReference;
  EXPECT_TRUE(parse_kernel_backend("fast", &backend));
  EXPECT_EQ(backend, KernelBackend::kFast);
  EXPECT_TRUE(parse_kernel_backend("reference", &backend));
  EXPECT_EQ(backend, KernelBackend::kReference);
  EXPECT_TRUE(parse_kernel_backend("ref", &backend));
  EXPECT_EQ(backend, KernelBackend::kReference);
  EXPECT_FALSE(parse_kernel_backend("warp-speed", &backend));
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kFast), "fast");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kReference), "reference");
}

TEST(KernelsIsa, ParseAndName) {
  KernelIsa isa = KernelIsa::kAvx2;
  EXPECT_TRUE(parse_kernel_isa("scalar", &isa));
  EXPECT_EQ(isa, KernelIsa::kScalar);
  EXPECT_TRUE(parse_kernel_isa("avx2", &isa));
  EXPECT_EQ(isa, KernelIsa::kAvx2);
  EXPECT_FALSE(parse_kernel_isa("avx512", &isa));
  EXPECT_FALSE(parse_kernel_isa("", &isa));
  EXPECT_STREQ(kernel_isa_name(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(kernel_isa_name(KernelIsa::kAvx2), "avx2");
}

TEST(KernelsIsa, AutoResolvesToBestAvailable) {
  KernelIsa isa = KernelIsa::kScalar;
  ASSERT_TRUE(parse_kernel_isa("auto", &isa));
  EXPECT_TRUE(kernel_isa_available(isa));
  if (kernel_isa_available(KernelIsa::kAvx2)) {
    EXPECT_EQ(isa, KernelIsa::kAvx2);
  } else {
    EXPECT_EQ(isa, KernelIsa::kScalar);
  }
}

TEST(KernelsIsa, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kernel_isa_available(KernelIsa::kScalar));
  BackendGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  EXPECT_EQ(kernel_isa(), KernelIsa::kScalar);
}

TEST(KernelsIsa, SettingUnavailableIsaThrows) {
  if (kernel_isa_available(KernelIsa::kAvx2)) {
    // On AVX2 machines the explicit set must succeed instead.
    BackendGuard guard;
    set_kernel_isa(KernelIsa::kAvx2);
    EXPECT_EQ(kernel_isa(), KernelIsa::kAvx2);
    return;
  }
  EXPECT_THROW(set_kernel_isa(KernelIsa::kAvx2), util::Error);
}

TEST(KernelsTelemetry, DispatchCountersAdvance) {
  BackendGuard guard;
  const Tensor a = random_tensor(Shape{4, 4}, 81);
  const Tensor b = random_tensor(Shape{4, 4}, 82);
  util::Counter& fast_count =
      util::metrics().counter("kernels.dispatch.fast");
  util::Counter& ref_count =
      util::metrics().counter("kernels.dispatch.reference");
  const std::uint64_t fast_before = fast_count.value();
  const std::uint64_t ref_before = ref_count.value();
  set_kernel_backend(KernelBackend::kFast);
  (void)matmul(a, b);
  set_kernel_backend(KernelBackend::kReference);
  (void)matmul(a, b);
#if FUSE_TELEMETRY
  EXPECT_EQ(fast_count.value(), fast_before + 1);
  EXPECT_EQ(ref_count.value(), ref_before + 1);
#else
  (void)fast_before;
  (void)ref_before;
#endif
}

TEST(KernelsHelpers, FlattenFiltersMatchesIm2colOrder) {
  const Tensor weight = random_tensor(Shape{3, 2, 2, 2}, 91);
  const Tensor flat = kernels::flatten_filters(weight);
  ASSERT_EQ(flat.shape(), (Shape{8, 3}));
  for (std::int64_t oc = 0; oc < 3; ++oc) {
    std::int64_t t = 0;
    for (std::int64_t ic = 0; ic < 2; ++ic) {
      for (std::int64_t ky = 0; ky < 2; ++ky) {
        for (std::int64_t kx = 0; kx < 2; ++kx) {
          EXPECT_EQ(flat.at(t, oc), weight.at(oc, ic, ky, kx));
          ++t;
        }
      }
    }
  }
  const Tensor mat = random_tensor(Shape{3, 5}, 92);
  const Tensor t = kernels::transpose_2d(mat);
  ASSERT_EQ(t.shape(), (Shape{5, 3}));
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(t.at(c, r), mat.at(r, c));
    }
  }
}

}  // namespace
}  // namespace fuse::nn
