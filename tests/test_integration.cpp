// Cross-module integration tests: the cycle-level simulator executing real
// layers must agree numerically with the fuse::nn reference AND temporally
// with the scheduler's analytic latency (non-overlapped mode). This closes
// the loop between the paper's three layers of claim: operator semantics,
// mapping, and cycle counts.
#include <gtest/gtest.h>

#include "core/fuseconv.hpp"
#include "nn/ops.hpp"
#include "sched/latency.hpp"
#include "systolic/sim.hpp"
#include "tensor/half.hpp"
#include "tensor/im2col.hpp"
#include "train/module.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fuse {
namespace {

using systolic::ArrayConfig;
using systolic::SimResult;
using systolic::SystolicArraySim;
using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

ArrayConfig array_no_overlap(std::int64_t size) {
  ArrayConfig cfg = systolic::square_array(size);
  cfg.overlap_fold_drain = false;
  return cfg;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

// --- standard conv through the array -----------------------------------------

TEST(Integration, StandardConvOnArrayMatchesReferenceAndLatency) {
  // conv: 3 channels 8x8, 4 filters 3x3, 'same'.
  const Tensor input = random_tensor(Shape{1, 3, 8, 8}, 1);
  const Tensor weight = random_tensor(Shape{4, 3, 3, 3}, 2);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);

  // Lower to im2col matmul and run it on the simulated array.
  Tensor image(Shape{3, 8, 8});
  for (std::int64_t i = 0; i < image.num_elements(); ++i) {
    image[i] = input[i];
  }
  const Tensor patches = tensor::im2col(image, 3, 3, 1, 1, 1, 1);
  Tensor filters(Shape{27, 4});
  for (std::int64_t oc = 0; oc < 4; ++oc) {
    std::int64_t t = 0;
    for (std::int64_t ic = 0; ic < 3; ++ic) {
      for (std::int64_t ky = 0; ky < 3; ++ky) {
        for (std::int64_t kx = 0; kx < 3; ++kx) {
          filters.at(t++, oc) = weight.at(oc, ic, ky, kx);
        }
      }
    }
  }
  const ArrayConfig cfg = array_no_overlap(16);
  SystolicArraySim sim(cfg);
  const SimResult result = sim.matmul(patches, filters);

  // Numeric agreement.
  for (std::int64_t oc = 0; oc < 4; ++oc) {
    for (std::int64_t pos = 0; pos < 64; ++pos) {
      EXPECT_NEAR(result.output.at(pos, oc),
                  expected.at(0, oc, pos / 8, pos % 8), 1e-4F);
    }
  }
  // Temporal agreement with the scheduler's mapping for this layer.
  const nn::LayerDesc layer = nn::make_conv("c", 3, 8, 8, 4, 3, 1, 1);
  EXPECT_EQ(result.cycles, sched::layer_latency(layer, cfg).cycles);
}

// --- depthwise conv through the array ----------------------------------------

TEST(Integration, DepthwiseOnArrayMatchesReferenceAndLatency) {
  const std::int64_t channels = 5;
  const Tensor input = random_tensor(Shape{1, channels, 6, 6}, 3);
  const Tensor weight = random_tensor(Shape{channels, 1, 3, 3}, 4);
  nn::Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = channels;
  const Tensor expected = nn::conv2d(input, weight, nullptr, p);

  const ArrayConfig cfg = array_no_overlap(8);
  SystolicArraySim sim(cfg);
  std::uint64_t total_cycles = 0;
  // Per channel: single-column matmul (the §III-B mapping).
  for (std::int64_t c = 0; c < channels; ++c) {
    Tensor plane(Shape{6, 6});
    for (std::int64_t i = 0; i < 36; ++i) {
      plane[i] = input[c * 36 + i];
    }
    const Tensor patches = tensor::im2col_plane(plane, 3, 3, 1, 1, 1, 1);
    Tensor filter(Shape{9, 1});
    for (std::int64_t ky = 0; ky < 3; ++ky) {
      for (std::int64_t kx = 0; kx < 3; ++kx) {
        filter.at(ky * 3 + kx, 0) = weight.at(c, 0, ky, kx);
      }
    }
    const SimResult result = sim.matmul(patches, filter);
    total_cycles += result.cycles;
    for (std::int64_t pos = 0; pos < 36; ++pos) {
      EXPECT_NEAR(result.output.at(pos, 0),
                  expected.at(0, c, pos / 6, pos % 6), 1e-4F);
    }
  }
  const nn::LayerDesc layer =
      nn::make_depthwise("dw", channels, 6, 6, 3, 1, 1);
  EXPECT_EQ(total_cycles, sched::layer_latency(layer, cfg).cycles);
}

// --- FuSeConv row branch through the broadcast array --------------------------

TEST(Integration, FuseRowBranchOnArrayMatchesReferenceAndLatency) {
  // Half variant on 4 channels: row branch convolves channels 0-1.
  core::FuseConvSpec spec;
  spec.channels = 4;
  spec.in_h = 6;
  spec.in_w = 6;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kHalf;
  util::Rng rng(5);
  const core::FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, 4, 6, 6}, 6);
  const Tensor expected = stage.forward(input);  // [1, 4, 6, 6]

  // Build the line/kernel tensors of the paper's Fig. 6 mapping: one line
  // per (branch channel, row), horizontally padded for 'same' output.
  const std::int64_t branch_c = 2;
  const std::int64_t lines = branch_c * 6;
  const std::int64_t padded_w = 6 + 2;
  Tensor line_data(Shape{lines, padded_w});
  Tensor kernels(Shape{lines, 3});
  for (std::int64_t c = 0; c < branch_c; ++c) {
    for (std::int64_t y = 0; y < 6; ++y) {
      const std::int64_t l = c * 6 + y;
      for (std::int64_t x = 0; x < 6; ++x) {
        line_data.at(l, x + 1) = input.at(0, c, y, x);
      }
      for (std::int64_t k = 0; k < 3; ++k) {
        kernels.at(l, k) = stage.row_weights().at(c, 0, 0, k);
      }
    }
  }

  const ArrayConfig cfg = array_no_overlap(8);
  SystolicArraySim sim(cfg);
  const SimResult result = sim.conv1d_broadcast(line_data, kernels);

  // Numeric: row-branch output channels are the first branch_c channels of
  // the stage output.
  for (std::int64_t c = 0; c < branch_c; ++c) {
    for (std::int64_t y = 0; y < 6; ++y) {
      for (std::int64_t x = 0; x < 6; ++x) {
        EXPECT_NEAR(result.output.at(c * 6 + y, x),
                    expected.at(0, c, y, x), 1e-4F)
            << c << "," << y << "," << x;
      }
    }
  }

  // Temporal: the scheduler's fuse-row mapping for this geometry.
  const auto lowered =
      core::lower_fuse_stage("f", spec, nn::Activation::kNone);
  EXPECT_EQ(result.cycles,
            sched::layer_latency(lowered[0], cfg).cycles);
}

// --- FuSe vs depthwise on equal work: the headline win -----------------------

TEST(Integration, MeasuredCyclesFavorFuseOverDepthwise) {
  // One depthwise layer (32ch, 16x16, K=3) vs its Half-variant FuSe stage,
  // both *measured* on the simulated array (not the analytic model).
  const ArrayConfig cfg = array_no_overlap(16);
  SystolicArraySim sim(cfg);

  // Depthwise measured cost.
  std::uint64_t dw_cycles = 0;
  const Tensor plane = random_tensor(Shape{16, 16}, 7);
  const Tensor patches = tensor::im2col_plane(plane, 3, 3, 1, 1, 1, 1);
  const Tensor filter = random_tensor(Shape{9, 1}, 8);
  for (int c = 0; c < 32; ++c) {
    dw_cycles += sim.matmul(patches, filter).cycles;
  }

  // FuSe stage measured cost: row branch (16 ch x 16 rows) + col branch.
  const Tensor row_lines = random_tensor(Shape{16 * 16, 18}, 9);
  const Tensor row_kernels = random_tensor(Shape{16 * 16, 3}, 10);
  const std::uint64_t fuse_cycles =
      2 * sim.conv1d_broadcast(row_lines, row_kernels).cycles;

  EXPECT_GT(dw_cycles, 4 * fuse_cycles);
}

// --- train-module vs nn-op forward equivalence --------------------------------

TEST(Integration, TrainConvMatchesReferenceOp) {
  util::Rng rng(11);
  nn::Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 2;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = 2;
  train::Conv2d conv("c", 4, 4, 3, 3, p, rng);
  const Tensor input = random_tensor(Shape{2, 4, 8, 8}, 12);
  const Tensor expected =
      nn::conv2d(input, conv.weight().value, &conv.bias().value, p);
  EXPECT_TRUE(allclose(conv.forward(input), expected, 1e-5F, 1e-6F));
}

// --- fp16 inference path -------------------------------------------------------

TEST(Integration, Fp16QuantizedForwardStaysClose) {
  // The paper runs FP16 inference; quantizing weights+activations through
  // binary16 must not move a FuSeConv output materially.
  core::FuseConvSpec spec;
  spec.channels = 4;
  spec.in_h = 8;
  spec.in_w = 8;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.variant = core::FuseVariant::kFull;
  util::Rng rng(13);
  core::FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, 4, 8, 8}, 14);
  const Tensor fp32 = stage.forward(input);

  core::FuseConvStage quantized(spec);
  quantized.row_weights() = tensor::quantize_half(stage.row_weights());
  quantized.col_weights() = tensor::quantize_half(stage.col_weights());
  const Tensor fp16_out =
      quantized.forward(tensor::quantize_half(input));

  EXPECT_LT(tensor::max_abs_diff(fp32, fp16_out), 5e-3F);
}

}  // namespace
}  // namespace fuse
