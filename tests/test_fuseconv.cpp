// Tests for the FuSeConv operator (core module).
#include <gtest/gtest.h>

#include "core/fuseconv.hpp"
#include "nn/ops.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::core {
namespace {

using nn::Conv2dParams;
using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

FuseConvSpec make_spec(std::int64_t channels, std::int64_t hw,
                       std::int64_t kernel, std::int64_t stride,
                       FuseVariant variant) {
  FuseConvSpec spec;
  spec.channels = channels;
  spec.in_h = hw;
  spec.in_w = hw;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.pad = kernel / 2;
  spec.variant = variant;
  return spec;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

// --- spec -------------------------------------------------------------------

TEST(FuseConvSpec, FullVariantDoublesChannels) {
  const FuseConvSpec spec = make_spec(32, 28, 3, 1, FuseVariant::kFull);
  EXPECT_EQ(spec.branch_channels(), 32);
  EXPECT_EQ(spec.out_channels(), 64);
}

TEST(FuseConvSpec, HalfVariantPreservesChannels) {
  const FuseConvSpec spec = make_spec(32, 28, 3, 1, FuseVariant::kHalf);
  EXPECT_EQ(spec.branch_channels(), 16);
  EXPECT_EQ(spec.out_channels(), 32);
}

TEST(FuseConvSpec, OutputSpatialSizeMatchesReplacedDepthwise) {
  for (std::int64_t stride : {1, 2}) {
    for (std::int64_t k : {3, 5}) {
      const FuseConvSpec spec = make_spec(8, 28, k, stride,
                                          FuseVariant::kHalf);
      EXPECT_EQ(spec.out_h(),
                tensor::conv_out_dim(28, k, stride, k / 2));
      EXPECT_EQ(spec.out_w(), spec.out_h());
    }
  }
}

TEST(FuseConvSpec, PaperParamFormula) {
  // (2/D)*C*K for the 1-D stage.
  EXPECT_EQ(make_spec(32, 28, 3, 1, FuseVariant::kFull).stage_params(),
            2ULL * 32 * 3);
  EXPECT_EQ(make_spec(32, 28, 3, 1, FuseVariant::kHalf).stage_params(),
            32ULL * 3);
}

TEST(FuseConvSpec, PaperMacFormula) {
  // (2/D)*N*M*C*K for the 1-D stage.
  const FuseConvSpec full = make_spec(32, 28, 3, 1, FuseVariant::kFull);
  EXPECT_EQ(full.stage_macs(), 2ULL * 28 * 28 * 32 * 3);
  const FuseConvSpec half = make_spec(32, 28, 3, 1, FuseVariant::kHalf);
  EXPECT_EQ(half.stage_macs(), 28ULL * 28 * 32 * 3);
}

TEST(FuseConvSpec, OddChannelsWithHalfVariantThrow) {
  EXPECT_THROW(make_spec(33, 28, 3, 1, FuseVariant::kHalf).validate(),
               util::Error);
}

TEST(FuseConvSpec, NonSamePaddingThrows) {
  FuseConvSpec spec = make_spec(8, 28, 3, 1, FuseVariant::kHalf);
  spec.pad = 0;
  EXPECT_THROW(spec.validate(), util::Error);
}

// --- forward ----------------------------------------------------------------

TEST(FuseConvForward, OutputShapeFull) {
  const FuseConvSpec spec = make_spec(4, 8, 3, 1, FuseVariant::kFull);
  util::Rng rng(1);
  const FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{2, 4, 8, 8}, 2);
  const Tensor out = stage.forward(input);
  EXPECT_EQ(out.shape(), (Shape{2, 8, 8, 8}));
}

TEST(FuseConvForward, OutputShapeHalfStride2) {
  const FuseConvSpec spec = make_spec(4, 8, 3, 2, FuseVariant::kHalf);
  util::Rng rng(1);
  const FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, 4, 8, 8}, 2);
  const Tensor out = stage.forward(input);
  EXPECT_EQ(out.shape(), (Shape{1, 4, 4, 4}));
}

TEST(FuseConvForward, RowBranchMatchesDirectGroupedConv) {
  const FuseConvSpec spec = make_spec(4, 6, 3, 1, FuseVariant::kFull);
  util::Rng rng(3);
  const FuseConvStage stage(spec, rng);
  const Tensor input = random_tensor(Shape{1, 4, 6, 6}, 4);
  const Tensor out = stage.forward(input);

  Conv2dParams p;
  p.pad_w = 1;
  p.groups = 4;
  const Tensor row_expected =
      nn::conv2d(input, stage.row_weights(), nullptr, p);
  // First C output channels are the row branch.
  for (std::int64_t c = 0; c < 4; ++c) {
    for (std::int64_t i = 0; i < 36; ++i) {
      EXPECT_FLOAT_EQ(out[(c * 36) + i], row_expected[(c * 36) + i]);
    }
  }
}

TEST(FuseConvForward, HalfVariantSplitsChannels) {
  // With identity-like kernels, the row branch must see channels [0, C/2)
  // and the column branch channels [C/2, C).
  const FuseConvSpec spec = make_spec(4, 5, 3, 1, FuseVariant::kHalf);
  FuseConvStage stage(spec);
  // Row kernel picks the center tap -> identity; same for column kernel.
  for (std::int64_t c = 0; c < 2; ++c) {
    stage.row_weights().at(c, 0, 0, 1) = 1.0F;
    stage.col_weights().at(c, 0, 1, 0) = 1.0F;
  }
  Tensor input(Shape{1, 4, 5, 5});
  input.fill_iota();
  const Tensor out = stage.forward(input);
  EXPECT_EQ(out.shape(), (Shape{1, 4, 5, 5}));
  // Row branch outputs == input channels 0,1; col branch == channels 2,3.
  for (std::int64_t c = 0; c < 4; ++c) {
    for (std::int64_t i = 0; i < 25; ++i) {
      EXPECT_FLOAT_EQ(out[c * 25 + i], input[c * 25 + i]);
    }
  }
}

TEST(FuseConvForward, SeparableKernelRecoversDepthwiseByComposition) {
  // A rank-1 KxK kernel w = col * row^T factorizes exactly: running the
  // row filter then the column filter on the result reproduces the KxK
  // depthwise convolution. This is the representational argument for why
  // FuSeConv can substitute for depthwise filtering.
  util::Rng rng(7);
  const std::int64_t channels = 3, hw = 9, k = 3;
  const Tensor input = random_tensor(Shape{1, channels, hw, hw}, 8);
  const Tensor row_w = random_tensor(Shape{channels, 1, 1, k}, 9);
  const Tensor col_w = random_tensor(Shape{channels, 1, k, 1}, 10);

  // Depthwise with the rank-1 kernel, 'same' padding.
  Tensor dw_w(Shape{channels, 1, k, k});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < k; ++y) {
      for (std::int64_t x = 0; x < k; ++x) {
        dw_w.at(c, 0, y, x) = col_w.at(c, 0, y, 0) * row_w.at(c, 0, 0, x);
      }
    }
  }
  Conv2dParams dw_p;
  dw_p.pad_h = 1;
  dw_p.pad_w = 1;
  dw_p.groups = channels;
  const Tensor dw_out = nn::conv2d(input, dw_w, nullptr, dw_p);

  // Row then column 1-D convolutions composed.
  Conv2dParams row_p;
  row_p.pad_w = 1;
  row_p.groups = channels;
  Conv2dParams col_p;
  col_p.pad_h = 1;
  col_p.groups = channels;
  const Tensor composed = nn::conv2d(
      nn::conv2d(input, row_w, nullptr, row_p), col_w, nullptr, col_p);

  EXPECT_TRUE(allclose(composed, dw_out, 1e-4F, 1e-5F))
      << "max diff " << tensor::max_abs_diff(composed, dw_out);
}

TEST(FuseConvForward, WrongChannelCountThrows) {
  const FuseConvSpec spec = make_spec(4, 8, 3, 1, FuseVariant::kFull);
  const FuseConvStage stage(spec);
  EXPECT_THROW(stage.forward(Tensor(Shape{1, 3, 8, 8})), util::Error);
}

TEST(FuseConvForward, WrongSpatialSizeThrows) {
  const FuseConvSpec spec = make_spec(4, 8, 3, 1, FuseVariant::kFull);
  const FuseConvStage stage(spec);
  EXPECT_THROW(stage.forward(Tensor(Shape{1, 4, 7, 8})), util::Error);
}

// --- slice_channels ---------------------------------------------------------

TEST(SliceChannels, ExtractsContiguousRange) {
  Tensor input(Shape{2, 4, 2, 2});
  input.fill_iota();
  const Tensor slice = slice_channels(input, 1, 2);
  EXPECT_EQ(slice.shape(), (Shape{2, 2, 2, 2}));
  EXPECT_EQ(slice.at(0, 0, 0, 0), input.at(0, 1, 0, 0));
  EXPECT_EQ(slice.at(1, 1, 1, 1), input.at(1, 2, 1, 1));
}

TEST(SliceChannels, OutOfRangeThrows) {
  const Tensor input(Shape{1, 4, 2, 2});
  EXPECT_THROW(slice_channels(input, 3, 2), util::Error);
}

// --- lowering ---------------------------------------------------------------

TEST(LowerFuseStage, ProducesRowAndColLayers) {
  const FuseConvSpec spec = make_spec(32, 28, 3, 1, FuseVariant::kHalf);
  const auto layers = lower_fuse_stage("blk", spec, nn::Activation::kRelu6,
                                       /*fuse_slot=*/5);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].kind, nn::OpKind::kFuseRowConv);
  EXPECT_EQ(layers[1].kind, nn::OpKind::kFuseColConv);
  EXPECT_EQ(layers[0].out_c, 16);
  EXPECT_EQ(layers[1].out_c, 16);
  EXPECT_EQ(layers[0].fuse_slot, 5);
  EXPECT_EQ(layers[1].fuse_slot, 5);
}

TEST(LowerFuseStage, MacsMatchSpecFormula) {
  for (FuseVariant variant : {FuseVariant::kFull, FuseVariant::kHalf}) {
    const FuseConvSpec spec = make_spec(32, 28, 5, 2, variant);
    const auto layers =
        lower_fuse_stage("blk", spec, nn::Activation::kNone);
    EXPECT_EQ(layers[0].macs() + layers[1].macs(), spec.stage_macs());
  }
}

TEST(LowerFuseStage, ParamsMatchSpecFormula) {
  const FuseConvSpec spec = make_spec(32, 28, 3, 1, FuseVariant::kFull);
  const auto layers = lower_fuse_stage("blk", spec, nn::Activation::kNone);
  // Strip batchnorm params (2 per channel per layer) for the raw formula.
  const std::uint64_t weights = layers[0].params() - 2 * 32 +
                                layers[1].params() - 2 * 32;
  EXPECT_EQ(weights, spec.stage_params());
}

// --- variants ---------------------------------------------------------------

TEST(FuseVariantEnum, DivisorAndNames) {
  EXPECT_EQ(fuse_divisor(FuseVariant::kFull), 1);
  EXPECT_EQ(fuse_divisor(FuseVariant::kHalf), 2);
  EXPECT_EQ(fuse_variant_name(FuseVariant::kFull), "Full");
  EXPECT_EQ(fuse_variant_name(FuseVariant::kHalf), "Half");
}

}  // namespace
}  // namespace fuse::core
