// Unit tests for the functional reference operators.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fuse::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0F,
                     float hi = 1.0F) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_uniform(rng, lo, hi);
  return t;
}

// --- matmul -----------------------------------------------------------------

TEST(Matmul, HandComputed2x2) {
  const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0F);
  EXPECT_EQ(c.at(0, 1), 22.0F);
  EXPECT_EQ(c.at(1, 0), 43.0F);
  EXPECT_EQ(c.at(1, 1), 50.0F);
}

TEST(Matmul, IdentityIsNoop) {
  const Tensor a = random_tensor(Shape{3, 3}, 1);
  Tensor eye(Shape{3, 3});
  for (int i = 0; i < 3; ++i) {
    eye.at(i, i) = 1.0F;
  }
  EXPECT_TRUE(allclose(matmul(a, eye), a));
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor(Shape{2, 3}), Tensor(Shape{4, 2})),
               util::Error);
}

TEST(Matmul, NonSquareShapes) {
  const Tensor a = random_tensor(Shape{2, 5}, 2);
  const Tensor b = random_tensor(Shape{5, 7}, 3);
  EXPECT_EQ(matmul(a, b).shape(), (Shape{2, 7}));
}

// --- conv2d -----------------------------------------------------------------

TEST(Conv2d, OneByOneKernelScalesInput) {
  Tensor input(Shape{1, 1, 2, 2});
  input.fill_iota();
  const Tensor weight(Shape{1, 1, 1, 1}, {3.0F});
  const Tensor out = conv2d(input, weight, nullptr, {});
  EXPECT_EQ(out.shape(), input.shape());
  EXPECT_EQ(out.at(0, 0, 1, 1), 9.0F);
}

TEST(Conv2d, DeltaKernelIsIdentityOnInterior) {
  // 3x3 kernel with 1 at center, 'same' padding: output == input.
  Tensor input = random_tensor(Shape{1, 2, 5, 5}, 4);
  Tensor weight(Shape{2, 1, 3, 3});
  weight.at(0, 0, 1, 1) = 1.0F;
  weight.at(1, 0, 1, 1) = 1.0F;
  Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = 2;
  const Tensor out = conv2d(input, weight, nullptr, p);
  EXPECT_TRUE(allclose(out, input));
}

TEST(Conv2d, HandComputedValidConv) {
  // input 1x1x3x3 = iota, kernel = all ones 2x2, valid: sums of 2x2 windows.
  Tensor input(Shape{1, 1, 3, 3});
  input.fill_iota();
  Tensor weight(Shape{1, 1, 2, 2});
  weight.fill(1.0F);
  const Tensor out = conv2d(input, weight, nullptr, {});
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 0.0F + 1 + 3 + 4);
  EXPECT_EQ(out.at(0, 0, 1, 1), 4.0F + 5 + 7 + 8);
}

TEST(Conv2d, BiasAddsPerChannel) {
  Tensor input(Shape{1, 1, 2, 2});
  Tensor weight(Shape{2, 1, 1, 1});
  const Tensor bias(Shape{2}, {1.5F, -2.0F});
  const Tensor out = conv2d(input, weight, &bias, {});
  EXPECT_EQ(out.at(0, 0, 0, 0), 1.5F);
  EXPECT_EQ(out.at(0, 1, 0, 0), -2.0F);
}

TEST(Conv2d, StrideDownsamples) {
  Tensor input(Shape{1, 1, 4, 4});
  input.fill_iota();
  Tensor weight(Shape{1, 1, 1, 1}, {1.0F});
  Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 2;
  const Tensor out = conv2d(input, weight, nullptr, p);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(out.at(0, 0, 0, 1), 2.0F);
  EXPECT_EQ(out.at(0, 0, 1, 0), 8.0F);
}

TEST(Conv2d, DilationSpreadsTaps) {
  Tensor input(Shape{1, 1, 5, 5});
  input.fill_iota();
  Tensor weight(Shape{1, 1, 2, 2});
  weight.fill(1.0F);
  Conv2dParams p;
  p.dilation_h = 2;
  p.dilation_w = 2;
  const Tensor out = conv2d(input, weight, nullptr, p);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 3, 3}));
  // Taps at (0,0),(0,2),(2,0),(2,2): 0 + 2 + 10 + 12.
  EXPECT_EQ(out.at(0, 0, 0, 0), 24.0F);
}

TEST(Conv2d, DepthwiseIsChannelIndependent) {
  // Change one input channel; only that output channel changes.
  Tensor input = random_tensor(Shape{1, 3, 4, 4}, 5);
  const Tensor weight = random_tensor(Shape{3, 1, 3, 3}, 6);
  Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  p.groups = 3;
  const Tensor out1 = conv2d(input, weight, nullptr, p);
  for (std::int64_t i = 0; i < 16; ++i) {
    input[1 * 16 + i] += 1.0F;  // bump channel 1
  }
  const Tensor out2 = conv2d(input, weight, nullptr, p);
  for (std::int64_t c = 0; c < 3; ++c) {
    float diff = 0.0F;
    for (std::int64_t i = 0; i < 16; ++i) {
      diff += std::fabs(out1[c * 16 + i] - out2[c * 16 + i]);
    }
    if (c == 1) {
      EXPECT_GT(diff, 0.1F);
    } else {
      EXPECT_EQ(diff, 0.0F);
    }
  }
}

TEST(Conv2d, GroupedMatchesTwoHalfConvs) {
  const Tensor input = random_tensor(Shape{1, 4, 5, 5}, 7);
  const Tensor weight = random_tensor(Shape{6, 2, 3, 3}, 8);
  Conv2dParams grouped;
  grouped.pad_h = 1;
  grouped.pad_w = 1;
  grouped.groups = 2;
  const Tensor out = conv2d(input, weight, nullptr, grouped);

  // Manually: first 3 filters on channels 0-1, last 3 on channels 2-3.
  Tensor in_lo(Shape{1, 2, 5, 5});
  Tensor in_hi(Shape{1, 2, 5, 5});
  for (std::int64_t i = 0; i < 50; ++i) {
    in_lo[i] = input[i];
    in_hi[i] = input[50 + i];
  }
  Tensor w_lo(Shape{3, 2, 3, 3});
  Tensor w_hi(Shape{3, 2, 3, 3});
  for (std::int64_t i = 0; i < 54; ++i) {
    w_lo[i] = weight[i];
    w_hi[i] = weight[54 + i];
  }
  Conv2dParams dense;
  dense.pad_h = 1;
  dense.pad_w = 1;
  const Tensor lo = conv2d(in_lo, w_lo, nullptr, dense);
  const Tensor hi = conv2d(in_hi, w_hi, nullptr, dense);
  const Tensor expected = concat_channels(lo, hi);
  EXPECT_TRUE(allclose(out, expected, 1e-4F, 1e-5F));
}

TEST(Conv2d, BatchProcessedIndependently) {
  const Tensor weight = random_tensor(Shape{2, 3, 3, 3}, 9);
  Conv2dParams p;
  p.pad_h = 1;
  p.pad_w = 1;
  const Tensor in_a = random_tensor(Shape{1, 3, 4, 4}, 10);
  const Tensor in_b = random_tensor(Shape{1, 3, 4, 4}, 11);
  Tensor batched(Shape{2, 3, 4, 4});
  for (std::int64_t i = 0; i < 48; ++i) {
    batched[i] = in_a[i];
    batched[48 + i] = in_b[i];
  }
  const Tensor out = conv2d(batched, weight, nullptr, p);
  const Tensor out_a = conv2d(in_a, weight, nullptr, p);
  for (std::int64_t i = 0; i < out_a.num_elements(); ++i) {
    EXPECT_FLOAT_EQ(out[i], out_a[i]);
  }
}

TEST(Conv2d, ShapeValidation) {
  EXPECT_THROW(conv2d(Tensor(Shape{1, 3, 4}), Tensor(Shape{1, 3, 1, 1}),
                      nullptr, {}),
               util::Error);
  // groups not dividing channels
  Conv2dParams p;
  p.groups = 2;
  EXPECT_THROW(conv2d(Tensor(Shape{1, 3, 4, 4}), Tensor(Shape{2, 1, 1, 1}),
                      nullptr, p),
               util::Error);
  // wrong weight in-channels
  EXPECT_THROW(conv2d(Tensor(Shape{1, 3, 4, 4}), Tensor(Shape{2, 2, 1, 1}),
                      nullptr, {}),
               util::Error);
}

// --- conv2d_im2col ----------------------------------------------------------

struct ConvCase {
  std::int64_t in_c, in_hw, out_c, k, stride, pad;
};

class Im2colEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2colEquivalence, MatchesDirectConv) {
  const ConvCase c = GetParam();
  const Tensor input =
      random_tensor(Shape{1, c.in_c, c.in_hw, c.in_hw}, 21);
  const Tensor weight =
      random_tensor(Shape{c.out_c, c.in_c, c.k, c.k}, 22);
  const Tensor bias = random_tensor(Shape{c.out_c}, 23);
  Conv2dParams p;
  p.stride_h = c.stride;
  p.stride_w = c.stride;
  p.pad_h = c.pad;
  p.pad_w = c.pad;
  const Tensor direct = conv2d(input, weight, &bias, p);
  const Tensor lowered = conv2d_im2col(input, weight, &bias, p);
  EXPECT_TRUE(allclose(lowered, direct, 1e-4F, 1e-5F))
      << "max diff " << tensor::max_abs_diff(lowered, direct);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Im2colEquivalence,
    ::testing::Values(ConvCase{1, 5, 1, 3, 1, 0}, ConvCase{3, 8, 4, 3, 1, 1},
                      ConvCase{2, 7, 3, 5, 1, 2}, ConvCase{3, 8, 2, 3, 2, 1},
                      ConvCase{4, 6, 8, 1, 1, 0},
                      ConvCase{2, 9, 2, 3, 3, 1}));

TEST(Conv2dIm2col, RejectsGroups) {
  Conv2dParams p;
  p.groups = 2;
  EXPECT_THROW(conv2d_im2col(Tensor(Shape{1, 2, 4, 4}),
                             Tensor(Shape{2, 1, 1, 1}), nullptr, p),
               util::Error);
}

// --- linear -----------------------------------------------------------------

TEST(Linear, HandComputed) {
  const Tensor input(Shape{1, 3}, {1, 2, 3});
  const Tensor weight(Shape{2, 3}, {1, 0, 0, 0, 1, 1});
  const Tensor bias(Shape{2}, {10, 20});
  const Tensor out = linear(input, weight, &bias);
  EXPECT_EQ(out.at(0, 0), 11.0F);
  EXPECT_EQ(out.at(0, 1), 25.0F);
}

TEST(Linear, MatchesMatmulTransposed) {
  const Tensor input = random_tensor(Shape{4, 6}, 31);
  const Tensor weight = random_tensor(Shape{5, 6}, 32);
  const Tensor out = linear(input, weight, nullptr);
  Tensor wt(Shape{6, 5});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 6; ++j) {
      wt.at(j, i) = weight.at(i, j);
    }
  }
  EXPECT_TRUE(allclose(out, matmul(input, wt), 1e-4F, 1e-5F));
}

TEST(Linear, FeatureMismatchThrows) {
  EXPECT_THROW(linear(Tensor(Shape{1, 3}), Tensor(Shape{2, 4}), nullptr),
               util::Error);
}

// --- pooling ----------------------------------------------------------------

TEST(AvgPool, WindowAverages) {
  Tensor input(Shape{1, 1, 2, 2});
  input.fill_iota();  // 0 1 2 3
  const Tensor out = avg_pool2d(input, 2, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 1.5F);
}

TEST(AvgPool, PaddingExcludedFromDivisor) {
  Tensor input(Shape{1, 1, 2, 2});
  input.fill(4.0F);
  // 3x3 window, pad 1: corner windows see 4 valid values, all equal 4.
  const Tensor out = avg_pool2d(input, 3, 1, 1);
  EXPECT_EQ(out.at(0, 0, 0, 0), 4.0F);
}

TEST(MaxPool, PicksMaximum) {
  Tensor input(Shape{1, 1, 2, 2}, {3, -1, 0, 2});
  const Tensor out = max_pool2d(input, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0, 0), 3.0F);
}

TEST(MaxPool, NegativeValuesHandled) {
  Tensor input(Shape{1, 1, 2, 2}, {-3, -1, -5, -2});
  EXPECT_EQ(max_pool2d(input, 2, 2).at(0, 0, 0, 0), -1.0F);
}

TEST(GlobalAvgPool, MeansOverSpatial) {
  Tensor input(Shape{2, 2, 2, 2});
  input.fill_iota();
  const Tensor out = global_avg_pool(input);
  EXPECT_EQ(out.shape(), (Shape{2, 2, 1, 1}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 1.5F);   // mean(0..3)
  EXPECT_EQ(out.at(1, 1, 0, 0), 13.5F);  // mean(12..15)
}

// --- elementwise / channels -------------------------------------------------

TEST(Add, ElementwiseSum) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {10, 20});
  const Tensor c = add(a, b);
  EXPECT_EQ(c.at(1), 22.0F);
}

TEST(Add, ShapeMismatchThrows) {
  EXPECT_THROW(add(Tensor(Shape{2}), Tensor(Shape{3})), util::Error);
}

TEST(ConcatChannels, StacksAlongC) {
  Tensor a(Shape{1, 1, 2, 2});
  a.fill(1.0F);
  Tensor b(Shape{1, 2, 2, 2});
  b.fill(2.0F);
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_EQ(c.at(0, 0, 0, 0), 1.0F);
  EXPECT_EQ(c.at(0, 1, 0, 0), 2.0F);
  EXPECT_EQ(c.at(0, 2, 1, 1), 2.0F);
}

TEST(ConcatChannels, BatchedLayout) {
  Tensor a(Shape{2, 1, 1, 1}, {1, 3});
  Tensor b(Shape{2, 1, 1, 1}, {2, 4});
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.at(0, 0, 0, 0), 1.0F);
  EXPECT_EQ(c.at(0, 1, 0, 0), 2.0F);
  EXPECT_EQ(c.at(1, 0, 0, 0), 3.0F);
  EXPECT_EQ(c.at(1, 1, 0, 0), 4.0F);
}

TEST(ConcatChannels, SpatialMismatchThrows) {
  EXPECT_THROW(
      concat_channels(Tensor(Shape{1, 1, 2, 2}), Tensor(Shape{1, 1, 3, 3})),
      util::Error);
}

TEST(ScaleChannels, PerChannelMultiply) {
  Tensor input(Shape{1, 2, 2, 2});
  input.fill(3.0F);
  const Tensor scale(Shape{1, 2, 1, 1}, {2.0F, 0.5F});
  const Tensor out = scale_channels(input, scale);
  EXPECT_EQ(out.at(0, 0, 1, 1), 6.0F);
  EXPECT_EQ(out.at(0, 1, 0, 0), 1.5F);
}

TEST(BatchnormFolded, AffinePerChannel) {
  Tensor input(Shape{1, 2, 1, 2});
  input.fill(2.0F);
  const Tensor scale(Shape{2}, {3.0F, -1.0F});
  const Tensor shift(Shape{2}, {1.0F, 0.0F});
  const Tensor out = batchnorm_folded(input, scale, shift);
  EXPECT_EQ(out.at(0, 0, 0, 0), 7.0F);
  EXPECT_EQ(out.at(0, 1, 0, 1), -2.0F);
}

// --- activations ------------------------------------------------------------

TEST(Activations, ReluClampsNegatives) {
  EXPECT_EQ(apply_activation(-2.0F, Activation::kRelu), 0.0F);
  EXPECT_EQ(apply_activation(3.0F, Activation::kRelu), 3.0F);
}

TEST(Activations, Relu6ClampsBothSides) {
  EXPECT_EQ(apply_activation(-1.0F, Activation::kRelu6), 0.0F);
  EXPECT_EQ(apply_activation(4.0F, Activation::kRelu6), 4.0F);
  EXPECT_EQ(apply_activation(9.0F, Activation::kRelu6), 6.0F);
}

TEST(Activations, HardSwishKnownPoints) {
  EXPECT_EQ(apply_activation(-3.0F, Activation::kHardSwish), 0.0F);
  EXPECT_EQ(apply_activation(0.0F, Activation::kHardSwish), 0.0F);
  EXPECT_EQ(apply_activation(3.0F, Activation::kHardSwish), 3.0F);
  EXPECT_NEAR(apply_activation(1.0F, Activation::kHardSwish), 2.0F / 3.0F,
              1e-6F);
}

TEST(Activations, HardSigmoidKnownPoints) {
  EXPECT_EQ(apply_activation(-4.0F, Activation::kHardSigmoid), 0.0F);
  EXPECT_EQ(apply_activation(0.0F, Activation::kHardSigmoid), 0.5F);
  EXPECT_EQ(apply_activation(4.0F, Activation::kHardSigmoid), 1.0F);
}

TEST(Activations, SigmoidSymmetry) {
  const float s = apply_activation(1.3F, Activation::kSigmoid);
  const float t = apply_activation(-1.3F, Activation::kSigmoid);
  EXPECT_NEAR(s + t, 1.0F, 1e-6F);
}

TEST(Activations, GradMatchesFiniteDifference) {
  const float eps = 1e-3F;
  for (Activation act :
       {Activation::kRelu, Activation::kRelu6, Activation::kHardSwish,
        Activation::kHardSigmoid, Activation::kSigmoid}) {
    for (float x : {-5.0F, -1.0F, 0.5F, 1.7F, 5.0F}) {
      const float numeric = (apply_activation(x + eps, act) -
                             apply_activation(x - eps, act)) /
                            (2 * eps);
      EXPECT_NEAR(activation_grad(x, act), numeric, 2e-3F)
          << activation_name(act) << " at " << x;
    }
  }
}

TEST(Activations, TensorApplication) {
  const Tensor t(Shape{3}, {-1.0F, 0.0F, 2.0F});
  const Tensor out = apply_activation(t, Activation::kRelu);
  EXPECT_EQ(out.at(0), 0.0F);
  EXPECT_EQ(out.at(2), 2.0F);
}


struct DilatedCase {
  std::int64_t in_c, in_hw, out_c, k, stride, pad, dilation;
};

class DilatedIm2colEquivalence
    : public ::testing::TestWithParam<DilatedCase> {};

TEST_P(DilatedIm2colEquivalence, MatchesDirectConv) {
  const DilatedCase c = GetParam();
  const Tensor input =
      random_tensor(Shape{1, c.in_c, c.in_hw, c.in_hw}, 91);
  const Tensor weight =
      random_tensor(Shape{c.out_c, c.in_c, c.k, c.k}, 92);
  Conv2dParams p;
  p.stride_h = c.stride;
  p.stride_w = c.stride;
  p.pad_h = c.pad;
  p.pad_w = c.pad;
  p.dilation_h = c.dilation;
  p.dilation_w = c.dilation;
  const Tensor direct = conv2d(input, weight, nullptr, p);
  const Tensor lowered = conv2d_im2col(input, weight, nullptr, p);
  EXPECT_TRUE(allclose(lowered, direct, 1e-4F, 1e-5F));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DilatedIm2colEquivalence,
    ::testing::Values(DilatedCase{2, 9, 3, 3, 1, 2, 2},
                      DilatedCase{1, 11, 2, 3, 1, 3, 3},
                      DilatedCase{3, 12, 2, 3, 2, 2, 2},
                      DilatedCase{2, 10, 4, 2, 1, 1, 2}));

TEST(Conv2d, AsymmetricStridesAndPads) {
  // Non-square geometry in every knob at once.
  const Tensor input = random_tensor(Shape{1, 2, 9, 7}, 93);
  const Tensor weight = random_tensor(Shape{3, 2, 3, 5}, 94);
  Conv2dParams p;
  p.stride_h = 2;
  p.stride_w = 1;
  p.pad_h = 0;
  p.pad_w = 2;
  const Tensor out = conv2d(input, weight, nullptr, p);
  EXPECT_EQ(out.shape(), (Shape{1, 3, 4, 7}));
}

}  // namespace
}  // namespace fuse::nn
