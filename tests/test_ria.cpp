// Tests for the RIA formalism — the paper's Section III claims become
// executable checks here:
//   * matrix multiplication IS a systolic algorithm (Fig. 1)
//   * 1-D convolution IS a systolic algorithm (Fig. 7a)
//   * naive 2-D convolution is NOT an RIA (Fig. 2) — hence depthwise
//     convolution is not systolic
//   * the im2col-transformed 2-D convolution is an RIA again (Fig. 2c)
#include <gtest/gtest.h>

#include "ria/algorithms.hpp"
#include "ria/ria.hpp"
#include "ria/schedule.hpp"
#include "util/check.hpp"

namespace fuse::ria {
namespace {

// --- IndexExpr --------------------------------------------------------------

TEST(IndexExpr, VarPlusHasConstantOffset) {
  const IndexExpr e = IndexExpr::var_plus(2, -1);
  EXPECT_EQ(e.offset_from(2), -1);
  EXPECT_FALSE(e.offset_from(0).has_value());
}

TEST(IndexExpr, GeneralAffineIsNotConstantOffset) {
  // i - j depends on two indices: not idx[d] + c for any d.
  const IndexExpr e = IndexExpr::affine({1, -1}, 0);
  EXPECT_FALSE(e.offset_from(0).has_value());
  EXPECT_FALSE(e.offset_from(1).has_value());
}

TEST(IndexExpr, ConstantIsNotVarPlus) {
  const IndexExpr e = IndexExpr::constant(3);
  EXPECT_FALSE(e.offset_from(0).has_value());
}

TEST(IndexExpr, FloorDivAndModAreNonAffine) {
  EXPECT_FALSE(IndexExpr::floor_div(2, 3).offset_from(2).has_value());
  EXPECT_FALSE(IndexExpr::mod(2, 3).offset_from(2).has_value());
}

TEST(IndexExpr, ToStringRendersReadably) {
  const std::vector<std::string> names = {"i", "j", "k"};
  EXPECT_EQ(IndexExpr::var_plus(2, -1).to_string(names), "k-1");
  EXPECT_EQ(IndexExpr::var_plus(0, 0).to_string(names), "i");
  EXPECT_EQ(IndexExpr::floor_div(2, 3).to_string(names), "floor(k/3)");
  EXPECT_EQ(IndexExpr::mod(2, 3).to_string(names), "k%3");
  EXPECT_EQ(IndexExpr::affine({1, -1, 0}, 2).to_string(names), "i-j+2");
}

TEST(IndexExpr, InvalidConstructionThrows) {
  EXPECT_THROW(IndexExpr::floor_div(0, 0), util::Error);
  EXPECT_THROW(IndexExpr::var_plus(-1, 0), util::Error);
}

// --- The paper's algorithm analyses ----------------------------------------

TEST(PaperClaims, MatmulIsAnRia) {
  const RiaAnalysis analysis = analyze(matmul_spec());
  EXPECT_TRUE(analysis.is_ria);
  EXPECT_TRUE(analysis.violations.empty());
}

TEST(PaperClaims, MatmulSelfDependenceIsAlongK) {
  const RiaAnalysis analysis = analyze(matmul_spec());
  bool found = false;
  for (const auto& dep : analysis.dependences) {
    if (dep.self) {
      EXPECT_EQ(dep.vector, (std::vector<std::int64_t>{0, 0, 1}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PaperClaims, Conv1dIsAnRia) {
  EXPECT_TRUE(analyze(conv1d_spec(3)).is_ria);
}

TEST(PaperClaims, Naive2dConvIsNotAnRia) {
  const RiaAnalysis analysis = analyze(conv2d_naive_spec(3));
  EXPECT_FALSE(analysis.is_ria);
  // Both A and B accesses violate on dims 0 and 1 (floor and mod terms).
  EXPECT_GE(analysis.violations.size(), 4u);
  bool a_violates = false;
  bool b_violates = false;
  for (const auto& v : analysis.violations) {
    if (v.rhs_var == "A") {
      a_violates = true;
    }
    if (v.rhs_var == "B") {
      b_violates = true;
    }
  }
  EXPECT_TRUE(a_violates);
  EXPECT_TRUE(b_violates);
}

TEST(PaperClaims, ViolationMentionsTheOffendingExpression) {
  const RiaAnalysis analysis = analyze(conv2d_naive_spec(3));
  ASSERT_FALSE(analysis.violations.empty());
  bool mentions_floor = false;
  for (const auto& v : analysis.violations) {
    if (v.reason.find("floor(k/3)") != std::string::npos) {
      mentions_floor = true;
    }
  }
  EXPECT_TRUE(mentions_floor);
}

TEST(PaperClaims, Im2colRestoresRia) {
  EXPECT_TRUE(analyze(conv2d_im2col_spec()).is_ria);
}

TEST(PaperClaims, DepthwiseInheritsTheViolation) {
  EXPECT_FALSE(analyze(depthwise_conv_spec(3)).is_ria);
}

TEST(PaperClaims, KernelSizeDoesNotRescueNaiveConv) {
  for (std::int64_t k : {2, 3, 5, 7}) {
    EXPECT_FALSE(analyze(conv2d_naive_spec(k)).is_ria) << "K=" << k;
  }
}

// --- report -----------------------------------------------------------------

TEST(Report, RiaVerdictPrinted) {
  const AlgorithmSpec spec = matmul_spec();
  const std::string report = analyze(spec).report(spec);
  EXPECT_NE(report.find("verdict: RIA"), std::string::npos) << report;
  EXPECT_NE(report.find("dependence vectors"), std::string::npos);
}

TEST(Report, NonRiaVerdictExplainsWhy) {
  const AlgorithmSpec spec = conv2d_naive_spec(3);
  const std::string report = analyze(spec).report(spec);
  EXPECT_NE(report.find("NOT an RIA"), std::string::npos) << report;
  EXPECT_NE(report.find("floor(k/3)"), std::string::npos) << report;
}

// --- scheduling -------------------------------------------------------------

TEST(Schedule, MatmulHasValidSpaceTimeMapping) {
  const AlgorithmSpec spec = matmul_spec();
  const auto schedule = find_schedule(analyze(spec), 3);
  ASSERT_TRUE(schedule.has_value());
  // Causality: lambda . d >= 1 on the self dependence (0,0,1).
  EXPECT_GE(schedule->time[2], 1);
  EXPECT_EQ(schedule->processor_rank, 2);  // 2-D systolic array
}

TEST(Schedule, Conv1dMapsToLinearArray) {
  const AlgorithmSpec spec = conv1d_spec(3);
  const auto schedule = find_schedule(analyze(spec), 2);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->processor_rank, 1);  // linear systolic array
}

TEST(Schedule, NonRiaHasNoSchedule) {
  const AlgorithmSpec spec = conv2d_naive_spec(3);
  EXPECT_FALSE(find_schedule(analyze(spec), 3).has_value());
}

TEST(Schedule, IsSystolicAlgorithmSummary) {
  EXPECT_TRUE(is_systolic_algorithm(matmul_spec()));
  EXPECT_TRUE(is_systolic_algorithm(conv1d_spec(5)));
  EXPECT_TRUE(is_systolic_algorithm(conv2d_im2col_spec()));
  EXPECT_FALSE(is_systolic_algorithm(conv2d_naive_spec(3)));
  EXPECT_FALSE(is_systolic_algorithm(depthwise_conv_spec(5)));
}

TEST(Schedule, ScheduleSatisfiesAllDependences) {
  const AlgorithmSpec spec = matmul_spec();
  const RiaAnalysis analysis = analyze(spec);
  const auto schedule = find_schedule(analysis, 3);
  ASSERT_TRUE(schedule.has_value());
  for (const auto& dep : analysis.dependences) {
    std::int64_t dot = 0;
    for (std::size_t d = 0; d < dep.vector.size(); ++d) {
      dot += schedule->time[d] * dep.vector[d];
    }
    if (dep.self) {
      EXPECT_GE(dot, 1);
    } else {
      EXPECT_GE(dot, 0);
    }
  }
}

TEST(Schedule, HandBuiltCyclicDependenceIsUnschedulable) {
  // x[i] needs x[i+1] and x[i-1] simultaneously: no linear schedule.
  AlgorithmSpec spec;
  spec.name = "cyclic";
  spec.index_names = {"i"};
  Recurrence r;
  r.lhs_var = "X";
  r.description = "X[i] = X[i-1] + X[i+1]";
  r.rhs.push_back(VarAccess{"X", {IndexExpr::var_plus(0, -1)}});
  r.rhs.push_back(VarAccess{"X", {IndexExpr::var_plus(0, 1)}});
  spec.relations.push_back(r);
  const RiaAnalysis analysis = analyze(spec);
  EXPECT_TRUE(analysis.is_ria);  // offsets are constant...
  EXPECT_FALSE(find_schedule(analysis, 1).has_value());  // ...but unschedulable
}


TEST(ScheduleEnumeration, MatmulYieldsAllThreeDataflows) {
  // One RIA, three classic accelerators: each unit projection of the
  // matmul iteration space keeps a different operand stationary.
  const AlgorithmSpec spec = matmul_spec();
  const auto schedules = enumerate_schedules(analyze(spec), 3, 1);
  ASSERT_FALSE(schedules.empty());
  bool saw_os = false, saw_ws = false, saw_is = false;
  for (const SystolicSchedule& s : schedules) {
    const std::string name = stationary_operand(s);
    if (name.find("output") != std::string::npos) {
      saw_os = true;
    }
    if (name.find("weight") != std::string::npos) {
      saw_ws = true;
    }
    if (name.find("input") != std::string::npos) {
      saw_is = true;
    }
  }
  EXPECT_TRUE(saw_os);
  EXPECT_TRUE(saw_ws);
  EXPECT_TRUE(saw_is);
}

TEST(ScheduleEnumeration, AllEnumeratedSchedulesAreValid) {
  const AlgorithmSpec spec = matmul_spec();
  const RiaAnalysis analysis = analyze(spec);
  for (const SystolicSchedule& s : enumerate_schedules(analysis, 3, 1)) {
    for (const auto& dep : analysis.dependences) {
      std::int64_t dot = 0;
      for (std::size_t d = 0; d < dep.vector.size(); ++d) {
        dot += s.time[d] * dep.vector[d];
      }
      EXPECT_GE(dot, dep.self ? 1 : 0);
    }
    std::int64_t proj_dot = 0;
    for (std::size_t d = 0; d < s.projection.size(); ++d) {
      proj_dot += s.time[d] * s.projection[d];
    }
    EXPECT_NE(proj_dot, 0);
  }
}

TEST(ScheduleEnumeration, NonRiaYieldsNothing) {
  const AlgorithmSpec spec = conv2d_naive_spec(3);
  EXPECT_TRUE(enumerate_schedules(analyze(spec), 3, 2).empty());
}

TEST(ScheduleEnumeration, Conv1dHasMultipleDesigns) {
  // Kung (1982) catalogues seven 1-D convolution designs; within a +-1
  // bound our enumeration already finds several distinct mappings.
  const AlgorithmSpec spec = conv1d_spec(3);
  const auto schedules = enumerate_schedules(analyze(spec), 2, 1);
  EXPECT_GE(schedules.size(), 2u);
}


TEST(PaperClaims, PointwiseConvIsSystolic) {
  // §IV-B: "point-wise convolution is a vector dot-product and is also a
  // systolic algorithm" — so BOTH halves of a FuSeConv layer are systolic.
  EXPECT_TRUE(analyze(pointwise_conv_spec()).is_ria);
  EXPECT_TRUE(is_systolic_algorithm(pointwise_conv_spec()));
}

TEST(PaperClaims, EveryFuseConvStageOperationIsSystolic) {
  // The complete §IV argument in one test: 1-D convolutions (both
  // branches) and the pointwise stage are systolic; the depthwise layer
  // they replace is not.
  EXPECT_TRUE(is_systolic_algorithm(conv1d_spec(3)));
  EXPECT_TRUE(is_systolic_algorithm(pointwise_conv_spec()));
  EXPECT_FALSE(is_systolic_algorithm(depthwise_conv_spec(3)));
}

}  // namespace
}  // namespace fuse::ria
